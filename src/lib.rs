//! # oak-kv — Oak: a scalable off-heap allocated key-value map
//!
//! A Rust reproduction of *Oak* (Meir et al., PPoPP '20): a concurrent
//! ordered key-value map that self-manages its memory in large arenas,
//! organized as chunks with sorted prefixes and bypass linked lists, with a
//! zero-copy API and atomic in-place conditional updates.
//!
//! This facade crate re-exports the workspace's public surface:
//!
//! * [`OakMap`] and the zero-copy / legacy APIs — the paper's contribution
//!   ([`oak_core`]);
//! * the unified [`OrderedKvMap`] trait implemented by every ordered map in
//!   the workspace, and [`ShardedOakMap`] — N independent shards behind the
//!   same interface, routed by a [`ShardSplitter`];
//! * the self-managed memory pool ([`mempool`] = [`oak_mempool`]);
//! * the managed-heap (JVM) simulator used by the memory experiments
//!   ([`gcheap`] = [`oak_gcheap`]);
//! * the baselines: lock-free skiplist, off-heap skiplist, coarse-locked
//!   B+-tree ([`baselines`] = [`oak_skiplist`]);
//! * the Druid incremental-index case study ([`druid`] = [`oak_druid`]).
//!
//! ```
//! use oak_kv::{OakMap, OakMapConfig};
//!
//! let map = OakMap::with_config(OakMapConfig::small());
//! map.put(b"user:1", b"alice").unwrap();
//!
//! // Zero-copy read: the closure borrows Oak's own buffer.
//! let len = map.get_with(b"user:1", |v| v.len()).unwrap();
//! assert_eq!(len, 5);
//!
//! // Atomic in-place update (the paper's computeIfPresent).
//! map.compute_if_present(b"user:1", |buf| {
//!     buf.as_mut_slice().make_ascii_uppercase();
//! });
//! assert_eq!(map.get_copy(b"user:1").unwrap(), b"ALICE");
//! ```

#![warn(missing_docs)]

pub use oak_core::{
    legacy, serde_api, CorruptionKind, DescendIter, EntryIter, KeyComparator, Lexicographic,
    OakError, OakMap, OakMapConfig, OakRBuffer, OakStats, OakStatsSource, OakWBuffer,
    OnHeapSkipListMap, OpBudget, OrderedKvMap, OverloadConfig, OverloadState, RecoveryFailure,
    RetryPolicy, ShardSplitter, ShardedOakMap, U64BeComparator, ZeroCopyRead, ZeroCopyView,
};

/// Crash-durable checkpoint/recovery (`durable` feature): stream a live
/// map into a CRC-protected on-disk image and rebuild it after a crash.
#[cfg(feature = "durable")]
pub mod durable {
    pub use oak_durable::*;
}

/// The self-managed off-heap memory substrate (arenas, free lists, value
/// headers).
pub mod mempool {
    pub use oak_mempool::*;
}

/// The managed-heap (JVM) simulator used by the paper's memory experiments.
pub mod gcheap {
    pub use oak_gcheap::*;
}

/// The ordered-map baselines the paper compares against.
pub mod baselines {
    pub use oak_skiplist::btree::LockedBTreeMap;
    pub use oak_skiplist::offheap::OffHeapSkipListMap;
    pub use oak_skiplist::{PutOutcome, SkipListMap};
}

/// The Druid incremental-index (I²) case study.
pub mod druid {
    pub use oak_druid::*;
}
