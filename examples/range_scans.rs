//! Two-way range scans: time-series retention queries.
//!
//! Loads a time-ordered event log and runs ascending and descending window
//! scans, contrasting the Set API (ephemeral buffer pairs) with the Stream
//! API (zero per-entry objects) — the distinction Figures 4e/4f measure —
//! and showing Oak's descending scans against a skiplist's
//! lookup-per-key descent. Finally it repeats the windows on a 4-shard
//! [`ShardedOakMap`], whose scans k-way–merge the per-shard iterators
//! back into one globally ordered stream.
//!
//! ```sh
//! cargo run --release --example range_scans
//! ```

use std::time::Instant;

use oak_kv::baselines::SkipListMap;
use oak_kv::{OakMap, OakMapConfig, ShardedOakMap};

fn key(ts: u64) -> Vec<u8> {
    format!("evt{ts:012}").into_bytes()
}

fn main() {
    const N: u64 = 200_000;
    let map = OakMap::with_config(OakMapConfig::default());
    let skiplist: SkipListMap<Vec<u8>, Vec<u8>> = SkipListMap::new();

    for ts in 0..N {
        let value = format!("event-payload-{ts}").into_bytes();
        map.put(&key(ts), &value).unwrap();
        skiplist.put(key(ts), value);
    }
    println!("loaded {N} events; oak stats: {:?}", map.stats());

    // Ascending window (Set API vs Stream API).
    let lo = key(50_000);
    let hi = key(60_000);

    let t = Instant::now();
    let set_count = map.iter_range(Some(&lo), Some(&hi)).count();
    let set_time = t.elapsed();

    let t = Instant::now();
    let mut stream_count = 0;
    map.for_each_in(Some(&lo), Some(&hi), |_, _| {
        stream_count += 1;
        true
    });
    let stream_time = t.elapsed();
    assert_eq!(set_count, stream_count);
    println!(
        "ascending 10K window: set API {set_time:?}, stream API {stream_time:?} ({set_count} entries)"
    );

    // Descending window: Oak's stack-based algorithm vs the skiplist's
    // lookup-per-key strategy.
    let from = key(N - 1);
    let floor = key(N - 10_000);

    let t = Instant::now();
    let mut oak_desc = 0;
    map.for_each_descending(Some(&from), Some(&floor), |_, _| {
        oak_desc += 1;
        true
    });
    let oak_time = t.elapsed();

    let t = Instant::now();
    let mut sl_desc = 0;
    skiplist.for_each_descending(&from, Some(&floor), |_, _| {
        sl_desc += 1;
        true
    });
    let sl_time = t.elapsed();
    assert_eq!(oak_desc, sl_desc);
    println!(
        "descending 10K window: Oak(Fig2 stacks) {oak_time:?}, skiplist(lookup-per-key) {sl_time:?} — {:.1}x",
        sl_time.as_secs_f64() / oak_time.as_secs_f64().max(1e-9)
    );

    // The same windows against a sharded front-end: keys are spread over
    // four shards by hash, yet the merged scans preserve global order.
    let sharded = ShardedOakMap::with_config(4, OakMapConfig::default());
    for ts in 0..N {
        sharded
            .put(&key(ts), &format!("event-payload-{ts}").into_bytes())
            .unwrap();
    }
    let t = Instant::now();
    let mut merged_asc = 0;
    let mut prev: Option<Vec<u8>> = None;
    sharded.for_each_in(Some(&lo), Some(&hi), |k, _| {
        if let Some(p) = &prev {
            assert!(k > p.as_slice(), "merge broke global order");
        }
        prev = Some(k.to_vec());
        merged_asc += 1;
        true
    });
    let merged_asc_time = t.elapsed();
    assert_eq!(merged_asc, stream_count);
    let t = Instant::now();
    let mut merged_desc = 0;
    sharded.for_each_descending(Some(&from), Some(&floor), |_, _| {
        merged_desc += 1;
        true
    });
    let merged_desc_time = t.elapsed();
    assert_eq!(merged_desc, oak_desc);
    println!(
        "sharded(4) merged windows: ascending {merged_asc_time:?}, descending {merged_desc_time:?} \
         — global order verified across {} shards",
        sharded.shard_count()
    );

    // Retention: drop everything older than a cutoff, newest-first.
    let cutoff = key(10_000);
    let mut expired = Vec::new();
    map.for_each_in(None, Some(&cutoff), |k, _| {
        expired.push(k.to_vec());
        true
    });
    for k in &expired {
        map.remove(k);
    }
    println!(
        "expired {} events below cutoff; {} remain, {} chunks after merges",
        expired.len(),
        map.len(),
        map.stats().chunks
    );
}
