//! Quickstart: the Oak map in five minutes.
//!
//! Demonstrates both API surfaces of Table 1 — the zero-copy API
//! (`map.zc()`) and the legacy copying API — plus the footprint query and
//! the workspace-wide [`OrderedKvMap`] trait that lets the same code run
//! against a plain map, a sharded map, or any of the baselines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use oak_kv::legacy::TypedOakMap;
use oak_kv::serde_api::{StringSerializer, U64Serializer};
use oak_kv::{OakMap, OakMapConfig, OrderedKvMap, ShardedOakMap};

/// Runs against anything that implements the trait — `OakMap`,
/// `ShardedOakMap`, or the skiplist/B-tree baselines.
fn count_between(map: &dyn OrderedKvMap, lo: &[u8], hi: &[u8]) -> usize {
    map.ascend(Some(lo), Some(hi), &mut |_, _| true)
}

fn main() {
    // ---- Zero-copy API ----------------------------------------------------
    let map = OakMap::with_config(OakMapConfig::default());
    let zc = map.zc();

    zc.put(b"apple", b"red").unwrap();
    zc.put(b"banana", b"yellow").unwrap();
    assert!(zc.put_if_absent(b"cherry", b"red").unwrap());
    assert!(!zc.put_if_absent(b"cherry", b"purple").unwrap());

    // get() returns an OakRBuffer — a view into Oak's own memory.
    let buf = zc.get(b"banana").expect("present");
    buf.read(|bytes| println!("banana -> {}", String::from_utf8_lossy(bytes)))
        .unwrap();

    // Atomic in-place update through a lambda over an OakWBuffer.
    zc.compute_if_present(b"banana", |value| {
        value.as_mut_slice().make_ascii_uppercase();
    });
    // The same buffer view observes the update (zero-copy semantics).
    buf.read(|bytes| println!("banana -> {}", String::from_utf8_lossy(bytes)))
        .unwrap();

    // Upsert: insert if absent, else update in place.
    for _ in 0..3 {
        zc.put_if_absent_compute_if_present(b"counter", &1u64.to_le_bytes(), |value| {
            let v = u64::from_le_bytes(value.as_slice().try_into().unwrap());
            value.as_mut_slice().copy_from_slice(&(v + 1).to_le_bytes());
        })
        .unwrap();
    }
    let count = map.get_with(b"counter", |v| u64::from_le_bytes(v.try_into().unwrap()));
    println!("counter -> {count:?}");
    assert_eq!(count, Some(3));

    // Ordered scans, both directions.
    print!("ascending:");
    zc.entry_stream_set(None, None, |k, _| {
        print!(" {}", String::from_utf8_lossy(k));
        true
    });
    println!();
    print!("descending:");
    zc.descending_entry_stream_set(None, None, |k, _| {
        print!(" {}", String::from_utf8_lossy(k));
        true
    });
    println!();

    zc.remove(b"apple");
    assert!(zc.get(b"apple").is_none());

    // Footprint estimation (§1.1).
    let stats = map.stats();
    println!(
        "footprint: {} bytes reserved, {} live, {} chunks, {} rebalances",
        stats.pool.reserved_bytes, stats.pool.live_bytes, stats.chunks, stats.rebalances
    );

    // ---- One interface, many maps -----------------------------------------
    // The same helper runs on the plain map and on a 4-shard front-end.
    let sharded = ShardedOakMap::with_config(4, OakMapConfig::small());
    for fruit in ["apple", "banana", "cherry", "damson", "elderberry"] {
        sharded.put(fruit.as_bytes(), b"fruit").unwrap();
    }
    println!(
        "trait scan: plain map has {} keys in [b, d), sharded map has {}",
        count_between(&map, b"b", b"d"),
        count_between(&sharded, b"b", b"d"),
    );
    assert_eq!(count_between(&sharded, b"b", b"d"), 2); // banana, cherry

    // ---- Legacy (typed, copying) API ---------------------------------------
    let typed = TypedOakMap::new(
        OakMap::with_config(OakMapConfig::small()),
        U64Serializer,
        StringSerializer,
    );
    assert_eq!(typed.put(&7, &"seven".to_string()).unwrap(), None);
    assert_eq!(
        typed.put(&7, &"SEVEN".to_string()).unwrap(),
        Some("seven".to_string()) // legacy put returns the old value
    );
    assert_eq!(typed.get(&7), Some("SEVEN".to_string()));
    assert_eq!(typed.remove(&7), Some("SEVEN".to_string()));
    println!("legacy API round-trip OK");
}
