//! Real-time analytics ingestion — the Druid incremental-index use case
//! that motivates the paper (§1, §6).
//!
//! Streams web-request tuples into a rollup index backed by Oak: each
//! unique (minute, page, status) key materializes a count, latency sum,
//! min/max, an approximate distinct-user sketch (HyperLogLog), and a
//! latency quantile sketch — all updated atomically in place by a single
//! `putIfAbsentComputeIfPresent` lambda per tuple.
//!
//! ```sh
//! cargo run --release --example analytics_rollup
//! ```

use oak_kv::druid::agg::AggSpec;
use oak_kv::druid::index::{IncrementalIndex, OakIndex};
use oak_kv::druid::row::{DimKind, DimValue, InputRow, Schema};
use oak_kv::druid::AggValue;
use oak_kv::OakMapConfig;

fn main() {
    let schema = Schema::rollup(
        vec![
            ("page".to_string(), DimKind::Str),
            ("user".to_string(), DimKind::Str),
            ("status".to_string(), DimKind::Long),
        ],
        vec![
            AggSpec::Count,
            AggSpec::DoubleSum(0),    // latency sum
            AggSpec::DoubleMin(0),    // latency min
            AggSpec::DoubleMax(0),    // latency max
            AggSpec::HllUniqueDim(1), // approx. distinct users
            AggSpec::Quantile(0),     // latency quantiles
        ],
    );
    let index = OakIndex::new(schema, OakMapConfig::default());

    // Simulate a minute of traffic: 50K requests over 20 pages.
    let base_ts = 1_700_000_000_000i64;
    let mut ingested = 0u64;
    let start = std::time::Instant::now();
    for i in 0..50_000u64 {
        let row = InputRow {
            // Bucket timestamps per second so rollup kicks in.
            timestamp: base_ts + (i as i64 / 1_000) * 1_000,
            dims: vec![
                DimValue::Str(format!("/page/{}", i % 20)),
                DimValue::Str(format!("user-{}", (i * 7) % 5_000)),
                DimValue::Long(if i % 50 == 0 { 500 } else { 200 }),
            ],
            metrics: vec![5.0 + (i % 200) as f64],
        };
        index.insert(&row).expect("ingest");
        ingested += 1;
    }
    let elapsed = start.elapsed();
    println!(
        "ingested {} tuples in {:?} ({:.0} Kops/s) into {} rolled-up keys",
        ingested,
        elapsed,
        ingested as f64 / elapsed.as_secs_f64() / 1_000.0,
        index.num_keys()
    );

    // Query: aggregate over the first 10 seconds.
    let mut total = 0i64;
    let mut lat_sum = 0.0;
    let mut lat_max = f64::MIN;
    let mut uniques = 0.0;
    index.scan(base_ts, base_ts + 10_000, &mut |_, vals| {
        if let AggValue::Long(c) = vals[0] {
            total += c;
        }
        if let AggValue::Double(s) = vals[1] {
            lat_sum += s;
        }
        if let AggValue::Double(mx) = vals[3] {
            lat_max = lat_max.max(mx);
        }
        if let AggValue::Estimate(u) = vals[4] {
            uniques += u;
        }
        true
    });
    println!(
        "first 10s: {} requests, mean latency {:.1} ms, max {:.0} ms, ~{:.0} distinct user-keys",
        total,
        lat_sum / total.max(1) as f64,
        lat_max,
        uniques
    );

    // Lifecycle: persist the filled index into an immutable segment, then
    // compact two generations into one (§6's "reorganized and persisted").
    let segment = oak_kv::druid::Segment::persist(&index);
    println!(
        "persisted segment: {} rows, {:.1} MB columnar, time range {:?}",
        segment.num_rows(),
        segment.size_bytes() as f64 / 1e6,
        segment.time_range(),
    );
    let compacted = oak_kv::druid::Segment::compact(&[&segment, &segment]);
    println!(
        "compacted 2 generations: {} rows (counts doubled, keys deduped)",
        compacted.num_rows()
    );

    let fp = index.footprint();
    println!(
        "footprint: {} data + {} metadata + {} dictionaries = {} bytes ({:.1}% overhead over data)",
        fp.data_bytes,
        fp.metadata_bytes,
        fp.dictionary_bytes,
        fp.total(),
        100.0 * (fp.total() - fp.data_bytes) as f64 / fp.data_bytes.max(1) as f64,
    );
}
