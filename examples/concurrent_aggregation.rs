//! Concurrent aggregation: many writer threads, atomic in-place compute,
//! and queries running against the live map — the usage pattern that
//! motivates Oak's linearizable `putIfAbsentComputeIfPresent` (§1.1's
//! "Java's concurrent collections do not offer atomic update-in-place").
//!
//! Eight workers ingest click events keyed by (minute, page); each event
//! atomically bumps a count and adds to a revenue sum inside one lambda.
//! A query thread snapshots totals during ingestion. At the end, the sum
//! of all per-key counts must equal the number of events — the invariant
//! a non-atomic merge would violate under contention.
//!
//! The whole workload is written once against the [`OrderedKvMap`] trait
//! and run twice: on a single `OakMap` and on a 4-shard `ShardedOakMap`,
//! which spreads rebalance contention across shards.
//!
//! ```sh
//! cargo run --release --example concurrent_aggregation
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use oak_kv::{OakMap, OakMapConfig, OakStatsSource, OrderedKvMap, ShardedOakMap};

const WORKERS: u64 = 8;
const EVENTS_PER_WORKER: u64 = 50_000;

fn key(minute: u64, page: u64) -> Vec<u8> {
    format!("m{minute:06}/p{page:04}").into_bytes()
}

fn ingest_and_check<M>(label: &str, map: Arc<M>)
where
    M: OrderedKvMap + OakStatsSource + 'static,
{
    let produced = Arc::new(AtomicU64::new(0));

    let start = std::time::Instant::now();
    let mut handles = Vec::new();
    for w in 0..WORKERS {
        let map = map.clone();
        let produced = produced.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..EVENTS_PER_WORKER {
                let minute = (w * EVENTS_PER_WORKER + i) / 20_000;
                let page = (w * 31 + i * 7) % 100;
                let revenue_cents = (i % 500) + 1;

                // Initial state: count = 1, revenue = this event.
                let mut init = [0u8; 16];
                init[..8].copy_from_slice(&1u64.to_le_bytes());
                init[8..].copy_from_slice(&revenue_cents.to_le_bytes());

                map.put_if_absent_compute_if_present(&key(minute, page), &init, &|buf| {
                    // Atomic: the whole lambda runs under the value lock.
                    let count = u64::from_le_bytes(buf[..8].try_into().unwrap());
                    let rev = u64::from_le_bytes(buf[8..].try_into().unwrap());
                    buf[..8].copy_from_slice(&(count + 1).to_le_bytes());
                    buf[8..].copy_from_slice(&(rev + revenue_cents).to_le_bytes());
                })
                .expect("ingest");
                produced.fetch_add(1, Ordering::Relaxed);
            }
        }));
    }

    // Live queries while ingestion runs.
    let querier = {
        let map = map.clone();
        let produced = produced.clone();
        std::thread::spawn(move || {
            let mut last = 0u64;
            while produced.load(Ordering::Relaxed) < WORKERS * EVENTS_PER_WORKER {
                let mut counted = 0u64;
                map.ascend(None, None, &mut |_, v| {
                    counted += u64::from_le_bytes(v[..8].try_into().unwrap());
                    true
                });
                if counted > last {
                    println!(
                        "  live query: {counted} events aggregated across {} keys",
                        map.len()
                    );
                    last = counted;
                }
                std::thread::sleep(std::time::Duration::from_millis(100));
            }
        })
    };

    for h in handles {
        h.join().unwrap();
    }
    querier.join().unwrap();
    let elapsed = start.elapsed();

    // The atomicity check: no update may be lost.
    let mut total_count = 0u64;
    let mut total_revenue = 0u64;
    map.ascend(None, None, &mut |_, v| {
        total_count += u64::from_le_bytes(v[..8].try_into().unwrap());
        total_revenue += u64::from_le_bytes(v[8..].try_into().unwrap());
        true
    });
    let expected = WORKERS * EVENTS_PER_WORKER;
    println!(
        "\n[{label}] ingested {expected} events from {WORKERS} threads in {elapsed:?} \
         ({:.0} Kops/s aggregate)",
        expected as f64 / elapsed.as_secs_f64() / 1_000.0
    );
    println!(
        "[{label}] aggregated into {} keys; total count {total_count}, revenue {:.2}",
        map.len(),
        total_revenue as f64 / 100.0
    );
    assert_eq!(total_count, expected, "lost updates!");
    println!("[{label}] atomicity check passed: zero lost updates");
    for (i, stats) in map.shard_stats().iter().enumerate() {
        println!(
            "[{label}]   shard {i}: {} keys, {} chunks, {} rebalances, {:.1} MB off-heap live",
            stats.len,
            stats.chunks,
            stats.rebalances,
            stats.pool.live_bytes as f64 / 1e6
        );
    }
}

fn main() {
    ingest_and_check(
        "OakMap",
        Arc::new(OakMap::with_config(OakMapConfig::default())),
    );
    ingest_and_check(
        "ShardedOak-4",
        Arc::new(ShardedOakMap::with_config(4, OakMapConfig::default())),
    );
}
