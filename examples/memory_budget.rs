//! Memory-budget showdown: how much data fits in a fixed RAM budget?
//!
//! Reproduces the Figure 3 experiment at example scale: Oak, the off-heap
//! skiplist, and the on-heap skiplist (against the simulated JVM heap)
//! ingest datasets of growing size under one budget; the on-heap baseline
//! hits its OOM wall first, exactly as in §5.2 ("Oak can ingest over 30%
//! more data within a given DRAM size").
//!
//! ```sh
//! cargo run --release --example memory_budget
//! ```

use oak_bench::memfig::{ingest_oak, ingest_offheap, ingest_onheap, raw_bytes, IngestOutcome};
use oak_bench::workload::WorkloadConfig;
use oak_kv::gcheap::GcStats;

fn main() {
    let workload = WorkloadConfig {
        key_range: u64::MAX,
        key_size: 100,
        value_size: 1024,
        seed: 42,
        distribution: oak_bench::workload::KeyDistribution::Uniform,
    };
    let budget: u64 = 96 << 20; // 96 MB
    let per_key = raw_bytes(&workload, 1);
    println!(
        "budget {} MB, raw data {} B/key → budget holds ≈ {} keys as raw bytes\n",
        budget >> 20,
        per_key,
        budget / per_key
    );
    println!(
        "{:>10} {:>16} {:>16} {:>16}",
        "keys", "Oak", "Skiplist-OffHeap", "Skiplist-OnHeap"
    );

    let full = budget / per_key;
    for frac in [4u64, 8, 12, 16, 20, 24] {
        let n = full * frac / 24;
        let fmt = |o: IngestOutcome| match o {
            IngestOutcome::Done { kops } => format!("{kops:.0} Kops/s"),
            IngestOutcome::Oom { ingested } => format!("OOM@{ingested}"),
        };
        println!(
            "{:>10} {:>16} {:>16} {:>16}",
            n,
            fmt(ingest_oak(&workload, n, budget)),
            fmt(ingest_offheap(&workload, n, budget)),
            fmt(ingest_onheap(&workload, n, budget)),
        );
    }

    println!("\n(OOM@k = the run exceeded the budget after ingesting k keys; on-heap");
    println!(" pays Java object layout plus GC headroom, modelled by the gcheap crate)");
    let _ = GcStats::default(); // touch the re-export so the example shows it
}
