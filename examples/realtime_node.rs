//! A mini real-time analytics node: the complete I² lifecycle of §6.
//!
//! Tuples stream into an Oak-backed incremental index; when it fills it is
//! persisted into an immutable columnar segment and replaced — while
//! queries keep running across the real-time index *and* the historical
//! segments. Finally, segments are compacted, merging aggregate sketches.
//!
//! ```sh
//! cargo run --release --example realtime_node
//! ```

use oak_kv::druid::agg::{AggSpec, AggValue};
use oak_kv::druid::engine::DataNode;
use oak_kv::druid::row::{DimKind, DimValue, InputRow, Schema};
use oak_kv::OakMapConfig;

fn main() {
    let schema = Schema::rollup(
        vec![
            ("endpoint".to_string(), DimKind::Str),
            ("status".to_string(), DimKind::Long),
        ],
        vec![
            AggSpec::Count,
            AggSpec::DoubleSum(0),
            AggSpec::DoubleMax(0),
            AggSpec::HllUniqueDim(0),
            AggSpec::DoubleLast(0),
        ],
    );
    // Roll the live index into a segment every 20K distinct keys.
    let node = DataNode::new(schema, OakMapConfig::default(), 20_000);

    let base = 1_700_000_000_000i64;
    let start = std::time::Instant::now();
    let total = 200_000u64;
    for i in 0..total {
        node.insert(&InputRow {
            timestamp: base + (i / 10) as i64, // 10 events per millisecond
            dims: vec![
                DimValue::Str(format!("/api/v1/{}", i % 40)),
                DimValue::Long(if i % 97 == 0 { 500 } else { 200 }),
            ],
            metrics: vec![1.0 + (i % 300) as f64 / 10.0],
        })
        .expect("ingest");
    }
    let elapsed = start.elapsed();
    println!(
        "ingested {total} events in {elapsed:?} ({:.0} Kops/s); \
         {} historical segments + {} live keys",
        total as f64 / elapsed.as_secs_f64() / 1_000.0,
        node.num_segments(),
        node.live_keys()
    );

    // A query spanning historical segments and the live index.
    let mid = base + (total as i64 / 10) / 2;
    let mut rows = 0i64;
    let mut lat_sum = 0.0;
    let mut lat_max = f64::MIN;
    node.scan(base, mid, &mut |_, vals| {
        if let AggValue::Long(c) = vals[0] {
            rows += c;
        }
        if let AggValue::Double(s) = vals[1] {
            lat_sum += s;
        }
        if let AggValue::Double(mx) = vals[2] {
            lat_max = lat_max.max(mx);
        }
        true
    });
    println!(
        "first half: {rows} events, mean latency {:.1}, max {:.1}",
        lat_sum / rows.max(1) as f64,
        lat_max
    );
    assert_eq!(rows, total as i64 / 2);

    // Compact the historical timeline into one segment.
    let before = node.num_segments();
    node.compact_segments();
    println!("compacted {before} segments into {}", node.num_segments());
    // Totals are preserved by compaction.
    assert_eq!(node.total_rows(base, base + total as i64, 0), total as i64);
    println!("post-compaction totals check passed");
}
