//! Manifests and the two-phase `CURRENT` swap.
//!
//! A checkpoint becomes *the* checkpoint in two atomic steps, mirroring
//! LevelDB's MANIFEST/CURRENT protocol:
//!
//! 1. The manifest for generation *g* is written to a temporary name,
//!    fsynced, and renamed to `MANIFEST-<g>`. A crash before the rename
//!    leaves at most a stray temporary — the previous generation is
//!    untouched.
//! 2. `CURRENT` (a one-line file naming the live manifest) is replaced the
//!    same way: temporary, fsync, rename. POSIX `rename` is atomic, so a
//!    reader at any crash instant sees either the old pointer or the new
//!    one — never a torn mix.
//!
//! The manifest itself carries a generation stamp, the writing map's
//! configuration fingerprint, the total entry count, the per-chunk
//! `{offset, len, count, crc}` table, and finally a CRC32C over its own
//! bytes, so a torn manifest write is detected even if it somehow got
//! renamed into place.
//!
//! Layout (little-endian):
//!
//! ```text
//! manifest := magic="OAKMAN1\0" (8) generation:u64 fingerprint:u64
//!             entries:u64 chunk_count:u32 chunk* crc32c:u32
//! chunk    := offset:u64 len:u32 count:u32 crc:u32
//! ```

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::Path;

use oak_core::{CorruptionKind, OakError};

use crate::crc32c::crc32c;
use crate::segment::ChunkDesc;

const MAN_MAGIC: [u8; 8] = *b"OAKMAN1\0";
/// Bytes before the chunk table: magic, generation, fingerprint, entry
/// total, chunk count.
const MAN_FIXED_LEN: usize = 8 + 8 + 8 + 8 + 4;
const CHUNK_ENTRY_LEN: usize = 8 + 4 + 4 + 4;
/// Trailing CRC32C length.
const MAN_CRC_LEN: usize = 4;

/// Decoded manifest contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Checkpoint generation this manifest describes.
    pub generation: u64,
    /// [`OakMapConfig::fingerprint`](oak_core::OakMapConfig::fingerprint)
    /// of the map that wrote the image.
    pub fingerprint: u64,
    /// Total records across all chunks.
    pub entries: u64,
    /// Chunk table, in key order.
    pub chunks: Vec<ChunkDesc>,
}

/// `MANIFEST-<gen>` file name for a generation.
pub(crate) fn manifest_name(generation: u64) -> String {
    format!("MANIFEST-{generation:06}")
}

/// `segment-<gen>.oakseg` file name for a generation.
pub(crate) fn segment_name(generation: u64) -> String {
    format!("segment-{generation:06}.oakseg")
}

impl Manifest {
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(MAN_FIXED_LEN + self.chunks.len() * CHUNK_ENTRY_LEN);
        out.extend_from_slice(&MAN_MAGIC);
        out.extend_from_slice(&self.generation.to_le_bytes());
        out.extend_from_slice(&self.fingerprint.to_le_bytes());
        out.extend_from_slice(&self.entries.to_le_bytes());
        out.extend_from_slice(&(self.chunks.len() as u32).to_le_bytes());
        for c in &self.chunks {
            out.extend_from_slice(&c.offset.to_le_bytes());
            out.extend_from_slice(&c.len.to_le_bytes());
            out.extend_from_slice(&c.count.to_le_bytes());
            out.extend_from_slice(&c.crc.to_le_bytes());
        }
        let crc = crc32c(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    pub(crate) fn decode(bytes: &[u8]) -> Result<Manifest, OakError> {
        let bad = OakError::Corrupted(CorruptionKind::BadManifest);
        if bytes.len() < MAN_FIXED_LEN + MAN_CRC_LEN || bytes[..8] != MAN_MAGIC {
            return Err(bad);
        }
        let body_len = bytes.len() - MAN_CRC_LEN;
        let stored = u32::from_le_bytes(bytes[body_len..].try_into().unwrap());
        if crc32c(&bytes[..body_len]) != stored {
            return Err(bad);
        }
        let generation = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
        let fingerprint = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
        let entries = u64::from_le_bytes(bytes[24..32].try_into().unwrap());
        let chunk_count = u32::from_le_bytes(bytes[32..36].try_into().unwrap()) as usize;
        if body_len != MAN_FIXED_LEN + chunk_count * CHUNK_ENTRY_LEN {
            return Err(bad);
        }
        let mut chunks = Vec::with_capacity(chunk_count);
        let mut at = 36;
        let mut sum = 0u64;
        for _ in 0..chunk_count {
            let offset = u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
            let len = u32::from_le_bytes(bytes[at + 8..at + 12].try_into().unwrap());
            let count = u32::from_le_bytes(bytes[at + 12..at + 16].try_into().unwrap());
            let crc = u32::from_le_bytes(bytes[at + 16..at + 20].try_into().unwrap());
            sum += count as u64;
            chunks.push(ChunkDesc {
                offset,
                len,
                count,
                crc,
            });
            at += CHUNK_ENTRY_LEN;
        }
        if sum != entries {
            return Err(bad);
        }
        Ok(Manifest {
            generation,
            fingerprint,
            entries,
            chunks,
        })
    }
}

/// Writes `bytes` to `dir/name` via temporary + fsync + atomic rename.
fn write_atomically(dir: &Path, name: &str, bytes: &[u8]) -> io::Result<()> {
    let tmp = dir.join(format!("{name}.tmp"));
    let target = dir.join(name);
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, &target)?;
    sync_dir(dir);
    Ok(())
}

/// Best-effort directory fsync: makes the rename itself durable. On Linux
/// a directory opens read-only as a `File` and `sync_all` fsyncs it;
/// elsewhere (or on filesystems refusing it) the failure is ignored — the
/// rename is still atomic, just not yet guaranteed on stable storage.
fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

/// Publishes the manifest for its generation: `MANIFEST-<gen>` appears
/// atomically, fully written or not at all.
pub(crate) fn publish_manifest(dir: &Path, manifest: &Manifest) -> io::Result<()> {
    // Injected failure / crash instant between data fsync and manifest
    // publication: the previous generation must stay recoverable.
    oak_failpoints::fail_point!(
        "durable/manifest-write",
        Err(io::Error::other("injected manifest write failure"))
    );
    write_atomically(dir, &manifest_name(manifest.generation), &manifest.encode())
}

/// Swings `CURRENT` to the given generation's manifest.
pub(crate) fn swap_current(dir: &Path, generation: u64) -> io::Result<()> {
    // Injected failure / crash instant between manifest publication and
    // the pointer swap: recovery must still resolve the *old* CURRENT.
    oak_failpoints::fail_point!(
        "durable/current-swap",
        Err(io::Error::other("injected CURRENT swap failure"))
    );
    let line = format!("{}\n", manifest_name(generation));
    write_atomically(dir, "CURRENT", line.as_bytes())
}

/// Resolves `CURRENT` to a decoded manifest. `Ok(None)` when no `CURRENT`
/// exists at all (a fresh directory — never checkpointed); typed
/// corruption errors when it exists but cannot be honoured.
pub(crate) fn read_current(dir: &Path) -> Result<Option<Manifest>, OakError> {
    let current = dir.join("CURRENT");
    let name = match fs::read_to_string(&current) {
        Ok(s) => s.trim().to_string(),
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(_) => return Err(OakError::Corrupted(CorruptionKind::MissingManifest)),
    };
    if name.is_empty() || name.contains(['/', '\\']) {
        return Err(OakError::Corrupted(CorruptionKind::MissingManifest));
    }
    let bytes = fs::read(dir.join(&name))
        .map_err(|_| OakError::Corrupted(CorruptionKind::MissingManifest))?;
    let manifest = Manifest::decode(&bytes)?;
    if manifest_name(manifest.generation) != name {
        return Err(OakError::Corrupted(CorruptionKind::BadManifest));
    }
    Ok(Some(manifest))
}

/// Deletes manifests and segments of generations older than `keep_from`.
/// Crash-safe: `CURRENT` already points past everything removed, and a
/// partial sweep just leaves some stale files for the next sweep.
pub(crate) fn prune_older(dir: &Path, keep_from: u64) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let gen_of = |s: &str| s.parse::<u64>().ok();
        let stale = name
            .strip_prefix("MANIFEST-")
            .and_then(gen_of)
            .or_else(|| {
                name.strip_prefix("segment-")
                    .and_then(|s| s.strip_suffix(".oakseg"))
                    .and_then(gen_of)
            })
            .is_some_and(|g| g < keep_from);
        if stale || name.ends_with(".tmp") {
            let _ = fs::remove_file(entry.path());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            generation: 7,
            fingerprint: 0xDEAD_BEEF_0BAD_F00D,
            entries: 300,
            chunks: vec![
                ChunkDesc {
                    offset: 16,
                    len: 4096,
                    count: 100,
                    crc: 0x1234_5678,
                },
                ChunkDesc {
                    offset: 4128,
                    len: 8192,
                    count: 200,
                    crc: 0x9ABC_DEF0,
                },
            ],
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let m = sample();
        assert_eq!(Manifest::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn any_single_byte_corruption_is_detected() {
        let m = sample();
        let good = m.encode();
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x5A;
            assert!(
                Manifest::decode(&bad).is_err(),
                "byte {i} corruption slipped through"
            );
        }
        // Truncations too.
        for cut in 1..good.len() {
            assert!(Manifest::decode(&good[..cut]).is_err());
        }
    }

    #[test]
    fn current_swap_and_prune() {
        let dir = std::env::temp_dir().join(format!("oak-man-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(read_current(&dir).unwrap(), None);

        let mut m = sample();
        m.generation = 1;
        publish_manifest(&dir, &m).unwrap();
        swap_current(&dir, 1).unwrap();
        assert_eq!(read_current(&dir).unwrap().unwrap().generation, 1);

        m.generation = 2;
        publish_manifest(&dir, &m).unwrap();
        swap_current(&dir, 2).unwrap();
        assert_eq!(read_current(&dir).unwrap().unwrap().generation, 2);

        prune_older(&dir, 2);
        assert!(!dir.join("MANIFEST-000001").exists());
        assert!(dir.join("MANIFEST-000002").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dangling_current_is_missing_manifest() {
        let dir = std::env::temp_dir().join(format!("oak-man-dangle-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("CURRENT"), "MANIFEST-000099\n").unwrap();
        assert_eq!(
            read_current(&dir).unwrap_err(),
            OakError::Corrupted(CorruptionKind::MissingManifest)
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
