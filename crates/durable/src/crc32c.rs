//! Software CRC32C (Castagnoli).
//!
//! The durable image format checksums every segment chunk and the manifest
//! with CRC32C — the same polynomial storage systems (ext4, iSCSI,
//! LevelDB/RocksDB) use for torn-write detection, chosen for its strictly
//! better burst-error detection than CRC32 (IEEE). This is a table-driven
//! software implementation: no SSE4.2 intrinsics, so it runs identically
//! under Miri and on any target, and the table is built in a `const fn` so
//! there is no runtime initialisation to race on.

/// Reflected Castagnoli polynomial.
const POLY: u32 = 0x82F6_3B78;

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut j = 0;
        while j < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            j += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// CRC32C of `bytes` (seeded with zero).
#[inline]
pub fn crc32c(bytes: &[u8]) -> u32 {
    crc32c_append(0, bytes)
}

/// Extends a running CRC32C with more bytes: `crc32c_append(crc32c(a), b)
/// == crc32c(concat(a, b))`. Lets the segment writer checksum a chunk's
/// records as they stream through without buffering twice.
#[inline]
pub fn crc32c_append(seed: u32, bytes: &[u8]) -> u32 {
    let mut crc = !seed;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_vectors() {
        // RFC 3720 appendix B.4 test vectors.
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
        assert_eq!(crc32c(b""), 0);
    }

    #[test]
    fn append_composes() {
        let whole = crc32c(b"hello, durable world");
        let split = crc32c_append(crc32c(b"hello, dur"), b"able world");
        assert_eq!(whole, split);
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let mut buf = *b"oak segment chunk payload bytes!";
        let before = crc32c(&buf);
        for byte in 0..buf.len() {
            for bit in 0..8 {
                buf[byte] ^= 1 << bit;
                assert_ne!(crc32c(&buf), before, "flip at {byte}:{bit} undetected");
                buf[byte] ^= 1 << bit;
            }
        }
    }
}
