//! Segment files: the bulk key/value payload of a checkpoint image.
//!
//! One segment file per checkpoint generation
//! (`segment-<gen>.oakseg`) holds the map's entries in comparator order,
//! framed into *chunks* of a few hundred entries each. Every chunk carries
//! its own CRC32C so recovery localises corruption to one chunk instead of
//! distrusting the whole image, and the manifest independently records
//! each chunk's `{offset, len, count, crc}` — a chunk is only believed if
//! the bytes on disk agree with *both* the chunk's self-describing header
//! and the manifest that was atomically published after the data was
//! fsynced.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! file   := header chunk*
//! header := magic="OAKSEG1\0" (8) generation:u64
//! chunk  := cmagic:u32 ("OKCH") count:u32 payload_len:u32 crc32c:u32 payload
//! payload:= record*            // `count` records, `payload_len` bytes
//! record := key_len:u32 val_len:u32 key val
//! ```

use std::fs::File;
use std::io::{self, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

use oak_core::{CorruptionKind, OakError, RecoveryFailure};

use crate::crc32c::crc32c;

/// Segment file header magic.
pub(crate) const SEG_MAGIC: [u8; 8] = *b"OAKSEG1\0";
/// Per-chunk header magic ("OKCH", little-endian).
pub(crate) const CHUNK_MAGIC: u32 = u32::from_le_bytes(*b"OKCH");
/// Segment header length in bytes.
pub(crate) const SEG_HEADER_LEN: u64 = 16;
/// Chunk header length in bytes.
pub(crate) const CHUNK_HEADER_LEN: usize = 16;

/// Target payload bytes per chunk. Chunks close at the first record
/// boundary past this, so a chunk holds at most one record *more* than
/// fits — oversized single records still get a chunk of their own.
pub(crate) const CHUNK_TARGET_BYTES: usize = 64 << 10;
/// Hard cap on records per chunk (keeps recovery allocations bounded even
/// for tiny-record workloads).
pub(crate) const CHUNK_TARGET_RECORDS: u32 = 1024;

/// Location and checksum of one chunk, as recorded in the manifest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkDesc {
    /// Byte offset of the chunk header within the segment file.
    pub offset: u64,
    /// Payload length in bytes (excluding the 16-byte chunk header).
    pub len: u32,
    /// Number of records in the payload.
    pub count: u32,
    /// CRC32C of the payload bytes.
    pub crc: u32,
}

/// Streaming segment writer: `push` records in comparator order, then
/// `finish` to flush, fsync, and collect the chunk table for the manifest.
pub(crate) struct SegmentWriter {
    out: BufWriter<File>,
    offset: u64,
    payload: Vec<u8>,
    count: u32,
    chunks: Vec<ChunkDesc>,
}

impl SegmentWriter {
    pub(crate) fn create(path: &Path, generation: u64) -> io::Result<Self> {
        let file = File::create(path)?;
        let mut out = BufWriter::new(file);
        out.write_all(&SEG_MAGIC)?;
        out.write_all(&generation.to_le_bytes())?;
        Ok(SegmentWriter {
            out,
            offset: SEG_HEADER_LEN,
            payload: Vec::with_capacity(CHUNK_TARGET_BYTES + 256),
            count: 0,
            chunks: Vec::new(),
        })
    }

    /// Appends one record; closes the current chunk when it reaches its
    /// target size.
    pub(crate) fn push(&mut self, key: &[u8], value: &[u8]) -> io::Result<()> {
        self.payload
            .extend_from_slice(&(key.len() as u32).to_le_bytes());
        self.payload
            .extend_from_slice(&(value.len() as u32).to_le_bytes());
        self.payload.extend_from_slice(key);
        self.payload.extend_from_slice(value);
        self.count += 1;
        if self.payload.len() >= CHUNK_TARGET_BYTES || self.count >= CHUNK_TARGET_RECORDS {
            self.flush_chunk()?;
        }
        Ok(())
    }

    fn flush_chunk(&mut self) -> io::Result<()> {
        if self.count == 0 {
            return Ok(());
        }
        // Injected write failure / crash instant: the chunk about to hit
        // the disk is the crash harness's favourite kill point.
        oak_failpoints::fail_point!(
            "durable/seg-write",
            Err(io::Error::other("injected segment write failure"))
        );
        let crc = crc32c(&self.payload);
        let desc = ChunkDesc {
            offset: self.offset,
            len: self.payload.len() as u32,
            count: self.count,
            crc,
        };
        self.out.write_all(&CHUNK_MAGIC.to_le_bytes())?;
        self.out.write_all(&desc.count.to_le_bytes())?;
        self.out.write_all(&desc.len.to_le_bytes())?;
        self.out.write_all(&desc.crc.to_le_bytes())?;
        self.out.write_all(&self.payload)?;
        self.offset += (CHUNK_HEADER_LEN + self.payload.len()) as u64;
        self.chunks.push(desc);
        self.payload.clear();
        self.count = 0;
        Ok(())
    }

    /// Flushes the trailing partial chunk, fsyncs the file, and returns
    /// the chunk table plus total bytes written.
    pub(crate) fn finish(mut self) -> io::Result<(Vec<ChunkDesc>, u64)> {
        self.flush_chunk()?;
        self.out.flush()?;
        // The manifest must only ever point at bytes that are durable:
        // fsync the data before the caller publishes any reference to it.
        self.out.get_ref().sync_all()?;
        Ok((self.chunks, self.offset))
    }
}

/// Read-side view of a segment file, validating chunks against manifest
/// descriptors.
pub(crate) struct SegmentReader {
    file: File,
}

fn io_to_oak(e: &io::Error) -> OakError {
    if e.kind() == io::ErrorKind::UnexpectedEof {
        OakError::Corrupted(CorruptionKind::TruncatedChunk)
    } else {
        OakError::RecoveryFailed(RecoveryFailure::Io)
    }
}

impl SegmentReader {
    /// Opens the segment and validates its header against the manifest's
    /// generation.
    pub(crate) fn open(path: &Path, generation: u64) -> Result<Self, OakError> {
        let mut file =
            File::open(path).map_err(|_| OakError::Corrupted(CorruptionKind::MissingManifest))?;
        let mut header = [0u8; SEG_HEADER_LEN as usize];
        file.read_exact(&mut header).map_err(|e| io_to_oak(&e))?;
        if header[..8] != SEG_MAGIC {
            return Err(OakError::Corrupted(CorruptionKind::TruncatedChunk));
        }
        let gen_on_disk = u64::from_le_bytes(header[8..16].try_into().unwrap());
        if gen_on_disk != generation {
            return Err(OakError::Corrupted(CorruptionKind::BadManifest));
        }
        Ok(SegmentReader { file })
    }

    /// Reads and fully validates one chunk: header fields must match the
    /// manifest descriptor, and the payload must match the recorded
    /// CRC32C. Returns the raw payload bytes.
    pub(crate) fn read_chunk(&mut self, desc: &ChunkDesc) -> Result<Vec<u8>, OakError> {
        self.file
            .seek(SeekFrom::Start(desc.offset))
            .map_err(|e| io_to_oak(&e))?;
        let mut header = [0u8; CHUNK_HEADER_LEN];
        self.file
            .read_exact(&mut header)
            .map_err(|e| io_to_oak(&e))?;
        let magic = u32::from_le_bytes(header[0..4].try_into().unwrap());
        let count = u32::from_le_bytes(header[4..8].try_into().unwrap());
        let len = u32::from_le_bytes(header[8..12].try_into().unwrap());
        let crc = u32::from_le_bytes(header[12..16].try_into().unwrap());
        if magic != CHUNK_MAGIC || count != desc.count || len != desc.len {
            return Err(OakError::Corrupted(CorruptionKind::TruncatedChunk));
        }
        if crc != desc.crc {
            return Err(OakError::Corrupted(CorruptionKind::ChunkChecksum));
        }
        let mut payload = vec![0u8; desc.len as usize];
        self.file
            .read_exact(&mut payload)
            .map_err(|e| io_to_oak(&e))?;
        if crc32c(&payload) != desc.crc {
            return Err(OakError::Corrupted(CorruptionKind::ChunkChecksum));
        }
        Ok(payload)
    }
}

/// Iterates `(key, value)` record slices out of a validated chunk payload.
/// Structural errors (lengths running past the payload, record count
/// disagreeing) surface as [`CorruptionKind::TruncatedChunk`].
pub(crate) fn parse_records(
    payload: &[u8],
    count: u32,
    mut f: impl FnMut(&[u8], &[u8]) -> Result<(), OakError>,
) -> Result<(), OakError> {
    let mut at = 0usize;
    let truncated = OakError::Corrupted(CorruptionKind::TruncatedChunk);
    for _ in 0..count {
        if at + 8 > payload.len() {
            return Err(truncated);
        }
        let key_len = u32::from_le_bytes(payload[at..at + 4].try_into().unwrap()) as usize;
        let val_len = u32::from_le_bytes(payload[at + 4..at + 8].try_into().unwrap()) as usize;
        at += 8;
        let end = at
            .checked_add(key_len)
            .and_then(|k| k.checked_add(val_len))
            .ok_or(truncated)?;
        if end > payload.len() {
            return Err(truncated);
        }
        f(&payload[at..at + key_len], &payload[at + key_len..end])?;
        at = end;
    }
    if at != payload.len() {
        return Err(truncated);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("oak-seg-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn roundtrip_and_crc_rejection() {
        let dir = tmp_dir("rt");
        let path = dir.join("segment-000001.oakseg");
        let mut w = SegmentWriter::create(&path, 1).unwrap();
        for i in 0u32..100 {
            w.push(&i.to_be_bytes(), format!("value-{i}").as_bytes())
                .unwrap();
        }
        let (chunks, bytes) = w.finish().unwrap();
        assert_eq!(chunks.iter().map(|c| c.count as u64).sum::<u64>(), 100);
        assert_eq!(bytes, std::fs::metadata(&path).unwrap().len());

        let mut r = SegmentReader::open(&path, 1).unwrap();
        let mut got = 0u32;
        for c in &chunks {
            let payload = r.read_chunk(c).unwrap();
            parse_records(&payload, c.count, |k, v| {
                assert_eq!(
                    v,
                    format!("value-{}", u32::from_be_bytes(k.try_into().unwrap())).as_bytes()
                );
                got += 1;
                Ok(())
            })
            .unwrap();
        }
        assert_eq!(got, 100);

        // Flip one payload byte: the chunk containing it must now fail
        // its checksum; others stay valid.
        let mut raw = std::fs::read(&path).unwrap();
        let victim = chunks[0];
        raw[victim.offset as usize + CHUNK_HEADER_LEN + 3] ^= 0x40;
        std::fs::write(&path, &raw).unwrap();
        let mut r = SegmentReader::open(&path, 1).unwrap();
        assert_eq!(
            r.read_chunk(&victim).unwrap_err(),
            OakError::Corrupted(CorruptionKind::ChunkChecksum)
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncation_is_detected() {
        let dir = tmp_dir("trunc");
        let path = dir.join("segment-000002.oakseg");
        let mut w = SegmentWriter::create(&path, 2).unwrap();
        for i in 0u32..50 {
            w.push(&i.to_le_bytes(), &[0xAB; 100]).unwrap();
        }
        let (chunks, bytes) = w.finish().unwrap();
        // Chop the tail: the last chunk must fail as truncated.
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(bytes - 37).unwrap();
        drop(f);
        let mut r = SegmentReader::open(&path, 2).unwrap();
        let last = chunks.last().unwrap();
        assert_eq!(
            r.read_chunk(last).unwrap_err(),
            OakError::Corrupted(CorruptionKind::TruncatedChunk)
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_rejects_overflowing_lengths() {
        // A record claiming more bytes than the payload holds.
        let mut payload = Vec::new();
        payload.extend_from_slice(&1000u32.to_le_bytes());
        payload.extend_from_slice(&1000u32.to_le_bytes());
        payload.extend_from_slice(b"short");
        let err = parse_records(&payload, 1, |_, _| Ok(())).unwrap_err();
        assert_eq!(err, OakError::Corrupted(CorruptionKind::TruncatedChunk));
    }
}
