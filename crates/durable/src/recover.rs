//! Recovery: rebuilding a live map from a checkpoint image.
//!
//! [`open`] resolves `CURRENT` → manifest → segment, validating every
//! layer (manifest CRC, generation cross-check, per-chunk CRC32C and
//! structural parse, cross-chunk key ordering) before and while replaying
//! the records into a fresh map through the normal `put` path. Replaying
//! through `put` — rather than grafting chunk structures — means every
//! invariant the live map maintains is re-established from scratch: the
//! chunk index and prefix cache are rebuilt as a side effect, and the
//! off-heap allocation ledger balances (`live + free == capacity`) because
//! every byte was allocated through the audited allocator. With the
//! `audit` feature the balance is *checked*, not assumed, before the map
//! is handed back.
//!
//! Validation failures surface as
//! [`OakError::Corrupted`] (the bytes cannot be trusted) and rebuild
//! failures as [`OakError::RecoveryFailed`] (the bytes were fine but a
//! consistent map could not be produced); both leave no partially built
//! map behind.

use std::cmp::Ordering;
use std::path::Path;

use oak_core::{
    CorruptionKind, KeyComparator, Lexicographic, OakError, OakMap, OakMapConfig, RecoveryFailure,
};

use crate::manifest::{read_current, segment_name, Manifest};
use crate::segment::{parse_records, SegmentReader};

/// Opens the checkpoint image in `dir` as a fresh lexicographic map.
///
/// Fails with [`CorruptionKind::MissingManifest`](oak_core::CorruptionKind)
/// when the directory has never completed a checkpoint — use
/// [`open_or_empty`] for open-or-create semantics.
pub fn open(dir: &Path, config: OakMapConfig) -> Result<OakMap<Lexicographic>, OakError> {
    open_with_comparator(dir, config, Lexicographic)
}

/// Like [`open`], but a directory with no completed checkpoint yields an
/// empty map instead of an error — the natural first-boot semantics for
/// the crash-recovery cycle (a crash before the first `CURRENT` swap is a
/// legitimate "nothing was ever acknowledged" state).
pub fn open_or_empty(dir: &Path, config: OakMapConfig) -> Result<OakMap<Lexicographic>, OakError> {
    match read_current(dir)? {
        None => Ok(OakMap::with_comparator(config, Lexicographic)),
        Some(manifest) => rebuild(dir, config, Lexicographic, manifest),
    }
}

/// Opens the checkpoint image in `dir` under a custom key comparator. The
/// comparator must order keys identically to the one that wrote the image
/// (recovery verifies the streamed keys are strictly ascending under `cmp`
/// and fails otherwise).
pub fn open_with_comparator<C: KeyComparator>(
    dir: &Path,
    config: OakMapConfig,
    cmp: C,
) -> Result<OakMap<C>, OakError> {
    match read_current(dir)? {
        None => Err(OakError::Corrupted(CorruptionKind::MissingManifest)),
        Some(manifest) => rebuild(dir, config, cmp, manifest),
    }
}

fn rebuild<C: KeyComparator>(
    dir: &Path,
    config: OakMapConfig,
    cmp: C,
    manifest: Manifest,
) -> Result<OakMap<C>, OakError> {
    if manifest.fingerprint != config.fingerprint() {
        return Err(OakError::Corrupted(CorruptionKind::ConfigMismatch));
    }
    let map = OakMap::with_comparator(config, cmp.clone());
    let seg_path = dir.join(segment_name(manifest.generation));
    let mut reader = SegmentReader::open(&seg_path, manifest.generation)?;
    let mut prev_key: Option<Vec<u8>> = None;
    for desc in &manifest.chunks {
        let payload = reader.read_chunk(desc)?;
        parse_records(&payload, desc.count, |k, v| {
            // Checkpoints stream in comparator order; a non-ascending key
            // means the image and manifest disagree about record framing
            // (or the comparator differs from the writer's) — either way
            // the rebuilt map would silently drop entries.
            if let Some(prev) = &prev_key {
                if cmp.compare(prev, k) != Ordering::Less {
                    return Err(OakError::RecoveryFailed(RecoveryFailure::Verification));
                }
            }
            prev_key = Some(k.to_vec());
            map.put(k, v)
                .map_err(|_| OakError::RecoveryFailed(RecoveryFailure::Reinsert))
        })?;
    }
    if map.len() as u64 != manifest.entries {
        return Err(OakError::RecoveryFailed(RecoveryFailure::Verification));
    }
    #[cfg(feature = "audit")]
    {
        // The ledger must balance *now*, before anyone trusts the map:
        // live + free == capacity, and nothing allocated during replay
        // may have leaked.
        let report = map.audit();
        if !report.pool.balanced || report.leaked_bytes != 0 {
            return Err(OakError::RecoveryFailed(RecoveryFailure::Verification));
        }
    }
    Ok(map)
}
