//! Checkpointing: streaming a consistent map image to disk.
//!
//! [`checkpoint`] drives the map's zero-copy stream scan
//! ([`OakMap::for_each_in`]) straight into a [`SegmentWriter`] — no
//! intermediate on-heap copy of the data set. The scan pipeline's validity
//! contract (§1.1: every key present and unmodified for the scan's
//! duration is observed; concurrent updates are observed at most once)
//! makes the image a *consistent snapshot-ish cut*: it may interleave with
//! concurrent writers, but every record it contains was the committed
//! value of its key at some instant during the scan, in comparator order.
//!
//! Durability ordering: segment data is fsynced before the manifest names
//! it, the manifest is fsynced before `CURRENT` names *it*, and both
//! pointer installs are atomic renames. A crash at any instant therefore
//! leaves `CURRENT` resolving to a complete, checksummed image — the new
//! one if the swap happened, otherwise the previous one.

use std::io;
use std::path::Path;

use oak_core::{KeyComparator, OakMap};

use crate::manifest::{self, segment_name, Manifest};
use crate::segment::SegmentWriter;

/// What a completed [`checkpoint`] wrote.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Generation stamp of the new image; `CURRENT` now points at it.
    pub generation: u64,
    /// Records captured.
    pub entries: u64,
    /// Segment chunks written.
    pub chunks: usize,
    /// Segment file size in bytes.
    pub bytes: u64,
}

/// Smallest generation strictly greater than anything on disk — stale
/// artifacts from crashed checkpoints included, so a retry never
/// overwrites files an old manifest might still reference.
fn next_generation(dir: &Path) -> u64 {
    let mut max = 0u64;
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let gen_of = |s: &str| s.parse::<u64>().ok();
            let g = name.strip_prefix("MANIFEST-").and_then(gen_of).or_else(|| {
                name.strip_prefix("segment-")
                    .and_then(|s| s.strip_suffix(".oakseg"))
                    .and_then(gen_of)
            });
            if let Some(g) = g {
                max = max.max(g);
            }
        }
    }
    max + 1
}

/// Checkpoints `map` into `dir`, returning only after the image is fully
/// durable (data fsynced, manifest published, `CURRENT` swapped).
///
/// Safe to call while readers and writers run: the image is a consistent
/// cut per the scan-validity contract, not a stop-the-world snapshot. On
/// any error the directory still resolves to the previous checkpoint;
/// partial files of the failed attempt are removed best-effort and are
/// ignored by recovery regardless.
///
/// Older generations are pruned after a successful swap, keeping exactly
/// the new image on disk.
pub fn checkpoint<C: KeyComparator>(map: &OakMap<C>, dir: &Path) -> io::Result<CheckpointStats> {
    std::fs::create_dir_all(dir)?;
    let generation = next_generation(dir);
    let seg_path = dir.join(segment_name(generation));

    let result = (|| {
        let mut writer = SegmentWriter::create(&seg_path, generation)?;
        let mut write_err: Option<io::Error> = None;
        let mut entries = 0u64;
        map.for_each_in(None, None, |k, v| match writer.push(k, v) {
            Ok(()) => {
                entries += 1;
                true
            }
            Err(e) => {
                write_err = Some(e);
                false
            }
        });
        if let Some(e) = write_err {
            return Err(e);
        }
        let (chunks, bytes) = writer.finish()?;
        let manifest = Manifest {
            generation,
            fingerprint: map.config().fingerprint(),
            entries,
            chunks,
        };
        manifest::publish_manifest(dir, &manifest)?;
        manifest::swap_current(dir, generation)?;
        Ok(CheckpointStats {
            generation,
            entries,
            chunks: manifest.chunks.len(),
            bytes,
        })
    })();

    match result {
        Ok(stats) => {
            manifest::prune_older(dir, stats.generation);
            Ok(stats)
        }
        Err(e) => {
            // The failed attempt's files are unreferenced; drop what we can.
            let _ = std::fs::remove_file(&seg_path);
            let _ = std::fs::remove_file(dir.join(manifest::manifest_name(generation)));
            Err(e)
        }
    }
}
