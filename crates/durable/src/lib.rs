//! # oak-durable — crash-durable checkpoint/recovery for Oak maps
//!
//! Oak's off-heap arenas make the map's footprint exactly accountable;
//! this crate makes it *survivable*. A [`checkpoint`] streams a consistent
//! image of a live [`OakMap`](oak_core::OakMap) through the zero-copy scan
//! pipeline into an on-disk image — a CRC32C-framed segment file plus a
//! generation-stamped manifest, published with LevelDB-style two-phase
//! atomicity (manifest rename, then `CURRENT` rename) so a torn write at
//! any instant is detectable and never destroys the previous image. An
//! [`open`] walks the image back, validating every checksum and structural
//! invariant, and rebuilds the map through its normal insertion path so
//! the chunk index, prefix cache, and allocation ledger come back exactly
//! as a freshly built map would have them.
//!
//! The failure contract is typed: bytes that cannot be trusted surface as
//! [`OakError::Corrupted`](oak_core::OakError) (with a
//! [`CorruptionKind`](oak_core::CorruptionKind) payload localising the
//! damage) and a structurally valid image that cannot be rebuilt surfaces
//! as [`OakError::RecoveryFailed`](oak_core::OakError). Pair this with
//! [`oak_mempool::ArenaBacking::File`] to keep the *live* arenas in
//! file-backed mappings as well — checkpoints are then a consistent-cut
//! export while the backing files are the larger-than-RAM working set.
//!
//! ```
//! use oak_core::{OakMap, OakMapConfig};
//!
//! let dir = std::env::temp_dir().join(format!("oak-doc-{}", std::process::id()));
//! let map = OakMap::with_config(OakMapConfig::small());
//! map.put(b"k", b"v").unwrap();
//!
//! let stats = oak_durable::checkpoint(&map, &dir).unwrap();
//! assert_eq!(stats.entries, 1);
//!
//! let recovered = oak_durable::open(&dir, OakMapConfig::small()).unwrap();
//! assert_eq!(recovered.get(b"k").unwrap().to_vec().unwrap(), b"v");
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

#![warn(missing_docs)]

mod checkpoint;
pub mod crc32c;
mod manifest;
mod recover;
mod segment;

pub use checkpoint::{checkpoint, CheckpointStats};
pub use manifest::Manifest;
pub use recover::{open, open_or_empty, open_with_comparator};
pub use segment::ChunkDesc;

/// Canonical failpoint sites declared by this crate. All three are
/// *errorable* and double as crash instants for the crash-injection
/// harness: killing a writer at any of them must leave the directory
/// resolving to the previous complete image.
pub const FAILPOINT_SITES: &[oak_failpoints::SiteSpec] = &[
    oak_failpoints::SiteSpec::errorable("durable/seg-write"),
    oak_failpoints::SiteSpec::errorable("durable/manifest-write"),
    oak_failpoints::SiteSpec::errorable("durable/current-swap"),
];
