//! Checkpoint/recovery integration tests: roundtrips, torn-write
//! atomicity under injected faults, corruption detection, and the
//! post-open audit gate.

use std::path::PathBuf;

use oak_core::{CorruptionKind, OakError, OakMap, OakMapConfig};
use oak_durable::{checkpoint, open, open_or_empty};
use oak_failpoints::{configure, scenario, Action, FirePolicy};

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "oak-durab-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&d).ok();
    d
}

fn filled(n: u32) -> OakMap {
    let map = OakMap::with_config(OakMapConfig::small());
    for i in 0..n {
        map.put(
            format!("key-{i:06}").as_bytes(),
            format!("value-{i}-{}", "x".repeat((i % 80) as usize)).as_bytes(),
        )
        .unwrap();
    }
    map
}

#[test]
fn checkpoint_open_roundtrip() {
    let dir = tmp_dir("roundtrip");
    let map = filled(3000);
    map.remove(b"key-000100");
    map.remove(b"key-002999");
    let stats = checkpoint(&map, &dir).unwrap();
    assert_eq!(stats.entries, 2998);
    assert!(stats.chunks > 1, "want a multi-chunk image: {stats:?}");

    let recovered = open(&dir, OakMapConfig::small()).unwrap();
    assert_eq!(recovered.len(), 2998);
    assert!(recovered.get(b"key-000100").is_none());
    for i in (0..3000).step_by(97) {
        let key = format!("key-{i:06}");
        match recovered.get(key.as_bytes()) {
            Some(v) => assert!(v
                .to_vec()
                .unwrap()
                .starts_with(format!("value-{i}-").as_bytes())),
            None => assert!(i == 100 || i == 2999, "lost {key}"),
        }
    }
    // Structural invariants all hold on the rebuilt map.
    recovered.validate();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn second_checkpoint_supersedes_and_prunes() {
    let dir = tmp_dir("supersede");
    let map = filled(500);
    let s1 = checkpoint(&map, &dir).unwrap();
    map.put(b"zzz-new", b"after-first").unwrap();
    let s2 = checkpoint(&map, &dir).unwrap();
    assert!(s2.generation > s1.generation);
    // Old generation is gone; the image opens at the new one.
    assert!(!dir
        .join(format!("segment-{:06}.oakseg", s1.generation))
        .exists());
    let recovered = open(&dir, OakMapConfig::small()).unwrap();
    assert_eq!(recovered.len(), 501);
    assert_eq!(
        recovered.get(b"zzz-new").unwrap().to_vec().unwrap(),
        b"after-first"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn open_or_empty_on_fresh_dir() {
    let dir = tmp_dir("fresh");
    std::fs::create_dir_all(&dir).unwrap();
    let map = open_or_empty(&dir, OakMapConfig::small()).unwrap();
    assert!(map.is_empty());
    // Strict open refuses.
    assert_eq!(
        open(&dir, OakMapConfig::small()).unwrap_err(),
        OakError::Corrupted(CorruptionKind::MissingManifest)
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn config_fingerprint_mismatch_is_refused() {
    let dir = tmp_dir("fingerprint");
    checkpoint(&filled(50), &dir).unwrap();
    let other = OakMapConfig::small().chunk_capacity(128);
    assert_eq!(
        open(&dir, other).unwrap_err(),
        OakError::Corrupted(CorruptionKind::ConfigMismatch)
    );
    // Resource-tuning knobs deliberately don't participate.
    let tuned = OakMapConfig {
        pool: oak_mempool::PoolConfig {
            arena_size: 1 << 20,
            max_arenas: 32,
            ..Default::default()
        },
        ..OakMapConfig::small()
    };
    assert!(open(&dir, tuned).is_ok());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn flipped_segment_byte_is_caught() {
    let dir = tmp_dir("bitrot");
    checkpoint(&filled(400), &dir).unwrap();
    let seg = std::fs::read_dir(&dir)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|e| e == "oakseg"))
        .unwrap();
    let mut bytes = std::fs::read(&seg).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&seg, &bytes).unwrap();
    match open(&dir, OakMapConfig::small()) {
        Err(OakError::Corrupted(
            CorruptionKind::ChunkChecksum | CorruptionKind::TruncatedChunk,
        )) => {}
        other => panic!("corruption not surfaced: {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_segment_is_caught() {
    let dir = tmp_dir("truncate");
    checkpoint(&filled(400), &dir).unwrap();
    let seg = std::fs::read_dir(&dir)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|e| e == "oakseg"))
        .unwrap();
    let len = std::fs::metadata(&seg).unwrap().len();
    let f = std::fs::OpenOptions::new().write(true).open(&seg).unwrap();
    f.set_len(len / 2).unwrap();
    drop(f);
    match open(&dir, OakMapConfig::small()) {
        Err(OakError::Corrupted(_)) => {}
        other => panic!("truncation not surfaced: {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn scribbled_manifest_is_caught() {
    let dir = tmp_dir("badman");
    checkpoint(&filled(64), &dir).unwrap();
    let name = std::fs::read_to_string(dir.join("CURRENT")).unwrap();
    let path = dir.join(name.trim());
    let mut bytes = std::fs::read(&path).unwrap();
    let at = bytes.len() - 9; // inside the chunk table, before the CRC
    bytes[at] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();
    assert_eq!(
        open(&dir, OakMapConfig::small()).unwrap_err(),
        OakError::Corrupted(CorruptionKind::BadManifest)
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// A failed checkpoint (injected fault at any of the three durable sites)
/// must leave the directory resolving to the previous complete image.
#[test]
fn failed_checkpoint_preserves_previous_image() {
    let dir = tmp_dir("atomic");
    let map = filled(1200);
    let s1 = checkpoint(&map, &dir).unwrap();
    map.put(b"zzz-only-in-gen2", b"?").unwrap();

    for site in [
        "durable/seg-write",
        "durable/manifest-write",
        "durable/current-swap",
    ] {
        let _s = scenario();
        configure(site, Action::ReturnErr, FirePolicy::Times(1));
        let err = checkpoint(&map, &dir).expect_err(site);
        assert_eq!(err.kind(), std::io::ErrorKind::Other, "{site}");
        drop(_s);
        let recovered = open(&dir, OakMapConfig::small()).unwrap();
        assert_eq!(recovered.len() as u64, s1.entries, "after fault at {site}");
        assert!(recovered.get(b"zzz-only-in-gen2").is_none());
    }
    // With injection cleared the retry succeeds and supersedes gen 1.
    checkpoint(&map, &dir).unwrap();
    let recovered = open(&dir, OakMapConfig::small()).unwrap();
    assert_eq!(recovered.len() as u64, s1.entries + 1);
    std::fs::remove_dir_all(&dir).ok();
}

/// Checkpoint taken while writers run: the image is a consistent cut —
/// every recovered value was committed at some point, keys are complete
/// for the untouched range, and recovery's own validation passes.
#[test]
fn checkpoint_under_concurrent_writes_recovers_consistent_cut() {
    let dir = tmp_dir("concurrent");
    let map = std::sync::Arc::new(filled(2000));
    let stop = std::sync::atomic::AtomicBool::new(false);
    let stats = std::thread::scope(|s| {
        let m = map.clone();
        let stop = &stop;
        s.spawn(move || {
            let mut i = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let k = format!("key-{:06}", (i * 37) % 2000);
                m.put(k.as_bytes(), format!("updated-{i}").as_bytes())
                    .unwrap();
                i += 1;
            }
        });
        let stats = checkpoint(&map, &dir).unwrap();
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        stats
    });
    assert_eq!(stats.entries, 2000, "no key vanished mid-scan");
    let recovered = open(&dir, OakMapConfig::small()).unwrap();
    assert_eq!(recovered.len(), 2000);
    for i in 0..2000u32 {
        let key = format!("key-{i:06}");
        let v = recovered
            .get(key.as_bytes())
            .expect("key lost")
            .to_vec()
            .unwrap();
        assert!(
            v.starts_with(format!("value-{i}-").as_bytes()) || v.starts_with(b"updated-"),
            "{key} holds neither old nor new value: {:?}",
            String::from_utf8_lossy(&v)
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The audit feature's post-open gate: the rebuilt map's ledger balances
/// (`live + free == capacity`) and nothing leaked during replay. `open`
/// checks this internally; here we assert it end-to-end as well.
#[cfg(feature = "audit")]
#[test]
fn recovered_map_ledger_balances() {
    let dir = tmp_dir("audit");
    checkpoint(&filled(1500), &dir).unwrap();
    let recovered = open(&dir, OakMapConfig::small()).unwrap();
    let report = recovered.audit();
    assert!(report.pool.balanced, "live+free != capacity: {report:?}");
    assert_eq!(report.leaked_bytes, 0);
    // And the rebuilt map keeps working.
    recovered.put(b"post-open-write", b"ok").unwrap();
    assert_eq!(recovered.len(), 1501);
    std::fs::remove_dir_all(&dir).ok();
}
