//! Crash-recovery consistency checking.
//!
//! The crash-injection harness records an *acknowledgement log* while a
//! writer process runs: before each checkpoint it appends an **intent**
//! record (the state digest it is about to persist), and after
//! [`checkpoint`](../../oak_durable/fn.checkpoint.html) returns it
//! appends an **acked** record for the same state. Both appends are
//! fsynced, so the log survives the very crash it documents.
//!
//! After the writer is killed and the image recovered, the surviving
//! state must be a *prefix-consistent* cut of that history:
//!
//! * it must byte-for-byte match **some** state the writer attempted to
//!   checkpoint (same entry count, same [`state_digest`]), and
//! * it must be **at least as new** as the last *acked* checkpoint — an
//!   acknowledged durability promise is never allowed to roll back.
//!
//! [`check_recovery`] classifies a recovered `(entries, digest)` pair
//! against the log into a [`RecoveryVerdict`].

/// Order-sensitive digest of a map state, fed entries in ascending key
/// order. Both the writer (over its shadow model) and the verifier (over
/// the recovered map's scan) compute it the same way, so equal digests
/// mean equal contents up to 64-bit collision odds.
#[derive(Debug, Clone)]
pub struct StateDigest {
    hash: u64,
    entries: u64,
}

impl Default for StateDigest {
    fn default() -> Self {
        Self::new()
    }
}

impl StateDigest {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Digest of the empty state.
    pub fn new() -> Self {
        StateDigest {
            hash: Self::FNV_OFFSET,
            entries: 0,
        }
    }

    fn mix(&mut self, bytes: &[u8]) {
        // Length-prefixed FNV-1a, so ("ab","c") never collides with
        // ("a","bc").
        for b in (bytes.len() as u64)
            .to_le_bytes()
            .iter()
            .chain(bytes.iter())
        {
            self.hash ^= u64::from(*b);
            self.hash = self.hash.wrapping_mul(Self::FNV_PRIME);
        }
    }

    /// Folds in one key/value pair. Pairs must arrive in ascending key
    /// order for digests to be comparable.
    pub fn push(&mut self, key: &[u8], value: &[u8]) {
        self.mix(key);
        self.mix(value);
        self.entries += 1;
    }

    /// Finishes the digest: `(entry count, hash)`.
    pub fn finish(&self) -> (u64, u64) {
        (self.entries, self.hash)
    }
}

/// Digest of a full state given as an iterator of `(key, value)` pairs in
/// ascending key order.
pub fn state_digest<'a>(entries: impl IntoIterator<Item = (&'a [u8], &'a [u8])>) -> (u64, u64) {
    let mut d = StateDigest::new();
    for (k, v) in entries {
        d.push(k, v);
    }
    d.finish()
}

/// One line of the acknowledgement log: a checkpoint the writer attempted
/// (`acked == false`, written before the checkpoint call) or completed
/// (`acked == true`, written after it returned).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AckRecord {
    /// Monotone attempt number assigned by the writer (its position in
    /// the checkpoint sequence, not the on-disk generation).
    pub attempt: u64,
    /// Entry count of the state being checkpointed.
    pub entries: u64,
    /// [`state_digest`] hash of the state being checkpointed.
    pub digest: u64,
    /// Whether the checkpoint call returned success before this record
    /// was written.
    pub acked: bool,
}

/// Outcome of matching a recovered state against the acknowledgement log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryVerdict {
    /// Nothing was ever acknowledged and the recovered state is empty: a
    /// crash before the first durable checkpoint legitimately yields a
    /// fresh map.
    FreshStart,
    /// The recovered state matches attempt `attempt` in the log, and that
    /// attempt is no older than the last acknowledged one.
    ConsistentWith {
        /// The matched attempt number.
        attempt: u64,
        /// Whether that attempt had been acknowledged (`false` means the
        /// crash landed between checkpoint completion and the ack
        /// append — still a valid, even fresher-than-promised image).
        acked: bool,
    },
    /// The recovered state matches an attempt *older* than one that was
    /// acknowledged: an acked durability promise rolled back. Always a
    /// failure.
    LostAcknowledged {
        /// The (stale) attempt the recovered state matches.
        recovered: u64,
        /// The newest acknowledged attempt, which recovery was required
        /// to reach.
        required: u64,
    },
    /// The recovered state matches no attempt in the log at all: the
    /// image holds contents the writer never tried to persist. Always a
    /// failure.
    Unrecognized {
        /// Recovered entry count.
        entries: u64,
        /// Recovered state digest.
        digest: u64,
    },
}

impl RecoveryVerdict {
    /// `true` for the verdicts that mean recovery honoured the crash
    /// contract.
    pub fn is_clean(&self) -> bool {
        matches!(
            self,
            RecoveryVerdict::FreshStart | RecoveryVerdict::ConsistentWith { .. }
        )
    }
}

/// Classifies a recovered `(entries, digest)` state against the writer's
/// acknowledgement log. See the module docs for the contract.
pub fn check_recovery(log: &[AckRecord], entries: u64, digest: u64) -> RecoveryVerdict {
    let last_acked = log.iter().filter(|r| r.acked).map(|r| r.attempt).max();
    // Newest matching attempt wins if the same state was checkpointed
    // more than once (e.g. an idle writer re-checkpointing).
    let matched = log
        .iter()
        .filter(|r| r.entries == entries && r.digest == digest)
        .max_by_key(|r| (r.attempt, r.acked));
    match (matched, last_acked) {
        (Some(m), Some(required)) if m.attempt < required => RecoveryVerdict::LostAcknowledged {
            recovered: m.attempt,
            required,
        },
        (Some(m), _) => RecoveryVerdict::ConsistentWith {
            attempt: m.attempt,
            acked: m.acked,
        },
        (None, None) if (entries, digest) == StateDigest::new().finish() => {
            RecoveryVerdict::FreshStart
        }
        (None, _) => RecoveryVerdict::Unrecognized { entries, digest },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(attempt: u64, entries: u64, digest: u64, acked: bool) -> AckRecord {
        AckRecord {
            attempt,
            entries,
            digest,
            acked,
        }
    }

    fn digest_of(pairs: &[(&[u8], &[u8])]) -> (u64, u64) {
        state_digest(pairs.iter().copied())
    }

    #[test]
    fn digest_distinguishes_contents() {
        let a = digest_of(&[(b"a", b"1"), (b"b", b"2")]);
        let b = digest_of(&[(b"a", b"2"), (b"b", b"1")]);
        let c = digest_of(&[(b"ab", b""), (b"b", b"2")]);
        let d = digest_of(&[(b"a", b"1")]);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        // Deterministic across invocations.
        assert_eq!(a, digest_of(&[(b"a", b"1"), (b"b", b"2")]));
    }

    #[test]
    fn incremental_matches_batch() {
        let mut d = StateDigest::new();
        d.push(b"k1", b"v1");
        d.push(b"k2", b"v2");
        assert_eq!(d.finish(), digest_of(&[(b"k1", b"v1"), (b"k2", b"v2")]));
    }

    #[test]
    fn fresh_start_only_when_truly_fresh() {
        let (e, h) = StateDigest::new().finish();
        assert_eq!(check_recovery(&[], e, h), RecoveryVerdict::FreshStart);
        // Empty recovered state but an acked checkpoint exists: that is a
        // rollback, not a fresh start.
        let log = [rec(1, 10, 0xAB, true)];
        assert_eq!(
            check_recovery(&log, e, h),
            RecoveryVerdict::Unrecognized {
                entries: e,
                digest: h
            }
        );
    }

    #[test]
    fn matches_latest_acked() {
        let log = [
            rec(1, 10, 0x11, false),
            rec(1, 10, 0x11, true),
            rec(2, 20, 0x22, false),
            rec(2, 20, 0x22, true),
        ];
        assert_eq!(
            check_recovery(&log, 20, 0x22),
            RecoveryVerdict::ConsistentWith {
                attempt: 2,
                acked: true
            }
        );
    }

    #[test]
    fn intent_only_match_is_clean() {
        // Crash landed between checkpoint completion and the ack append:
        // the image is newer than the last promise — allowed.
        let log = [
            rec(1, 10, 0x11, false),
            rec(1, 10, 0x11, true),
            rec(2, 20, 0x22, false),
        ];
        assert_eq!(
            check_recovery(&log, 20, 0x22),
            RecoveryVerdict::ConsistentWith {
                attempt: 2,
                acked: false
            }
        );
    }

    #[test]
    fn rollback_of_acked_state_is_flagged() {
        let log = [
            rec(1, 10, 0x11, false),
            rec(1, 10, 0x11, true),
            rec(2, 20, 0x22, false),
            rec(2, 20, 0x22, true),
        ];
        assert_eq!(
            check_recovery(&log, 10, 0x11),
            RecoveryVerdict::LostAcknowledged {
                recovered: 1,
                required: 2
            }
        );
        assert!(!check_recovery(&log, 10, 0x11).is_clean());
    }

    #[test]
    fn unrecognized_state_is_flagged() {
        let log = [rec(1, 10, 0x11, true)];
        assert_eq!(
            check_recovery(&log, 10, 0x99),
            RecoveryVerdict::Unrecognized {
                entries: 10,
                digest: 0x99
            }
        );
    }

    #[test]
    fn unacked_older_match_is_clean() {
        // Attempt 1 matched and nothing newer was ever acked.
        let log = [rec(1, 10, 0x11, false), rec(2, 20, 0x22, false)];
        assert_eq!(
            check_recovery(&log, 10, 0x11),
            RecoveryVerdict::ConsistentWith {
                attempt: 1,
                acked: false
            }
        );
    }
}
