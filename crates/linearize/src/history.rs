//! Operation histories: invocation/response records for map operations.
//!
//! Each operation is stamped with two ticks of a shared logical clock —
//! one at invocation, one at response. Two operations are *concurrent*
//! when their `[inv, res]` windows overlap; the checker may only reorder
//! concurrent operations (real-time order, per Herlihy & Wing).

use std::sync::atomic::{AtomicU64, Ordering};

use oak_core::OrderedKvMap;

/// The deterministic in-place transform every recorded
/// `compute_if_present` applies. The checker replays the same function, so
/// chained computes validate the *number and order* of applications.
pub fn transform(buf: &mut [u8]) {
    if !buf.is_empty() {
        buf[0] = buf[0].wrapping_add(1);
    }
}

/// An operation as invoked (arguments included).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Unconditional insert-or-overwrite.
    Put {
        /// Key bytes.
        key: Vec<u8>,
        /// Value bytes.
        value: Vec<u8>,
    },
    /// Insert only if absent.
    PutIfAbsent {
        /// Key bytes.
        key: Vec<u8>,
        /// Value bytes.
        value: Vec<u8>,
    },
    /// In-place [`transform`] if present.
    ComputeIfPresent {
        /// Key bytes.
        key: Vec<u8>,
    },
    /// Atomic insert-or-[`transform`] (the paper's
    /// `putIfAbsentComputeIfPresent`).
    PutOrCompute {
        /// Key bytes.
        key: Vec<u8>,
        /// Value inserted when the key is absent.
        value: Vec<u8>,
    },
    /// Remove if present.
    Remove {
        /// Key bytes.
        key: Vec<u8>,
    },
    /// Point read.
    Get {
        /// Key bytes.
        key: Vec<u8>,
    },
    /// Ascending scan over `[lo, hi)`.
    Ascend {
        /// Inclusive lower bound (`None` = start).
        lo: Option<Vec<u8>>,
        /// Exclusive upper bound (`None` = end).
        hi: Option<Vec<u8>>,
        /// Whether the Set-entries API was used (vs the stream API).
        entries: bool,
    },
    /// Descending scan from `from` (inclusive) down to `lo` (inclusive).
    Descend {
        /// Inclusive upper start bound (`None` = end of map).
        from: Option<Vec<u8>>,
        /// Inclusive lower bound (`None` = start of map).
        lo: Option<Vec<u8>>,
        /// Whether the Set-entries API was used (vs the stream API).
        entries: bool,
    },
}

impl Op {
    /// The point-operation key, `None` for scans.
    pub fn key(&self) -> Option<&[u8]> {
        match self {
            Op::Put { key, .. }
            | Op::PutIfAbsent { key, .. }
            | Op::ComputeIfPresent { key }
            | Op::PutOrCompute { key, .. }
            | Op::Remove { key }
            | Op::Get { key } => Some(key),
            Op::Ascend { .. } | Op::Descend { .. } => None,
        }
    }
}

/// An operation's observed return value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ret {
    /// `put` succeeded.
    Unit,
    /// Boolean result (`put_if_absent`, `compute_if_present`,
    /// `put_if_absent_compute_if_present`'s "inserted", `remove`).
    Bool(bool),
    /// `get` result.
    Val(Option<Vec<u8>>),
    /// Scan result in yield order.
    Scan(Vec<(Vec<u8>, Vec<u8>)>),
    /// The operation returned an injected error. Under the
    /// fail-before-mutation contract (PR 1) this is a no-op.
    Err,
}

/// One completed operation.
#[derive(Debug, Clone)]
pub struct OpRecord {
    /// Recording thread.
    pub thread: usize,
    /// The operation and its arguments.
    pub op: Op,
    /// Observed result.
    pub ret: Ret,
    /// Invocation tick.
    pub inv: u64,
    /// Response tick (`inv < res`).
    pub res: u64,
}

/// A complete multi-threaded history.
#[derive(Debug, Clone, Default)]
pub struct History {
    /// All records, in no particular order.
    pub ops: Vec<OpRecord>,
}

impl History {
    /// Merges per-thread logs into one history.
    pub fn merge(logs: Vec<Vec<OpRecord>>) -> History {
        let mut ops: Vec<OpRecord> = logs.into_iter().flatten().collect();
        ops.sort_by_key(|o| o.inv);
        History { ops }
    }
}

/// Per-thread recorder driving a map through [`OrderedKvMap`] while
/// logging invocation/response events against a shared logical clock.
pub struct Recorder<'a> {
    map: &'a dyn OrderedKvMap,
    clock: &'a AtomicU64,
    thread: usize,
    log: Vec<OpRecord>,
}

impl<'a> Recorder<'a> {
    /// Creates a recorder for one thread.
    pub fn new(map: &'a dyn OrderedKvMap, clock: &'a AtomicU64, thread: usize) -> Self {
        Recorder {
            map,
            clock,
            thread,
            log: Vec::new(),
        }
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::SeqCst)
    }

    fn record(&mut self, op: Op, inv: u64, ret: Ret) {
        let res = self.tick();
        self.log.push(OpRecord {
            thread: self.thread,
            op,
            ret,
            inv,
            res,
        });
    }

    /// Records a `put`.
    pub fn put(&mut self, key: &[u8], value: &[u8]) {
        let inv = self.tick();
        let ret = match self.map.put(key, value) {
            Ok(()) => Ret::Unit,
            Err(_) => Ret::Err,
        };
        self.record(
            Op::Put {
                key: key.to_vec(),
                value: value.to_vec(),
            },
            inv,
            ret,
        );
    }

    /// Records a `put_if_absent`.
    pub fn put_if_absent(&mut self, key: &[u8], value: &[u8]) {
        let inv = self.tick();
        let ret = match self.map.put_if_absent(key, value) {
            Ok(b) => Ret::Bool(b),
            Err(_) => Ret::Err,
        };
        self.record(
            Op::PutIfAbsent {
                key: key.to_vec(),
                value: value.to_vec(),
            },
            inv,
            ret,
        );
    }

    /// Records a `compute_if_present` applying [`transform`].
    pub fn compute_if_present(&mut self, key: &[u8]) {
        let inv = self.tick();
        let b = self.map.compute_if_present(key, &|buf| transform(buf));
        self.record(
            Op::ComputeIfPresent { key: key.to_vec() },
            inv,
            Ret::Bool(b),
        );
    }

    /// Records a `put_if_absent_compute_if_present` applying
    /// [`transform`] in the present case.
    pub fn put_or_compute(&mut self, key: &[u8], value: &[u8]) {
        let inv = self.tick();
        let ret = match self
            .map
            .put_if_absent_compute_if_present(key, value, &|buf| transform(buf))
        {
            Ok(inserted) => Ret::Bool(inserted),
            Err(_) => Ret::Err,
        };
        self.record(
            Op::PutOrCompute {
                key: key.to_vec(),
                value: value.to_vec(),
            },
            inv,
            ret,
        );
    }

    /// Records a `remove`.
    pub fn remove(&mut self, key: &[u8]) {
        let inv = self.tick();
        let b = self.map.remove(key);
        self.record(Op::Remove { key: key.to_vec() }, inv, Ret::Bool(b));
    }

    /// Records a `get`.
    pub fn get(&mut self, key: &[u8]) {
        let inv = self.tick();
        let v = self.map.get_copy(key);
        self.record(Op::Get { key: key.to_vec() }, inv, Ret::Val(v));
    }

    /// Records an ascending scan (stream or entries API).
    pub fn ascend(&mut self, lo: Option<&[u8]>, hi: Option<&[u8]>, entries: bool) {
        let inv = self.tick();
        let mut out = Vec::new();
        let mut f = |k: &[u8], v: &[u8]| {
            out.push((k.to_vec(), v.to_vec()));
            true
        };
        if entries {
            self.map.ascend_entries(lo, hi, &mut f);
        } else {
            self.map.ascend(lo, hi, &mut f);
        }
        self.record(
            Op::Ascend {
                lo: lo.map(|b| b.to_vec()),
                hi: hi.map(|b| b.to_vec()),
                entries,
            },
            inv,
            Ret::Scan(out),
        );
    }

    /// Records a descending scan (stream or entries API).
    pub fn descend(&mut self, from: Option<&[u8]>, lo: Option<&[u8]>, entries: bool) {
        let inv = self.tick();
        let mut out = Vec::new();
        let mut f = |k: &[u8], v: &[u8]| {
            out.push((k.to_vec(), v.to_vec()));
            true
        };
        if entries {
            self.map.descend_entries(from, lo, &mut f);
        } else {
            self.map.descend(from, lo, &mut f);
        }
        self.record(
            Op::Descend {
                from: from.map(|b| b.to_vec()),
                lo: lo.map(|b| b.to_vec()),
                entries,
            },
            inv,
            Ret::Scan(out),
        );
    }

    /// Finishes recording, returning this thread's log.
    pub fn finish(self) -> Vec<OpRecord> {
        self.log
    }
}
