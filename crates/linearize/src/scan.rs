//! Scan-validity checking for the §1.1 non-atomic scan contract.
//!
//! Oak's scans are *not* linearizable with respect to concurrent updates
//! (the paper deliberately trades scan atomicity for scalability, §1.1).
//! They do promise:
//!
//! 1. **No phantom keys** — a returned key was inserted by some operation
//!    invoked before the scan responded, and was not conclusively removed
//!    before the scan began.
//! 2. **No missed stable keys** — a key provably present before the scan
//!    began, with no remove invoked before the scan finished, appears.
//! 3. **No duplicates, correct order, bound discipline** — ascending
//!    scans yield strictly increasing keys in `[lo, hi)`; descending
//!    scans strictly decreasing keys in `[lo, from]`.
//! 4. **Value sanity** — the value returned for a key is one the key
//!    actually held: exact when every operation on the key settled before
//!    the scan began, otherwise within the transform-closure of values
//!    the key could have held.
//!
//! Rules 1, 2 and 4's unsettled case are deliberately conservative
//! (over-approximating what a correct implementation may return) so the
//! checker never reports a false positive on a legal non-atomic scan.

use std::collections::{BTreeMap, HashSet};

use crate::checker::{KState, KeyWitness, Violation};
use crate::history::{transform, History, Op, OpRecord, Ret};

/// What one key's point-op sub-history tells a particular scan.
struct KeyView {
    /// The key's pre-scan state is *uniquely determined*: every op either
    /// responded before the scan was invoked or was invoked after it
    /// responded (settled), and the pre-scan ops are pairwise
    /// non-overlapping (so their order — hence the resulting state — is
    /// forced). Only then may the checker demand an exact match; with
    /// overlap, a different valid linearization of the same sub-history
    /// could justify what the scan saw.
    settled_exact: bool,
    /// Model state after the pre-scan prefix (exact only when
    /// `settled_exact`).
    settled_state: KState,
    /// Latest-invoked presence-evidence op completing before scan start:
    /// its invocation tick. The key was provably present from before the
    /// scan began.
    evidence_inv: Option<u64>,
    /// Whether a successful remove could explain the key being absent
    /// after that evidence (remove not completed before the evidence was
    /// invoked, and invoked before the scan responded).
    removable_after_evidence: bool,
    /// Whether any insert-capable op was invoked before the scan
    /// responded (otherwise the key can never legally appear).
    insertable: bool,
    /// Whether the key was conclusively removed before the scan began:
    /// some successful remove responded before scan start and every
    /// insert-capable op responded before that remove was invoked.
    removed_before_start: bool,
    /// Transform-closure of every value the key could have held while the
    /// scan ran (used only when not settled).
    value_closure: HashSet<Vec<u8>>,
}

fn is_insert_capable(rec: &OpRecord) -> bool {
    // Fail-before-mutation: an Err op never published a value.
    if matches!(rec.ret, Ret::Err) {
        return false;
    }
    matches!(
        rec.op,
        Op::Put { .. } | Op::PutIfAbsent { .. } | Op::PutOrCompute { .. }
    )
}

/// Whether the op's return value proves the key Present at the op's
/// linearization point (which lies within `[inv, res]`).
fn is_presence_evidence(rec: &OpRecord) -> bool {
    match (&rec.op, &rec.ret) {
        (Op::Put { .. }, Ret::Unit) => true,
        // `false` here means "already present" — evidence either way.
        (Op::PutIfAbsent { .. }, Ret::Bool(_)) => true,
        (Op::ComputeIfPresent { .. }, Ret::Bool(b)) => *b,
        (Op::PutOrCompute { .. }, Ret::Bool(_)) => true,
        (Op::Get { .. }, Ret::Val(v)) => v.is_some(),
        _ => false,
    }
}

fn is_successful_remove(rec: &OpRecord) -> bool {
    matches!((&rec.op, &rec.ret), (Op::Remove { .. }, Ret::Bool(true)))
}

fn build_view(recs: &[(usize, &OpRecord)], witness: &KeyWitness, scan: &OpRecord) -> KeyView {
    let pre: Vec<&OpRecord> = recs
        .iter()
        .map(|&(_, r)| r)
        .filter(|r| r.res < scan.inv)
        .collect();
    let settled = recs
        .iter()
        .all(|&(_, r)| r.res < scan.inv || r.inv > scan.res);
    // `recs` is in invocation order (History::merge sorts by inv), so
    // `pre` is too; pairwise-sequential means the pre-scan order is forced.
    let pre_sequential = pre.windows(2).all(|w| w[0].res < w[1].inv);

    // The witness respects real-time order, so ops completing before the
    // scan began occupy the first `pre.len()` positions; the state there
    // is the settled pre-scan state.
    let settled_state = if pre.is_empty() {
        KState::Absent
    } else {
        witness.states[pre.len() - 1].clone()
    };

    let evidence_inv = recs
        .iter()
        .map(|&(_, r)| r)
        .filter(|r| r.res < scan.inv && is_presence_evidence(r))
        .map(|r| r.inv)
        .max();
    let removable_after_evidence = evidence_inv.is_some_and(|e| {
        recs.iter()
            .any(|&(_, r)| is_successful_remove(r) && r.res > e && r.inv < scan.res)
    });

    let inserts: Vec<&OpRecord> = recs
        .iter()
        .map(|&(_, r)| r)
        .filter(|r| is_insert_capable(r))
        .collect();
    let insertable = inserts.iter().any(|r| r.inv < scan.res);
    let removed_before_start = recs.iter().any(|&(_, r)| {
        is_successful_remove(r) && r.res < scan.inv && inserts.iter().all(|i| i.res < r.inv)
    });

    // Over-approximate the values the key could have held: every literal
    // ever offered for insertion, advanced through up to `computes`
    // chained transforms, plus every value the witness saw.
    let mut value_closure: HashSet<Vec<u8>> = witness.values.clone();
    let computes = recs
        .iter()
        .filter(|&&(_, r)| {
            !matches!(r.ret, Ret::Err)
                && matches!(r.op, Op::ComputeIfPresent { .. } | Op::PutOrCompute { .. })
        })
        .count();
    let literals = recs.iter().filter_map(|&(_, r)| match (&r.op, &r.ret) {
        (_, Ret::Err) => None,
        (Op::Put { value, .. }, _)
        | (Op::PutIfAbsent { value, .. }, _)
        | (Op::PutOrCompute { value, .. }, _) => Some(value.clone()),
        _ => None,
    });
    for lit in literals {
        let mut v = lit;
        value_closure.insert(v.clone());
        for _ in 0..computes {
            transform(&mut v);
            value_closure.insert(v.clone());
        }
    }

    KeyView {
        settled_exact: settled && pre_sequential,
        settled_state,
        evidence_inv,
        removable_after_evidence,
        insertable,
        removed_before_start,
        value_closure,
    }
}

/// The scan's key interval, normalized to inclusive/exclusive bounds.
struct Bounds<'a> {
    lo: Option<&'a [u8]>,
    /// Exclusive for ascending scans, inclusive for descending.
    hi: Option<&'a [u8]>,
    descending: bool,
}

impl Bounds<'_> {
    fn contains(&self, k: &[u8]) -> bool {
        if let Some(lo) = self.lo {
            if k < lo {
                return false;
            }
        }
        if let Some(hi) = self.hi {
            if self.descending {
                if k > hi {
                    return false;
                }
            } else if k >= hi {
                return false;
            }
        }
        true
    }
}

fn violation(reason: String, idx: usize, scan: &OpRecord) -> Box<Violation> {
    Box::new(Violation::Scan {
        reason,
        scan: (idx, scan.clone()),
    })
}

/// Checks every scan in the history against the §1.1 contract, given the
/// per-key linearization witnesses from the point-op checker.
pub fn check_scans(
    h: &History,
    witnesses: &BTreeMap<Vec<u8>, KeyWitness>,
) -> Result<(), Box<Violation>> {
    // Per-key point-op records (global index + record), in inv order.
    let mut by_key: BTreeMap<&[u8], Vec<(usize, &OpRecord)>> = BTreeMap::new();
    for (i, rec) in h.ops.iter().enumerate() {
        if let Some(k) = rec.op.key() {
            by_key.entry(k).or_default().push((i, rec));
        }
    }

    for (si, scan) in h.ops.iter().enumerate() {
        let (bounds, pairs) = match (&scan.op, &scan.ret) {
            (Op::Ascend { lo, hi, .. }, Ret::Scan(pairs)) => (
                Bounds {
                    lo: lo.as_deref(),
                    hi: hi.as_deref(),
                    descending: false,
                },
                pairs,
            ),
            (Op::Descend { from, lo, .. }, Ret::Scan(pairs)) => (
                Bounds {
                    lo: lo.as_deref(),
                    hi: from.as_deref(),
                    descending: true,
                },
                pairs,
            ),
            _ => continue,
        };

        // Rule 3: order, duplicates, bounds.
        for w in pairs.windows(2) {
            let ok = if bounds.descending {
                w[0].0 > w[1].0
            } else {
                w[0].0 < w[1].0
            };
            if !ok {
                return Err(violation(
                    format!(
                        "out-of-order or duplicate keys {:?}, {:?}",
                        String::from_utf8_lossy(&w[0].0),
                        String::from_utf8_lossy(&w[1].0)
                    ),
                    si,
                    scan,
                ));
            }
        }
        for (k, _) in pairs {
            if !bounds.contains(k) {
                return Err(violation(
                    format!("key {:?} outside scan bounds", String::from_utf8_lossy(k)),
                    si,
                    scan,
                ));
            }
        }

        // Rules 1 and 4: every returned key must be explainable.
        let returned: HashSet<&[u8]> = pairs.iter().map(|(k, _)| k.as_slice()).collect();
        for (k, v) in pairs {
            let Some(recs) = by_key.get(k.as_slice()) else {
                return Err(violation(
                    format!(
                        "phantom key {:?}: no operation ever touched it",
                        String::from_utf8_lossy(k)
                    ),
                    si,
                    scan,
                ));
            };
            let view = build_view(recs, &witnesses[k.as_slice()], scan);
            if !view.insertable {
                return Err(violation(
                    format!(
                        "phantom key {:?}: no insert invoked before the scan responded",
                        String::from_utf8_lossy(k)
                    ),
                    si,
                    scan,
                ));
            }
            if view.removed_before_start {
                return Err(violation(
                    format!(
                        "key {:?} was conclusively removed before the scan began",
                        String::from_utf8_lossy(k)
                    ),
                    si,
                    scan,
                ));
            }
            if view.settled_exact {
                match &view.settled_state {
                    KState::Absent => {
                        return Err(violation(
                            format!(
                                "key {:?} returned but settled absent",
                                String::from_utf8_lossy(k)
                            ),
                            si,
                            scan,
                        ));
                    }
                    KState::Present(expect) => {
                        if v != expect {
                            return Err(violation(
                                format!(
                                    "key {:?}: settled value {:?} but scan saw {:?}",
                                    String::from_utf8_lossy(k),
                                    expect,
                                    v
                                ),
                                si,
                                scan,
                            ));
                        }
                    }
                }
            } else if !view.value_closure.contains(v) {
                return Err(violation(
                    format!(
                        "key {:?}: value {:?} outside everything the key could have held",
                        String::from_utf8_lossy(k),
                        v
                    ),
                    si,
                    scan,
                ));
            }
        }

        // Rule 2: no missed stable keys.
        for (k, recs) in &by_key {
            if returned.contains(k) || !bounds.contains(k) {
                continue;
            }
            let view = build_view(recs, &witnesses[*k], scan);
            if view.settled_exact {
                if let KState::Present(val) = &view.settled_state {
                    return Err(violation(
                        format!(
                            "missed stable key {:?} (settled present = {:?})",
                            String::from_utf8_lossy(k),
                            val
                        ),
                        si,
                        scan,
                    ));
                }
            } else if view.evidence_inv.is_some() && !view.removable_after_evidence {
                return Err(violation(
                    format!(
                        "missed key {:?}: present before the scan began and no \
                         concurrent remove can explain its absence",
                        String::from_utf8_lossy(k)
                    ),
                    si,
                    scan,
                ));
            }
        }
    }
    Ok(())
}
