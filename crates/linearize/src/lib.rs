//! # oak-linearize — correctness harness for Oak
//!
//! History-based correctness checking for the concurrent map, after
//! Herlihy & Wing's linearizability and the Wing & Gong search (see
//! PAPERS.md):
//!
//! * [`history`] — records invocation/response events for every operation
//!   driven through the [`oak_core::OrderedKvMap`] trait, stamped by a
//!   global logical clock.
//! * [`checker`] — validates point-operation histories against a
//!   sequential `BTreeMap`-style model: a per-key decomposition (sound by
//!   compositionality — point ops on distinct keys act on independent
//!   sub-objects), a sequential fast path, a greedy response-order pass,
//!   and a memoized Wing & Gong search for the hard residue.
//! * [`scan`] — validates scans against the §1.1 non-atomic scan
//!   contract: no phantom keys, no duplicates, no missed stable keys,
//!   order/bound discipline, and value sanity.
//! * [`runner`] — seeded deterministic concurrent workloads mixing
//!   put/get/remove/compute/scan, plus the whole-history check.
//! * [`recovery`] — crash-recovery verdicts for the crash-injection
//!   harness: order-sensitive state digests, the acknowledgement-log
//!   model, and prefix-consistency classification of a recovered image.
//!
//! Deterministic *interleavings* (as opposed to seeded perturbation) come
//! from `oak_failpoints`' sync-point engine: oak-core publishes its
//! instrumented decision sites as [`oak_core::SYNC_SITES`], and a
//! [`oak_failpoints::SyncSchedule`](oak_failpoints) replays an explicit
//! thread interleaving across them. The regression tests in this crate
//! pin down the scan/rebalance races fixed in oak-core with exactly such
//! schedules.

#![warn(missing_docs)]

pub mod checker;
pub mod history;
pub mod recovery;
pub mod runner;
pub mod scan;

pub use checker::{check_history, CheckStats, Violation};
pub use history::{transform, History, Op, OpRecord, Recorder, Ret};
pub use recovery::{check_recovery, state_digest, AckRecord, RecoveryVerdict, StateDigest};
pub use runner::{run_and_check, run_recorded, SplitMix64, WorkloadCfg};
