//! Linearizability checker for point-operation histories.
//!
//! The checker validates a recorded [`History`] against the sequential
//! specification of an ordered map (a `BTreeMap<Vec<u8>, Vec<u8>>`, in
//! effect). It exploits *compositionality* (Herlihy & Wing, Thm. 1):
//! point operations on distinct keys act on independent sub-objects, so a
//! history is linearizable iff its per-key sub-histories each are. Each
//! per-key sub-history runs through three stages:
//!
//! 1. **Sequential fast path** — if no two operations on the key overlap
//!    in real time, the only admissible order is invocation order; replay
//!    it once.
//! 2. **Greedy response-order pass** — replaying in response order always
//!    respects real-time precedence; if it validates, we have a witness
//!    without searching.
//! 3. **Memoized Wing & Gong search** — exhaustive DFS over admissible
//!    next-operations, memoized on (linearized-set, key state) so each
//!    reachable configuration is expanded once.
//!
//! Scans do not take part here; they are checked against the §1.1
//! non-atomic scan contract by [`crate::scan`], using the per-key
//! linearization witnesses this module produces.

use std::collections::{BTreeMap, HashSet};
use std::fmt;

use crate::history::{transform, History, Op, OpRecord, Ret};

/// Per-key model state: the key is absent, or present with these bytes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum KState {
    /// No mapping.
    Absent,
    /// Mapped to the given value bytes.
    Present(Vec<u8>),
}

impl KState {
    fn value(&self) -> Option<&[u8]> {
        match self {
            KState::Absent => None,
            KState::Present(v) => Some(v),
        }
    }
}

/// A linearizability (or scan-contract) violation, with enough context to
/// reproduce and debug it.
#[derive(Debug, Clone)]
pub enum Violation {
    /// No valid linearization exists for the operations on one key.
    Key {
        /// The key whose sub-history is unexplainable.
        key: Vec<u8>,
        /// Human-readable diagnosis.
        reason: String,
        /// The offending sub-history (global history indices + records).
        ops: Vec<(usize, OpRecord)>,
    },
    /// A sub-history was too dense for the bounded search.
    SearchCap {
        /// The key that exceeded the cap.
        key: Vec<u8>,
        /// Number of operations recorded on it.
        count: usize,
    },
    /// A scan violated the §1.1 contract.
    Scan {
        /// Human-readable diagnosis.
        reason: String,
        /// The scan record (global history index + record).
        scan: (usize, OpRecord),
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Key { key, reason, ops } => {
                writeln!(
                    f,
                    "non-linearizable sub-history for key {:?}: {}",
                    String::from_utf8_lossy(key),
                    reason
                )?;
                for (i, op) in ops {
                    writeln!(
                        f,
                        "  [{i:>4}] t{} inv={} res={} {:?} -> {:?}",
                        op.thread, op.inv, op.res, op.op, op.ret
                    )?;
                }
                Ok(())
            }
            Violation::SearchCap { key, count } => write!(
                f,
                "sub-history for key {:?} has {count} operations, over the search cap",
                String::from_utf8_lossy(key)
            ),
            Violation::Scan { reason, scan } => {
                writeln!(f, "scan contract violation: {reason}")?;
                let (i, op) = scan;
                write!(
                    f,
                    "  [{i:>4}] t{} inv={} res={} {:?} -> {} entries",
                    op.thread,
                    op.inv,
                    op.res,
                    op.op,
                    match &op.ret {
                        Ret::Scan(v) => v.len(),
                        _ => 0,
                    }
                )
            }
        }
    }
}

/// Counters describing how a history was validated.
#[derive(Debug, Clone, Copy, Default)]
pub struct CheckStats {
    /// Point operations checked.
    pub point_ops: usize,
    /// Scan operations checked.
    pub scans: usize,
    /// Distinct keys.
    pub keys: usize,
    /// Keys discharged by the no-overlap sequential fast path.
    pub sequential_keys: usize,
    /// Keys discharged by the greedy response-order pass.
    pub greedy_keys: usize,
    /// Keys that needed the full Wing & Gong search.
    pub searched_keys: usize,
    /// DFS states expanded across all searched keys.
    pub states_expanded: usize,
    /// DFS states skipped via the memo table.
    pub memo_hits: usize,
}

/// The per-key linearization witness handed to the scan checker.
#[derive(Debug, Clone, Default)]
pub struct KeyWitness {
    /// Global history indices of this key's point ops, in linearized order.
    pub order: Vec<usize>,
    /// Key state after each prefix of `order` (same length).
    pub states: Vec<KState>,
    /// Every value the key held at some point in the witness (including
    /// values observable mid-history but overwritten later).
    pub values: HashSet<Vec<u8>>,
}

impl KeyWitness {
    /// Key state after the whole sub-history.
    pub fn final_state(&self) -> KState {
        self.states.last().cloned().unwrap_or(KState::Absent)
    }
}

/// Largest per-key sub-history the bounded search accepts. The u128
/// linearized-set bitmask requires this; seeded workloads stay far below.
pub const SEARCH_CAP: usize = 128;

/// Applies one operation to a key state, validating its observed return
/// value. `None` means the (state, op, ret) combination is impossible in
/// the sequential spec.
///
/// `Ret::Err` is an injected failure; under the fail-before-mutation
/// contract (PR 1) it must be a no-op at every state.
fn apply(st: &KState, op: &Op, ret: &Ret) -> Option<KState> {
    if matches!(ret, Ret::Err) {
        return Some(st.clone());
    }
    match (op, ret) {
        (Op::Put { value, .. }, Ret::Unit) => Some(KState::Present(value.clone())),
        (Op::PutIfAbsent { value, .. }, Ret::Bool(inserted)) => {
            let absent = matches!(st, KState::Absent);
            if *inserted != absent {
                return None;
            }
            if absent {
                Some(KState::Present(value.clone()))
            } else {
                Some(st.clone())
            }
        }
        (Op::ComputeIfPresent { .. }, Ret::Bool(computed)) => match st {
            KState::Present(cur) if *computed => {
                let mut nv = cur.clone();
                transform(&mut nv);
                Some(KState::Present(nv))
            }
            KState::Absent if !*computed => Some(KState::Absent),
            _ => None,
        },
        (Op::PutOrCompute { value, .. }, Ret::Bool(inserted)) => match st {
            KState::Absent if *inserted => Some(KState::Present(value.clone())),
            KState::Present(cur) if !*inserted => {
                let mut nv = cur.clone();
                transform(&mut nv);
                Some(KState::Present(nv))
            }
            _ => None,
        },
        (Op::Remove { .. }, Ret::Bool(removed)) => match st {
            KState::Present(_) if *removed => Some(KState::Absent),
            KState::Absent if !*removed => Some(KState::Absent),
            _ => None,
        },
        (Op::Get { .. }, Ret::Val(got)) => {
            if got.as_deref() == st.value() {
                Some(st.clone())
            } else {
                None
            }
        }
        _ => None, // malformed (op, ret) pairing
    }
}

/// Replays `order` (indices into `ops`) from `Absent`, validating every
/// return. On success returns the state after each step.
fn replay(ops: &[&OpRecord], order: &[usize]) -> Option<Vec<KState>> {
    let mut st = KState::Absent;
    let mut states = Vec::with_capacity(order.len());
    for &i in order {
        st = apply(&st, &ops[i].op, &ops[i].ret)?;
        states.push(st.clone());
    }
    Some(states)
}

/// Memoized Wing & Gong DFS. `ops` is the key's sub-history; returns a
/// valid linearization (local indices) or `None`.
fn search(ops: &[&OpRecord], stats: &mut CheckStats) -> Option<Vec<usize>> {
    let n = ops.len();
    debug_assert!(n <= SEARCH_CAP);
    let full: u128 = if n == 128 {
        u128::MAX
    } else {
        (1u128 << n) - 1
    };
    let mut memo: HashSet<(u128, KState)> = HashSet::new();
    let mut order: Vec<usize> = Vec::with_capacity(n);

    fn dfs(
        ops: &[&OpRecord],
        mask: u128,
        st: &KState,
        full: u128,
        order: &mut Vec<usize>,
        memo: &mut HashSet<(u128, KState)>,
        stats: &mut CheckStats,
    ) -> bool {
        if mask == full {
            return true;
        }
        if !memo.insert((mask, st.clone())) {
            stats.memo_hits += 1;
            return false;
        }
        stats.states_expanded += 1;
        // An op `i` may linearize next iff no *pending* op responded
        // before `i` was invoked (real-time order). With unique clock
        // ticks that is: inv_i < min(res of pending ops), or `i` itself
        // holds that minimum.
        let mut min_res = u64::MAX;
        let mut min_idx = usize::MAX;
        for (i, op) in ops.iter().enumerate() {
            if mask & (1u128 << i) == 0 && op.res < min_res {
                min_res = op.res;
                min_idx = i;
            }
        }
        for (i, op) in ops.iter().enumerate() {
            if mask & (1u128 << i) != 0 {
                continue;
            }
            if i != min_idx && op.inv > min_res {
                continue; // a pending op responded before `i` began
            }
            if let Some(next) = apply(st, &op.op, &op.ret) {
                order.push(i);
                if dfs(ops, mask | (1u128 << i), &next, full, order, memo, stats) {
                    return true;
                }
                order.pop();
            }
        }
        false
    }

    if dfs(ops, 0, &KState::Absent, full, &mut order, &mut memo, stats) {
        Some(order)
    } else {
        None
    }
}

/// Linearizes one key's sub-history. Returns the witness order (local
/// indices) or a diagnosis string.
fn linearize_key(ops: &[&OpRecord], stats: &mut CheckStats) -> Result<Vec<usize>, String> {
    let n = ops.len();
    if n == 0 {
        return Ok(Vec::new());
    }

    // Sub-histories arrive sorted by invocation tick (History::merge).
    // Fast path 1: no two ops overlap — invocation order is the only
    // real-time-admissible order, so its replay verdict is final.
    let sequential = ops.windows(2).all(|w| w[0].res < w[1].inv);
    let inv_order: Vec<usize> = (0..n).collect();
    if sequential {
        stats.sequential_keys += 1;
        return match replay(ops, &inv_order) {
            Some(_) => Ok(inv_order),
            None => Err("sequential (non-overlapping) replay failed".into()),
        };
    }

    // Fast path 2: response order always respects real-time precedence
    // (res_i < res_j implies NOT res_j < inv_i); if it replays, done.
    let mut res_order = inv_order;
    res_order.sort_by_key(|&i| ops[i].res);
    if replay(ops, &res_order).is_some() {
        stats.greedy_keys += 1;
        return Ok(res_order);
    }

    // Full search.
    stats.searched_keys += 1;
    search(ops, stats).ok_or_else(|| "Wing & Gong search exhausted every admissible order".into())
}

/// Checks a complete history: per-key linearizability for point
/// operations, then the §1.1 scan contract for every recorded scan.
///
/// On success returns [`CheckStats`]; on failure, the first violation
/// found (with the offending sub-history attached).
pub fn check_history(h: &History) -> Result<CheckStats, Box<Violation>> {
    let mut stats = CheckStats::default();

    // Per-key decomposition. Indices are global positions in `h.ops`.
    let mut by_key: BTreeMap<&[u8], Vec<usize>> = BTreeMap::new();
    for (i, rec) in h.ops.iter().enumerate() {
        match rec.op.key() {
            Some(k) => {
                stats.point_ops += 1;
                by_key.entry(k).or_default().push(i);
            }
            None => stats.scans += 1,
        }
    }
    stats.keys = by_key.len();

    let mut witnesses: BTreeMap<Vec<u8>, KeyWitness> = BTreeMap::new();
    for (key, idxs) in &by_key {
        if idxs.len() > SEARCH_CAP {
            return Err(Box::new(Violation::SearchCap {
                key: key.to_vec(),
                count: idxs.len(),
            }));
        }
        let sub: Vec<&OpRecord> = idxs.iter().map(|&i| &h.ops[i]).collect();
        let local = linearize_key(&sub, &mut stats).map_err(|reason| {
            Box::new(Violation::Key {
                key: key.to_vec(),
                reason,
                ops: idxs.iter().map(|&i| (i, h.ops[i].clone())).collect(),
            })
        })?;
        let states = replay(&sub, &local).expect("witness must replay");
        let mut values = HashSet::new();
        for st in &states {
            if let KState::Present(v) = st {
                values.insert(v.clone());
            }
        }
        witnesses.insert(
            key.to_vec(),
            KeyWitness {
                order: local.iter().map(|&l| idxs[l]).collect(),
                states,
                values,
            },
        );
    }

    crate::scan::check_scans(h, &witnesses)?;
    Ok(stats)
}
