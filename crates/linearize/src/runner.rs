//! Seeded deterministic concurrent workloads over an [`OrderedKvMap`].
//!
//! The runner drives `threads` recorder threads through a mixed workload
//! (puts, conditional puts, computes, removes, gets, both scan
//! directions, both scan APIs) derived from a SplitMix64 stream, merges
//! the per-thread logs into a [`History`], and hands it to the checker.
//! Keyspaces are deliberately small so operations collide; the actual
//! thread interleaving varies run to run, but every interleaving the
//! hardware produces must be explainable — that is exactly what
//! [`check_history`] verifies.
//!
//! Fault and sync schedules are the *caller's* concern: activate an
//! `oak_failpoints` scenario (or sync schedule) around the call and the
//! recorded history will include injected `Err` returns, which the
//! checker treats as no-ops under the fail-before-mutation contract.

use std::sync::atomic::AtomicU64;

use oak_core::OrderedKvMap;

use crate::checker::{check_history, CheckStats, Violation};
use crate::history::{History, Recorder};

/// SplitMix64 — tiny, seedable, and identical on every platform.
#[derive(Debug, Clone)]
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    /// Next raw 64-bit draw (not an `Iterator`: the stream is infinite
    /// and draws are consumed through [`Self::below`] in practice).
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Workload shape for [`run_recorded`].
#[derive(Debug, Clone)]
pub struct WorkloadCfg {
    /// Concurrent recorder threads.
    pub threads: usize,
    /// Operations per thread (scans included).
    pub ops_per_thread: usize,
    /// Distinct keys (`k000`, `k001`, …) — small keeps contention high
    /// and per-key sub-histories within the checker's search cap.
    pub keyspace: usize,
    /// Base seed; thread `t` uses `seed ^ (t as u64 + 1) * GOLDEN`.
    pub seed: u64,
}

impl Default for WorkloadCfg {
    fn default() -> Self {
        WorkloadCfg {
            threads: 4,
            ops_per_thread: 60,
            keyspace: 12,
            seed: 0xda7a_ba5e,
        }
    }
}

fn key(i: u64) -> Vec<u8> {
    format!("k{i:03}").into_bytes()
}

fn worker(
    map: &dyn OrderedKvMap,
    clock: &AtomicU64,
    cfg: &WorkloadCfg,
    t: usize,
) -> Vec<crate::history::OpRecord> {
    let mut rng = SplitMix64(cfg.seed ^ (t as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let mut rec = Recorder::new(map, clock, t);
    let ks = cfg.keyspace as u64;
    for _ in 0..cfg.ops_per_thread {
        let k = key(rng.below(ks));
        // Few distinct literals keep the scan checker's value closures
        // small and make value mix-ups visible.
        let v = vec![b'v', (rng.below(5) * 10) as u8];
        match rng.below(100) {
            0..=29 => rec.put(&k, &v),
            30..=41 => rec.put_if_absent(&k, &v),
            42..=53 => rec.put_or_compute(&k, &v),
            54..=63 => rec.compute_if_present(&k),
            64..=78 => rec.remove(&k),
            79..=90 => rec.get(&k),
            d => {
                let entries = rng.below(2) == 0;
                let a = rng.below(ks);
                let b = rng.below(ks);
                let (lo, hi) = (a.min(b), a.max(b) + 1);
                let lo_k = (lo > 0).then(|| key(lo));
                let hi_k = (hi < ks).then(|| key(hi));
                if d < 96 {
                    rec.ascend(lo_k.as_deref(), hi_k.as_deref(), entries);
                } else {
                    rec.descend(hi_k.as_deref(), lo_k.as_deref(), entries);
                }
            }
        }
    }
    rec.finish()
}

/// Runs the seeded workload over `map`, returning the merged history.
pub fn run_recorded(map: &dyn OrderedKvMap, cfg: &WorkloadCfg) -> History {
    let clock = AtomicU64::new(0);
    let logs = std::thread::scope(|s| {
        let clock = &clock;
        let handles: Vec<_> = (0..cfg.threads)
            .map(|t| s.spawn(move || worker(map, clock, cfg, t)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    History::merge(logs)
}

/// Runs the workload and checks the resulting history; the main entry
/// point for seeded corpus tests.
pub fn run_and_check(
    map: &dyn OrderedKvMap,
    cfg: &WorkloadCfg,
) -> Result<CheckStats, Box<Violation>> {
    check_history(&run_recorded(map, cfg))
}
