//! Property-style scan tests: seeded random scans with random bounds,
//! racing seeded churn writers, validated against the §1.1 scan
//! contract directly (no recorded history — the properties are checked
//! in-line, so thousands of scans stay cheap).
//!
//! The keyspace interleaves *stable* keys (written once, never touched
//! again) with *volatile* runs (constantly removed/reinserted by the
//! churn threads). Capacity-8 chunks over a 96-key universe put every
//! scan across many chunk boundaries, and emptying a volatile run
//! triggers merges while refilling it triggers splits — so scans
//! constantly cross chunks that are being frozen, split, merged and
//! replaced under them.
//!
//! Checked properties, for every scan:
//!   - keys strictly monotonic in scan direction (no duplicates, no
//!     reordering across chunk re-entry);
//!   - all keys within the requested bounds and from the universe;
//!   - every stable key inside the bounds is present, exactly once,
//!     with its immutable value (§1.1: keys untouched for the whole
//!     scan must be reported);
//!   - volatile values are always from the writers' literal set (no
//!     torn or stale-freed bytes).

use std::sync::atomic::{AtomicBool, Ordering};

use oak_core::{OakMap, OakMapConfig, OrderedKvMap, ShardedOakMap};
use oak_linearize::SplitMix64;

const UNIVERSE: usize = 96;

fn key(i: usize) -> Vec<u8> {
    format!("k{i:03}").into_bytes()
}

/// Two stable keys lead every run of eight; the six volatile keys after
/// them form contiguous runs that can empty a whole chunk (merge) or
/// refill one (split).
fn is_stable(i: usize) -> bool {
    i % 8 < 2
}

fn stable_value(i: usize) -> Vec<u8> {
    format!("s{i:03}").into_bytes()
}

fn volatile_value(draw: u64) -> Vec<u8> {
    vec![b'v', (draw % 4) as u8 * 10]
}

fn cramped() -> OakMapConfig {
    OakMapConfig::small().chunk_capacity(8)
}

fn seed_map(map: &dyn OrderedKvMap) {
    for i in 0..UNIVERSE {
        let v = if is_stable(i) {
            stable_value(i)
        } else {
            volatile_value(0)
        };
        map.put(&key(i), &v).unwrap();
    }
}

fn churn(map: &dyn OrderedKvMap, seed: u64, stop: &AtomicBool) {
    let mut rng = SplitMix64(seed);
    while !stop.load(Ordering::Relaxed) {
        let i = rng.below(UNIVERSE as u64) as usize;
        if is_stable(i) {
            continue;
        }
        match rng.below(4) {
            0 => {
                map.remove(&key(i));
            }
            1 => {
                // Empty a whole volatile run: the chunk covering it can
                // drop to zero live entries and merge away.
                let base = i - i % 8 + 2;
                for j in base..base + 6 {
                    map.remove(&key(j));
                }
            }
            2 => {
                let base = i - i % 8 + 2;
                for j in base..base + 6 {
                    map.put(&key(j), &volatile_value(rng.below(4))).unwrap();
                }
            }
            _ => {
                map.put(&key(i), &volatile_value(rng.below(4))).unwrap();
            }
        }
    }
}

/// Validates one collected scan against the §1.1 contract.
/// `lo..=hi` are the inclusive index bounds the scan covered.
fn validate(scan: &[(Vec<u8>, Vec<u8>)], lo: usize, hi: usize, descending: bool, ctx: &str) {
    for w in scan.windows(2) {
        if descending {
            assert!(w[0].0 > w[1].0, "{ctx}: not strictly descending: {w:?}");
        } else {
            assert!(w[0].0 < w[1].0, "{ctx}: not strictly ascending: {w:?}");
        }
    }
    let universe: Vec<Vec<u8>> = (0..UNIVERSE).map(key).collect();
    let mut stable_seen = 0usize;
    for (k, v) in scan {
        let i = universe
            .binary_search(k)
            .unwrap_or_else(|_| panic!("{ctx}: phantom key {:?}", String::from_utf8_lossy(k)));
        assert!(
            (lo..=hi).contains(&i),
            "{ctx}: key {i} out of bounds [{lo}, {hi}]"
        );
        if is_stable(i) {
            assert_eq!(
                v,
                &stable_value(i),
                "{ctx}: stable key {i} has a foreign value"
            );
            stable_seen += 1;
        } else {
            assert_eq!(v[0], b'v', "{ctx}: volatile key {i} has a torn value {v:?}");
            assert!(v.len() == 2 && v[1] % 10 == 0 && v[1] <= 30, "{ctx}: {v:?}");
        }
    }
    let stable_expected = (lo..=hi).filter(|&i| is_stable(i)).count();
    assert_eq!(
        stable_seen, stable_expected,
        "{ctx}: scan over [{lo}, {hi}] missed a stable key"
    );
}

fn run_props(map: &dyn OrderedKvMap, scans_per_thread: usize, seed: u64) {
    seed_map(map);
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let stop = &stop;
        for t in 0..2u64 {
            s.spawn(move || churn(map, seed ^ (0x9e37 + t), stop));
        }
        let scanners: Vec<_> = (0..2u64)
            .map(|t| {
                s.spawn(move || {
                    let mut rng = SplitMix64(seed ^ (0xace5 + t));
                    for round in 0..scans_per_thread {
                        let a = rng.below(UNIVERSE as u64) as usize;
                        let b = rng.below(UNIVERSE as u64) as usize;
                        let (lo, hi) = (a.min(b), a.max(b));
                        let descending = rng.below(2) == 0;
                        let entries = rng.below(2) == 0;
                        let mut out: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
                        let mut f = |k: &[u8], v: &[u8]| {
                            out.push((k.to_vec(), v.to_vec()));
                            true
                        };
                        let (lk, hk) = (key(lo), key(hi));
                        let hk_excl = key(hi + 1); // ascend's hi is exclusive
                        match (descending, entries) {
                            (false, false) => map.ascend(Some(&lk), Some(&hk_excl), &mut f),
                            (false, true) => map.ascend_entries(Some(&lk), Some(&hk_excl), &mut f),
                            (true, false) => map.descend(Some(&hk), Some(&lk), &mut f),
                            (true, true) => map.descend_entries(Some(&hk), Some(&lk), &mut f),
                        };
                        let ctx = format!(
                            "seed {seed:#x} scanner {t} round {round} desc={descending} entries={entries}"
                        );
                        validate(&out, lo, hi, descending, &ctx);
                    }
                })
            })
            .collect();
        for h in scanners {
            h.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
    });
}

#[test]
fn scan_properties_oak_map() {
    let map = OakMap::with_config(cramped());
    run_props(&map, 60, 0x5ca9);
}

/// The sharded front-end k-way-merges per-shard cursors; the merge must
/// preserve every property (global order across shard boundaries is
/// where a merge bug would show).
#[test]
fn scan_properties_sharded_map() {
    let map = ShardedOakMap::with_config(4, cramped());
    run_props(&map, 60, 0xd15c);
}
