//! Property-style scan tests: seeded random scans with random bounds,
//! racing seeded churn writers, validated against the §1.1 scan
//! contract directly (no recorded history — the properties are checked
//! in-line, so thousands of scans stay cheap).
//!
//! The keyspace interleaves *stable* keys (written once, never touched
//! again) with *volatile* runs (constantly removed/reinserted by the
//! churn threads). Capacity-8 chunks over a 96-key universe put every
//! scan across many chunk boundaries, and emptying a volatile run
//! triggers merges while refilling it triggers splits — so scans
//! constantly cross chunks that are being frozen, split, merged and
//! replaced under them.
//!
//! Checked properties, for every scan:
//!   - keys strictly monotonic in scan direction (no duplicates, no
//!     reordering across chunk re-entry);
//!   - all keys within the requested bounds and from the universe;
//!   - every stable key inside the bounds is present, exactly once,
//!     with its immutable value (§1.1: keys untouched for the whole
//!     scan must be reported);
//!   - volatile values are always from the writers' literal set (no
//!     torn or stale-freed bytes).

use std::sync::atomic::{AtomicBool, Ordering};

use oak_core::{OakMap, OakMapConfig, OrderedKvMap, ShardedOakMap};
use oak_linearize::SplitMix64;

const UNIVERSE: usize = 96;

fn key(i: usize) -> Vec<u8> {
    format!("k{i:03}").into_bytes()
}

/// Two stable keys lead every run of eight; the six volatile keys after
/// them form contiguous runs that can empty a whole chunk (merge) or
/// refill one (split).
fn is_stable(i: usize) -> bool {
    i % 8 < 2
}

fn stable_value(i: usize) -> Vec<u8> {
    format!("s{i:03}").into_bytes()
}

fn volatile_value(draw: u64) -> Vec<u8> {
    vec![b'v', (draw % 4) as u8 * 10]
}

fn cramped() -> OakMapConfig {
    OakMapConfig::small().chunk_capacity(8)
}

fn seed_map(map: &dyn OrderedKvMap) {
    for i in 0..UNIVERSE {
        let v = if is_stable(i) {
            stable_value(i)
        } else {
            volatile_value(0)
        };
        map.put(&key(i), &v).unwrap();
    }
}

fn churn(map: &dyn OrderedKvMap, seed: u64, stop: &AtomicBool) {
    let mut rng = SplitMix64(seed);
    while !stop.load(Ordering::Relaxed) {
        let i = rng.below(UNIVERSE as u64) as usize;
        if is_stable(i) {
            continue;
        }
        match rng.below(4) {
            0 => {
                map.remove(&key(i));
            }
            1 => {
                // Empty a whole volatile run: the chunk covering it can
                // drop to zero live entries and merge away.
                let base = i - i % 8 + 2;
                for j in base..base + 6 {
                    map.remove(&key(j));
                }
            }
            2 => {
                let base = i - i % 8 + 2;
                for j in base..base + 6 {
                    map.put(&key(j), &volatile_value(rng.below(4))).unwrap();
                }
            }
            _ => {
                map.put(&key(i), &volatile_value(rng.below(4))).unwrap();
            }
        }
    }
}

/// Validates one collected scan against the §1.1 contract.
/// `lo..=hi` are the inclusive index bounds the scan covered.
fn validate(scan: &[(Vec<u8>, Vec<u8>)], lo: usize, hi: usize, descending: bool, ctx: &str) {
    for w in scan.windows(2) {
        if descending {
            assert!(w[0].0 > w[1].0, "{ctx}: not strictly descending: {w:?}");
        } else {
            assert!(w[0].0 < w[1].0, "{ctx}: not strictly ascending: {w:?}");
        }
    }
    let universe: Vec<Vec<u8>> = (0..UNIVERSE).map(key).collect();
    let mut stable_seen = 0usize;
    for (k, v) in scan {
        let i = universe
            .binary_search(k)
            .unwrap_or_else(|_| panic!("{ctx}: phantom key {:?}", String::from_utf8_lossy(k)));
        assert!(
            (lo..=hi).contains(&i),
            "{ctx}: key {i} out of bounds [{lo}, {hi}]"
        );
        if is_stable(i) {
            assert_eq!(
                v,
                &stable_value(i),
                "{ctx}: stable key {i} has a foreign value"
            );
            stable_seen += 1;
        } else {
            assert_eq!(v[0], b'v', "{ctx}: volatile key {i} has a torn value {v:?}");
            assert!(v.len() == 2 && v[1] % 10 == 0 && v[1] <= 30, "{ctx}: {v:?}");
        }
    }
    let stable_expected = (lo..=hi).filter(|&i| is_stable(i)).count();
    assert_eq!(
        stable_seen, stable_expected,
        "{ctx}: scan over [{lo}, {hi}] missed a stable key"
    );
}

fn run_props(map: &dyn OrderedKvMap, scans_per_thread: usize, seed: u64) {
    seed_map(map);
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let stop = &stop;
        for t in 0..2u64 {
            s.spawn(move || churn(map, seed ^ (0x9e37 + t), stop));
        }
        let scanners: Vec<_> = (0..2u64)
            .map(|t| {
                s.spawn(move || {
                    let mut rng = SplitMix64(seed ^ (0xace5 + t));
                    for round in 0..scans_per_thread {
                        let a = rng.below(UNIVERSE as u64) as usize;
                        let b = rng.below(UNIVERSE as u64) as usize;
                        let (lo, hi) = (a.min(b), a.max(b));
                        let descending = rng.below(2) == 0;
                        let entries = rng.below(2) == 0;
                        let mut out: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
                        let mut f = |k: &[u8], v: &[u8]| {
                            out.push((k.to_vec(), v.to_vec()));
                            true
                        };
                        let (lk, hk) = (key(lo), key(hi));
                        let hk_excl = key(hi + 1); // ascend's hi is exclusive
                        match (descending, entries) {
                            (false, false) => map.ascend(Some(&lk), Some(&hk_excl), &mut f),
                            (false, true) => map.ascend_entries(Some(&lk), Some(&hk_excl), &mut f),
                            (true, false) => map.descend(Some(&hk), Some(&lk), &mut f),
                            (true, true) => map.descend_entries(Some(&hk), Some(&lk), &mut f),
                        };
                        let ctx = format!(
                            "seed {seed:#x} scanner {t} round {round} desc={descending} entries={entries}"
                        );
                        validate(&out, lo, hi, descending, &ctx);
                    }
                })
            })
            .collect();
        for h in scanners {
            h.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
    });
}

#[test]
fn scan_properties_oak_map() {
    let map = OakMap::with_config(cramped());
    run_props(&map, 60, 0x5ca9);
}

/// The sharded front-end k-way-merges per-shard cursors; the merge must
/// preserve every property (global order across shard boundaries is
/// where a merge bug would show).
#[test]
fn scan_properties_sharded_map() {
    let map = ShardedOakMap::with_config(4, cramped());
    run_props(&map, 60, 0xd15c);
}

// --- batch / per-entry A/B ---------------------------------------------
//
// `cramped()` runs the default batch pipeline; the tests below pin the
// per-entry walker (`batch_scan(false)`) on the same properties, and
// check the two modes agree entry-for-entry against a `BTreeMap` model
// on a quiescent map. Together with the churn runs above, any §1.1
// divergence between the modes fails one of these.

/// Per-entry walker under the same concurrent-churn properties.
#[test]
fn scan_properties_oak_map_per_entry() {
    let map = OakMap::with_config(cramped().batch_scan(false));
    run_props(&map, 40, 0xba7c);
}

#[test]
fn scan_properties_sharded_map_per_entry() {
    let map = ShardedOakMap::with_config(4, cramped().batch_scan(false));
    run_props(&map, 40, 0x0ff5);
}

/// Both modes under seeded failpoint schedules over the iterator
/// decision sites (`iter/*` is all-passive: yields and delays, no
/// injected errors — the churn writers must keep succeeding). The
/// perturbation stretches the windows between a batch snapshot and its
/// revalidation, and between per-entry steps and their staleness
/// checks.
#[test]
fn scan_properties_under_failpoint_schedules() {
    let _s = oak_failpoints::scenario();
    let iter_sites: Vec<_> = oak_core::all_failpoint_sites()
        .into_iter()
        .filter(|s| s.name.starts_with("iter/"))
        .collect();
    for (batch, seed) in [(true, 0x17a6u64), (false, 0x9e11u64)] {
        oak_failpoints::clear();
        oak_failpoints::Schedule::generate(seed, &iter_sites).install();
        let map = OakMap::with_config(cramped().batch_scan(batch));
        run_props(&map, 20, seed ^ 0xfa11);
    }
    oak_failpoints::clear();
}

/// Quiescent equivalence: after an identical seeded edit history, the
/// batch pipeline, the per-entry walker and a `BTreeMap` model must
/// agree *exactly* — ascending and descending, bounded and unbounded,
/// on both the stream and the Set-entries APIs.
#[test]
fn batch_and_per_entry_scans_agree_with_model() {
    use std::collections::BTreeMap;

    let batch = OakMap::with_config(cramped());
    let per_entry = OakMap::with_config(cramped().batch_scan(false));
    let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();

    let mut rng = SplitMix64(0xe9a1);
    for _ in 0..600 {
        let i = rng.below(UNIVERSE as u64) as usize;
        match rng.below(3) {
            0 => {
                batch.remove(&key(i));
                per_entry.remove(&key(i));
                model.remove(&key(i));
            }
            _ => {
                let v = volatile_value(rng.below(4));
                batch.put(&key(i), &v).unwrap();
                per_entry.put(&key(i), &v).unwrap();
                model.insert(key(i), v);
            }
        }
    }

    let collect = |map: &OakMap, desc: bool, entries: bool, a: Option<usize>, b: Option<usize>| {
        let mut out: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        let mut f = |k: &[u8], v: &[u8]| {
            out.push((k.to_vec(), v.to_vec()));
            true
        };
        let lk = a.map(key);
        let hk = b.map(key); // ascend's hi bound, exclusive
                             // descend's `from` is inclusive: key(b - 1) covers the same range
                             // (the keyspace is exactly the key(i) universe).
        let fk = b.map(|b| key(b - 1));
        match (desc, entries) {
            (false, false) => map.ascend(lk.as_deref(), hk.as_deref(), &mut f),
            (false, true) => map.ascend_entries(lk.as_deref(), hk.as_deref(), &mut f),
            (true, false) => map.descend(fk.as_deref(), lk.as_deref(), &mut f),
            (true, true) => map.descend_entries(fk.as_deref(), lk.as_deref(), &mut f),
        };
        out
    };

    let mut bounds: Vec<(Option<usize>, Option<usize>)> = vec![(None, None)];
    for _ in 0..20 {
        let a = rng.below(UNIVERSE as u64) as usize;
        let b = rng.below(UNIVERSE as u64) as usize;
        bounds.push((Some(a.min(b)), Some(a.max(b) + 1)));
    }

    for &(a, b) in &bounds {
        for desc in [false, true] {
            for entries in [false, true] {
                let got_batch = collect(&batch, desc, entries, a, b);
                let got_legacy = collect(&per_entry, desc, entries, a, b);
                let mut expect: Vec<(Vec<u8>, Vec<u8>)> = match (a, b) {
                    (Some(a), Some(b)) => model
                        .range(key(a)..key(b))
                        .map(|(k, v)| (k.clone(), v.clone()))
                        .collect(),
                    _ => model.iter().map(|(k, v)| (k.clone(), v.clone())).collect(),
                };
                if desc {
                    expect.reverse();
                }
                let ctx = format!("bounds {a:?}..{b:?} desc={desc} entries={entries}");
                assert_eq!(got_batch, expect, "batch vs model diverged: {ctx}");
                assert_eq!(got_legacy, expect, "per-entry vs model diverged: {ctx}");
            }
        }
    }
}
