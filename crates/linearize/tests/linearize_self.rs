//! The checker checked: hand-crafted histories with known verdicts.
//!
//! Accepting tests pin down that legal concurrency (including the legal
//! non-atomic scan behaviours of §1.1) is not flagged; rejecting tests
//! pin down that the checker actually catches lost updates, stale reads,
//! phantom keys, duplicates and missed stable keys.

use oak_linearize::{check_history, History, Op, OpRecord, Ret, Violation};

fn rec(thread: usize, op: Op, ret: Ret, inv: u64, res: u64) -> OpRecord {
    assert!(inv < res);
    OpRecord {
        thread,
        op,
        ret,
        inv,
        res,
    }
}

fn put(k: &str, v: &[u8]) -> Op {
    Op::Put {
        key: k.into(),
        value: v.to_vec(),
    }
}

fn pia(k: &str, v: &[u8]) -> Op {
    Op::PutIfAbsent {
        key: k.into(),
        value: v.to_vec(),
    }
}

fn get(k: &str) -> Op {
    Op::Get { key: k.into() }
}

fn remove(k: &str) -> Op {
    Op::Remove { key: k.into() }
}

fn ascend_all() -> Op {
    Op::Ascend {
        lo: None,
        hi: None,
        entries: false,
    }
}

fn history(mut ops: Vec<OpRecord>) -> History {
    ops.sort_by_key(|o| o.inv);
    History { ops }
}

#[test]
fn accepts_sequential_story() {
    let h = history(vec![
        rec(0, put("a", b"1"), Ret::Unit, 0, 1),
        rec(0, get("a"), Ret::Val(Some(b"1".to_vec())), 2, 3),
        rec(0, remove("a"), Ret::Bool(true), 4, 5),
        rec(0, get("a"), Ret::Val(None), 6, 7),
        rec(0, remove("a"), Ret::Bool(false), 8, 9),
    ]);
    let stats = check_history(&h).unwrap();
    assert_eq!(stats.sequential_keys, 1);
    assert_eq!(stats.point_ops, 5);
}

#[test]
fn rejects_stale_read() {
    // Sequential: get must see the put's value.
    let h = history(vec![
        rec(0, put("a", b"1"), Ret::Unit, 0, 1),
        rec(0, put("a", b"2"), Ret::Unit, 2, 3),
        rec(1, get("a"), Ret::Val(Some(b"1".to_vec())), 4, 5),
    ]);
    match *check_history(&h).unwrap_err() {
        Violation::Key { ref key, .. } => assert_eq!(key, b"a"),
        v => panic!("wrong violation: {v}"),
    }
}

#[test]
fn rejects_double_insert() {
    // Two concurrent put_if_absent on one key cannot both insert.
    let h = history(vec![
        rec(0, pia("a", b"1"), Ret::Bool(true), 0, 10),
        rec(1, pia("a", b"2"), Ret::Bool(true), 1, 9),
    ]);
    assert!(check_history(&h).is_err());
}

#[test]
fn accepts_racing_put_if_absent() {
    // One wins, one loses: fine in either order.
    let h = history(vec![
        rec(0, pia("a", b"1"), Ret::Bool(true), 0, 10),
        rec(1, pia("a", b"2"), Ret::Bool(false), 1, 9),
        rec(0, get("a"), Ret::Val(Some(b"1".to_vec())), 11, 12),
    ]);
    let stats = check_history(&h).unwrap();
    assert_eq!(stats.keys, 1);
}

#[test]
fn rejects_lost_update() {
    // Both computes claim to have run, but the final read shows only one
    // application of the transform (b"1" -> b"2" -> b"3").
    let h = history(vec![
        rec(0, put("a", b"1"), Ret::Unit, 0, 1),
        rec(
            1,
            Op::ComputeIfPresent { key: b"a".to_vec() },
            Ret::Bool(true),
            2,
            10,
        ),
        rec(
            2,
            Op::ComputeIfPresent { key: b"a".to_vec() },
            Ret::Bool(true),
            3,
            9,
        ),
        rec(0, get("a"), Ret::Val(Some(b"2".to_vec())), 11, 12),
    ]);
    assert!(check_history(&h).is_err());
}

#[test]
fn accepts_chained_computes() {
    let h = history(vec![
        rec(0, put("a", b"1"), Ret::Unit, 0, 1),
        rec(
            1,
            Op::ComputeIfPresent { key: b"a".to_vec() },
            Ret::Bool(true),
            2,
            10,
        ),
        rec(
            2,
            Op::ComputeIfPresent { key: b"a".to_vec() },
            Ret::Bool(true),
            3,
            9,
        ),
        rec(0, get("a"), Ret::Val(Some(b"3".to_vec())), 11, 12),
    ]);
    check_history(&h).unwrap();
}

#[test]
fn full_search_finds_non_greedy_order() {
    // Response order replays get(2) first (state Absent) and fails; the
    // only valid order linearizes put(2) before its response. Exercises
    // the Wing & Gong stage.
    let h = history(vec![
        rec(0, put("a", b"1"), Ret::Unit, 0, 9),
        rec(1, put("a", b"2"), Ret::Unit, 1, 8),
        rec(2, get("a"), Ret::Val(Some(b"2".to_vec())), 2, 3),
        rec(3, get("a"), Ret::Val(Some(b"1".to_vec())), 4, 5),
    ]);
    let stats = check_history(&h).unwrap();
    assert_eq!(stats.searched_keys, 1);
}

#[test]
fn injected_errors_are_no_ops() {
    // A failed put must not be visible; a later get seeing its value is a
    // violation, a get seeing nothing is fine.
    let ok = history(vec![
        rec(0, put("a", b"1"), Ret::Err, 0, 1),
        rec(0, get("a"), Ret::Val(None), 2, 3),
    ]);
    check_history(&ok).unwrap();

    let bad = history(vec![
        rec(0, put("a", b"1"), Ret::Err, 0, 1),
        rec(0, get("a"), Ret::Val(Some(b"1".to_vec())), 2, 3),
    ]);
    assert!(check_history(&bad).is_err());
}

#[test]
fn rejects_phantom_scan_key() {
    let h = history(vec![
        rec(0, put("a", b"1"), Ret::Unit, 0, 1),
        rec(
            1,
            ascend_all(),
            Ret::Scan(vec![
                (b"a".to_vec(), b"1".to_vec()),
                (b"z".to_vec(), b"9".to_vec()),
            ]),
            2,
            3,
        ),
    ]);
    match *check_history(&h).unwrap_err() {
        Violation::Scan { ref reason, .. } => assert!(reason.contains("phantom"), "{reason}"),
        v => panic!("wrong violation: {v}"),
    }
}

#[test]
fn rejects_missed_stable_key() {
    // "b" settled present before the scan began and nothing removed it.
    let h = history(vec![
        rec(0, put("a", b"1"), Ret::Unit, 0, 1),
        rec(0, put("b", b"2"), Ret::Unit, 2, 3),
        rec(
            1,
            ascend_all(),
            Ret::Scan(vec![(b"a".to_vec(), b"1".to_vec())]),
            4,
            5,
        ),
    ]);
    match *check_history(&h).unwrap_err() {
        Violation::Scan { ref reason, .. } => assert!(reason.contains("missed"), "{reason}"),
        v => panic!("wrong violation: {v}"),
    }
}

#[test]
fn rejects_duplicate_and_unordered_scans() {
    let dup = history(vec![
        rec(0, put("a", b"1"), Ret::Unit, 0, 1),
        rec(
            1,
            ascend_all(),
            Ret::Scan(vec![
                (b"a".to_vec(), b"1".to_vec()),
                (b"a".to_vec(), b"1".to_vec()),
            ]),
            2,
            3,
        ),
    ]);
    assert!(check_history(&dup).is_err());

    let unordered = history(vec![
        rec(0, put("a", b"1"), Ret::Unit, 0, 1),
        rec(0, put("b", b"2"), Ret::Unit, 2, 3),
        rec(
            1,
            ascend_all(),
            Ret::Scan(vec![
                (b"b".to_vec(), b"2".to_vec()),
                (b"a".to_vec(), b"1".to_vec()),
            ]),
            4,
            5,
        ),
    ]);
    assert!(check_history(&unordered).is_err());
}

#[test]
fn rejects_resurrected_scan_key() {
    // Removed conclusively before the scan began, never re-inserted.
    let h = history(vec![
        rec(0, put("a", b"1"), Ret::Unit, 0, 1),
        rec(0, remove("a"), Ret::Bool(true), 2, 3),
        rec(
            1,
            ascend_all(),
            Ret::Scan(vec![(b"a".to_vec(), b"1".to_vec())]),
            4,
            5,
        ),
    ]);
    match *check_history(&h).unwrap_err() {
        Violation::Scan { ref reason, .. } => assert!(reason.contains("removed"), "{reason}"),
        v => panic!("wrong violation: {v}"),
    }
}

#[test]
fn accepts_legal_nonatomic_scan() {
    // Removes and an insert race the scan; §1.1 allows the scan to see
    // "b" or not, and to see "c" (inserted concurrently) or not.
    let with_b = history(vec![
        rec(0, put("a", b"1"), Ret::Unit, 0, 1),
        rec(0, put("b", b"2"), Ret::Unit, 2, 3),
        rec(1, remove("b"), Ret::Bool(true), 4, 20),
        rec(2, put("c", b"3"), Ret::Unit, 5, 19),
        rec(
            3,
            ascend_all(),
            Ret::Scan(vec![
                (b"a".to_vec(), b"1".to_vec()),
                (b"b".to_vec(), b"2".to_vec()),
                (b"c".to_vec(), b"3".to_vec()),
            ]),
            6,
            18,
        ),
    ]);
    check_history(&with_b).unwrap();

    let without = history(vec![
        rec(0, put("a", b"1"), Ret::Unit, 0, 1),
        rec(0, put("b", b"2"), Ret::Unit, 2, 3),
        rec(1, remove("b"), Ret::Bool(true), 4, 20),
        rec(
            3,
            ascend_all(),
            Ret::Scan(vec![(b"a".to_vec(), b"1".to_vec())]),
            6,
            18,
        ),
    ]);
    check_history(&without).unwrap();
}

#[test]
fn rejects_settled_scan_value_mismatch() {
    let h = history(vec![
        rec(0, put("a", b"1"), Ret::Unit, 0, 1),
        rec(
            1,
            ascend_all(),
            Ret::Scan(vec![(b"a".to_vec(), b"7".to_vec())]),
            2,
            3,
        ),
    ]);
    match *check_history(&h).unwrap_err() {
        Violation::Scan { ref reason, .. } => assert!(reason.contains("value"), "{reason}"),
        v => panic!("wrong violation: {v}"),
    }
}

#[test]
fn respects_descending_bounds() {
    // Descending scan over [lo, from] — inclusive both ends.
    let h = history(vec![
        rec(0, put("a", b"1"), Ret::Unit, 0, 1),
        rec(0, put("b", b"2"), Ret::Unit, 2, 3),
        rec(0, put("c", b"3"), Ret::Unit, 4, 5),
        rec(
            1,
            Op::Descend {
                from: Some(b"b".to_vec()),
                lo: Some(b"a".to_vec()),
                entries: false,
            },
            Ret::Scan(vec![
                (b"b".to_vec(), b"2".to_vec()),
                (b"a".to_vec(), b"1".to_vec()),
            ]),
            6,
            7,
        ),
    ]);
    check_history(&h).unwrap();

    let out_of_bounds = history(vec![
        rec(0, put("c", b"3"), Ret::Unit, 0, 1),
        rec(
            1,
            Op::Descend {
                from: Some(b"b".to_vec()),
                lo: None,
                entries: false,
            },
            Ret::Scan(vec![(b"c".to_vec(), b"3".to_vec())]),
            2,
            3,
        ),
    ]);
    assert!(check_history(&out_of_bounds).is_err());
}
