//! Deterministic regression schedules for the scan/rebalance races fixed
//! in oak-core, replayed through the `oak_failpoints` sync-point engine.
//!
//! Each test pins an exact thread interleaving with a `SyncSchedule`:
//! the scanner parks at an iterator decision site mid-scan, the writer
//! drives a rebalance (split or head-merge) under it, and the scanner
//! resumes on a now-frozen chunk. Before the fixes, a scanner kept
//! walking the frozen snapshot: it missed keys removed-then-reinserted
//! around the pause (stale values held forever) and never re-entered the
//! live chunk list. The fixed iterators detect `replacement()` and
//! re-resolve from the last-yielded key — the schedules below *require*
//! the `iter/stale-reenter` site to fire (`session.completed()`), so
//! they fail loudly on any regression to the old behaviour.
//!
//! Chunk math making the rebalances deterministic: `chunk_capacity(8)`
//! with a sky-high `rebalance_unsorted_ratio` means a rebalance fires
//! exactly when an insert fills the 8th entry slot, and only then.

use oak_core::{OakMap, OakMapConfig, OrderedKvMap};
use oak_failpoints::{sync_point, sync_role, sync_scenario, SyncSchedule};

fn key(i: usize) -> Vec<u8> {
    format!("k{i:02}").into_bytes()
}

/// Capacity-8 chunks; rebalance only on chunk-full. The per-entry walker
/// is pinned on (`batch_scan(false)`): these schedules gate on its
/// fine-grained `iter/ascend-step` / `iter/descend-step` /
/// `iter/stale-reenter` sites, which the batch pipeline replaces with
/// per-batch sites (see [`batch_refill_revalidates_after_split`] for the
/// batch-granularity equivalent).
fn config() -> OakMapConfig {
    let mut cfg = OakMapConfig::small().chunk_capacity(8).batch_scan(false);
    cfg.rebalance_unsorted_ratio = 10.0;
    cfg
}

// The collect closures announce each delivered pair through a
// `test/yielded` gate. Schedules alternate `iter/*-step` (the cursor's
// loop-top decision site, popped *before* the staleness check) with
// `test/yielded` (popped after the pair reached the caller), so the
// writer is released only once the last pre-pause yield has fully
// completed — by which point the scanner's next stop is parked at the
// loop top, *ahead* of its staleness check. Without the yielded gates
// the step pop itself releases the writer, and whether the scanner's
// in-flight loop body sees the chunk frozen is a coin flip.

fn collect_descend(map: &OakMap) -> Vec<(Vec<u8>, Vec<u8>)> {
    let _role = sync_role("scan");
    let mut out = Vec::new();
    map.descend(None, None, &mut |k: &[u8], v: &[u8]| {
        out.push((k.to_vec(), v.to_vec()));
        sync_point!("test/yielded");
        true
    });
    out
}

fn collect_ascend(map: &OakMap, entries: bool) -> Vec<(Vec<u8>, Vec<u8>)> {
    let _role = sync_role("scan");
    let mut out = Vec::new();
    let mut f = |k: &[u8], v: &[u8]| {
        out.push((k.to_vec(), v.to_vec()));
        sync_point!("test/yielded");
        true
    };
    if entries {
        map.ascend_entries(None, None, &mut f);
    } else {
        map.ascend(None, None, &mut f);
    }
    out
}

/// R1 — descending scan across a remove + split + reinsert.
///
/// The scanner yields k5, k4 and parks. The writer removes k2, inserts
/// k6 and k7 (the 8th entry triggers a split; the original chunk is
/// frozen with a replacement), then re-inserts k2 with a new value into
/// the live chunk. A scanner stuck on the frozen snapshot would skip k2
/// entirely (its value header is deleted there); the fixed iterator
/// re-enters at the live chunk below k4 and reports k2's fresh value.
#[test]
fn descend_reenters_live_chunk_after_split() {
    let map = OakMap::with_config(config());
    for i in 0..6 {
        map.put(&key(i), b"old").unwrap();
    }

    let schedule = SyncSchedule::parse(
        "scan@iter/descend-step    # decision for k5
         scan@test/yielded         # k5 delivered
         scan@iter/descend-step    # decision for k4
         scan@test/yielded         # k4 delivered -> releases the writer
         mut@test/go               # writer: remove k2, fill chunk, re-put k2
         mut@test/done
         scan@iter/descend-step    # scanner parked here during the rebalance
         scan@iter/stale-reenter   # ... and must detect the replacement",
    )
    .unwrap();
    let session = sync_scenario(schedule);

    let collected = std::thread::scope(|s| {
        let scanner = s.spawn(|| collect_descend(&map));

        let _role = sync_role("mut");
        sync_point!("test/go");
        map.remove(&key(2));
        map.put(&key(6), b"old").unwrap(); // 7th entry
        map.put(&key(7), b"old").unwrap(); // 8th entry -> split
        map.put(&key(2), b"new").unwrap(); // lands in a live chunk
        sync_point!("test/done");

        scanner.join().unwrap()
    });

    assert!(
        session.completed(),
        "schedule abandoned — the scanner never took the stale re-entry \
         path; remaining steps: {:?}",
        session.remaining()
    );
    let expect: Vec<(Vec<u8>, Vec<u8>)> = [5, 4, 3, 2, 1, 0]
        .iter()
        .map(|&i| {
            let v = if i == 2 {
                b"new".to_vec()
            } else {
                b"old".to_vec()
            };
            (key(i), v)
        })
        .collect();
    assert_eq!(
        collected, expect,
        "descending scan missed the reinserted key"
    );
}

/// R2 — head merge under a paused ascending scan, plus the
/// `replace_first` verify-and-swing post-conditions.
///
/// Eight inserts split the list into [k0..k3] and [k4..k7]. The scanner
/// yields k0 and parks; the writer removes k0..k3, emptying the head
/// chunk and triggering a merge that swings the list head through
/// `Index::replace_first` (the verify-and-swing fixed in oak-core — the
/// old unchecked swing could clobber a concurrently-installed head).
/// The resumed scanner must re-enter at the merged live head.
#[test]
fn head_merge_under_paused_scan() {
    let map = OakMap::with_config(config());
    for i in 0..8 {
        map.put(&key(i), b"old").unwrap(); // 8th insert -> split
    }

    let schedule = SyncSchedule::parse(
        "scan@iter/ascend-step     # decision for k0
         scan@test/yielded         # k0 delivered -> releases the writer
         mut@test/go               # writer: remove k0..k3 -> head merge
         mut@test/done
         scan@iter/ascend-step     # scanner parked here during the merge
         scan@iter/stale-reenter",
    )
    .unwrap();
    let session = sync_scenario(schedule);

    let collected = std::thread::scope(|s| {
        let scanner = s.spawn(|| collect_ascend(&map, false));

        let _role = sync_role("mut");
        sync_point!("test/go");
        for i in 0..4 {
            assert!(map.remove(&key(i)));
        }
        sync_point!("test/done");

        scanner.join().unwrap()
    });

    assert!(
        session.completed(),
        "schedule abandoned; remaining steps: {:?}",
        session.remaining()
    );
    // k0 was yielded before its removal (legal §1.1); the rest must come
    // from the merged live head.
    let expect: Vec<(Vec<u8>, Vec<u8>)> = [0, 4, 5, 6, 7]
        .iter()
        .map(|&i| (key(i), b"old".to_vec()))
        .collect();
    assert_eq!(collected, expect);

    // Post-merge map state: the head swing lost nothing.
    assert_eq!(map.len(), 4);
    for i in 0..4 {
        assert_eq!(map.get_copy(&key(i)), None);
    }
    for i in 4..8 {
        assert_eq!(map.get_copy(&key(i)).as_deref(), Some(&b"old"[..]));
    }
    let after: Vec<Vec<u8>> = {
        let mut ks = Vec::new();
        map.ascend(None, None, &mut |k: &[u8], _: &[u8]| {
            ks.push(k.to_vec());
            true
        });
        ks
    };
    assert_eq!(after, (4..8).map(key).collect::<Vec<_>>());
}

/// R4 — the resurrected-chunk splice race, found by the seeded corpus
/// (it fired the "splice could not find engaged chunk" backstop).
///
/// A rebalancer captures its tail pointer *before* building replacement
/// chunks. If a concurrent rebalance splices that tail chunk out of the
/// list in the window before the first rebalancer's own splice, the
/// first splice re-links the replaced tail into the next-chain. Reads
/// still converge through replacement pointers, but the tail's live
/// replacement is no longer the successor of anything — so a later
/// rebalance of *it* can never find a predecessor and its splice walk
/// spun forever. The fixed walk heals the chain: on meeting a replaced
/// successor it physically swings `next` to the resolved live chunk.
///
/// Roles: r1 merge-rebalances the emptied head (parked at its splice
/// with the stale tail captured), r2 splits the tail chunk out from
/// under it, r3 then merge-rebalances the detached live replacement.
#[test]
fn splice_heals_resurrected_tail_chunk() {
    let map = OakMap::with_config(config());
    for i in 0..12 {
        map.put(&key(i), b"old").unwrap();
    }
    // Chain now: [k00..k03] -> [k04..k07] -> [k08..k11].

    let schedule = SyncSchedule::parse(
        "r1@rebalance/start        # merge-rebalance of the emptied head begins
         r2@test/go2               # ... r1 is parked at splice, tail captured
         r2@test/done2             # r2 split the tail chunk out of the chain
         r1@rebalance/splice       # r1 splices, resurrecting the replaced tail
         r1@test/done1
         r3@test/go3               # r3's merge must find the detached live chunk
         r3@test/done3",
    )
    .unwrap();
    let session = sync_scenario(schedule);

    std::thread::scope(|s| {
        s.spawn(|| {
            let _role = sync_role("r1");
            // Emptying [k00..k03] triggers a rebalance that merges in
            // [k04..k07] and captures tail = the [k08..k11] chunk.
            for i in [3, 2, 1, 0] {
                assert!(map.remove(&key(i)));
            }
            sync_point!("test/done1");
        });
        s.spawn(|| {
            let _role = sync_role("r2");
            sync_point!("test/go2");
            // Fill [k08..k11] to capacity: it splits, and its predecessor's
            // next pointer is swung past it — invalidating r1's tail.
            for i in 12..16 {
                map.put(&key(i), b"new").unwrap();
            }
            sync_point!("test/done2");
        });
        s.spawn(|| {
            let _role = sync_role("r3");
            sync_point!("test/go3");
            // Emptying the live [k08..k11] replacement triggers the merge
            // whose splice walk needs a predecessor that, before the fix,
            // no longer existed in the next-chain.
            for i in 8..12 {
                assert!(map.remove(&key(i)));
            }
            sync_point!("test/done3");
        });
    });

    assert!(
        session.completed(),
        "schedule abandoned; remaining steps: {:?}",
        session.remaining()
    );
    assert_eq!(map.len(), 8);
    let expect: Vec<(Vec<u8>, Vec<u8>)> = (4..16)
        .filter(|i| !(8..12).contains(i))
        .map(|i| {
            let v = if i >= 12 {
                b"new".to_vec()
            } else {
                b"old".to_vec()
            };
            (key(i), v)
        })
        .collect();
    let mut seen = Vec::new();
    map.ascend(None, None, &mut |k: &[u8], v: &[u8]| {
        seen.push((k.to_vec(), v.to_vec()));
        true
    });
    assert_eq!(seen, expect, "post-race map contents diverged");
}

/// R5 — batch-mode scan crossing a chunk that rebalances mid-scan: the
/// batch-granularity counterpart of R3.
///
/// With `batch_scan` on (the default) the cursor snapshots k0..k5 into
/// its first batch at construction, drains all six entries, and parks at
/// the once-per-batch `iter/batch-refill` revalidation site. The writer
/// then removes k4, splits the chunk (inserts k6, k7), re-inserts k4,
/// and appends k8 — so the chunk under the drained snapshot is frozen,
/// replaced, and its revision stamp advanced. The resumed refill must
/// detect staleness (replacement pointer + revision mismatch), re-locate
/// through the index bounded by the last drained key (k5), and deliver
/// the post-split tail exactly once: k6, k7 from the replacement chunk
/// and the newly appended k8. The already-yielded k0..k5 must not
/// repeat, and the revalidation must be visible in the pool counters.
#[test]
fn batch_refill_revalidates_after_split() {
    for entries in [false, true] {
        let mut cfg = OakMapConfig::small().chunk_capacity(8);
        cfg.rebalance_unsorted_ratio = 10.0;
        assert!(cfg.batch_scan, "batch mode is the default under test");
        let map = OakMap::with_config(cfg);
        for i in 0..6 {
            map.put(&key(i), b"old").unwrap();
        }

        let schedule = SyncSchedule::parse(
            "scan@iter/batch-step      # drain k0 from the snapshot
             scan@test/yielded
             scan@iter/batch-step      # k1
             scan@test/yielded
             scan@iter/batch-step      # k2
             scan@test/yielded
             scan@iter/batch-step      # k3
             scan@test/yielded
             scan@iter/batch-step      # k4
             scan@test/yielded
             scan@iter/batch-step      # k5
             scan@test/yielded         # batch drained -> releases the writer
             mut@test/go               # writer: remove k4, split, re-put k4, put k8
             mut@test/done
             scan@iter/batch-refill    # the once-per-batch revalidation fires",
        )
        .unwrap();
        let session = sync_scenario(schedule);

        let collected = std::thread::scope(|s| {
            let scanner = s.spawn(|| collect_ascend(&map, entries));

            let _role = sync_role("mut");
            sync_point!("test/go");
            map.remove(&key(4));
            map.put(&key(6), b"old").unwrap(); // 7th entry
            map.put(&key(7), b"old").unwrap(); // 8th entry -> split
            map.put(&key(4), b"new").unwrap(); // behind the resume key
            map.put(&key(8), b"new").unwrap(); // ahead of the resume key
            sync_point!("test/done");

            scanner.join().unwrap()
        });

        assert!(
            session.completed(),
            "entries={entries}: schedule abandoned — the batch refill \
             never fired; remaining steps: {:?}",
            session.remaining()
        );
        // k0..k5 from the pre-split snapshot (k4 yielded before its
        // remove — legal §1.1), then the post-split tail. The re-put k4
        // sits behind the k5 resume bound: delivering it again would be
        // a duplicate, not freshness.
        let mut expect: Vec<(Vec<u8>, Vec<u8>)> =
            (0..8).map(|i| (key(i), b"old".to_vec())).collect();
        expect.push((key(8), b"new".to_vec()));
        assert_eq!(
            collected, expect,
            "entries={entries}: batch scan lost or repeated keys across \
             the mid-scan rebalance"
        );
        let pool = map.stats().pool;
        assert!(
            pool.scan_revalidations >= 1,
            "entries={entries}: the stale refill was not counted"
        );
        assert!(
            pool.scan_chunk_batches >= 2,
            "entries={entries}: expected at least the construction \
             snapshot plus the revalidated one"
        );
    }
}

/// R6 — readers `locate` through the frozen head while the swing
/// (`ChunkIndex::replace_first`) is parked mid-splice.
///
/// Eight inserts split the list into [k0..k3] and [k4..k7]. The mutator
/// removes k0..k3; the resulting head merge freezes both chunks, builds
/// the merged replacement, and is then *parked at the entry of
/// `replace_first`* — inside `splice`, before the first-pointer swing
/// and before `set_replacement` makes the merged chunk reachable. In
/// that window the index's first pointer still names the frozen old
/// head, so every `locate` lands on a frozen chunk mid-rebalance.
/// Before the verify-and-swing fix in `replace_first`, a mismatched
/// swing here could silently detach the live chain out from under such
/// readers. The reader must see the post-remove state (k0..k3 gone,
/// k4..k7 live) both inside the frozen-head window and after the swing
/// completes.
#[test]
fn locate_resolves_through_stale_head_during_parked_swing() {
    let map = OakMap::with_config(config());
    for i in 0..8 {
        map.put(&key(i), b"old").unwrap(); // 8th insert -> split
    }

    let schedule = SyncSchedule::parse(
        "mut@test/go                # mutator: remove k0..k3 -> head merge
         mut@rebalance/start
         mut@rebalance/splice       # merged chunk built; splice imminent
         rdr@test/begin             # reader probes the frozen-head window
         rdr@test/probed
         mut@index/replace-first    # only now may the swing proceed
         mut@test/done
         rdr@test/final",
    )
    .unwrap();
    let session = sync_scenario(schedule);

    let probe = |map: &OakMap| -> (Vec<Option<Vec<u8>>>, Vec<Vec<u8>>) {
        let gets: Vec<Option<Vec<u8>>> = (0..8).map(|i| map.get_copy(&key(i))).collect();
        let mut keys = Vec::new();
        map.ascend(None, None, &mut |k: &[u8], _: &[u8]| {
            keys.push(k.to_vec());
            true
        });
        (gets, keys)
    };

    std::thread::scope(|s| {
        let reader = s.spawn(|| {
            let _role = sync_role("rdr");
            sync_point!("test/begin");
            // The swing is gated behind test/probed: every lookup here
            // lands on the frozen pre-merge chunks via the old first
            // pointer.
            let (gets, keys) = probe(&map);
            sync_point!("test/probed");
            // And once more after the swing has landed.
            sync_point!("test/final");
            let after = probe(&map);
            ((gets, keys), after)
        });

        let _role = sync_role("mut");
        sync_point!("test/go");
        for i in 0..4 {
            assert!(map.remove(&key(i))); // 4th remove -> head merge
        }
        sync_point!("test/done");

        let ((mid_gets, mid_keys), (after_gets, after_keys)) = reader.join().unwrap();
        let expect_gets: Vec<Option<Vec<u8>>> =
            (0..8).map(|i| (i >= 4).then(|| b"old".to_vec())).collect();
        let expect_keys: Vec<Vec<u8>> = (4..8).map(key).collect();
        assert_eq!(
            (mid_gets, mid_keys),
            (expect_gets.clone(), expect_keys.clone()),
            "reads through the stale first pointer diverged"
        );
        assert_eq!(
            (after_gets, after_keys),
            (expect_gets, expect_keys),
            "reads after the completed swing diverged"
        );
    });

    assert!(
        session.completed(),
        "schedule abandoned — the head merge never reached replace_first; \
         remaining steps: {:?}",
        session.remaining()
    );
    assert_eq!(map.len(), 4);
    map.validate();
}

/// R3 — ascending freshness across a remove + split + reinsert, on both
/// ascending APIs (the stream scan and the Set-entries scan now share
/// one cursor; the same schedule must drive both identically).
#[test]
fn ascend_reenters_live_chunk_after_split() {
    for entries in [false, true] {
        let map = OakMap::with_config(config());
        for i in 0..6 {
            map.put(&key(i), b"old").unwrap();
        }

        let schedule = SyncSchedule::parse(
            "scan@iter/ascend-step     # decision for k0
             scan@test/yielded         # k0 delivered
             scan@iter/ascend-step     # decision for k1
             scan@test/yielded         # k1 delivered -> releases the writer
             mut@test/go               # writer: remove k4, fill chunk, re-put k4
             mut@test/done
             scan@iter/ascend-step     # scanner parked here during the split
             scan@iter/stale-reenter   # then must re-enter live",
        )
        .unwrap();
        let session = sync_scenario(schedule);

        let collected = std::thread::scope(|s| {
            let scanner = s.spawn(|| collect_ascend(&map, entries));

            let _role = sync_role("mut");
            sync_point!("test/go");
            map.remove(&key(4));
            map.put(&key(6), b"old").unwrap(); // 7th entry
            map.put(&key(7), b"old").unwrap(); // 8th entry -> split
            map.put(&key(4), b"new").unwrap(); // lands in a live chunk
            sync_point!("test/done");

            scanner.join().unwrap()
        });

        assert!(
            session.completed(),
            "entries={entries}: schedule abandoned; remaining: {:?}",
            session.remaining()
        );
        let expect: Vec<(Vec<u8>, Vec<u8>)> = (0..8)
            .map(|i| {
                let v = if i == 4 {
                    b"new".to_vec()
                } else {
                    b"old".to_vec()
                };
                (key(i), v)
            })
            .collect();
        assert_eq!(
            collected, expect,
            "entries={entries}: ascending scan missed the reinserted key"
        );
    }
}
