//! Seeded corpus: concurrent workloads under deterministic fault
//! schedules, every recorded history linearizability- and scan-checked.
//!
//! Each seed derives (a) a fault schedule over every failpoint site
//! reachable through the map (injected errors, yields, delays — see
//! `oak_failpoints::Schedule::generate`) and (b) a seeded workload mix.
//! Yields and delays perturb the physical interleaving around
//! linearization points; injected errors exercise the
//! fail-before-mutation contract end-to-end, because the checker treats
//! an `Err` return as a strict no-op.
//!
//! The corpus runs both the single [`OakMap`] and the [`ShardedOakMap`]
//! front-end (whose scans k-way-merge per-shard iterators). Tune the
//! size with `OAK_LINEARIZE_SEEDS` (default 210 total, CI keeps it ≥
//! 200; TSan builds dial it down).
//!
//! Every test holds [`oak_failpoints::scenario`]: the registry is
//! process-global and the test runner is concurrent.

use oak_core::{all_failpoint_sites, OakMap, OakMapConfig, OrderedKvMap, ShardedOakMap};
use oak_failpoints::{scenario, Schedule};
use oak_linearize::{run_and_check, WorkloadCfg};
use oak_mempool::{PoolConfig, ReclamationPolicy};

/// Tiny chunks: a handful of inserts triggers a rebalance, so the corpus
/// constantly exercises scan/rebalance and remove/rebalance hand-offs.
fn cramped_config(reclaim: bool) -> OakMapConfig {
    let policy = if reclaim {
        ReclamationPolicy::ReclaimHeaders
    } else {
        ReclamationPolicy::RetainHeaders
    };
    OakMapConfig::small()
        .chunk_capacity(8)
        .pool(PoolConfig {
            magazines: false,
            lockfree: false,
            arena_size: 16 << 10,
            max_arenas: 16,
            ..Default::default()
        })
        .reclamation(policy)
}

fn seeds(default: u64) -> u64 {
    // OAK_LINEARIZE_SEEDS scales the whole corpus; each test takes a
    // proportional share.
    match std::env::var("OAK_LINEARIZE_SEEDS") {
        Ok(v) => {
            let total: u64 = v.parse().expect("OAK_LINEARIZE_SEEDS must be an integer");
            (total * default).div_ceil(210).max(1)
        }
        Err(_) => default,
    }
}

fn check_one(map: &dyn OrderedKvMap, seed: u64) {
    let cfg = WorkloadCfg {
        threads: 3,
        ops_per_thread: 40,
        keyspace: 10,
        seed,
    };
    if let Err(v) = run_and_check(map, &cfg) {
        panic!("seed {seed:#x}: {v}");
    }
}

#[test]
fn corpus_oak_map() {
    let _s = scenario();
    for seed in 0..seeds(140) {
        oak_failpoints::clear();
        Schedule::generate(seed, &all_failpoint_sites()).install();
        let map = OakMap::with_config(cramped_config(seed % 2 == 0));
        check_one(&map, seed);
    }
}

#[test]
fn corpus_sharded_map() {
    let _s = scenario();
    for seed in 0..seeds(70) {
        oak_failpoints::clear();
        Schedule::generate(!seed, &all_failpoint_sites()).install();
        let map = ShardedOakMap::with_config(3, cramped_config(seed % 2 == 1));
        check_one(&map, seed ^ 0x5eed);
    }
}

/// No faults at all: a pure-concurrency baseline over a default-sized
/// map, so corpus failures can be attributed to injection vs. timing.
#[test]
fn corpus_no_faults() {
    for seed in 0..seeds(24) {
        let map = OakMap::with_config(OakMapConfig::small().chunk_capacity(8));
        check_one(&map, seed.wrapping_mul(0x9e37_79b9));
    }
}
