#![cfg(all(feature = "failpoints", feature = "audit"))]
//! Cancellation leak-freedom: abandon operations at every failpoint site
//! under a tight deadline and prove — with the off-heap auditor — that
//! nothing leaks and the map stays usable.
//!
//! This is the deterministic exhaustive variant of a property test: every
//! registered failpoint site × every write operation class, with
//! errorable sites forced to fail on *every* hit (so each budgeted retry
//! re-encounters the fault until the deadline trips) and passive sites
//! slowed enough that deadlines can expire mid-operation. After each
//! site, the quarantine is drained and the auditor must report zero
//! leaked bytes.

use std::time::Duration;

use oak_core::{all_failpoint_sites, OakError, OakMap, OakMapConfig, OpBudget, RetryPolicy};
use oak_failpoints::{configure, deconfigure, scenario, Action, FirePolicy};
use oak_mempool::PoolConfig;

fn test_map() -> OakMap {
    OakMap::with_config(
        OakMapConfig::small()
            .chunk_capacity(16) // rebalance under fault pressure
            .pool(PoolConfig {
                magazines: false,
                lockfree: false,
                arena_size: 256 << 10,
                max_arenas: 4,
                ..Default::default()
            }),
    )
}

fn tight_budget() -> OpBudget {
    OpBudget::with_deadline(Duration::from_millis(25)).with_policy(
        RetryPolicy::default()
            .with_backoff(50, 500)
            .with_transient_fault_retry(true),
    )
}

/// Each write class an abandonment can interrupt: fresh insert, replace,
/// in-place compute, remove.
fn run_ops(map: &OakMap, round: u64) -> Vec<Result<(), OakError>> {
    let budget = tight_budget();
    let fresh = format!("fresh-{round:04}").into_bytes();
    let mut results = Vec::new();
    results.push(map.put_budgeted(&fresh, b"new-value", &budget).map(|_| ()));
    results.push(
        map.put_budgeted(b"existing", b"replaced", &budget)
            .map(|_| ()),
    );
    results.push(
        map.compute_if_present_budgeted(b"existing", &budget, |v| {
            let s = v.as_mut_slice();
            if !s.is_empty() {
                s[0] = b'!';
            }
        })
        .map(|_| ()),
    );
    results.push(map.remove_budgeted(&fresh, &budget).map(|_| ()));
    results
}

#[test]
fn abandoned_operations_never_leak() {
    let _s = scenario();
    let map = test_map();
    map.put(b"existing", b"steady-state").unwrap();
    // Pre-populate so rebalances and removes have material to chew on.
    for i in 0..64u64 {
        map.put(format!("seed-{i:04}").as_bytes(), b"seed-value")
            .unwrap();
    }

    for (round, site) in all_failpoint_sites().into_iter().enumerate() {
        let round = round as u64;
        if site.errorable {
            // Fail every hit: each budgeted retry re-encounters the fault
            // until the deadline surfaces DeadlineExceeded.
            configure(site.name, Action::ReturnErr, FirePolicy::Always);
        } else {
            // Slow every hit so the deadline can expire mid-operation at
            // this site.
            configure(site.name, Action::DelayMicros(2_000), FirePolicy::Always);
        }

        for r in run_ops(&map, round) {
            match r {
                Ok(()) => {}
                Err(
                    OakError::DeadlineExceeded
                    | OakError::Contended(_)
                    | OakError::Overloaded
                    | OakError::OutOfMemory
                    | OakError::Alloc(_),
                ) => {} // typed, budgeted failure: fine
                Err(other) => panic!("site {}: unexpected error {other:?}", site.name),
            }
        }

        deconfigure(site.name);

        // Leak check: everything the abandoned attempts allocated must be
        // reachable, quarantined, or freed.
        map.drain_quarantine();
        let report = map.audit();
        assert_eq!(
            report.leaked_bytes, 0,
            "site {} leaked {} bytes: {:?}",
            site.name, report.leaked_bytes, report.leaked
        );

        // Usability check: the map serves clean traffic after the faults.
        let probe = format!("probe-{round:04}").into_bytes();
        map.put(&probe, b"alive").unwrap();
        assert_eq!(map.get_copy(&probe), Some(b"alive".to_vec()));
        assert!(map.remove(&probe));
        map.put(b"existing", b"steady-state").unwrap();
    }

    map.validate();
    let final_report = map.audit();
    assert_eq!(final_report.leaked_bytes, 0);
}
