//! Prefix-cache equivalence properties: searching through the on-heap
//! key-prefix cache must be observationally identical to plain comparator
//! search.
//!
//! Three maps run the same operation script — prefix cache on, prefix
//! cache off (every entry stores the `0` "no information" prefix, so every
//! comparison is a full off-heap compare), and a comparator that opts out
//! of prefixes entirely (`prefix() = None`) — and all three must agree
//! with a `BTreeMap` model on point lookups, bounded ascending scans, and
//! bounded descending scans. Chunks are tiny so rebalances constantly
//! carry cached prefixes into successor chunks.
//!
//! Key corpora target the scheme's edges: random variable-length keys,
//! a shared-prefix-heavy corpus (many keys agree on the first bytes, so
//! prefixes often tie), and a corpus whose keys share a common prefix
//! *longer than eight bytes* (every cached prefix is identical — the
//! accelerated path must always fall back to full compares and still be
//! exact).

use std::collections::BTreeMap;

use oak_core::{KeyComparator, OakMap, OakMapConfig};
use oak_mempool::PoolConfig;
use proptest::prelude::*;

/// Lexicographic order that opts out of prefix acceleration (the trait's
/// default `prefix` returns `None`).
#[derive(Debug, Clone, Copy, Default)]
struct PrefixlessLex;

impl KeyComparator for PrefixlessLex {
    fn compare(&self, a: &[u8], b: &[u8]) -> std::cmp::Ordering {
        a.cmp(b)
    }
}

#[derive(Debug, Clone, Copy)]
enum Corpus {
    /// Variable-length keys with diverse leading bytes.
    Random,
    /// Many keys share their first four bytes: prefixes disambiguate only
    /// past the shared stem, and ties are common.
    SharedShort,
    /// All keys share a 12-byte stem: every cached prefix is equal, so the
    /// accelerated search degenerates to full compares everywhere.
    SharedLong,
}

fn key(corpus: Corpus, id: u16) -> Vec<u8> {
    let id = id % 96;
    match corpus {
        Corpus::Random => {
            // Lengths 1..=10, content spread over the byte range; distinct
            // ids may collide into one key, which the model absorbs.
            let len = 1 + (id as usize % 10);
            let mut k = vec![(id.wrapping_mul(37) >> 2) as u8; len];
            k[0] = (id % 11) as u8;
            if len > 1 {
                k[1] = (id / 11) as u8;
            }
            k
        }
        Corpus::SharedShort => {
            let mut k = b"stem".to_vec();
            k.extend_from_slice(&id.to_be_bytes());
            k
        }
        Corpus::SharedLong => {
            let mut k = b"common-stem-".to_vec(); // 12 bytes > 8
            k.extend_from_slice(&id.to_be_bytes());
            k
        }
    }
}

fn tiny(prefix_cache: bool) -> OakMapConfig {
    OakMapConfig {
        chunk_capacity: 16, // rebalance storms exercise prefix carry
        rebalance_unsorted_ratio: 0.5,
        merge_ratio: 0.25,
        pool: PoolConfig {
            arena_size: 1 << 20,
            max_arenas: 16,
            magazines: false,
            lockfree: false,
            ..Default::default()
        },
        shared_arenas: None,
        reclamation: oak_mempool::ReclamationPolicy::RetainHeaders,
        prefix_cache,
        ..OakMapConfig::default()
    }
}

/// Applies `ops` to all three maps plus the model, then checks point
/// lookups over the whole universe and one bounded scan per direction.
fn run_script(
    corpus: Corpus,
    ops: &[(bool, u16)],
    bounds: (u16, u16),
) -> Result<(), TestCaseError> {
    let on = OakMap::with_config(tiny(true));
    let off = OakMap::with_config(tiny(false));
    let noprefix = OakMap::with_comparator(tiny(true), PrefixlessLex);
    let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();

    for &(put, id) in ops {
        let k = key(corpus, id);
        if put {
            let v = id.to_le_bytes().to_vec();
            on.put(&k, &v).unwrap();
            off.put(&k, &v).unwrap();
            noprefix.put(&k, &v).unwrap();
            model.insert(k, v);
        } else {
            let want = model.remove(&k).is_some();
            prop_assert_eq!(on.remove(&k), want);
            prop_assert_eq!(off.remove(&k), want);
            prop_assert_eq!(noprefix.remove(&k), want);
        }
    }

    // Point lookups: every key in the universe, present or absent.
    for id in 0..96 {
        let k = key(corpus, id);
        let want = model.get(&k).cloned();
        prop_assert_eq!(on.get_copy(&k), want.clone(), "cache-on lookup");
        prop_assert_eq!(off.get_copy(&k), want.clone(), "cache-off lookup");
        prop_assert_eq!(noprefix.get_copy(&k), want, "prefixless lookup");
    }

    // One bounded scan per direction (lower_bound positioning + cursor
    // bound checks both go through the prefix-aware compare).
    let (a, b) = (key(corpus, bounds.0), key(corpus, bounds.1));
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    let want_up: Vec<(Vec<u8>, Vec<u8>)> = model
        .range(lo.clone()..hi.clone())
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect();
    for (name, map) in [("cache-on", &on), ("cache-off", &off)] {
        let mut got = Vec::new();
        map.for_each_in(Some(&lo), Some(&hi), |k, v| {
            got.push((k.to_vec(), v.to_vec()));
            true
        });
        prop_assert_eq!(&got, &want_up, "{} ascending scan", name);
    }
    let mut got = Vec::new();
    noprefix.for_each_in(Some(&lo), Some(&hi), |k, v| {
        got.push((k.to_vec(), v.to_vec()));
        true
    });
    prop_assert_eq!(&got, &want_up, "prefixless ascending scan");

    let mut want_down: Vec<Vec<u8>> = model
        .range(lo.clone()..=hi.clone())
        .map(|(k, _)| k.clone())
        .collect();
    want_down.reverse();
    for (name, map) in [("cache-on", &on), ("cache-off", &off)] {
        let mut got = Vec::new();
        map.for_each_descending(Some(&hi), Some(&lo), |k, _| {
            got.push(k.to_vec());
            true
        });
        prop_assert_eq!(&got, &want_down, "{} descending scan", name);
    }
    let mut got = Vec::new();
    noprefix.for_each_descending(Some(&hi), Some(&lo), |k, _| {
        got.push(k.to_vec());
        true
    });
    prop_assert_eq!(&got, &want_down, "prefixless descending scan");

    on.validate();
    off.validate();
    noprefix.validate();
    Ok(())
}

fn ops() -> impl Strategy<Value = Vec<(bool, u16)>> {
    prop::collection::vec((any::<bool>(), any::<u16>()), 1..300)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_corpus_equivalent(ops in ops(), a in any::<u16>(), b in any::<u16>()) {
        run_script(Corpus::Random, &ops, (a, b))?;
    }

    #[test]
    fn shared_prefix_corpus_equivalent(ops in ops(), a in any::<u16>(), b in any::<u16>()) {
        run_script(Corpus::SharedShort, &ops, (a, b))?;
    }

    #[test]
    fn long_common_prefix_corpus_equivalent(ops in ops(), a in any::<u16>(), b in any::<u16>()) {
        run_script(Corpus::SharedLong, &ops, (a, b))?;
    }
}

/// The read-only acceptance check from the issue, in miniature: with the
/// prefix cache on, a lookup-heavy phase must dereference off-heap key
/// bytes at least 5× less often than with the cache off (per-lookup,
/// measured over the same key stream on identical content).
#[test]
fn prefix_cache_cuts_offheap_derefs() {
    let mut cfg_on = tiny(true);
    cfg_on.chunk_capacity = 1024; // deep in-chunk binary searches
    let mut cfg_off = cfg_on.clone();
    cfg_off.prefix_cache = false;
    let on = OakMap::with_config(cfg_on);
    let off = OakMap::with_config(cfg_off);
    let k = |id: u32| {
        let mut k = b"stem".to_vec();
        k.extend_from_slice(&(id.wrapping_mul(2_654_435_761)).to_be_bytes());
        k
    };
    for id in 0..8192 {
        on.put(&k(id), b"v").unwrap();
        off.put(&k(id), b"v").unwrap();
    }
    let base_on = on.stats().pool.offheap_key_derefs;
    let base_off = off.stats().pool.offheap_key_derefs;
    for round in 0..3 {
        for id in 0..8192 {
            let k = k((id + round) % 8192);
            assert!(on.get_copy(&k).is_some());
            assert!(off.get_copy(&k).is_some());
        }
    }
    let d_on = on.stats().pool.offheap_key_derefs - base_on;
    let d_off = off.stats().pool.offheap_key_derefs - base_off;
    assert!(
        d_on * 5 <= d_off,
        "prefix cache saved too little: {d_on} derefs with cache vs {d_off} without"
    );
}
