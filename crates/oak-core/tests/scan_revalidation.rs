//! Deterministic coverage for the batch pipeline's revision-stamp
//! revalidation (§4.2's scan/rebalance race, observed through counters).
//!
//! Chunk revisions only move at freeze/replacement — i.e. during
//! rebalance — so a scan over a frozen population never revalidates, and
//! `scan_revalidations == 0` is the *correct* reading for the read-only
//! 4e/4f benchmarks. These tests pin both sides: a scan that splits its
//! own current chunk mid-drain must re-locate (and count it), and a
//! read-only scan must not.

use std::collections::BTreeSet;

use oak_core::{OakMap, OakMapConfig};
use oak_mempool::PoolConfig;

fn tiny_chunks() -> OakMap {
    OakMap::with_config(
        OakMapConfig::small()
            .chunk_capacity(32)
            .batch_scan(true)
            .pool(PoolConfig {
                arena_size: 1 << 20,
                max_arenas: 16,
                magazines: false,
                lockfree: false,
                ..Default::default()
            }),
    )
}

fn k(i: u64) -> Vec<u8> {
    format!("a{i:06}").into_bytes()
}

#[test]
fn mid_scan_split_triggers_revalidation_without_losing_keys() {
    let map = tiny_chunks();
    let n = 600u64;
    for i in 0..n {
        map.put(&k(i), &i.to_le_bytes()).unwrap();
    }
    let before = map.pool().stats().scan_revalidations;

    // Scan everything; partway through, stuff a burst of keys into the
    // *current* chunk's range so it splits under the drained batch. The
    // next refill must notice the replacement/revision change and
    // re-locate instead of walking a frozen chunk.
    let mut seen = BTreeSet::new();
    let mut burst_done = false;
    map.for_each_in(None, None, |kb, _| {
        if kb.len() == 7 {
            // An original key: record it (inserted-during-scan keys are
            // longer and carry no visibility guarantee).
            let i: u64 = std::str::from_utf8(&kb[1..]).unwrap().parse().unwrap();
            seen.insert(i);
            if i == 100 && !burst_done {
                burst_done = true;
                for j in 0..64u64 {
                    // Sorts between k(100) and k(101): same chunk.
                    let key = format!("a000100x{j:02}").into_bytes();
                    map.put(&key, &j.to_le_bytes()).unwrap();
                }
            }
        }
        true
    });
    assert!(burst_done, "scan never reached the trigger key");

    let after = map.pool().stats().scan_revalidations;
    assert!(
        after > before,
        "splitting the scanned chunk mid-drain recorded no revalidation \
         ({before} -> {after})"
    );
    // RB1: every pre-scan key must still be delivered exactly once
    // (strict-after resume across the re-locate).
    assert_eq!(seen.len() as u64, n, "scan lost or duplicated keys");
    assert_eq!(*seen.iter().next().unwrap(), 0);
    assert_eq!(*seen.iter().next_back().unwrap(), n - 1);
}

#[test]
fn read_only_scan_never_revalidates() {
    let map = tiny_chunks();
    for i in 0..600u64 {
        map.put(&k(i), &i.to_le_bytes()).unwrap();
    }
    let before = map.pool().stats().scan_revalidations;
    let mut count = 0u64;
    map.for_each_in(None, None, |_, _| {
        count += 1;
        true
    });
    assert_eq!(count, 600);
    let stats = map.pool().stats();
    assert_eq!(
        stats.scan_revalidations, before,
        "a frozen population revalidated: revisions moved without rebalance"
    );
    assert!(stats.scan_chunk_batches > 0, "batch pipeline never engaged");
}
