//! Functional tests for OakMap: point operations, conditional updates,
//! scans, buffers, the legacy API, and footprint accounting.

use oak_core::legacy::TypedOakMap;
use oak_core::serde_api::{StringSerializer, U64Serializer};
use oak_core::{OakMap, OakMapConfig, U64BeComparator};

fn small_map() -> OakMap {
    OakMap::with_config(OakMapConfig::small())
}

fn k(i: u32) -> Vec<u8> {
    format!("key{i:06}").into_bytes()
}

fn v(i: u32) -> Vec<u8> {
    format!("value-{i}").into_bytes()
}

#[test]
fn empty_map() {
    let m = small_map();
    assert!(m.is_empty());
    assert!(m.get(b"nope").is_none());
    assert!(!m.remove(b"nope"));
    assert!(!m.compute_if_present(b"nope", |_| {}));
    assert_eq!(m.iter_range(None, None).count(), 0);
    assert_eq!(m.iter_descending(None, None).count(), 0);
}

#[test]
fn put_get_roundtrip() {
    let m = small_map();
    m.put(&k(1), &v(1)).unwrap();
    assert_eq!(m.get_copy(&k(1)).unwrap(), v(1));
    assert!(m.contains_key(&k(1)));
    // Replace with different sizes (forces payload resize).
    m.put(&k(1), b"x").unwrap();
    assert_eq!(m.get_copy(&k(1)).unwrap(), b"x");
    m.put(&k(1), &vec![7u8; 500]).unwrap();
    assert_eq!(m.get_copy(&k(1)).unwrap(), vec![7u8; 500]);
    assert_eq!(m.len(), 1);
}

#[test]
fn put_if_absent_semantics() {
    let m = small_map();
    assert!(m.put_if_absent(&k(5), &v(5)).unwrap());
    assert!(!m.put_if_absent(&k(5), b"other").unwrap());
    assert_eq!(m.get_copy(&k(5)).unwrap(), v(5));
    m.remove(&k(5));
    assert!(m.put_if_absent(&k(5), b"after-remove").unwrap());
    assert_eq!(m.get_copy(&k(5)).unwrap(), b"after-remove");
}

#[test]
fn remove_semantics() {
    let m = small_map();
    for i in 0..100 {
        m.put(&k(i), &v(i)).unwrap();
    }
    assert_eq!(m.len(), 100);
    for i in (0..100).step_by(2) {
        assert!(m.remove(&k(i)));
        assert!(!m.remove(&k(i)), "second remove must fail");
    }
    assert_eq!(m.len(), 50);
    for i in 0..100 {
        assert_eq!(m.get(&k(i)).is_some(), i % 2 == 1, "key {i}");
    }
}

#[test]
fn compute_if_present_is_in_place() {
    let m = small_map();
    m.put(b"ctr", &0u64.to_le_bytes()).unwrap();
    for _ in 0..10 {
        assert!(m.compute_if_present(b"ctr", |buf| {
            let cur = u64::from_le_bytes(buf.as_slice().try_into().unwrap());
            buf.as_mut_slice().copy_from_slice(&(cur + 1).to_le_bytes());
        }));
    }
    assert_eq!(
        m.get_with(b"ctr", |b| u64::from_le_bytes(b.try_into().unwrap())),
        Some(10)
    );
}

#[test]
fn compute_can_grow_value() {
    let m = small_map();
    m.put(b"grow", b"ab").unwrap();
    assert!(m.compute_if_present(b"grow", |buf| {
        let n = buf.len();
        buf.resize(n + 4).unwrap();
        buf.as_mut_slice()[n..].copy_from_slice(b"cdef");
    }));
    assert_eq!(m.get_copy(b"grow").unwrap(), b"abcdef");
}

#[test]
fn put_if_absent_compute_if_present_upserts() {
    let m = small_map();
    for _ in 0..5 {
        m.put_if_absent_compute_if_present(b"agg", &1u64.to_le_bytes(), |buf| {
            let cur = u64::from_le_bytes(buf.as_slice().try_into().unwrap());
            buf.as_mut_slice().copy_from_slice(&(cur + 1).to_le_bytes());
        })
        .unwrap();
    }
    assert_eq!(
        m.get_with(b"agg", |b| u64::from_le_bytes(b.try_into().unwrap())),
        Some(5)
    );
}

#[test]
fn many_inserts_force_rebalances() {
    let m = small_map(); // 64-entry chunks
    let n = 5_000u32;
    for i in 0..n {
        m.put(&k(i * 7919 % n), &v(i)).unwrap();
    }
    let stats = m.stats();
    assert!(stats.rebalances > 10, "rebalances: {}", stats.rebalances);
    assert!(stats.chunks > 10, "chunks: {}", stats.chunks);
    assert_eq!(m.len() as u32, n);
    for i in 0..n {
        assert!(m.get(&k(i)).is_some(), "missing key {i}");
    }
}

#[test]
fn ascending_scan_ordered_and_bounded() {
    let m = small_map();
    for i in 0..1_000 {
        m.put(&k(i), &v(i)).unwrap();
    }
    // Set API.
    let keys: Vec<Vec<u8>> = m
        .iter_range(Some(&k(100)), Some(&k(200)))
        .map(|(kb, _)| kb.to_vec().unwrap())
        .collect();
    assert_eq!(keys.len(), 100);
    assert_eq!(keys[0], k(100));
    assert_eq!(keys[99], k(199));
    assert!(keys.windows(2).all(|w| w[0] < w[1]));
    // Stream API must agree.
    let mut stream_keys = Vec::new();
    m.for_each_in(Some(&k(100)), Some(&k(200)), |kb, _| {
        stream_keys.push(kb.to_vec());
        true
    });
    assert_eq!(keys, stream_keys);
}

#[test]
fn descending_scan_matches_reverse_ascending() {
    let m = small_map();
    for i in 0..2_000 {
        m.put(&k(i), &v(i)).unwrap();
    }
    // Delete some to create gaps.
    for i in (0..2_000).step_by(3) {
        m.remove(&k(i));
    }
    let mut asc: Vec<Vec<u8>> = Vec::new();
    m.for_each_in(Some(&k(250)), Some(&k(1750)), |kb, _| {
        asc.push(kb.to_vec());
        true
    });
    asc.reverse();
    let desc: Vec<Vec<u8>> = m
        .iter_descending(Some(&k(1749)), Some(&k(250)))
        .map(|(kb, _)| kb.to_vec().unwrap())
        .collect();
    assert_eq!(asc.len(), desc.len());
    assert_eq!(asc, desc);
    // Stream descending agrees too.
    let mut stream_desc = Vec::new();
    m.for_each_descending(Some(&k(1749)), Some(&k(250)), |kb, _| {
        stream_desc.push(kb.to_vec());
        true
    });
    assert_eq!(desc, stream_desc);
}

#[test]
fn descending_full_map() {
    let m = small_map();
    for i in 0..500 {
        m.put(&k(i), &v(i)).unwrap();
    }
    let desc: Vec<Vec<u8>> = m
        .iter_descending(None, None)
        .map(|(kb, _)| kb.to_vec().unwrap())
        .collect();
    assert_eq!(desc.len(), 500);
    assert_eq!(desc[0], k(499));
    assert_eq!(desc[499], k(0));
    assert!(desc.windows(2).all(|w| w[0] > w[1]));
}

#[test]
fn buffers_survive_and_observe_updates() {
    let m = small_map();
    m.put(b"watch", &1u64.to_le_bytes()).unwrap();
    let buf = m.get(b"watch").unwrap();
    assert_eq!(buf.get_u64(0).unwrap(), 1);
    // ZC view: in-place updates are visible through the same buffer.
    m.compute_if_present(b"watch", |b| b.put_u64(0, 42));
    assert_eq!(buf.get_u64(0).unwrap(), 42);
    // After removal, access fails (ConcurrentModificationException analogue).
    m.remove(b"watch");
    assert!(buf.get_u64(0).is_err());
    assert!(buf.is_deleted());
}

#[test]
fn zc_view_api_surface() {
    let m = small_map();
    let zc = m.zc();
    zc.put(b"a", b"1").unwrap();
    assert!(zc.put_if_absent(b"b", b"2").unwrap());
    assert!(!zc.put_if_absent(b"b", b"x").unwrap());
    assert!(zc.compute_if_present(b"b", |buf| buf.as_mut_slice()[0] = b'9'));
    assert_eq!(zc.get(b"b").unwrap().to_vec().unwrap(), b"9");
    assert!(zc
        .put_if_absent_compute_if_present(b"c", b"0", |_| {})
        .unwrap());
    let n = zc.entry_stream_set(None, None, |_, _| true);
    assert_eq!(n, 3);
    assert_eq!(zc.entry_set(None, None).count(), 3);
    assert_eq!(zc.descending_entry_set(None, None).count(), 3);
    zc.remove(b"a");
    assert!(zc.get(b"a").is_none());
}

#[test]
fn custom_comparator_u64() {
    let m: OakMap<U64BeComparator> =
        OakMap::with_comparator(OakMapConfig::small(), U64BeComparator);
    // Insert in numeric-hostile order.
    for i in [300u64, 5, 1_000_000, 42, 7] {
        m.put(&i.to_be_bytes(), &i.to_le_bytes()).unwrap();
    }
    let mut keys = Vec::new();
    m.for_each_in(None, None, |kb, _| {
        keys.push(u64::from_be_bytes(kb.try_into().unwrap()));
        true
    });
    assert_eq!(keys, vec![5, 7, 42, 300, 1_000_000]);
}

#[test]
fn legacy_typed_api() {
    let m = TypedOakMap::new(
        OakMap::with_config(OakMapConfig::small()),
        U64Serializer,
        StringSerializer,
    );
    assert_eq!(m.put(&1, &"one".to_string()).unwrap(), None);
    assert_eq!(
        m.put(&1, &"uno".to_string()).unwrap(),
        Some("one".to_string())
    );
    assert_eq!(m.get(&1), Some("uno".to_string()));
    assert!(m.compute_if_present(&1, |s| format!("{s}!")));
    assert_eq!(m.get(&1), Some("uno!".to_string()));
    assert_eq!(m.remove(&1), Some("uno!".to_string()));
    assert_eq!(m.remove(&1), None);
    assert!(m.is_empty());
    // Range collection.
    for i in 0..50u64 {
        m.put(&i, &format!("v{i}")).unwrap();
    }
    let got = m.collect_range(Some(&10), Some(&20));
    assert_eq!(got.len(), 10);
    assert_eq!(got[0], (10, "v10".to_string()));
}

#[test]
fn footprint_accounting() {
    let m = small_map();
    let n = 500u32;
    for i in 0..n {
        m.put(&k(i), &[1u8; 100]).unwrap();
    }
    let stats = m.stats();
    // Raw data: 500 × (9-byte key + 100-byte value + 16-byte header).
    assert!(stats.pool.live_bytes >= 500 * (9 + 100 + 16) - 4096);
    assert!(stats.pool.reserved_bytes >= stats.pool.live_bytes);
    let live_before = stats.pool.live_bytes;
    for i in 0..n {
        m.remove(&k(i));
    }
    let after = m.stats();
    // Value payloads are reclaimed; headers are retained by the default
    // memory manager.
    assert!(after.pool.live_bytes < live_before);
    assert_eq!(after.len, 0);
}

#[test]
fn empty_key_rejected() {
    let m = small_map();
    assert!(m.put(b"", b"v").is_err());
}

#[test]
fn values_of_wildly_varying_sizes() {
    let m = small_map();
    for i in 0..200u32 {
        let size = 1 + (i as usize * 37) % 2_000;
        m.put(&k(i), &vec![i as u8; size]).unwrap();
    }
    for i in 0..200u32 {
        let size = 1 + (i as usize * 37) % 2_000;
        assert_eq!(m.get_with(&k(i), |v| v.len()), Some(size));
    }
}

#[test]
fn descending_across_fully_deleted_chunks() {
    // Delete whole chunk-sized regions, then descend across the holes:
    // the chunk hops must skip dead regions without yielding phantoms.
    let m = small_map(); // 64-entry chunks
    for i in 0..1_000 {
        m.put(&k(i), &v(i)).unwrap();
    }
    // Carve out two large holes.
    for i in 200..400 {
        m.remove(&k(i));
    }
    for i in 600..800 {
        m.remove(&k(i));
    }
    let got: Vec<Vec<u8>> = m
        .iter_descending(None, None)
        .map(|(kb, _)| kb.to_vec().unwrap())
        .collect();
    let mut want: Vec<Vec<u8>> = (0..1_000)
        .filter(|i| !(200..400).contains(i) && !(600..800).contains(i))
        .map(k)
        .collect();
    want.reverse();
    assert_eq!(got, want);
}

#[test]
fn descending_single_key_and_boundaries() {
    let m = small_map();
    m.put(b"only", b"one").unwrap();
    let got: Vec<Vec<u8>> = m
        .iter_descending(None, None)
        .map(|(kb, _)| kb.to_vec().unwrap())
        .collect();
    assert_eq!(got, vec![b"only".to_vec()]);
    // from below the key: nothing.
    assert_eq!(m.iter_descending(Some(b"aaa"), None).count(), 0);
    // from exactly the key: inclusive.
    assert_eq!(m.iter_descending(Some(b"only"), None).count(), 1);
    // lo above the key: nothing.
    assert_eq!(m.iter_descending(None, Some(b"zzz")).count(), 0);
    // lo exactly the key: inclusive.
    assert_eq!(m.iter_descending(None, Some(b"only")).count(), 1);
}

#[test]
fn descending_bounds_at_chunk_boundaries() {
    // Force known chunk splits, then scan with bounds likely to fall on
    // minKeys.
    let m = small_map();
    for i in 0..512 {
        m.put(&k(i), b"x").unwrap();
    }
    let stats = m.stats();
    assert!(stats.chunks >= 4, "need multiple chunks: {}", stats.chunks);
    for (from, lo) in [(511, 0), (300, 100), (256, 255), (128, 128), (64, 63)] {
        let got: Vec<Vec<u8>> = m
            .iter_descending(Some(&k(from)), Some(&k(lo)))
            .map(|(kb, _)| kb.to_vec().unwrap())
            .collect();
        let mut want: Vec<Vec<u8>> = (lo..=from).map(k).collect();
        want.reverse();
        assert_eq!(got, want, "from {from} lo {lo}");
    }
}
