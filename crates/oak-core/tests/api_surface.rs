//! Tests for the extended API surface: keySet/valueSet, subMap views,
//! buffer accessors, and the completed legacy API.

use oak_core::legacy::TypedOakMap;
use oak_core::serde_api::{StringSerializer, U64Serializer};
use oak_core::{OakMap, OakMapConfig};

fn filled_map(n: u32) -> OakMap {
    let m = OakMap::with_config(OakMapConfig::small());
    for i in 0..n {
        m.put(format!("k{i:04}").as_bytes(), format!("v{i}").as_bytes())
            .unwrap();
    }
    m
}

#[test]
fn key_set_and_value_set() {
    let m = filled_map(50);
    let zc = m.zc();
    let keys: Vec<Vec<u8>> = zc
        .key_set(Some(b"k0010"), Some(b"k0015"))
        .map(|k| k.to_vec().unwrap())
        .collect();
    assert_eq!(keys.len(), 5);
    assert_eq!(keys[0], b"k0010");
    let vals: Vec<Vec<u8>> = zc
        .value_set(Some(b"k0010"), Some(b"k0015"))
        .map(|v| v.to_vec().unwrap())
        .collect();
    assert_eq!(vals[0], b"v10");

    let mut streamed_keys = Vec::new();
    zc.key_stream_set(Some(b"k0010"), Some(b"k0015"), |k| {
        streamed_keys.push(k.to_vec());
        true
    });
    assert_eq!(keys, streamed_keys);

    let mut streamed_vals = Vec::new();
    zc.value_stream_set(Some(b"k0010"), Some(b"k0015"), |v| {
        streamed_vals.push(v.to_vec());
        true
    });
    assert_eq!(vals, streamed_vals);
}

#[test]
fn sub_map_bounds_every_operation() {
    let m = filled_map(100);
    let zc = m.zc();
    let view = zc.sub_map(Some(b"k0020"), Some(b"k0030"));

    // get: in-range hits, out-of-range misses even for present keys.
    assert!(view.get(b"k0025").is_some());
    assert!(view.get(b"k0050").is_none());
    assert!(m.contains_key(b"k0050"));

    // put: rejected outside the range.
    assert!(view.put(b"k0022x", b"new").unwrap());
    assert!(!view.put(b"k0090", b"nope").unwrap());
    assert!(!m.contains_key(b"k0090x"));

    // remove: only inside the range.
    assert!(!view.remove(b"k0050"));
    assert!(view.remove(b"k0022x"));

    // len counts only the view.
    assert_eq!(view.len(), 10);
    assert!(!view.is_empty());

    // entrySet ascending: exactly [k0020, k0030).
    let keys: Vec<Vec<u8>> = view.entry_set().map(|(k, _)| k.to_vec().unwrap()).collect();
    assert_eq!(keys.len(), 10);
    assert_eq!(keys.first().unwrap(), b"k0020");
    assert_eq!(keys.last().unwrap(), b"k0029");

    // descendingMap().entrySet(): reverse of the same range, excluding the
    // exclusive upper bound.
    let desc: Vec<Vec<u8>> = view
        .descending_entry_set()
        .map(|(k, _)| k.to_vec().unwrap())
        .collect();
    let mut rev = keys.clone();
    rev.reverse();
    assert_eq!(desc, rev);
}

#[test]
fn sub_map_unbounded_sides() {
    let m = filled_map(20);
    let zc = m.zc();
    assert_eq!(zc.sub_map(None, Some(b"k0005")).len(), 5);
    assert_eq!(zc.sub_map(Some(b"k0015"), None).len(), 5);
    assert_eq!(zc.sub_map(None, None).len(), 20);
    let empty = zc.sub_map(Some(b"zz"), None);
    assert!(empty.is_empty());
    assert_eq!(empty.descending_entry_set().count(), 0);
}

#[test]
fn buffer_typed_accessors() {
    let m = OakMap::with_config(OakMapConfig::small());
    let mut v = Vec::new();
    v.extend_from_slice(&0xDEADBEEFu32.to_le_bytes());
    v.extend_from_slice(&(-42i64).to_le_bytes());
    v.extend_from_slice(&1.5f64.to_le_bytes());
    m.put(b"typed", &v).unwrap();
    let buf = m.get(b"typed").unwrap();
    assert_eq!(buf.get_u32(0).unwrap(), 0xDEADBEEF);
    assert_eq!(buf.get_i64(4).unwrap(), -42);
    assert_eq!(buf.get_f64(12).unwrap(), 1.5);
    let mut chunk = [0u8; 8];
    buf.read_at(4, &mut chunk).unwrap();
    assert_eq!(i64::from_le_bytes(chunk), -42);
    assert!(buf.eq_bytes(&v).unwrap());
    assert!(!buf.eq_bytes(b"other").unwrap());
}

#[test]
fn legacy_navigable_extensions() {
    let t = TypedOakMap::new(
        OakMap::with_config(OakMapConfig::small()),
        U64Serializer,
        StringSerializer,
    );
    assert_eq!(t.first_key(), None);
    assert_eq!(t.last_key(), None);
    for i in [5u64, 1, 9, 3] {
        t.put(&i, &format!("v{i}")).unwrap();
    }
    assert_eq!(t.first_key(), Some(1));
    assert_eq!(t.last_key(), Some(9));
    assert!(t.contains_key(&5));
    assert!(!t.contains_key(&2));

    // merge: insert then combine.
    t.merge(&7, &"x".to_string(), |cur, add| format!("{cur}+{add}"))
        .unwrap();
    assert_eq!(t.get(&7), Some("x".to_string()));
    t.merge(&7, &"y".to_string(), |cur, add| format!("{cur}+{add}"))
        .unwrap();
    assert_eq!(t.get(&7), Some("x+y".to_string()));

    let desc = t.collect_descending(None, None);
    let keys: Vec<u64> = desc.iter().map(|(k, _)| *k).collect();
    assert_eq!(keys, vec![9, 7, 5, 3, 1]);
    let bounded = t.collect_descending(Some(&7), Some(&3));
    let keys: Vec<u64> = bounded.iter().map(|(k, _)| *k).collect();
    assert_eq!(keys, vec![7, 5, 3]);
}
