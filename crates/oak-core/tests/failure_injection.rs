//! Failure injection: Oak under memory pressure and hostile inputs.
//!
//! Allocation failures must surface as errors, never corrupt the map, and
//! the map must remain fully usable afterwards (including after frees make
//! room again).

use std::sync::Arc;

use oak_core::{OakError, OakMap, OakMapConfig};
use oak_mempool::{AllocError, PoolConfig};

fn cramped() -> OakMap {
    OakMap::with_config(OakMapConfig {
        chunk_capacity: 32,
        rebalance_unsorted_ratio: 0.5,
        merge_ratio: 0.125,
        pool: PoolConfig {
            magazines: false,
            lockfree: false,
            arena_size: 64 << 10, // 64 KB
            max_arenas: 2,        // 128 KB total,
            ..Default::default()
        },
        shared_arenas: None,
        reclamation: oak_mempool::ReclamationPolicy::RetainHeaders,
        prefix_cache: true,
        ..OakMapConfig::default()
    })
}

fn k(i: u64) -> Vec<u8> {
    format!("key{i:05}").into_bytes()
}

#[test]
fn pool_exhaustion_is_an_error_not_corruption() {
    let m = cramped();
    let mut inserted = Vec::new();
    let mut hit_oom = false;
    for i in 0..2_000u64 {
        match m.put(&k(i), &[7u8; 256]) {
            Ok(()) => inserted.push(i),
            // Exhaustion surfaces as `OutOfMemory` once the emergency
            // reclamation budget is spent (raw `PoolExhausted` only if
            // recovery was impossible to attempt).
            Err(OakError::OutOfMemory | OakError::Alloc(AllocError::PoolExhausted)) => {
                hit_oom = true;
                break;
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(hit_oom, "128 KB cannot hold 2000 × 256 B values");
    assert!(!inserted.is_empty());
    // Everything inserted before the failure is intact and ordered.
    assert_eq!(m.len(), inserted.len());
    for &i in &inserted {
        assert_eq!(m.get_with(&k(i), |v| v.len()), Some(256), "key {i}");
    }
    m.validate();
}

#[test]
fn map_recovers_after_frees_make_room() {
    let m = cramped();
    let mut inserted = Vec::new();
    loop {
        let i = inserted.len() as u64;
        match m.put(&k(i), &[1u8; 256]) {
            Ok(()) => inserted.push(i),
            Err(OakError::OutOfMemory | OakError::Alloc(_)) => break,
            Err(e) => panic!("{e}"),
        }
    }
    // Free half the values (removes reclaim payloads immediately).
    for &i in inserted.iter().step_by(2) {
        assert!(m.remove(&k(i)));
    }
    // Fresh inserts must succeed again in the reclaimed space.
    let mut recovered = 0;
    for j in 0..inserted.len() / 4 {
        let key = format!("new{j:05}");
        match m.put(key.as_bytes(), &[2u8; 200]) {
            Ok(()) => recovered += 1,
            Err(OakError::OutOfMemory | OakError::Alloc(_)) => break,
            Err(e) => panic!("{e}"),
        }
    }
    assert!(recovered > 0, "no space reclaimed after removes");
    m.validate();
}

#[test]
fn oversized_value_rejected_cleanly() {
    let m = cramped();
    m.put(&k(1), b"small").unwrap();
    // Larger than the arena: must fail with TooLarge, leaving the old
    // value intact.
    let huge = vec![0u8; 512 << 10];
    assert!(matches!(
        m.put(&k(1), &huge),
        Err(OakError::Alloc(AllocError::TooLarge { .. }))
    ));
    assert_eq!(m.get_copy(&k(1)).unwrap(), b"small");
    // Same via compute-resize: the closure sees the resize fail and keeps
    // the value usable.
    let resized_ok = m.compute_if_present(&k(1), |buf| {
        assert!(buf.resize(512 << 10).is_err());
    });
    assert!(resized_ok);
    assert_eq!(m.get_copy(&k(1)).unwrap(), b"small");
}

#[test]
fn upsert_alloc_failure_does_not_install_partial_state() {
    let m = cramped();
    // Fill the pool almost completely.
    let mut i = 0u64;
    while m.put(&k(i), &[3u8; 512]).is_ok() {
        i += 1;
    }
    let len_before = m.len();
    // An upsert of a new key that cannot allocate must fail without
    // creating a phantom mapping.
    let r = m.put_if_absent_compute_if_present(b"zz-newkey", &[4u8; 4096], |_| {});
    assert!(matches!(r, Err(OakError::OutOfMemory | OakError::Alloc(_))));
    assert!(m.get(b"zz-newkey").is_none());
    assert_eq!(m.len(), len_before);
    m.validate();
}

#[test]
fn concurrent_writers_share_exhaustion_gracefully() {
    let m = Arc::new(cramped());
    let mut handles = Vec::new();
    for t in 0..4u64 {
        let m = m.clone();
        handles.push(std::thread::spawn(move || {
            let mut ok = 0u32;
            for i in 0..500u64 {
                match m.put(&k(t * 1_000 + i), &[5u8; 128]) {
                    Ok(()) => ok += 1,
                    Err(OakError::OutOfMemory | OakError::Alloc(_)) => {}
                    Err(e) => panic!("{e}"),
                }
            }
            ok
        }));
    }
    let total: u32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(total > 0);
    assert_eq!(m.len() as u32, total);
    // Map remains consistent and scannable.
    let mut prev: Option<Vec<u8>> = None;
    let mut n = 0;
    m.for_each_in(None, None, |kb, _| {
        if let Some(p) = &prev {
            assert!(p.as_slice() < kb);
        }
        prev = Some(kb.to_vec());
        n += 1;
        true
    });
    assert_eq!(n as u32, total);
}

#[test]
fn rebalance_survives_pool_pressure() {
    // Rebalance copies references only (no data allocation), so it must
    // succeed even when the pool is completely full.
    let m = cramped();
    let mut i = 0u64;
    while m.put(&k(i * 2), &[6u8; 128]).is_ok() {
        i += 1;
    }
    let before = m.stats();
    // Removing and re-adding within freed space forces rebalances while
    // the pool hovers at the brink.
    for j in 0..i / 2 {
        m.remove(&k(j * 4));
    }
    for j in 0..i / 4 {
        let _ = m.put(&k(j * 4 + 1), &[8u8; 64]);
    }
    let after = m.stats();
    assert!(after.rebalances >= before.rebalances);
    m.validate();
}
