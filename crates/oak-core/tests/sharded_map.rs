//! Concurrency and aggregation smoke tests for [`ShardedOakMap`].

use std::sync::Arc;

use oak_core::{OakMapConfig, ShardSplitter, ShardedOakMap};
use oak_mempool::{ArenaPool, PoolConfig};

fn key(t: usize, i: u64) -> Vec<u8> {
    format!("{t:02}-{i:06}").into_bytes()
}

#[test]
fn concurrent_put_get_remove_keeps_invariants() {
    const THREADS: usize = 4;
    const OPS: u64 = 3_000;

    let map = Arc::new(ShardedOakMap::with_config(4, OakMapConfig::small()));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let map = map.clone();
            std::thread::spawn(move || {
                // Each thread owns a disjoint key range: the final state is
                // deterministic even though shards interleave internally.
                for i in 0..OPS {
                    let k = key(t, i);
                    map.put(&k, &i.to_le_bytes()).unwrap();
                    assert_eq!(map.get_copy(&k).as_deref(), Some(&i.to_le_bytes()[..]));
                    if i % 3 == 0 {
                        assert!(map.remove(&k));
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // Every shard still satisfies the chunk-list invariants, and the
    // aggregated len matches both the surviving keys and the per-shard sum.
    map.validate();
    let expect = THREADS as u64 * (OPS - OPS.div_ceil(3));
    assert_eq!(map.len() as u64, expect);
    let shard_sum: usize = map.shard_stats().iter().map(|s| s.len).sum();
    assert_eq!(shard_sum, map.len());
    assert_eq!(map.stats().len, map.len());

    // The hash splitter actually spread the load: no shard is empty at
    // this population, and no shard holds everything.
    let lens: Vec<usize> = map.shard_stats().iter().map(|s| s.len).collect();
    assert!(
        lens.iter().all(|&l| l > 0),
        "a shard stayed empty: {lens:?}"
    );
    assert!(
        lens.iter().all(|&l| l < map.len()),
        "one shard holds everything: {lens:?}"
    );
}

#[test]
fn concurrent_merged_scans_observe_settled_keys() {
    let map = Arc::new(ShardedOakMap::with_config(4, OakMapConfig::small()));
    // Settled prefix: inserted before any scanner starts, never removed —
    // the non-atomic scan contract (§1.1) guarantees these are returned.
    for i in 0..500u64 {
        map.put(&key(0, i), &i.to_le_bytes()).unwrap();
    }

    let writer = {
        let map = map.clone();
        std::thread::spawn(move || {
            for i in 0..2_000u64 {
                map.put(&key(1, i), &i.to_le_bytes()).unwrap();
                if i % 2 == 0 {
                    map.remove(&key(1, i));
                }
            }
        })
    };
    let scanner = {
        let map = map.clone();
        std::thread::spawn(move || {
            for _ in 0..20 {
                let mut prev: Option<Vec<u8>> = None;
                let mut settled = 0;
                map.for_each_in(None, None, |k, _| {
                    if let Some(p) = &prev {
                        assert!(k > p.as_slice(), "merged ascend out of order");
                    }
                    prev = Some(k.to_vec());
                    if k.starts_with(b"00-") {
                        settled += 1;
                    }
                    true
                });
                assert_eq!(settled, 500, "a settled key vanished from the scan");
            }
        })
    };
    writer.join().unwrap();
    scanner.join().unwrap();
    map.validate();
}

#[test]
fn shards_draw_from_a_shared_reservoir() {
    let reservoir = Arc::new(ArenaPool::new(64 << 10, 16));
    let config = OakMapConfig::small()
        .pool(PoolConfig {
            magazines: false,
            lockfree: false,
            arena_size: 64 << 10,
            max_arenas: 16,
            ..Default::default()
        })
        .shared_arenas(reservoir.clone());
    let map = ShardedOakMap::with_config(4, config);
    assert!(map.reservoir().is_some());

    for i in 0..2_000u64 {
        map.put(&key(0, i), &[0u8; 64]).unwrap();
    }
    let stats = reservoir.stats();
    assert!(
        stats.outstanding >= 4,
        "each shard should hold at least one reservoir arena: {stats:?}"
    );
    // Dropping the sharded map returns every arena to the reservoir.
    drop(map);
    assert_eq!(reservoir.stats().outstanding, 0);
}

/// 8-thread scaling smoke over a shared lock-free reservoir: uniform keys
/// from 8 writers must spread arenas across the 4 shards without any
/// shard hoarding the reservoir (per-shard arena counts balance within
/// 2× of each other), no operation may fail, and — under the audit
/// feature — nothing may leak when the map is dropped.
#[test]
fn eight_thread_scaling_smoke_balances_shard_arenas() {
    const THREADS: usize = 8;
    const OPS: u64 = 4_000;

    let reservoir = Arc::new(ArenaPool::new(64 << 10, 64));
    let config = OakMapConfig::small()
        .pool(PoolConfig {
            arena_size: 64 << 10,
            max_arenas: 16,
            ..Default::default()
        })
        .shared_arenas(reservoir.clone());
    let map = Arc::new(ShardedOakMap::with_config(4, config));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let map = map.clone();
            std::thread::spawn(move || {
                for i in 0..OPS {
                    let k = key(t, i);
                    map.put(&k, &i.to_le_bytes()).unwrap();
                    if i % 4 == 3 {
                        assert!(map.remove(&k));
                    } else {
                        assert!(map.get_with(&k, |v| v.len()).is_some());
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    map.validate();
    assert_eq!(map.len() as u64, THREADS as u64 * OPS * 3 / 4);

    // Per-shard arena caching must not let one shard starve the rest:
    // under uniform keys the per-shard arena counts stay within 2×.
    let arenas: Vec<u64> = map.shard_stats().iter().map(|s| s.pool.arenas).collect();
    let (lo, hi) = (*arenas.iter().min().unwrap(), *arenas.iter().max().unwrap());
    assert!(lo >= 1, "a shard never grew: {arenas:?}");
    assert!(
        hi <= lo * 2,
        "shard arena caches out of balance (>{}x): {arenas:?}",
        2
    );
    // The balance sheet on the shared reservoir is exact.
    let stats = reservoir.stats();
    assert_eq!(
        stats.outstanding as u64,
        arenas.iter().sum::<u64>(),
        "reservoir ledger disagrees with shard arena counts: {stats:?}"
    );

    #[cfg(feature = "audit")]
    for (i, report) in map.audit().iter().enumerate() {
        assert_eq!(report.leaked_bytes, 0, "shard {i} leaked: {report:?}");
    }
    drop(map);
    assert_eq!(reservoir.stats().outstanding, 0);
}

/// Routing hashes the whole key. A previous default hashed only the
/// first 8 bytes, so any fixed-width key family with a constant header —
/// like synchrobench's zero-padded decimal keys — collapsed onto one
/// shard, leaving it with 1/N of the arena budget and N−1 idle shards.
#[test]
fn zero_padded_keys_spread_across_shards() {
    let map = ShardedOakMap::with_config(8, OakMapConfig::small());
    for i in 0..4_000u64 {
        // 100-byte keys whose first 12 bytes are all '0' (the shape that
        // degenerated under prefix routing).
        let mut k = format!("{i:020}").into_bytes();
        k.resize(100, b'0');
        map.put(&k, b"v").unwrap();
    }
    let lens: Vec<usize> = map.shard_stats().iter().map(|s| s.len).collect();
    let (lo, hi) = (*lens.iter().min().unwrap(), *lens.iter().max().unwrap());
    assert!(lo > 0, "a shard stayed empty: {lens:?}");
    assert!(
        hi <= lo * 2,
        "routing skew above 2x on fixed-header keys: {lens:?}"
    );
}

#[test]
fn key_range_splitter_routes_contiguously() {
    let bounds = vec![b"g".to_vec(), b"n".to_vec(), b"t".to_vec()];
    let map =
        ShardedOakMap::with_splitter(4, ShardSplitter::KeyRanges(bounds), OakMapConfig::small());
    for w in ["alpha", "golf", "mike", "november", "tango", "zulu"] {
        map.put(w.as_bytes(), b"x").unwrap();
    }
    // alpha → shard 0; golf, mike → shard 1; november → shard 2;
    // tango, zulu → shard 3.
    let lens: Vec<usize> = map.shard_stats().iter().map(|s| s.len).collect();
    assert_eq!(lens, vec![1, 2, 1, 2]);

    // Ascending merge yields global lexicographic order regardless.
    let mut seen = Vec::new();
    map.for_each_in(None, None, |k, _| {
        seen.push(String::from_utf8(k.to_vec()).unwrap());
        true
    });
    assert_eq!(seen, ["alpha", "golf", "mike", "november", "tango", "zulu"]);
}

#[test]
#[should_panic(expected = "range boundaries")]
fn misordered_range_boundaries_are_rejected() {
    let _ = ShardedOakMap::with_splitter(
        3,
        ShardSplitter::KeyRanges(vec![b"m".to_vec(), b"a".to_vec()]),
        OakMapConfig::small(),
    );
}
