//! Concurrent stress tests for OakMap, with tiny chunks so rebalances race
//! with every operation class.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use oak_core::{OakMap, OakMapConfig};
use oak_mempool::PoolConfig;

const THREADS: usize = 4;

fn stress_map() -> Arc<OakMap> {
    Arc::new(OakMap::with_config(OakMapConfig {
        chunk_capacity: 32,
        rebalance_unsorted_ratio: 0.5,
        merge_ratio: 0.25,
        pool: PoolConfig {
            magazines: false,
            lockfree: false,
            arena_size: 4 << 20,
            max_arenas: 64,
            ..Default::default()
        },
        shared_arenas: None,
        reclamation: oak_mempool::ReclamationPolicy::RetainHeaders,
        prefix_cache: true,
        ..OakMapConfig::default()
    }))
}

fn k(i: u64) -> Vec<u8> {
    format!("key{i:08}").into_bytes()
}

#[test]
fn concurrent_disjoint_inserts() {
    let m = stress_map();
    let per = 3_000u64;
    let mut handles = Vec::new();
    for t in 0..THREADS as u64 {
        let m = m.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..per {
                let id = t * per + i;
                assert!(m.put_if_absent(&k(id), &id.to_le_bytes()).unwrap());
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(m.len() as u64, THREADS as u64 * per);
    // Everything present with the right value, in order.
    let mut prev: Option<Vec<u8>> = None;
    let mut count = 0u64;
    m.for_each_in(None, None, |kb, v| {
        if let Some(p) = &prev {
            assert!(p.as_slice() < kb);
        }
        let id = u64::from_le_bytes(v.try_into().unwrap());
        assert_eq!(kb, k(id).as_slice());
        prev = Some(kb.to_vec());
        count += 1;
        true
    });
    assert_eq!(count, THREADS as u64 * per);
    assert!(m.stats().rebalances > 0);
}

#[test]
fn concurrent_put_if_absent_unique_winner() {
    let m = stress_map();
    for round in 0..30u64 {
        let winners = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for t in 0..THREADS as u64 {
            let (m, w) = (m.clone(), winners.clone());
            handles.push(std::thread::spawn(move || {
                if m.put_if_absent(&k(round), &t.to_le_bytes()).unwrap() {
                    w.fetch_add(1, Ordering::SeqCst);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(winners.load(Ordering::SeqCst), 1, "round {round}");
    }
}

#[test]
fn concurrent_remove_unique_winner() {
    let m = stress_map();
    for round in 0..30u64 {
        m.put(&k(round), b"victim").unwrap();
        let winners = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let (m, w) = (m.clone(), winners.clone());
            handles.push(std::thread::spawn(move || {
                if m.remove(&k(round)) {
                    w.fetch_add(1, Ordering::SeqCst);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(winners.load(Ordering::SeqCst), 1, "round {round}");
        assert!(m.get(&k(round)).is_none());
    }
}

#[test]
fn concurrent_compute_no_lost_updates() {
    // Oak's compute is atomic in place: increments from many threads must
    // all land (the property Figure 4b relies on).
    let m = stress_map();
    m.put(b"ctr", &0u64.to_le_bytes()).unwrap();
    let per = 3_000u64;
    let mut handles = Vec::new();
    for _ in 0..THREADS {
        let m = m.clone();
        handles.push(std::thread::spawn(move || {
            for _ in 0..per {
                assert!(m.compute_if_present(b"ctr", |buf| {
                    let v = u64::from_le_bytes(buf.as_slice().try_into().unwrap());
                    buf.as_mut_slice().copy_from_slice(&(v + 1).to_le_bytes());
                }));
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(
        m.get_with(b"ctr", |b| u64::from_le_bytes(b.try_into().unwrap())),
        Some(THREADS as u64 * per)
    );
}

#[test]
fn concurrent_upsert_aggregation() {
    // putIfAbsentComputeIfPresent from many threads over a small key space:
    // per-key totals must equal the number of upserts targeting that key.
    let m = stress_map();
    let per = 2_000u64;
    let keys = 16u64;
    let mut handles = Vec::new();
    for t in 0..THREADS as u64 {
        let m = m.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..per {
                let kk = k((t + i) % keys);
                m.put_if_absent_compute_if_present(&kk, &1u64.to_le_bytes(), |buf| {
                    let v = u64::from_le_bytes(buf.as_slice().try_into().unwrap());
                    buf.as_mut_slice().copy_from_slice(&(v + 1).to_le_bytes());
                })
                .unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let mut total = 0u64;
    m.for_each_in(None, None, |_, v| {
        total += u64::from_le_bytes(v.try_into().unwrap());
        true
    });
    assert_eq!(total, THREADS as u64 * per);
}

#[test]
fn concurrent_mixed_churn_consistency() {
    let m = stress_map();
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for t in 0..THREADS as u64 {
        let (m, stop) = (m.clone(), stop.clone());
        handles.push(std::thread::spawn(move || {
            let mut state = t.wrapping_mul(0x9E3779B97F4A7C15) | 1;
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let kk = k(state % 256);
                match state % 5 {
                    0 | 1 => {
                        m.put(&kk, &i.to_le_bytes()).unwrap();
                    }
                    2 => {
                        let _ = m.get_with(&kk, |v| v.len());
                    }
                    3 => {
                        m.compute_if_present(&kk, |buf| {
                            if buf.len() >= 8 {
                                let v = u64::from_le_bytes(buf.as_slice()[..8].try_into().unwrap());
                                buf.as_mut_slice()[..8]
                                    .copy_from_slice(&v.wrapping_add(1).to_le_bytes());
                            }
                        });
                    }
                    _ => {
                        m.remove(&kk);
                    }
                }
                i += 1;
            }
        }));
    }
    // Scans run concurrently with the churn and must stay well-formed.
    for _ in 0..30 {
        let mut prev: Option<Vec<u8>> = None;
        let mut n = 0;
        m.for_each_in(None, None, |kb, _| {
            if let Some(p) = &prev {
                assert!(p.as_slice() < kb, "scan out of order");
            }
            prev = Some(kb.to_vec());
            n += 1;
            true
        });
        assert!(n <= 256);
    }
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    // Final state is internally consistent.
    let mut n = 0;
    m.for_each_in(None, None, |_, _| {
        n += 1;
        true
    });
    assert_eq!(n, m.len());
}

#[test]
fn delete_reinsert_aba_on_same_key() {
    // Exercises finalizeRemove racing with re-insertion (§4.4's ABA
    // discussion): alternating delete/insert of one key from several
    // threads, with concurrent readers.
    let m = stress_map();
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for t in 0..THREADS as u64 {
        let (m, stop) = (m.clone(), stop.clone());
        handles.push(std::thread::spawn(move || {
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                if t % 2 == 0 {
                    m.put_if_absent(b"hot", &i.to_le_bytes()).unwrap();
                    m.remove(b"hot");
                } else {
                    // Readers must never observe torn values.
                    if let Some(v) = m.get_with(b"hot", |b| b.to_vec()) {
                        assert_eq!(v.len(), 8);
                    }
                }
                i += 1;
            }
        }));
    }
    std::thread::sleep(std::time::Duration::from_millis(300));
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn scans_see_stable_keys_during_churn() {
    // Paper scan guarantee 1: keys inserted before the scan and never
    // removed must be returned, even while other keys churn and chunks
    // rebalance.
    let m = stress_map();
    for i in (0..2_000u64).step_by(2) {
        m.put(&k(i), b"stable").unwrap();
    }
    let stop = Arc::new(AtomicBool::new(false));
    let churn = {
        let (m, stop) = (m.clone(), stop.clone());
        std::thread::spawn(move || {
            let mut i = 1u64;
            while !stop.load(Ordering::Relaxed) {
                let kk = k(i % 2_000);
                m.put(&kk, b"odd").unwrap();
                m.remove(&kk);
                i += 2;
            }
        })
    };
    for _ in 0..20 {
        let mut evens = 0;
        m.for_each_in(None, None, |kb, _| {
            // keys are "keyNNNNNNNN"
            let n: u64 = std::str::from_utf8(&kb[3..]).unwrap().parse().unwrap();
            if n.is_multiple_of(2) {
                evens += 1;
            }
            true
        });
        assert_eq!(evens, 1_000, "a stable key went missing from a scan");

        let mut evens_desc = 0;
        m.for_each_descending(None, None, |kb, _| {
            let n: u64 = std::str::from_utf8(&kb[3..]).unwrap().parse().unwrap();
            if n.is_multiple_of(2) {
                evens_desc += 1;
            }
            true
        });
        assert_eq!(evens_desc, 1_000, "descending scan lost a stable key");
    }
    stop.store(true, Ordering::Relaxed);
    churn.join().unwrap();
}
