//! Overload governance: deadlines, bounded lock waits, the degraded-mode
//! controller, and the budgeted API surface (single map and sharded).
//!
//! The acceptance bar these tests pin down:
//! * no operation overruns its deadline by more than one bounded retry
//!   step (`deadline_pressure_bounded_overrun`),
//! * `Overloaded` rejections engage *before* the pool's OOM ladder
//!   (`overloaded_rejections_precede_oom`),
//! * the configurable lock-wait budget actually bounds contended waits
//!   (`configured_lock_wait_bounds_contention`).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use oak_core::{
    OakError, OakMap, OakMapConfig, OpBudget, OverloadConfig, OverloadState, RetryPolicy,
    ShardedOakMap,
};
use oak_mempool::{LockSite, PoolConfig};

fn k(i: u64) -> Vec<u8> {
    format!("k{i:05}").into_bytes()
}

/// Holds the value-header write lock of `key` for `hold` by sleeping
/// inside a compute closure; `entered` flips once the lock is held.
fn stuck_writer(
    map: Arc<OakMap>,
    key: Vec<u8>,
    hold: Duration,
    entered: Arc<AtomicBool>,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        map.compute_if_present(&key, |_v| {
            entered.store(true, Ordering::SeqCst);
            std::thread::sleep(hold);
        });
    })
}

/// An operation under a deadline must give up within one bounded retry
/// step of that deadline, not ride out the full (2 s default) lock wait.
#[test]
fn deadline_pressure_bounded_overrun() {
    let map = Arc::new(OakMap::with_config(OakMapConfig::small()));
    map.put(b"stuck", b"v0").unwrap();

    let entered = Arc::new(AtomicBool::new(false));
    let writer = stuck_writer(
        map.clone(),
        b"stuck".to_vec(),
        Duration::from_millis(400),
        entered.clone(),
    );
    while !entered.load(Ordering::SeqCst) {
        std::hint::spin_loop();
    }

    let deadline = Duration::from_millis(50);
    let start = Instant::now();
    let err = map
        .put_budgeted(b"stuck", b"v1", &OpBudget::with_deadline(deadline))
        .unwrap_err();
    let elapsed = start.elapsed();
    assert_eq!(err, OakError::DeadlineExceeded);
    // Deadline + one bounded backoff step + scheduling slack — far below
    // both the 400 ms lock hold and the 2 s default lock-wait budget.
    assert!(
        elapsed < Duration::from_millis(350),
        "overran deadline: {elapsed:?}"
    );

    writer.join().unwrap();
    // The map recovers once the holder finishes.
    map.put(b"stuck", b"v2").unwrap();
    assert_eq!(map.get_copy(b"stuck"), Some(b"v2".to_vec()));
}

/// An already-expired budget is rejected up front, before any allocation.
#[test]
fn expired_budget_rejected_before_any_work() {
    let map = OakMap::with_config(OakMapConfig::small());
    let expired = OpBudget::until(Instant::now());
    assert_eq!(
        map.put_budgeted(b"a", b"v", &expired),
        Err(OakError::DeadlineExceeded)
    );
    assert_eq!(
        map.remove_budgeted(b"a", &expired),
        Err(OakError::DeadlineExceeded)
    );
    assert!(!map.contains_key(b"a"));
    assert!(map.stats().pool.deadline_exceeded >= 2);
    // Unbudgeted operations still work.
    map.put(b"a", b"v").unwrap();
    assert_eq!(map.get_copy(b"a"), Some(b"v".to_vec()));
}

/// With the controller enabled, writes are shed with `Overloaded` while
/// headroom still exists — strictly before the pool's OOM ladder (and
/// thus before any `OutOfMemory`) engages.
#[test]
fn overloaded_rejections_precede_oom() {
    let map = OakMap::with_config(
        OakMapConfig::small()
            .pool(PoolConfig {
                magazines: false,
                lockfree: false,
                arena_size: 64 << 10,
                max_arenas: 2,
                ..Default::default()
            })
            .overload(OverloadConfig::standard().sample_every(1)),
    );

    let value = vec![0xabu8; 200];
    let mut first_err = None;
    for i in 0..4096 {
        match map.put(&k(i), &value) {
            Ok(()) => {}
            Err(e) => {
                first_err = Some(e);
                break;
            }
        }
    }
    assert_eq!(first_err, Some(OakError::Overloaded));
    let stats = map.stats();
    assert_eq!(stats.pool.oom_failures, 0, "OOM ladder engaged: {stats:?}");
    assert_eq!(stats.pool.failed_allocs, 0, "allocation failed: {stats:?}");
    assert!(stats.pool.overload_sheds >= 1);
    assert_eq!(map.overload_state(), OverloadState::Critical);
    // Reads still serve under write shedding.
    assert_eq!(map.get_copy(&k(0)), Some(value));
}

/// `OakMapConfig::lock_wait` bounds how long a contended header wait
/// blocks: far sooner than the 2 s default, and the surfaced error names
/// the losing site with its wait diagnostics.
#[test]
fn configured_lock_wait_bounds_contention() {
    let map = Arc::new(OakMap::with_config(
        OakMapConfig::small().lock_wait(Duration::from_millis(30)),
    ));
    map.put(b"stuck", b"v0").unwrap();

    let entered = Arc::new(AtomicBool::new(false));
    let writer = stuck_writer(
        map.clone(),
        b"stuck".to_vec(),
        Duration::from_millis(500),
        entered.clone(),
    );
    while !entered.load(Ordering::SeqCst) {
        std::hint::spin_loop();
    }

    let start = Instant::now();
    let err = map
        .get_with_budgeted(b"stuck", &OpBudget::unbounded(), |v| v.to_vec())
        .unwrap_err();
    let elapsed = start.elapsed();
    match err {
        OakError::Contended(info) => {
            assert_eq!(info.site, LockSite::ValueRead);
            assert!(info.rounds > 0);
        }
        other => panic!("expected Contended, got {other:?}"),
    }
    assert!(
        elapsed < Duration::from_millis(400),
        "lock wait not bounded: {elapsed:?}"
    );
    writer.join().unwrap();
}

/// A degraded map sheds long scans after the configured entry limit;
/// entries already visited stay visited (truncation, not rollback).
#[test]
fn degraded_scans_shed_after_limit() {
    let map = OakMap::with_config(
        OakMapConfig::small().overload(
            OverloadConfig::standard()
                .sample_every(1)
                // Degraded whenever headroom < 100% — i.e. always once
                // anything is allocated; never Critical.
                .headroom(1.0, 0.0)
                .scan_limit(10),
        ),
    );
    for i in 0..100 {
        map.put(&k(i), b"v").unwrap();
    }
    assert_eq!(map.overload_state(), OverloadState::Degraded);

    let mut seen = 0u64;
    let err = map
        .for_each_in_budgeted(None, None, &OpBudget::unbounded(), |_k, _v| {
            seen += 1;
            true
        })
        .unwrap_err();
    assert_eq!(err, OakError::Overloaded);
    assert_eq!(seen, 10);
    assert!(map.stats().pool.scan_sheds >= 1);

    // An expired budget stops a scan before it visits anything.
    let err = map
        .for_each_in_budgeted(None, None, &OpBudget::until(Instant::now()), |_k, _v| true)
        .unwrap_err();
    assert_eq!(err, OakError::DeadlineExceeded);
}

/// The budgeted API routes through shards exactly like the unbudgeted
/// one, and the merged budgeted scan preserves global order.
#[test]
fn sharded_budgeted_surface() {
    let map = ShardedOakMap::with_config(4, OakMapConfig::small());
    let budget = OpBudget::with_deadline(Duration::from_secs(10))
        .with_policy(RetryPolicy::bounded(64).with_backoff(10, 1_000));

    for i in 0..200 {
        map.put_budgeted(&k(i), format!("v{i}").as_bytes(), &budget)
            .unwrap();
    }
    assert_eq!(map.len(), 200);
    assert!(!map.put_if_absent_budgeted(&k(7), b"nope", &budget).unwrap());
    assert_eq!(
        map.get_with_budgeted(&k(7), &budget, |v| v.to_vec())
            .unwrap(),
        Some(b"v7".to_vec())
    );
    assert!(map
        .compute_if_present_budgeted(&k(7), &budget, |v| {
            let n = v.len().min(2);
            v.as_mut_slice()[..n].copy_from_slice(b"V7");
        })
        .unwrap());
    assert_eq!(map.get_copy(&k(7)), Some(b"V7".to_vec()));
    assert!(map.remove_budgeted(&k(7), &budget).unwrap());
    assert!(!map.contains_key(&k(7)));

    // Budgeted merged scan: global key order, all entries.
    let mut keys = Vec::new();
    let visited = map
        .for_each_in_budgeted(None, None, &budget, |kb, _v| {
            keys.push(kb.to_vec());
            true
        })
        .unwrap();
    assert_eq!(visited, 199);
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted);

    // Expired budgets surface on the sharded path too.
    assert_eq!(
        map.put_budgeted(b"x", b"v", &OpBudget::until(Instant::now())),
        Err(OakError::DeadlineExceeded)
    );
    assert_eq!(map.overload_state(), OverloadState::Healthy);
}
