//! Property tests: OakMap must agree with `BTreeMap<Vec<u8>, Vec<u8>>`
//! under arbitrary sequential operation mixes, with chunk sizes small
//! enough that rebalances (split, merge, compaction) fire constantly.

use std::collections::BTreeMap;

use oak_core::{OakMap, OakMapConfig};
use oak_mempool::PoolConfig;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Put(u16, u8, u16),
    PutIfAbsent(u16, u8),
    Remove(u16),
    Get(u16),
    Compute(u16),
    Upsert(u16, u8),
    Range(u16, u16),
    Descend(u16, u16),
}

fn key(k: u16) -> Vec<u8> {
    format!("k{:05}", k % 512).into_bytes()
}

fn val(tag: u8, len: u16) -> Vec<u8> {
    let mut v = vec![tag; 1 + (len as usize % 300)];
    v[0] = tag;
    v
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (any::<u16>(), any::<u8>(), any::<u16>()).prop_map(|(k, t, l)| Op::Put(k, t, l)),
            (any::<u16>(), any::<u8>()).prop_map(|(k, t)| Op::PutIfAbsent(k, t)),
            any::<u16>().prop_map(Op::Remove),
            any::<u16>().prop_map(Op::Get),
            any::<u16>().prop_map(Op::Compute),
            (any::<u16>(), any::<u8>()).prop_map(|(k, t)| Op::Upsert(k, t)),
            (any::<u16>(), any::<u16>()).prop_map(|(a, b)| Op::Range(a, b)),
            (any::<u16>(), any::<u16>()).prop_map(|(a, b)| Op::Descend(a, b)),
        ],
        1..500,
    )
}

fn tiny_config() -> OakMapConfig {
    OakMapConfig {
        chunk_capacity: 16, // rebalance storms
        rebalance_unsorted_ratio: 0.5,
        merge_ratio: 0.25,
        pool: PoolConfig {
            magazines: false,
            lockfree: false,
            arena_size: 1 << 20,
            max_arenas: 64,
            ..Default::default()
        },
        shared_arenas: None,
        reclamation: oak_mempool::ReclamationPolicy::RetainHeaders,
        prefix_cache: true,
        ..OakMapConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn matches_btreemap(ops in ops()) {
        let oak = OakMap::with_config(tiny_config());
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();

        for op in ops {
            match op {
                Op::Put(k, t, l) => {
                    let (kb, vb) = (key(k), val(t, l));
                    oak.put(&kb, &vb).unwrap();
                    model.insert(kb, vb);
                }
                Op::PutIfAbsent(k, t) => {
                    let (kb, vb) = (key(k), val(t, 8));
                    let inserted = oak.put_if_absent(&kb, &vb).unwrap();
                    prop_assert_eq!(inserted, !model.contains_key(&kb));
                    model.entry(kb).or_insert(vb);
                }
                Op::Remove(k) => {
                    let kb = key(k);
                    let removed = oak.remove(&kb);
                    prop_assert_eq!(removed, model.remove(&kb).is_some());
                }
                Op::Get(k) => {
                    let kb = key(k);
                    prop_assert_eq!(oak.get_copy(&kb), model.get(&kb).cloned());
                }
                Op::Compute(k) => {
                    let kb = key(k);
                    let did = oak.compute_if_present(&kb, |buf| {
                        let s = buf.as_mut_slice();
                        if !s.is_empty() {
                            s[0] = s[0].wrapping_add(1);
                        }
                    });
                    match model.get_mut(&kb) {
                        Some(v) => {
                            prop_assert!(did);
                            if !v.is_empty() {
                                v[0] = v[0].wrapping_add(1);
                            }
                        }
                        None => prop_assert!(!did),
                    }
                }
                Op::Upsert(k, t) => {
                    let (kb, vb) = (key(k), val(t, 8));
                    oak.put_if_absent_compute_if_present(&kb, &vb, |buf| {
                        let s = buf.as_mut_slice();
                        if !s.is_empty() {
                            s[0] = s[0].wrapping_add(1);
                        }
                    })
                    .unwrap();
                    match model.get_mut(&kb) {
                        Some(v) => {
                            if !v.is_empty() {
                                v[0] = v[0].wrapping_add(1);
                            }
                        }
                        None => {
                            model.insert(kb, vb);
                        }
                    }
                }
                Op::Range(a, b) => {
                    let (lo, hi) = if key(a) <= key(b) {
                        (key(a), key(b))
                    } else {
                        (key(b), key(a))
                    };
                    let mut got = Vec::new();
                    oak.for_each_in(Some(&lo), Some(&hi), |k, v| {
                        got.push((k.to_vec(), v.to_vec()));
                        true
                    });
                    let want: Vec<(Vec<u8>, Vec<u8>)> = model
                        .range(lo..hi)
                        .map(|(k, v)| (k.clone(), v.clone()))
                        .collect();
                    prop_assert_eq!(got, want);
                }
                Op::Descend(a, b) => {
                    let (lo, hi) = if key(a) <= key(b) {
                        (key(a), key(b))
                    } else {
                        (key(b), key(a))
                    };
                    let mut got = Vec::new();
                    oak.for_each_descending(Some(&hi), Some(&lo), |k, _| {
                        got.push(k.to_vec());
                        true
                    });
                    let mut want: Vec<Vec<u8>> =
                        model.range(lo..=hi).map(|(k, _)| k.clone()).collect();
                    want.reverse();
                    prop_assert_eq!(got, want);
                }
            }
            prop_assert_eq!(oak.len(), model.len());
        }

        // Final full comparison, both directions.
        let mut asc = Vec::new();
        oak.for_each_in(None, None, |k, v| {
            asc.push((k.to_vec(), v.to_vec()));
            true
        });
        let want: Vec<(Vec<u8>, Vec<u8>)> =
            model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        prop_assert_eq!(&asc, &want);

        let mut desc = Vec::new();
        oak.for_each_descending(None, None, |k, _| {
            desc.push(k.to_vec());
            true
        });
        let mut want_keys: Vec<Vec<u8>> = model.keys().cloned().collect();
        want_keys.reverse();
        prop_assert_eq!(desc, want_keys);
    }
}

mod reclaiming {
    use super::*;

    fn reclaiming_config() -> OakMapConfig {
        OakMapConfig {
            reclamation: oak_mempool::ReclamationPolicy::ReclaimHeaders,
            ..tiny_config()
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The reclaiming memory manager must be observationally identical
        /// to the default under arbitrary op sequences — generation-checked
        /// header recycling may never surface stale or wrong values, even
        /// through delete/re-insert churn and rebalances.
        #[test]
        fn reclaiming_matches_btreemap(ops in ops()) {
            let oak = OakMap::with_config(reclaiming_config());
            let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
            for op in ops {
                match op {
                    Op::Put(k, t, l) => {
                        let (kb, vb) = (key(k), val(t, l));
                        oak.put(&kb, &vb).unwrap();
                        model.insert(kb, vb);
                    }
                    Op::PutIfAbsent(k, t) => {
                        let (kb, vb) = (key(k), val(t, 8));
                        let inserted = oak.put_if_absent(&kb, &vb).unwrap();
                        prop_assert_eq!(inserted, !model.contains_key(&kb));
                        model.entry(kb).or_insert(vb);
                    }
                    Op::Remove(k) => {
                        let kb = key(k);
                        prop_assert_eq!(oak.remove(&kb), model.remove(&kb).is_some());
                    }
                    Op::Get(k) => {
                        let kb = key(k);
                        prop_assert_eq!(oak.get_copy(&kb), model.get(&kb).cloned());
                    }
                    Op::Upsert(k, t) => {
                        let (kb, vb) = (key(k), val(t, 8));
                        oak.put_if_absent_compute_if_present(&kb, &vb, |buf| {
                            let s = buf.as_mut_slice();
                            if !s.is_empty() {
                                s[0] = s[0].wrapping_add(1);
                            }
                        })
                        .unwrap();
                        match model.get_mut(&kb) {
                            Some(v) => {
                                if !v.is_empty() {
                                    v[0] = v[0].wrapping_add(1);
                                }
                            }
                            None => {
                                model.insert(kb, vb);
                            }
                        }
                    }
                    _ => {
                        // Scans and computes are covered by the default-mode
                        // property test; churn ops stress the recycler here.
                    }
                }
                prop_assert_eq!(oak.len(), model.len());
            }
            let mut got = Vec::new();
            oak.for_each_in(None, None, |k, v| {
                got.push((k.to_vec(), v.to_vec()));
                true
            });
            let want: Vec<(Vec<u8>, Vec<u8>)> =
                model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
            prop_assert_eq!(got, want);
        }
    }
}
