//! Rebalance guarantees RB1–RB3 (§4.1), observed through scans.
//!
//! The paper states that a traversal over the chunk list concatenating
//! chunk contents must (RB1) include every key inserted before the
//! traversal and not removed, (RB2) not include keys never inserted or
//! removed without re-insertion, and (RB3) be sorted in monotonically
//! increasing order. Scans are exactly such traversals, so we drive
//! rebalance-heavy workloads and check the three properties.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use oak_core::{OakMap, OakMapConfig};
use oak_mempool::PoolConfig;

fn tiny() -> Arc<OakMap> {
    Arc::new(OakMap::with_config(OakMapConfig {
        chunk_capacity: 16,
        rebalance_unsorted_ratio: 0.25, // rebalance aggressively
        merge_ratio: 0.5,               // merge aggressively
        pool: PoolConfig {
            magazines: false,
            lockfree: false,
            arena_size: 1 << 20,
            max_arenas: 64,
            ..Default::default()
        },
        shared_arenas: None,
        reclamation: oak_mempool::ReclamationPolicy::RetainHeaders,
        prefix_cache: true,
        ..OakMapConfig::default()
    }))
}

fn k(i: u64) -> Vec<u8> {
    format!("{i:08}").into_bytes()
}

#[test]
fn rb1_stable_keys_survive_rebalance_storms() {
    let m = tiny();
    let stable: BTreeSet<u64> = (0..1_000).step_by(2).collect();
    for &i in &stable {
        m.put(&k(i), b"s").unwrap();
    }
    // Storm: insert + remove odd keys to force constant splits and merges.
    for round in 0..5u64 {
        for i in (1..1_000).step_by(2) {
            m.put(&k(i), &round.to_le_bytes()).unwrap();
        }
        for i in (1..1_000).step_by(2) {
            m.remove(&k(i));
        }
        let mut seen = BTreeSet::new();
        m.for_each_in(None, None, |kb, _| {
            seen.insert(std::str::from_utf8(kb).unwrap().parse::<u64>().unwrap());
            true
        });
        for &s in &stable {
            assert!(
                seen.contains(&s),
                "RB1 violated: {s} missing after round {round}"
            );
        }
        // RB2: no odd key may linger.
        for &x in &seen {
            assert!(x % 2 == 0, "RB2 violated: removed key {x} resurfaced");
        }
    }
    assert!(m.stats().rebalances > 20);
}

#[test]
fn rb3_scans_always_sorted_under_concurrent_rebalance() {
    let m = tiny();
    for i in 0..500 {
        m.put(&k(i), b"x").unwrap();
    }
    let stop = Arc::new(AtomicBool::new(false));
    let churn = {
        let (m, stop) = (m.clone(), stop.clone());
        std::thread::spawn(move || {
            let mut i = 500u64;
            while !stop.load(Ordering::Relaxed) {
                m.put(&k(i % 2_000), b"y").unwrap();
                m.remove(&k((i * 7) % 2_000));
                i += 1;
            }
        })
    };
    for _ in 0..100 {
        let mut prev: Option<Vec<u8>> = None;
        m.for_each_in(None, None, |kb, _| {
            if let Some(p) = &prev {
                assert!(
                    p.as_slice() < kb,
                    "RB3 violated: {:?} !< {:?}",
                    String::from_utf8_lossy(p),
                    String::from_utf8_lossy(kb)
                );
            }
            prev = Some(kb.to_vec());
            true
        });
    }
    stop.store(true, Ordering::Relaxed);
    churn.join().unwrap();
}

#[test]
fn merge_shrinks_chunk_count() {
    let m = tiny();
    // Fill to create many chunks.
    for i in 0..2_000 {
        m.put(&k(i), b"fill").unwrap();
    }
    let chunks_full = m.stats().chunks;
    assert!(chunks_full > 10);
    // Remove almost everything; merges are triggered by the insertions'
    // rebalance checks, so keep a light trickle of inserts going.
    for i in 0..2_000 {
        m.remove(&k(i));
    }
    for round in 0..40u64 {
        m.put(&k(round % 8), b"trickle").unwrap();
        m.remove(&k(round % 8));
    }
    // Chunk count is not required to reach 1 (merging is lazy), but the
    // trend must be sharply downward once data is gone and rebalances run.
    let m2 = tiny();
    for i in 0..2_000 {
        m2.put(&k(i), b"fill").unwrap();
    }
    for i in 0..2_000 {
        m2.remove(&k(i));
    }
    // Force rebalances by re-inserting into every region then removing.
    for i in (0..2_000).step_by(4) {
        m2.put(&k(i), b"probe").unwrap();
    }
    for i in (0..2_000).step_by(4) {
        m2.remove(&k(i));
    }
    for i in (0..2_000).step_by(4) {
        m2.put(&k(i), b"probe2").unwrap();
    }
    let after = m2.stats().chunks;
    assert!(
        after < chunks_full,
        "expected merges to reduce chunks: {after} !< {chunks_full}"
    );
}

#[test]
fn data_integrity_across_explicit_growth_and_shrink_cycles() {
    let m = tiny();
    let mut live = BTreeSet::new();
    for cycle in 0..6u64 {
        for i in 0..800u64 {
            let id = i * 6 + cycle;
            m.put(&k(id), &id.to_le_bytes()).unwrap();
            live.insert(id);
        }
        for i in 0..400u64 {
            let id = i * 12 + cycle;
            if m.remove(&k(id)) {
                live.remove(&id);
            }
        }
        // Verify values, not just keys.
        let mut count = 0;
        m.for_each_in(None, None, |kb, v| {
            let id: u64 = std::str::from_utf8(kb).unwrap().parse().unwrap();
            assert!(live.contains(&id), "phantom key {id}");
            assert_eq!(u64::from_le_bytes(v.try_into().unwrap()), id);
            count += 1;
            true
        });
        assert_eq!(count, live.len(), "cycle {cycle}");
        assert_eq!(m.len(), live.len());
    }
}

#[test]
fn validate_passes_after_heavy_churn() {
    let m = tiny();
    m.validate();
    for i in 0..2_000u64 {
        m.put(&k(i * 13 % 2_000), &i.to_le_bytes()).unwrap();
    }
    m.validate();
    for i in (0..2_000u64).step_by(3) {
        m.remove(&k(i));
    }
    m.validate();
    for i in (0..2_000u64).step_by(5) {
        m.put(&k(i), b"again").unwrap();
    }
    m.validate();
}
