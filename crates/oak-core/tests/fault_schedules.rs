//! Tier-2 fault-schedule harness: replays deterministic, seed-derived fault
//! schedules against an [`OakMap`] while a sequential `BTreeMap` model
//! tracks the expected contents.
//!
//! The contract under test is *fail-before-mutation*: every errorable
//! failpoint fires before the operation commits anything, so an `Err`
//! returned from the map means "no effect" — the model simply skips the
//! update. Passive sites (yield / delay) perturb timing without changing
//! outcomes. After every run the map must still satisfy `validate()` and
//! agree with the model key-for-key, byte-for-byte.
//!
//! Closure-panic recovery (the `PoisonOnPanic` guard) is exercised by
//! dedicated `catch_unwind` tests: a panic inside a compute lambda must
//! poison exactly that value, release its lock, keep `len()` consistent,
//! and leave the map fully usable.
//!
//! Every test holds [`oak_failpoints::scenario`]: the registry is
//! process-global and the test runner is concurrent.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use oak_core::{all_failpoint_sites, OakMap, OakMapConfig, OrderedKvMap};
use oak_failpoints::{configure, scenario, Action, FirePolicy, Schedule, SplitMix64};
use oak_mempool::{PoolConfig, ReclamationPolicy};

const KEYS: u64 = 48;
const OPS_PER_SEED: usize = 250;
const SEEDS: u64 = 120;

/// Tiny chunks and arenas: rebalances every few inserts, and the pool is
/// small enough that injected allocation failures land on live paths.
fn cramped_config(reclaim: bool) -> OakMapConfig {
    let policy = if reclaim {
        ReclamationPolicy::ReclaimHeaders
    } else {
        ReclamationPolicy::RetainHeaders
    };
    OakMapConfig::small()
        .chunk_capacity(16)
        .pool(PoolConfig {
            magazines: false,
            lockfree: false,
            arena_size: 8 << 10,
            max_arenas: 8,
            ..Default::default()
        })
        .reclamation(policy)
}

fn key_bytes(k: u64) -> [u8; 8] {
    k.to_be_bytes()
}

/// Variable-length value derived from the workload RNG (8–24 bytes, first
/// byte reserved for the compute marker).
fn gen_value(rng: &mut SplitMix64) -> Vec<u8> {
    let len = rng.range(8, 24) as usize;
    let tag = rng.next_u64().to_le_bytes();
    (0..len).map(|i| tag[i % 8]).collect()
}

const COMPUTE_MARK: u8 = 0xAB;

/// Replays one seeded schedule; returns the number of injections that
/// fired. Panics on any model divergence or invariant violation.
fn run_schedule(seed: u64, reclaim: bool) -> u64 {
    let _s = scenario();
    let schedule = Schedule::generate(seed, &all_failpoint_sites());
    schedule.install();
    let fired_before = oak_failpoints::total_fired();

    let map = OakMap::with_config(cramped_config(reclaim));
    let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    let mut rng = SplitMix64::new(seed);

    for i in 0..OPS_PER_SEED {
        let k = rng.below(KEYS);
        let kb = key_bytes(k);
        match rng.below(100) {
            0..=34 => {
                let v = gen_value(&mut rng);
                if map.put(&kb, &v).is_ok() {
                    model.insert(k, v);
                }
            }
            35..=49 => {
                let v = gen_value(&mut rng);
                // An Err (injected or real) means no effect on either side.
                if let Ok(inserted) = map.put_if_absent(&kb, &v) {
                    assert_eq!(
                        inserted,
                        !model.contains_key(&k),
                        "seed {seed} op {i}: putIfAbsent disagrees with model"
                    );
                    if inserted {
                        model.insert(k, v);
                    }
                }
            }
            50..=61 => {
                let v = gen_value(&mut rng);
                match map.put_if_absent_compute_if_present(&kb, &v, |b| {
                    b.as_mut_slice()[0] = COMPUTE_MARK;
                }) {
                    Ok(true) => {
                        assert!(!model.contains_key(&k));
                        model.insert(k, v);
                    }
                    Ok(false) => {
                        model.get_mut(&k).expect("computed a key the model lacks")[0] =
                            COMPUTE_MARK;
                    }
                    Err(_) => {}
                }
            }
            62..=76 => {
                let removed = map.remove(&kb);
                assert_eq!(
                    removed,
                    model.remove(&k).is_some(),
                    "seed {seed} op {i}: remove disagrees with model"
                );
            }
            77..=89 => {
                assert_eq!(
                    map.get_copy(&kb),
                    model.get(&k).cloned(),
                    "seed {seed} op {i}: get disagrees with model"
                );
            }
            _ => {
                let ran = map.compute_if_present(&kb, |b| {
                    b.as_mut_slice()[0] = COMPUTE_MARK;
                });
                assert_eq!(
                    ran,
                    model.contains_key(&k),
                    "seed {seed} op {i}: computeIfPresent disagrees with model"
                );
                if ran {
                    model.get_mut(&k).unwrap()[0] = COMPUTE_MARK;
                }
            }
        }
        if i % 50 == 49 {
            map.validate();
        }
    }

    map.validate();
    assert_eq!(map.len(), model.len(), "seed {seed}: len diverged");
    for k in 0..KEYS {
        assert_eq!(
            map.get_copy(&key_bytes(k)),
            model.get(&k).cloned(),
            "seed {seed}: final contents diverged at key {k}"
        );
    }
    assert_eq!(
        map.pool().stats().poisoned_values,
        0,
        "schedules never inject panics, so nothing may be poisoned"
    );
    oak_failpoints::total_fired() - fired_before
}

#[test]
fn seeded_schedules_match_model() {
    let mut total_fired = 0;
    let mut seeds_with_injections = 0;
    for seed in 0..SEEDS {
        let fired = run_schedule(seed, seed % 2 == 1);
        total_fired += fired;
        if fired > 0 {
            seeds_with_injections += 1;
        }
    }
    // The harness only proves something if faults actually fire: each seed
    // configures roughly half the sites, so the vast majority of runs must
    // see at least one injection.
    assert!(
        total_fired > 0,
        "no faults fired across {SEEDS} schedules — harness is inert"
    );
    assert!(
        seeds_with_injections > SEEDS / 2,
        "only {seeds_with_injections}/{SEEDS} schedules injected anything"
    );
}

/// The fail-before-mutation contract must also hold when the map is
/// driven through the workspace-wide [`OrderedKvMap`] trait object — the
/// path the generic bench adapter and conformance harness use.
#[test]
fn schedule_through_trait_object_matches_model() {
    let _s = scenario();
    Schedule::generate(0xDA7A, &all_failpoint_sites()).install();

    let oak = OakMap::with_config(cramped_config(false));
    let map: &dyn OrderedKvMap = &oak;
    let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    let mut rng = SplitMix64::new(0xDA7A);

    for i in 0..OPS_PER_SEED {
        let k = rng.below(KEYS);
        let kb = key_bytes(k);
        match rng.below(5) {
            0 => {
                let v = gen_value(&mut rng);
                if map.put(&kb, &v).is_ok() {
                    model.insert(k, v);
                }
            }
            1 => {
                assert_eq!(
                    map.remove(&kb),
                    model.remove(&k).is_some(),
                    "op {i}: trait remove disagrees with model"
                );
            }
            2 => {
                let ran = map.compute_if_present(&kb, &|b: &mut [u8]| b[0] = COMPUTE_MARK);
                assert_eq!(
                    ran,
                    model.contains_key(&k),
                    "op {i}: trait computeIfPresent disagrees with model"
                );
                if ran {
                    model.get_mut(&k).unwrap()[0] = COMPUTE_MARK;
                }
            }
            3 => {
                let v = gen_value(&mut rng);
                if let Ok(inserted) = map.put_if_absent(&kb, &v) {
                    assert_eq!(
                        inserted,
                        !model.contains_key(&k),
                        "op {i}: trait putIfAbsent disagrees with model"
                    );
                    if inserted {
                        model.insert(k, v);
                    }
                }
            }
            _ => {
                assert_eq!(
                    map.get_copy(&kb),
                    model.get(&k).cloned(),
                    "op {i}: trait get disagrees with model"
                );
            }
        }
    }

    oak.validate();
    assert_eq!(map.len(), model.len());
    for k in 0..KEYS {
        assert_eq!(map.get_copy(&key_bytes(k)), model.get(&k).cloned());
    }
}

/// Final observable state of a replay: map length plus per-key contents.
type ReplayState = (usize, Vec<(u64, Option<Vec<u8>>)>);

#[test]
fn same_seed_replays_identically() {
    for seed in [3u64, 17, 42] {
        let run = |sd: u64| -> ReplayState {
            let _s = scenario();
            Schedule::generate(sd, &all_failpoint_sites()).install();
            let map = OakMap::with_config(cramped_config(false));
            let mut rng = SplitMix64::new(sd);
            for _ in 0..OPS_PER_SEED {
                let k = key_bytes(rng.below(KEYS));
                match rng.below(3) {
                    0 => {
                        let v = gen_value(&mut rng);
                        let _ = map.put(&k, &v);
                    }
                    1 => {
                        let _ = map.remove(&k);
                    }
                    _ => {
                        let _ = map.get_copy(&k);
                    }
                }
            }
            let contents = (0..KEYS)
                .map(|k| (k, map.get_copy(&key_bytes(k))))
                .collect();
            (map.len(), contents)
        };
        assert_eq!(
            run(seed),
            run(seed),
            "seed {seed} did not replay identically"
        );
    }
}

#[test]
fn injected_alloc_failure_propagates_and_counts() {
    let _s = scenario();
    let map = OakMap::with_config(cramped_config(false));
    map.put(b"steady", b"value").unwrap();
    let failed_before = map.pool().stats().failed_allocs;

    // The very next pool allocation fails; later ones succeed.
    configure("pool/alloc", Action::ReturnErr, FirePolicy::OnHits(vec![1]));
    let err = map.put(b"new-key", b"new-value");
    assert!(err.is_err(), "injected alloc failure must surface as Err");
    assert_eq!(map.get_copy(b"new-key"), None, "failed put must not insert");
    assert!(map.pool().stats().failed_allocs > failed_before);

    // The map is unharmed: the same insert now goes through.
    map.put(b"new-key", b"new-value").unwrap();
    assert_eq!(map.get_copy(b"new-key").as_deref(), Some(&b"new-value"[..]));
    assert_eq!(map.get_copy(b"steady").as_deref(), Some(&b"value"[..]));
    map.validate();
}

#[test]
fn panic_in_compute_if_present_poisons_only_that_key() {
    let _s = scenario();
    let map = OakMap::with_config(cramped_config(false));
    for k in 0..8u64 {
        map.put(&key_bytes(k), &[k as u8; 12]).unwrap();
    }
    assert_eq!(map.len(), 8);

    let poisoned = key_bytes(3);
    let unwound = catch_unwind(AssertUnwindSafe(|| {
        map.compute_if_present(&poisoned, |_| panic!("user closure exploded"));
    }));
    assert!(unwound.is_err(), "the closure panic must propagate");

    // The poisoned pair is gone; everything else is untouched.
    assert_eq!(map.get_copy(&poisoned), None);
    assert_eq!(map.len(), 7);
    for k in (0..8u64).filter(|&k| k != 3) {
        assert_eq!(
            map.get_copy(&key_bytes(k)).as_deref(),
            Some(&[k as u8; 12][..])
        );
    }
    assert_eq!(map.pool().stats().poisoned_values, 1);
    map.validate();

    // The map is fully usable — including the poisoned key's slot.
    assert!(!map.remove(&poisoned), "poisoned value reads as removed");
    assert!(map.put_if_absent(&poisoned, b"reborn").unwrap());
    assert_eq!(map.get_copy(&poisoned).as_deref(), Some(&b"reborn"[..]));
    assert!(map.compute_if_present(&poisoned, |b| b.as_mut_slice()[0] = b'R'));
    assert_eq!(map.len(), 8);
    map.validate();
}

#[test]
fn panic_in_put_if_absent_compute_if_present_recovers() {
    let _s = scenario();
    let map = OakMap::with_config(cramped_config(true));
    map.put(b"k", b"original").unwrap();

    let unwound = catch_unwind(AssertUnwindSafe(|| {
        let _ = map
            .put_if_absent_compute_if_present(b"k", b"unused", |_| panic!("compute arm exploded"));
    }));
    assert!(unwound.is_err());

    assert_eq!(map.get_copy(b"k"), None);
    assert_eq!(map.len(), 0);
    map.validate();

    // The absent arm now inserts, exactly as for a removed key.
    assert!(map
        .put_if_absent_compute_if_present(b"k", b"fresh", |_| unreachable!())
        .unwrap());
    assert_eq!(map.get_copy(b"k").as_deref(), Some(&b"fresh"[..]));
    assert_eq!(map.len(), 1);
    map.validate();
}

#[test]
fn concurrent_ops_survive_closure_panics() {
    let _s = scenario();
    // Roomy reclaiming pool: the workers churn headers far faster than the
    // cramped fixture tolerates, and this test is about panics, not OOM.
    let config = OakMapConfig::small()
        .chunk_capacity(16)
        .reclamation(ReclamationPolicy::ReclaimHeaders);
    let map = Arc::new(OakMap::with_config(config));
    let stop = Arc::new(AtomicBool::new(false));
    let shared = key_bytes(u64::MAX);

    // Panicker: re-insert the shared key and blow up computing it.
    let panicker = {
        let map = Arc::clone(&map);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut panics = 0u32;
            while !stop.load(Ordering::Relaxed) && panics < 50 {
                map.put(&shared, b"doomed-value").unwrap();
                let r = catch_unwind(AssertUnwindSafe(|| {
                    map.compute_if_present(&shared, |_| panic!("boom"));
                }));
                if r.is_err() {
                    panics += 1;
                }
            }
            panics
        })
    };

    // Workers: ordinary traffic on a disjoint key range.
    let workers: Vec<_> = (0..3u64)
        .map(|t| {
            let map = Arc::clone(&map);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut rng = SplitMix64::new(t + 1);
                let mut ops = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let k = key_bytes(t * 100 + rng.below(16));
                    match rng.below(4) {
                        0 => {
                            map.put(&k, &gen_value(&mut rng)).unwrap();
                        }
                        1 => {
                            map.remove(&k);
                        }
                        2 => {
                            map.compute_if_present(&k, |b| b.as_mut_slice()[0] = 1);
                        }
                        _ => {
                            map.get_copy(&k);
                        }
                    }
                    ops += 1;
                }
                ops
            })
        })
        .collect();

    let panics = panicker.join().unwrap();
    stop.store(true, Ordering::Relaxed);
    for w in workers {
        assert!(w.join().unwrap() > 0);
    }
    assert!(panics > 0, "the panicking thread never panicked");
    assert_eq!(map.pool().stats().poisoned_values as u32, panics);

    // Quiescent now: full invariant check, then prove the map still works.
    map.validate();
    map.put(&shared, b"alive").unwrap();
    assert_eq!(map.get_copy(&shared).as_deref(), Some(&b"alive"[..]));
}
