//! Memory-lifecycle hardening: soak at ~95% of the pool budget, emergency
//! reclamation, and clean out-of-memory surfacing.
//!
//! The contract under test (DESIGN.md "Memory lifecycle"):
//!
//! * sustained multi-threaded churn against a pool sized *below* the
//!   working set must never leak a byte — with the `audit` feature on,
//!   the pool-side ledger cross-checks every live allocation against the
//!   map's reachable set;
//! * a put that hits pool exhaustion first drains the quarantine and
//!   reclaims reorg-eligible chunks, and only surfaces
//!   [`OakError::OutOfMemory`] when that recovered nothing;
//! * after `OutOfMemory`, the map stays fully readable, scannable, and
//!   writable.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use oak_core::{OakError, OakMap, OakMapConfig};
use oak_mempool::{PoolConfig, ReclamationPolicy};

/// 256 KB pool; the soak working set is sized to ~95% of it, so the churn
/// constantly rides the exhaustion edge and exercises the reclaim paths.
fn soak_config() -> OakMapConfig {
    OakMapConfig::small()
        .chunk_capacity(64)
        .pool(PoolConfig {
            magazines: false,
            lockfree: false,
            arena_size: 32 << 10,
            max_arenas: 8,
            ..Default::default()
        })
        .reclamation(ReclamationPolicy::ReclaimHeaders)
}

const SOAK_THREADS: u64 = 4;
const KEYS_PER_THREAD: u64 = 340;
const SOAK_ROUNDS: u64 = 6;
const SOAK_VALUE: usize = 160;

fn soak_key(t: u64, i: u64) -> Vec<u8> {
    format!("t{t}-{i:05}").into_bytes()
}

/// Multi-threaded put/replace/remove churn at the budget edge. Returns the
/// number of operations that surfaced out-of-memory (tolerated: the pool
/// is deliberately too small for every thread's peak at once).
fn churn(map: &Arc<OakMap>) -> u64 {
    let ooms = AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..SOAK_THREADS {
            let map = Arc::clone(map);
            let ooms = &ooms;
            s.spawn(move || {
                let mut oom = 0u64;
                for round in 0..SOAK_ROUNDS {
                    for i in 0..KEYS_PER_THREAD {
                        let val = vec![(round as u8) ^ (i as u8); SOAK_VALUE];
                        match map.put(&soak_key(t, i), &val) {
                            Ok(()) => {}
                            Err(OakError::OutOfMemory | OakError::Alloc(_)) => oom += 1,
                            Err(e) => panic!("unexpected: {e}"),
                        }
                        if i % 3 == round % 3 {
                            map.remove(&soak_key(t, i));
                        }
                    }
                }
                ooms.fetch_add(oom, Ordering::Relaxed);
            });
        }
    });
    ooms.load(Ordering::Relaxed)
}

/// Removes every key currently in the map (collected via a scan).
fn remove_all(map: &OakMap) {
    let mut keys = Vec::new();
    map.for_each_in(None, None, |k, _| {
        keys.push(k.to_vec());
        true
    });
    for k in &keys {
        map.remove(k);
    }
    assert_eq!(map.len(), 0, "remove-all left residents");
}

/// End-of-soak verdict: map empty and consistent, quarantine drained, and
/// (under `audit`) not a byte leaked or misaccounted.
fn assert_no_leaks(map: &OakMap) {
    map.validate();
    map.drain_quarantine();
    #[cfg(feature = "audit")]
    {
        let report = map.audit();
        assert!(
            report.pool.violations.is_empty(),
            "lifecycle violations: {:?}",
            report.pool.violations
        );
        assert!(
            report.pool.balanced,
            "live {} + free {} != capacity {}",
            report.pool.live_bytes, report.pool.free_bytes, report.pool.capacity_bytes
        );
        assert_eq!(
            report.leaked_bytes, 0,
            "unreachable live allocations: {:?}",
            report.leaked
        );
        // Every payload is freed eagerly on remove; with the map empty no
        // value payload may stay live.
        assert_eq!(
            report
                .pool
                .class_bytes(oak_mempool::AllocClass::ValuePayload),
            0,
            "orphaned value payloads: {:?}",
            report.pool.live_by_class
        );
    }
    // Functional recovery: the space freed by the teardown must be usable
    // for a fresh burst.
    for i in 0..50u32 {
        map.put(format!("fresh{i:04}").as_bytes(), &[9u8; 64])
            .expect("post-soak insert into reclaimed space");
    }
    map.validate();
}

#[test]
fn soak_at_95_percent_budget_leaks_nothing() {
    let map = Arc::new(OakMap::with_config(soak_config()));
    let ooms = churn(&map);
    // The working set (~1360 × ~184 B ≈ 95% of 256 KB) plus replace
    // double-buffering makes some exhaustion expected; what matters is
    // that every failure path gave its memory back.
    eprintln!("soak: {ooms} tolerated OOMs");
    remove_all(&map);
    assert_no_leaks(&map);
}

#[test]
fn soak_at_95_percent_budget_with_magazines_leaks_nothing() {
    // Same ~95%-budget soak with the allocation magazines enabled: slices
    // parked thread-side must stay visible to the auditor as *free* bytes
    // (not leaks), and the emergency ladder's flush rung must return them
    // before any put concludes OutOfMemory with free memory parked.
    let map = Arc::new(OakMap::with_config(soak_config().pool(PoolConfig {
        magazines: true,
        lockfree: false,
        arena_size: 32 << 10,
        max_arenas: 8,
        ..Default::default()
    })));
    let ooms = churn(&map);
    eprintln!("magazine soak: {ooms} tolerated OOMs");
    let stats = map.pool().stats();
    assert!(
        stats.magazine_hits > 0,
        "magazines never engaged during the soak: {stats:?}"
    );
    remove_all(&map);
    // Flush before the verdict so the "no live value payloads" class check
    // sees the parked slices back on the free lists (the auditor counts
    // them as free either way; this also exercises the flush path).
    map.pool().flush_magazines();
    assert_no_leaks(&map);
}

#[test]
fn soak_at_95_percent_budget_with_lockfree_alloc_leaks_nothing() {
    // The full lock-free stack: magazines backed by per-class CAS stacks
    // and de-amortized arena growth. Slices parked on the stacks must stay
    // visible to the auditor as free bytes, the flush-all rung must drain
    // them before any put concludes OutOfMemory, and steady-state churn
    // must recycle through the stacks rather than the free-list mutex.
    let map = Arc::new(OakMap::with_config(soak_config().pool(PoolConfig {
        magazines: true,
        lockfree: true,
        arena_size: 32 << 10,
        max_arenas: 8,
        ..Default::default()
    })));
    let ooms = churn(&map);
    eprintln!("lockfree soak: {ooms} tolerated OOMs");
    let stats = map.pool().stats();
    assert!(
        stats.class_stack_pushes > 0,
        "class stacks never engaged during the soak: {stats:?}"
    );
    assert!(
        stats.class_stack_pops > 0,
        "stack-parked slices were never recycled: {stats:?}"
    );
    remove_all(&map);
    map.pool().flush_magazines();
    let stats = map.pool().stats();
    assert_eq!(
        stats.class_stack_bytes, 0,
        "flush left bytes parked on the class stacks: {stats:?}"
    );
    assert_no_leaks(&map);
}

#[test]
fn soak_with_injected_faults_leaks_nothing() {
    // Same soak with a fault schedule firing on roughly half the
    // failpoint sites: injected allocation and publish failures must not
    // orphan speculative keys or values either.
    let _s = oak_failpoints::scenario();
    oak_failpoints::Schedule::generate(0x0A4B, &oak_core::all_failpoint_sites()).install();
    let map = Arc::new(OakMap::with_config(soak_config()));
    let ooms = churn(&map);
    eprintln!("faulty soak: {ooms} tolerated OOMs");
    // Stop injecting before the teardown: the leak verdict must measure
    // what the faulty run left behind, not fail on a fault of its own.
    oak_failpoints::clear();
    remove_all(&map);
    assert_no_leaks(&map);
}

/// Tiny pool, big keys, tiny values, and merges disabled: once every key
/// is removed, the *only* way a fresh put can find 200 contiguous bytes is
/// the emergency path — quarantine drain plus reclamation of chunks full
/// of dead entries. Before this PR the put below failed with
/// `PoolExhausted`; now it must succeed and count a reclamation pass.
#[test]
fn emergency_reclamation_recovers_dead_key_space() {
    let map = OakMap::with_config(OakMapConfig {
        chunk_capacity: 32,
        rebalance_unsorted_ratio: 0.5,
        merge_ratio: 0.0, // never merge: removes alone reclaim nothing
        pool: PoolConfig {
            magazines: false,
            lockfree: false,
            arena_size: 64 << 10,
            max_arenas: 2,
            ..Default::default()
        },
        shared_arenas: None,
        reclamation: ReclamationPolicy::RetainHeaders,
        prefix_cache: true,
        ..OakMapConfig::default()
    });
    let big_key = |i: u64| {
        let mut k = format!("{i:08}").into_bytes();
        k.resize(200, b'x');
        k
    };
    let mut inserted = 0u64;
    loop {
        match map.put(&big_key(inserted), &[1u8; 8]) {
            Ok(()) => inserted += 1,
            Err(OakError::OutOfMemory) => break,
            Err(e) => panic!("exhaustion must surface as OutOfMemory, got {e}"),
        }
    }
    assert!(inserted > 100, "pool absorbed only {inserted} entries");
    // The failing put attempted recovery before giving up.
    assert!(map.pool().stats().emergency_reclaims > 0);
    assert!(map.pool().stats().oom_failures > 0);

    // Remove every *other* key: no chunk ever empties, so the
    // remove-path merge heuristic stays quiet and every removed key's
    // slice sits dead inside a live chunk.
    for i in (0..inserted).step_by(2) {
        assert!(map.remove(&big_key(i)), "key {i}");
    }
    assert_eq!(map.len() as u64, inserted - inserted.div_ceil(2));

    // Dead keys still hold their slices; a 200-byte key cannot fit in the
    // freed 8-byte payload holes. Emergency reclamation must rebalance
    // the dead-laden chunks, drain the quarantine, and retry.
    let reclaims_before = map.pool().stats().emergency_reclaims;
    map.put(&big_key(1_000_000), &[2u8; 8])
        .expect("put must succeed via emergency reclamation");
    let stats = map.stats();
    assert!(
        map.pool().stats().emergency_reclaims > reclaims_before,
        "recovery did not go through the emergency path"
    );
    assert!(stats.keys_retired > 0, "no dead keys were retired");
    assert!(stats.reclaimed_bytes > 0, "quarantine never freed anything");
    map.validate();
    remove_all(&map);
    assert_no_leaks(&map);
}

/// With magazines on, the emergency ladder gains a "flush all magazines"
/// rung. Exhaustion must still terminate in a clean `OutOfMemory` (no
/// retry livelock), and no put may fail while free bytes sit parked in a
/// magazine — after removals free room via the magazines, fresh puts
/// succeed.
#[test]
fn oom_ladder_terminates_with_magazines() {
    let map = OakMap::with_config(OakMapConfig::small().chunk_capacity(32).pool(PoolConfig {
        magazines: true,
        lockfree: false,
        arena_size: 64 << 10,
        max_arenas: 2,
        ..Default::default()
    }));
    let key = |i: u64| format!("key{i:06}").into_bytes();
    let mut inserted = 0u64;
    loop {
        match map.put(&key(inserted), &[7u8; 256]) {
            Ok(()) => inserted += 1,
            Err(OakError::OutOfMemory) => break, // terminated, did not spin
            Err(e) => panic!("{e}"),
        }
    }
    assert!(inserted > 0);
    let stats = map.pool().stats();
    assert!(stats.emergency_reclaims > 0, "ladder never ran: {stats:?}");
    assert!(
        stats.magazine_flushes > 0,
        "ladder skipped the magazine-flush rung: {stats:?}"
    );
    // Free half the keys: their slices land in magazines. The next put
    // must find that memory (magazine pop or flush), not report OOM.
    for i in (0..inserted).step_by(2) {
        assert!(map.remove(&key(i)));
    }
    map.put(b"after-oom-mag", &[8u8; 256])
        .expect("parked magazine memory must satisfy the retry");
    map.validate();
    remove_all(&map);
    map.pool().flush_magazines();
    assert_no_leaks(&map);
}

/// A put that hits `OutOfMemory` even after emergency reclamation must
/// leave the map fully consistent: readable, scannable, and writable once
/// room is made.
#[test]
fn out_of_memory_leaves_map_usable() {
    let map = OakMap::with_config(OakMapConfig::small().chunk_capacity(32).pool(PoolConfig {
        magazines: false,
        lockfree: false,
        arena_size: 64 << 10,
        max_arenas: 2,
        ..Default::default()
    }));
    let key = |i: u64| format!("key{i:06}").into_bytes();
    let mut inserted = Vec::new();
    loop {
        let i = inserted.len() as u64;
        match map.put(&key(i), &[7u8; 256]) {
            Ok(()) => inserted.push(i),
            Err(OakError::OutOfMemory) => break,
            Err(e) => panic!("{e}"),
        }
    }
    assert!(!inserted.is_empty());

    // Readable: every pre-failure insert intact.
    for &i in &inserted {
        assert_eq!(map.get_with(&key(i), |v| v.len()), Some(256), "key {i}");
    }
    // Scannable: full ascend visits everything in order.
    let mut prev: Option<Vec<u8>> = None;
    let mut seen = 0usize;
    map.for_each_in(None, None, |k, _| {
        if let Some(p) = &prev {
            assert!(p.as_slice() < k, "scan order broken after OOM");
        }
        prev = Some(k.to_vec());
        seen += 1;
        true
    });
    assert_eq!(seen, inserted.len());
    // Writable: removals free room, then fresh puts succeed.
    for &i in inserted.iter().take(inserted.len() / 2) {
        assert!(map.remove(&key(i)));
    }
    map.put(b"after-oom", &[8u8; 128])
        .expect("map must accept writes after OOM once room exists");
    assert_eq!(map.get_copy(b"after-oom").unwrap(), [8u8; 128]);
    map.validate();
}
