//! OakMap under the header-reclaiming memory manager (the §3.3 extension):
//! full functionality plus the bounded-header-slab property, under
//! sequential and concurrent delete/re-insert churn.

use std::collections::BTreeMap;
use std::sync::Arc;

use oak_core::{OakMap, OakMapConfig};
use oak_mempool::ReclamationPolicy;

fn reclaiming_map() -> OakMap {
    OakMap::with_config(OakMapConfig::small().reclamation(ReclamationPolicy::ReclaimHeaders))
}

fn k(i: u64) -> Vec<u8> {
    format!("key{i:06}").into_bytes()
}

#[test]
fn functional_parity_with_model() {
    let m = reclaiming_map();
    let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
    let mut state = 0xC0FFEEu64;
    for i in 0..5_000u64 {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let key = k(state % 300);
        match state % 4 {
            0 | 1 => {
                let v = i.to_le_bytes().to_vec();
                m.put(&key, &v).unwrap();
                model.insert(key, v);
            }
            2 => {
                assert_eq!(m.remove(&key), model.remove(&key).is_some());
            }
            _ => {
                assert_eq!(m.get_copy(&key), model.get(&key).cloned());
            }
        }
    }
    let mut got = Vec::new();
    m.for_each_in(None, None, |kb, v| {
        got.push((kb.to_vec(), v.to_vec()));
        true
    });
    let want: Vec<_> = model.into_iter().collect();
    assert_eq!(got, want);
    m.validate();
}

#[test]
fn header_slab_bounded_under_put_remove_churn() {
    let m = reclaiming_map();
    for i in 0..20_000u64 {
        m.put(&k(i % 8), &i.to_le_bytes()).unwrap();
        m.remove(&k(i % 8));
    }
    let stats = m.stats();
    // The retaining default would have leaked 20_000 × 16 B = 320 KB of
    // headers; the reclaiming manager keeps the slab to a few slots.
    assert!(
        stats.pool.header_bytes < 2_048,
        "header slab grew to {} bytes",
        stats.pool.header_bytes
    );
    assert_eq!(m.len(), 0);
}

#[test]
fn retaining_default_leaks_headers_for_contrast() {
    let m = OakMap::with_config(OakMapConfig::small());
    for i in 0..2_000u64 {
        m.put(&k(0), &i.to_le_bytes()).unwrap();
        m.remove(&k(0));
    }
    assert!(m.stats().pool.header_bytes >= 2_000 * 16);
}

#[test]
fn stale_buffer_views_fail_cleanly_after_recycling() {
    let m = reclaiming_map();
    m.put(&k(1), b"victim").unwrap();
    let view = m.get(&k(1)).unwrap();
    assert_eq!(view.to_vec().unwrap(), b"victim");
    m.remove(&k(1));
    // Force slot reuse by a different key.
    m.put(&k(2), b"squatter").unwrap();
    assert!(
        view.to_vec().is_err(),
        "stale view must not read the squatter"
    );
    assert!(view.is_deleted());
    assert_eq!(m.get_copy(&k(2)).unwrap(), b"squatter");
}

#[test]
fn concurrent_delete_reinsert_churn() {
    let m = Arc::new(reclaiming_map());
    let mut handles = Vec::new();
    for t in 0..4u64 {
        let m = m.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..5_000u64 {
                let key = k((t + i) % 16);
                match i % 3 {
                    0 => {
                        m.put_if_absent(&key, &i.to_le_bytes()).unwrap();
                    }
                    1 => {
                        if let Some(v) = m.get_with(&key, |b| b.to_vec()) {
                            assert_eq!(v.len(), 8, "torn read");
                        }
                    }
                    _ => {
                        m.remove(&key);
                    }
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let mut n = 0;
    m.for_each_in(None, None, |_, _| {
        n += 1;
        true
    });
    assert_eq!(n, m.len());
    // Slab bounded despite ~13K removes.
    assert!(m.stats().pool.header_bytes < 64 * 16 * 4);
}
