//! The Oak map: location, queries, and update operations (Algorithms 1–3).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use oak_mempool::{AllocError, MemoryPool, PoolStats, SliceRef, ValueStore};
use oak_skiplist::SkipListMap;

use crate::buffer::{OakRBuffer, OakWBuffer};
use crate::chunk::{Chunk, LinkOutcome};
use crate::cmp::{KeyComparator, Lexicographic, MinKey};
use crate::config::OakMapConfig;
use crate::error::OakError;
use crate::iter::{DescendIter, EntryIter};
use crate::zc::ZeroCopyView;

/// Which insertion operation `do_put` is executing (Algorithm 2).
enum PutOp<'f> {
    Put,
    PutIfAbsent,
    /// `putIfAbsentComputeIfPresent` with its compute lambda.
    Compute(&'f dyn Fn(&mut OakWBuffer<'_>)),
}

/// Which non-insertion operation `do_if_present` is executing (Algorithm 3).
enum PresentOp<'f> {
    Compute(&'f dyn Fn(&mut OakWBuffer<'_>)),
    Remove,
}

/// A concurrent ordered map from byte keys to byte values, allocated in
/// self-managed off-heap arenas. See the [crate docs](crate) for an
/// overview and the paper mapping.
pub struct OakMap<C: KeyComparator = Lexicographic> {
    pub(crate) store: ValueStore,
    pub(crate) cmp: C,
    pub(crate) config: OakMapConfig,
    /// Lazy index: non-infimum `minKey` → chunk (§3.1).
    pub(crate) index: SkipListMap<MinKey<C>, Arc<Chunk>>,
    /// The first chunk (`minKey` = −∞, encoded as the empty key).
    pub(crate) first: RwLock<Arc<Chunk>>,
    len: AtomicUsize,
    pub(crate) rebalances: AtomicU64,
}

/// Point-in-time statistics about an [`OakMap`].
#[derive(Debug, Clone, Copy)]
pub struct OakStats {
    /// Live key-value pairs.
    pub len: usize,
    /// Chunks currently in the chunk list.
    pub chunks: usize,
    /// Rebalances performed since creation.
    pub rebalances: u64,
    /// Off-heap pool footprint.
    pub pool: PoolStats,
}

impl OakMap<Lexicographic> {
    /// Creates a map with default configuration and lexicographic key
    /// order.
    pub fn new() -> Self {
        Self::with_config(OakMapConfig::default())
    }

    /// Creates a map with the given configuration and lexicographic key
    /// order.
    pub fn with_config(config: OakMapConfig) -> Self {
        Self::with_comparator(config, Lexicographic)
    }
}

impl Default for OakMap<Lexicographic> {
    fn default() -> Self {
        Self::new()
    }
}

impl<C: KeyComparator> OakMap<C> {
    /// Creates a map with a custom comparator over serialized keys.
    pub fn with_comparator(config: OakMapConfig, cmp: C) -> Self {
        let pool = Arc::new(match &config.shared_arenas {
            Some(shared) => MemoryPool::with_shared(config.pool.max_arenas, shared.clone()),
            None => MemoryPool::new(config.pool.clone()),
        });
        let first = Arc::new(Chunk::new_empty(config.chunk_capacity, Box::new([])));
        OakMap {
            store: ValueStore::with_policy(pool, config.reclamation),
            cmp,
            config,
            index: SkipListMap::new(),
            first: RwLock::new(first),
            len: AtomicUsize::new(0),
            rebalances: AtomicU64::new(0),
        }
    }

    /// The zero-copy API view (the paper's `map.zc()`, §2.2).
    pub fn zc(&self) -> ZeroCopyView<'_, C> {
        ZeroCopyView::new(self)
    }

    /// Number of live key-value pairs.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The off-heap pool backing this map (footprint queries).
    pub fn pool(&self) -> &Arc<MemoryPool> {
        self.store.pool()
    }

    pub(crate) fn value_store(&self) -> &ValueStore {
        &self.store
    }

    /// Map statistics, including the RAM footprint (§1.1's "fast estimation
    /// of its RAM footprint").
    pub fn stats(&self) -> OakStats {
        let mut chunks = 1;
        let mut c = self.first_chunk();
        while let Some(n) = c.next_chunk() {
            chunks += 1;
            c = n;
        }
        OakStats {
            len: self.len(),
            chunks,
            rebalances: self.rebalances.load(Ordering::Relaxed),
            pool: self.pool().stats(),
        }
    }

    /// Validates internal invariants: the chunk list covers disjoint,
    /// ascending key ranges; every chunk's linked list is sorted and within
    /// its range; live entries reconcile with `len()`. Quiescent-state
    /// checker for tests and debugging — not thread-safe against writers.
    #[doc(hidden)]
    pub fn validate(&self) {
        let mut c = self.first_chunk();
        assert!(c.min_key.is_empty(), "first chunk must start at -∞");
        let mut live_total = 0usize;
        loop {
            // Entries sorted and within [min_key, next.min_key).
            let next = c.next_chunk();
            let items =
                c.collect_live(|raw| raw != 0 && !self.store.is_deleted(SliceRef::from_raw(raw)));
            let mut prev: Option<&[u8]> = None;
            for (kref, _) in &items {
                let kb = unsafe { self.pool().slice(*kref) };
                if let Some(p) = prev {
                    assert!(
                        self.cmp.compare(p, kb) == std::cmp::Ordering::Less,
                        "chunk list out of order"
                    );
                }
                if !c.min_key.is_empty() {
                    assert!(
                        self.cmp.compare(kb, &c.min_key) != std::cmp::Ordering::Less,
                        "entry below chunk minKey"
                    );
                }
                if let Some(n) = &next {
                    assert!(
                        self.cmp.compare(kb, &n.min_key) == std::cmp::Ordering::Less,
                        "entry at/above successor minKey"
                    );
                }
                prev = Some(kb);
            }
            live_total += items.len();
            // The heuristic live counter brackets reality from below only
            // loosely; just ensure it is sane.
            let _ = c.live_count();
            match next {
                Some(n) => {
                    if !c.min_key.is_empty() {
                        assert!(
                            self.cmp.compare(&c.min_key, &n.min_key) == std::cmp::Ordering::Less,
                            "chunk ranges not ascending"
                        );
                    }
                    c = n;
                }
                None => break,
            }
        }
        assert_eq!(live_total, self.len(), "live entries disagree with len()");
    }

    /// The current first chunk, with replacement chains resolved.
    pub(crate) fn first_chunk(&self) -> Arc<Chunk> {
        let mut c = self.first.read().clone();
        while let Some(r) = c.replacement() {
            c = r.clone();
        }
        c
    }

    /// `locateChunk(key)` (§3.1): index floor plus chunk-list walk, with
    /// replacement chains resolved so callers always land on a live (or at
    /// worst freshly frozen) chunk covering `key`.
    pub(crate) fn locate_chunk(&self, key: &[u8]) -> Arc<Chunk> {
        // Probe the index with the raw key bytes (no per-lookup allocation).
        let mut c = self
            .index
            .floor_by(
                |mk| self.cmp.compare(&mk.bytes, key) != std::cmp::Ordering::Greater,
                |_, v| v.clone(),
            )
            .unwrap_or_else(|| self.first.read().clone());
        loop {
            while let Some(r) = c.replacement() {
                c = r.clone();
            }
            match c.next_chunk() {
                Some(n) if self.cmp.compare(&n.min_key, key) != std::cmp::Ordering::Greater => {
                    c = n;
                }
                _ => {
                    if c.replacement().is_some() {
                        continue; // replaced while we looked at next
                    }
                    return c;
                }
            }
        }
    }

    // --- queries (Algorithm 1) -------------------------------------------

    /// Zero-copy get through a closure: applies `f` to the value bytes
    /// under the header read lock. Returns `None` if absent.
    pub fn get_with<R>(&self, key: &[u8], f: impl FnOnce(&[u8]) -> R) -> Option<R> {
        let c = self.locate_chunk(key);
        let ei = c.lookup(self.pool(), &self.cmp, key)?;
        let h = c.value_ref(ei)?;
        self.store.read(h, f).ok()
    }

    /// Zero-copy get returning an [`OakRBuffer`] view (the ZC API's
    /// `get`). The buffer stays valid indefinitely; reads fail with
    /// [`OakError::ConcurrentModification`] after a concurrent remove.
    pub fn get(&self, key: &[u8]) -> Option<OakRBuffer> {
        let c = self.locate_chunk(key);
        let ei = c.lookup(self.pool(), &self.cmp, key)?;
        let h = c.value_ref(ei)?;
        if self.store.is_deleted(h) {
            return None;
        }
        Some(OakRBuffer::value(self.store.clone(), h))
    }

    /// Copying get (the legacy API shape).
    pub fn get_copy(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.get_with(key, |b| b.to_vec())
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &[u8]) -> bool {
        self.get_with(key, |_| ()).is_some()
    }

    // --- insertion operations (Algorithm 2) -------------------------------

    /// Unconditionally associates `key` with `value` (ZC `put`: does not
    /// return the old value, §2.2).
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<(), OakError> {
        self.do_put(key, value, PutOp::Put).map(|_| ())
    }

    /// Associates `key` with `value` if absent; returns whether this call
    /// inserted.
    pub fn put_if_absent(&self, key: &[u8], value: &[u8]) -> Result<bool, OakError> {
        self.do_put(key, value, PutOp::PutIfAbsent)
    }

    /// If `key` is absent, inserts `value`; otherwise atomically applies
    /// `f` to the present value in place. Returns `true` if this call
    /// inserted a new mapping.
    pub fn put_if_absent_compute_if_present(
        &self,
        key: &[u8],
        value: &[u8],
        f: impl Fn(&mut OakWBuffer<'_>),
    ) -> Result<bool, OakError> {
        self.do_put(key, value, PutOp::Compute(&f))
    }

    /// Algorithm 2's `doPut`, with its `case 1` / `case 2` structure and
    /// retry discipline. Returns whether a *new* mapping was inserted.
    fn do_put(&self, key: &[u8], value: &[u8], op: PutOp<'_>) -> Result<bool, OakError> {
        if key.is_empty() {
            return Err(OakError::Alloc(AllocError::ZeroSized));
        }
        loop {
            let c = self.locate_chunk(key);
            let ei = c.lookup(self.pool(), &self.cmp, key);

            if let Some(ei) = ei {
                if let Some(h) = c.value_ref(ei) {
                    if !self.store.is_deleted(h) {
                        // Case 1: key present.
                        match &op {
                            PutOp::PutIfAbsent => return Ok(false),
                            PutOp::Put => {
                                if self.store.put(h, value)? {
                                    // l.p.: the nested v.put (§4.5).
                                    return Ok(false);
                                }
                                continue; // deleted under us → retry
                            }
                            PutOp::Compute(f) => {
                                if self.compute_guarded(h, *f) {
                                    // l.p.: the nested v.compute (§4.5).
                                    return Ok(false);
                                }
                                continue;
                            }
                        }
                    }
                    // Value deleted but reference not yet ⊥: help the
                    // remover finish (mirrors Algorithm 3 case 2, avoiding
                    // a blocking wait on finalizeRemove) and retry.
                    if !c.publish() {
                        self.rebalance(&c);
                        continue;
                    }
                    c.cas_value(ei, h.to_raw(), 0);
                    c.unpublish();
                    continue;
                }
            }

            // Case 2: key absent (no entry, or an entry with valRef = ⊥
            // that we reuse — §4.3).
            let ei = match ei {
                Some(existing) => existing,
                None => {
                    if c.is_frozen() {
                        self.rebalance(&c);
                        continue;
                    }
                    let kref = self.allocate_key(key)?;
                    let Some(new_ei) = c.allocate_entry(kref) else {
                        // Chunk full: free the speculative key, rebalance,
                        // retry (Algorithm 2 line 31).
                        self.pool().free(kref);
                        self.rebalance(&c);
                        continue;
                    };
                    match c.ll_put_if_absent(self.pool(), &self.cmp, new_ei) {
                        LinkOutcome::Linked => new_ei,
                        LinkOutcome::Found(existing) => {
                            // Our allocated entry stays unlinked and
                            // unreachable; reclaim its key buffer.
                            self.pool().free(kref);
                            existing
                        }
                        LinkOutcome::Frozen => {
                            self.pool().free(kref);
                            self.rebalance(&c);
                            continue;
                        }
                    }
                }
            };

            // Allocate and write the value off-heap (line 30), publish,
            // and CAS it in (line 35).
            let newh = self.store.allocate_value(value)?;
            if !c.publish() {
                self.undo_value(newh);
                self.rebalance(&c);
                continue;
            }
            let ok = c.cas_value(ei, 0, newh.to_raw());
            c.unpublish();
            if ok {
                // l.p. of a fresh insertion: the successful CAS (§4.5).
                self.len.fetch_add(1, Ordering::Relaxed);
                c.note_insert();
                self.maybe_reorg(&c);
                return Ok(true);
            }
            // CAS failed: a concurrent insertion or removal got there
            // first; undo and retry (line 38).
            self.undo_value(newh);
        }
    }

    /// Runs a user compute closure through [`ValueStore::compute`], keeping
    /// `len` consistent if the closure panics. The store's panic guard
    /// poisons the value (logically deleting it), so the pair it belonged
    /// to is gone from the map; account for that before the panic resumes —
    /// otherwise `len()` and `validate()` would drift after every poisoning.
    /// Returns whether the compute ran (value present and not deleted).
    fn compute_guarded(&self, h: oak_mempool::HeaderRef, f: &dyn Fn(&mut OakWBuffer<'_>)) -> bool {
        struct LenFixOnPanic<'a>(&'a AtomicUsize);
        impl Drop for LenFixOnPanic<'_> {
            fn drop(&mut self) {
                self.0.fetch_sub(1, Ordering::Relaxed);
            }
        }
        let fix = LenFixOnPanic(&self.len);
        let ran = self.store.compute(h, |b| f(b)).is_some();
        std::mem::forget(fix);
        ran
    }

    /// Reclaims a speculative value allocation that was never published.
    fn undo_value(&self, h: oak_mempool::HeaderRef) {
        // Marks deleted and frees the payload; the 16-byte header is
        // retained, consistent with the default memory manager (§3.3).
        self.store.remove(h);
    }

    fn allocate_key(&self, key: &[u8]) -> Result<SliceRef, OakError> {
        let r = self.pool().allocate(key.len())?;
        // SAFETY: fresh, unpublished allocation.
        unsafe { self.pool().write_initial(r, key) };
        Ok(r)
    }

    /// Triggers a rebalance if the chunk outgrew its sorted prefix
    /// (the paper's reorganization policy, §5.1).
    fn maybe_reorg(&self, c: &Arc<Chunk>) {
        if c.needs_reorg(self.config.rebalance_unsorted_ratio) || c.allocated() >= c.capacity() {
            self.rebalance(c);
        }
    }

    /// Merge policy trigger: when a removal leaves the chunk empty (by the
    /// live-entry heuristic) and it has a successor, rebalance it — the
    /// rebalancer will fold it into its neighbour ("merges chunks when they
    /// are under-used", §4.1).
    fn maybe_merge(&self, c: &Arc<Chunk>) {
        if c.note_remove() == 0 && !c.is_frozen() && c.next_chunk().is_some() {
            self.rebalance(c);
        }
    }

    // --- non-insertion operations (Algorithm 3) ----------------------------

    /// Atomically applies `f` to the value mapped to `key`, in place, under
    /// the value's write lock. Returns whether the value was present.
    pub fn compute_if_present(&self, key: &[u8], f: impl Fn(&mut OakWBuffer<'_>)) -> bool {
        self.do_if_present(key, PresentOp::Compute(&f))
    }

    /// Removes the mapping for `key`; returns whether this call removed it.
    pub fn remove(&self, key: &[u8]) -> bool {
        self.do_if_present(key, PresentOp::Remove)
    }

    /// Algorithm 3's `doIfPresent`.
    fn do_if_present(&self, key: &[u8], op: PresentOp<'_>) -> bool {
        loop {
            let c = self.locate_chunk(key);
            let ei = c.lookup(self.pool(), &self.cmp, key);
            let Some(ei) = ei else {
                return false; // l.p.: entry not found (line 44)
            };
            let Some(h) = c.value_ref(ei) else {
                return false; // l.p.: valRef = ⊥ (line 44)
            };

            if !self.store.is_deleted(h) {
                // Case 1: value exists and is not deleted.
                match &op {
                    PresentOp::Compute(f) => {
                        if self.compute_guarded(h, *f) {
                            // l.p.: successful nested v.compute (line 46).
                            return true;
                        }
                    }
                    PresentOp::Remove => {
                        if self.store.remove(h) {
                            // l.p.: v.remove set the deleted bit (line 48).
                            self.len.fetch_sub(1, Ordering::Relaxed);
                            self.finalize_remove(key, h);
                            self.maybe_merge(&c);
                            return true;
                        }
                    }
                }
            }
            // Case 2: value deleted — ensure the entry is removed by
            // CASing its value reference to ⊥ (lines 50–55).
            if !c.publish() {
                self.rebalance(&c);
                continue;
            }
            let ok = c.cas_value(ei, h.to_raw(), 0);
            c.unpublish();
            if ok {
                return false; // l.p.: successful CAS to ⊥ (line 52)
            }
            // CAS failed: the entry changed under us; retry (line 54).
        }
    }

    /// Removal that atomically returns a copy of the removed value — the
    /// legacy `ConcurrentNavigableMap.remove` shape. Same structure as
    /// `do_if_present(Remove)` with a copying `v.remove`.
    pub(crate) fn remove_with_copy(&self, key: &[u8]) -> Option<Vec<u8>> {
        loop {
            let c = self.locate_chunk(key);
            let ei = c.lookup(self.pool(), &self.cmp, key)?;
            let h = c.value_ref(ei)?;
            if !self.store.is_deleted(h) {
                if let Some(old) = self.store.remove_returning(h) {
                    self.len.fetch_sub(1, Ordering::Relaxed);
                    self.finalize_remove(key, h);
                    self.maybe_merge(&c);
                    return Some(old);
                }
            }
            // Value deleted: ensure the entry is cleaned, as in case 2.
            if !c.publish() {
                self.rebalance(&c);
                continue;
            }
            let ok = c.cas_value(ei, h.to_raw(), 0);
            c.unpublish();
            if ok {
                return None;
            }
        }
    }

    /// Algorithm 3's `finalizeRemove`: best-effort CAS of the entry's value
    /// reference to ⊥ after a successful remove. Headers are never reused,
    /// so comparing against `prev` is ABA-free (§4.4).
    fn finalize_remove(&self, key: &[u8], prev: oak_mempool::HeaderRef) {
        loop {
            let c = self.locate_chunk(key);
            let Some(ei) = c.lookup(self.pool(), &self.cmp, key) else {
                return;
            };
            let v = c.value_raw(ei);
            if v != prev.to_raw() {
                return; // key removed or replaced already (line 65)
            }
            if !c.publish() {
                self.rebalance(&c);
                continue;
            }
            // Success or failure both fine: remove already linearized.
            c.cas_value(ei, v, 0);
            c.unpublish();
            return;
        }
    }

    // --- scans --------------------------------------------------------------

    /// Ascending zero-copy scan over `[lo, hi)` (unbounded where `None`):
    /// the *stream* API — no per-entry objects, `f` borrows key and value
    /// bytes directly. Returns entries visited; stops early when `f`
    /// returns `false`.
    pub fn for_each_in(
        &self,
        lo: Option<&[u8]>,
        hi: Option<&[u8]>,
        mut f: impl FnMut(&[u8], &[u8]) -> bool,
    ) -> usize {
        let mut count = 0;
        self.stream_ascend(lo, hi, |kref, h| {
            let kb = unsafe { self.pool().slice(kref) };
            match self.store.read(h, |v| f(kb, v)) {
                Ok(keep) => {
                    count += 1;
                    keep
                }
                Err(_) => true, // deleted under the iterator: skip
            }
        });
        count
    }

    /// Ascending *Set API* iterator: yields `(OakRBuffer, OakRBuffer)`
    /// pairs, one ephemeral pair per entry (Figure 4e's slower variant).
    pub fn iter_range(&self, lo: Option<&[u8]>, hi: Option<&[u8]>) -> EntryIter<'_, C> {
        EntryIter::new(self, lo, hi)
    }

    /// Descending *Set API* iterator from `from` (inclusive; `None` = from
    /// the last key) down to `lo` (inclusive; `None` = unbounded), using
    /// the chunk-local stack algorithm of Figure 2.
    pub fn iter_descending(&self, from: Option<&[u8]>, lo: Option<&[u8]>) -> DescendIter<'_, C> {
        DescendIter::new(self, from, lo)
    }

    /// Descending stream scan (no per-entry objects). Returns entries
    /// visited; stops early when `f` returns `false`.
    pub fn for_each_descending(
        &self,
        from: Option<&[u8]>,
        lo: Option<&[u8]>,
        mut f: impl FnMut(&[u8], &[u8]) -> bool,
    ) -> usize {
        let mut count = 0;
        let mut it = DescendIter::new(self, from, lo);
        while let Some((kref, h)) = it.next_raw() {
            let kb = unsafe { self.pool().slice(kref) };
            match self.store.read(h, |v| f(kb, v)) {
                Ok(keep) => {
                    count += 1;
                    if !keep {
                        break;
                    }
                }
                Err(_) => continue,
            }
        }
        count
    }

    /// Internal ascending walk yielding raw `(key_ref, header_ref)` pairs
    /// of live entries. Shared by the stream API and the Set iterator.
    pub(crate) fn stream_ascend(
        &self,
        lo: Option<&[u8]>,
        hi: Option<&[u8]>,
        mut f: impl FnMut(SliceRef, oak_mempool::HeaderRef) -> bool,
    ) {
        let mut chunk = match lo {
            Some(k) => self.locate_chunk(k),
            None => self.first_chunk(),
        };
        let mut entry = match lo {
            Some(k) => chunk.lower_bound(self.pool(), &self.cmp, k),
            None => chunk.head_entry(),
        };
        // Last key yielded: used to avoid re-yielding keys after hopping
        // into a replacement chunk whose range overlaps what we already
        // covered (merge case).
        let mut last_key: Option<SliceRef> = None;
        loop {
            while entry != crate::chunk::NONE {
                let idx = entry;
                entry = chunk.entry_next(idx);
                let kb = chunk.key_bytes(self.pool(), idx);
                if let Some(h) = hi {
                    if self.cmp.compare(kb, h) != std::cmp::Ordering::Less {
                        return;
                    }
                }
                if let Some(lk) = last_key {
                    let lb = unsafe { self.pool().slice(lk) };
                    if self.cmp.compare(kb, lb) != std::cmp::Ordering::Greater {
                        continue;
                    }
                }
                let Some(h) = chunk.value_ref(idx) else {
                    continue;
                };
                if self.store.is_deleted(h) {
                    continue;
                }
                last_key = Some(chunk.key_ref(idx));
                if !f(chunk.key_ref(idx), h) {
                    return;
                }
            }
            // Hop to the next chunk, resolving replacements.
            let Some(mut n) = chunk.next_chunk() else {
                return;
            };
            while let Some(r) = n.replacement() {
                n = r.clone();
            }
            entry = match last_key {
                Some(lk) => {
                    let lb = unsafe { self.pool().slice(lk) };
                    n.lower_bound(self.pool(), &self.cmp, lb)
                }
                None => n.head_entry(),
            };
            chunk = n;
        }
    }
}

impl<C: KeyComparator> std::fmt::Debug for OakMap<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OakMap").field("len", &self.len()).finish()
    }
}

// SAFETY: all shared state is behind atomics, locks, or immutable arenas.
unsafe impl<C: KeyComparator> Send for OakMap<C> {}
unsafe impl<C: KeyComparator> Sync for OakMap<C> {}
