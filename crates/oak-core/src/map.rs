//! The Oak map's public shell: construction, configuration, statistics,
//! and invariant checking.
//!
//! The heavy lifting lives in the sibling modules: [`ops`](crate::ops)
//! holds the operation retry loops (Algorithms 1–3), [`index`](crate::index)
//! the lazy minKey→chunk index, [`iter`](crate::iter) the ascending and
//! descending scans, and [`rebalance`](crate::rebalance) the chunk
//! split/merge machinery.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use oak_mempool::{MemoryPool, PoolStats, SliceRef, ValueStore};

use crate::budget::OpBudget;
use crate::chunk::Chunk;
use crate::cmp::{KeyComparator, Lexicographic};
use crate::config::OakMapConfig;
use crate::index::ChunkIndex;
use crate::iter::{DescendIter, EntryIter};
use crate::overload::{OverloadController, OverloadState};
use crate::reclaim::Quarantine;
use crate::zc::ZeroCopyView;

/// A concurrent ordered map from byte keys to byte values, allocated in
/// self-managed off-heap arenas. See the [crate docs](crate) for an
/// overview and the paper mapping.
pub struct OakMap<C: KeyComparator = Lexicographic> {
    pub(crate) store: ValueStore,
    pub(crate) cmp: C,
    pub(crate) config: OakMapConfig,
    /// Chunk location: the lazy minKey index plus the first-chunk pointer.
    pub(crate) index: ChunkIndex<C>,
    pub(crate) len: AtomicUsize,
    pub(crate) rebalances: AtomicU64,
    /// Epoch-based quarantine for dead key slices of replaced chunks (see
    /// [`crate::reclaim`]): rebalance retires into it, readers pin it.
    pub(crate) reclaim: Arc<Quarantine>,
    /// Degraded-mode controller (see [`crate::overload`]): samples pool
    /// health on the write path and sheds load before the OOM ladder.
    pub(crate) overload: OverloadController,
}

/// Point-in-time statistics about an [`OakMap`].
#[derive(Debug, Clone, Copy)]
pub struct OakStats {
    /// Live key-value pairs.
    pub len: usize,
    /// Chunks currently in the chunk list.
    pub chunks: usize,
    /// Rebalances performed since creation.
    pub rebalances: u64,
    /// Key bytes currently quarantined: retired by rebalance, awaiting the
    /// epoch grace period before returning to the pool.
    pub quarantine_pending_bytes: u64,
    /// Dead key slices ever retired into the quarantine.
    pub keys_retired: u64,
    /// Quarantined bytes already drained back to the pool.
    pub reclaimed_bytes: u64,
    /// Off-heap pool footprint.
    pub pool: PoolStats,
}

impl OakStats {
    /// Field-wise sum of two stat snapshots (shard aggregation).
    pub(crate) fn merged(mut self, other: &OakStats) -> OakStats {
        self.len += other.len;
        self.chunks += other.chunks;
        self.rebalances += other.rebalances;
        self.quarantine_pending_bytes += other.quarantine_pending_bytes;
        self.keys_retired += other.keys_retired;
        self.reclaimed_bytes += other.reclaimed_bytes;
        self.pool = self.pool.merged(&other.pool);
        self
    }
}

impl OakMap<Lexicographic> {
    /// Creates a map with default configuration and lexicographic key
    /// order.
    pub fn new() -> Self {
        Self::with_config(OakMapConfig::default())
    }

    /// Creates a map with the given configuration and lexicographic key
    /// order.
    pub fn with_config(config: OakMapConfig) -> Self {
        Self::with_comparator(config, Lexicographic)
    }
}

impl Default for OakMap<Lexicographic> {
    fn default() -> Self {
        Self::new()
    }
}

/// Builds a map from `(key, value)` pairs with default configuration.
/// Panics if the off-heap pool cannot hold the data (use explicit
/// [`OakMap::put`] calls to handle allocation failure).
impl FromIterator<(Vec<u8>, Vec<u8>)> for OakMap<Lexicographic> {
    fn from_iter<I: IntoIterator<Item = (Vec<u8>, Vec<u8>)>>(iter: I) -> Self {
        let map = OakMap::new();
        for (k, v) in iter {
            map.put(&k, &v).expect("off-heap allocation failed");
        }
        map
    }
}

impl<C: KeyComparator> OakMap<C> {
    /// Creates a map with a custom comparator over serialized keys.
    pub fn with_comparator(config: OakMapConfig, cmp: C) -> Self {
        let pool = Arc::new(match &config.shared_arenas {
            Some(shared) => MemoryPool::with_shared(config.pool.max_arenas, shared.clone()),
            None => MemoryPool::new(config.pool.clone()),
        });
        let first = Arc::new(Chunk::new_empty(config.chunk_capacity, Box::new([])));
        let reclaim = Arc::new(Quarantine::new(pool.clone()));
        // Hard byte ceiling this map's pool can ever reach — the overload
        // controller's headroom denominator.
        let capacity = match &config.shared_arenas {
            Some(shared) => config.pool.max_arenas as u64 * shared.arena_size() as u64,
            None => config.pool.max_arenas as u64 * config.pool.arena_size as u64,
        };
        let overload = OverloadController::new(config.overload, capacity);
        OakMap {
            store: ValueStore::with_policy(pool, config.reclamation).lock_wait(config.lock_wait),
            cmp: cmp.clone(),
            config,
            index: ChunkIndex::new(cmp, first),
            len: AtomicUsize::new(0),
            rebalances: AtomicU64::new(0),
            reclaim,
            overload,
        }
    }

    /// The budget the unbudgeted public API runs under, derived from
    /// [`OakMapConfig::op_deadline`] and [`OakMapConfig::retry`]. With the
    /// default configuration this is [`OpBudget::unbounded`] and consults
    /// no clock.
    pub(crate) fn default_budget(&self) -> OpBudget {
        OpBudget {
            deadline: self.config.op_deadline.map(|d| Instant::now() + d),
            policy: self.config.retry,
        }
    }

    /// The overload controller's current verdict. Always
    /// [`OverloadState::Healthy`] when the controller is disabled (the
    /// default).
    pub fn overload_state(&self) -> OverloadState {
        self.overload.state()
    }

    /// The zero-copy API view (the paper's `map.zc()`, §2.2).
    pub fn zc(&self) -> ZeroCopyView<'_, C> {
        ZeroCopyView::new(self)
    }

    /// Number of live key-value pairs.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The off-heap pool backing this map (footprint queries).
    pub fn pool(&self) -> &Arc<MemoryPool> {
        self.store.pool()
    }

    /// The configuration this map was created with. Durable checkpoints
    /// stamp [`OakMapConfig::fingerprint`] into their manifest through
    /// this accessor.
    pub fn config(&self) -> &OakMapConfig {
        &self.config
    }

    pub(crate) fn value_store(&self) -> &ValueStore {
        &self.store
    }

    /// Map statistics, including the RAM footprint (§1.1's "fast estimation
    /// of its RAM footprint").
    pub fn stats(&self) -> OakStats {
        let mut chunks = 1;
        let mut c = self.first_chunk();
        while let Some(n) = c.next_chunk() {
            chunks += 1;
            c = n;
        }
        OakStats {
            len: self.len(),
            chunks,
            rebalances: self.rebalances.load(Ordering::Relaxed),
            quarantine_pending_bytes: self.reclaim.pending_bytes(),
            keys_retired: self.reclaim.retired_count(),
            reclaimed_bytes: self.reclaim.drained_bytes(),
            pool: self.pool().stats(),
        }
    }

    /// Drains the dead-key quarantine as far as the current reader
    /// population allows, returning the bytes released to the pool. Tests
    /// and memory-pressure tooling call this to settle the footprint;
    /// normal operation drains opportunistically.
    #[doc(hidden)]
    pub fn drain_quarantine(&self) -> u64 {
        self.reclaim.drain_now()
    }

    /// Validates internal invariants: the chunk list covers disjoint,
    /// ascending key ranges; every chunk's linked list is sorted and within
    /// its range; live entries reconcile with `len()`. Quiescent-state
    /// checker for tests and debugging — not thread-safe against writers.
    #[doc(hidden)]
    pub fn validate(&self) {
        let mut c = self.first_chunk();
        assert!(c.min_key.is_empty(), "first chunk must start at -∞");
        let mut live_total = 0usize;
        loop {
            // Entries sorted and within [min_key, next.min_key).
            let next = c.next_chunk();
            let items =
                c.collect_live(|raw| raw != 0 && !self.store.is_deleted(SliceRef::from_raw(raw)));
            let mut prev: Option<&[u8]> = None;
            for (kref, _) in &items {
                let kb = unsafe { self.pool().slice(*kref) };
                if let Some(p) = prev {
                    assert!(
                        self.cmp.compare(p, kb) == std::cmp::Ordering::Less,
                        "chunk list out of order"
                    );
                }
                if !c.min_key.is_empty() {
                    assert!(
                        self.cmp.compare(kb, &c.min_key) != std::cmp::Ordering::Less,
                        "entry below chunk minKey"
                    );
                }
                if let Some(n) = &next {
                    assert!(
                        self.cmp.compare(kb, &n.min_key) == std::cmp::Ordering::Less,
                        "entry at/above successor minKey"
                    );
                }
                prev = Some(kb);
            }
            live_total += items.len();
            // The heuristic live counter brackets reality from below only
            // loosely; just ensure it is sane.
            let _ = c.live_count();
            match next {
                Some(n) => {
                    if !c.min_key.is_empty() {
                        assert!(
                            self.cmp.compare(&c.min_key, &n.min_key) == std::cmp::Ordering::Less,
                            "chunk ranges not ascending"
                        );
                    }
                    c = n;
                }
                None => break,
            }
        }
        assert_eq!(live_total, self.len(), "live entries disagree with len()");
    }

    /// Cross-checks the pool's allocation ledger against the map: every
    /// ledger-live key or value-payload slice must be reachable from the
    /// live chunk chain (linked entries, their headers' payloads) or be
    /// quarantined awaiting reclamation. Anything else is a leak,
    /// attributed to its allocation site class. Quiescent-state checker —
    /// call with no concurrent writers.
    ///
    /// Reachability deliberately walks the *linked lists* only: a slice
    /// sitting in a chunk's entry array but never linked is owned by
    /// nobody (its allocator must free it on the failure path), and
    /// counting it as reachable would mask exactly the leaks this auditor
    /// exists to find.
    #[cfg(feature = "audit")]
    pub fn audit(&self) -> MapAuditReport {
        use std::collections::HashSet;
        let addr = |r: SliceRef| ((r.block() as u64) << 32) | r.offset() as u64;
        let mut reachable: HashSet<u64> = HashSet::new();
        let mut c = self.first_chunk();
        loop {
            for (kref, raw) in c.collect_live(|_| true) {
                reachable.insert(addr(kref));
                if raw != 0 {
                    let h: oak_mempool::HeaderRef = SliceRef::from_raw(raw);
                    reachable.insert(addr(h));
                    if let Some(p) = self.store.payload_of(h) {
                        reachable.insert(addr(p));
                    }
                }
            }
            match c.next_chunk() {
                Some(n) => c = n,
                None => break,
            }
        }
        for r in self.reclaim.pending_refs() {
            reachable.insert(addr(r));
        }
        let mut leaked = Vec::new();
        let mut leaked_bytes = 0u64;
        for (r, info) in self.pool().live_allocations() {
            let tracked = matches!(
                info.class,
                oak_mempool::AllocClass::Key | oak_mempool::AllocClass::ValuePayload
            );
            if tracked && !reachable.contains(&addr(r)) {
                leaked_bytes += info.padded_len as u64;
                leaked.push((r, info));
            }
        }
        MapAuditReport {
            pool: self.pool().audit(),
            leaked,
            leaked_bytes,
            quarantined_bytes: self.reclaim.pending_bytes(),
        }
    }

    /// The order-preserving 64-bit prefix stored alongside `key`'s entry
    /// and compared before touching off-heap key bytes. `0` means "no
    /// information" — returned when the comparator opts out or the
    /// prefix cache is disabled — and always forces a full compare, so a
    /// disabled cache degrades to exactly the unaccelerated search.
    #[inline]
    pub(crate) fn key_prefix(&self, key: &[u8]) -> u64 {
        if self.config.prefix_cache {
            self.cmp.prefix(key).unwrap_or(0)
        } else {
            0
        }
    }

    /// The current first chunk, with replacement chains resolved.
    pub(crate) fn first_chunk(&self) -> Arc<Chunk> {
        self.index.first_resolved()
    }

    /// `locateChunk(key)` (§3.1), delegated to the chunk index.
    pub(crate) fn locate_chunk(&self, key: &[u8]) -> Arc<Chunk> {
        self.index.locate(key)
    }

    // --- scans (bodies in `iter`) ----------------------------------------

    /// Ascending *Set API* iterator: yields `(OakRBuffer, OakRBuffer)`
    /// pairs, one ephemeral pair per entry (Figure 4e's slower variant).
    pub fn iter_range(&self, lo: Option<&[u8]>, hi: Option<&[u8]>) -> EntryIter<'_, C> {
        EntryIter::new(self, lo, hi)
    }

    /// Descending *Set API* iterator from `from` (inclusive; `None` = from
    /// the last key) down to `lo` (inclusive; `None` = unbounded), using
    /// the chunk-local stack algorithm of Figure 2.
    pub fn iter_descending(&self, from: Option<&[u8]>, lo: Option<&[u8]>) -> DescendIter<'_, C> {
        DescendIter::new(self, from, lo)
    }
}

/// Result of a quiescent [`OakMap::audit`] walk (`audit` feature).
#[cfg(feature = "audit")]
#[derive(Debug)]
pub struct MapAuditReport {
    /// The pool-side ledger report (balance check, violations, per-class
    /// live bytes).
    pub pool: oak_mempool::AuditReport,
    /// Ledger-live key/value-payload slices unreachable from the map and
    /// not quarantined — leaks, attributed by allocation-site class.
    pub leaked: Vec<(SliceRef, oak_mempool::LiveAlloc)>,
    /// Total padded bytes held by `leaked`.
    pub leaked_bytes: u64,
    /// Bytes quarantined at audit time (owned, not leaked).
    pub quarantined_bytes: u64,
}

impl<C: KeyComparator> std::fmt::Debug for OakMap<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OakMap").field("len", &self.len()).finish()
    }
}

// SAFETY: all shared state is behind atomics, locks, or immutable arenas.
unsafe impl<C: KeyComparator> Send for OakMap<C> {}
unsafe impl<C: KeyComparator> Sync for OakMap<C> {}
