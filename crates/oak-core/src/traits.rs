//! The unified [`OrderedKvMap`] trait: one interface over every concurrent
//! ordered byte-key map in the workspace.
//!
//! KiWi's enhanced implementation showed how a common ordered-map interface
//! lets one conformance / fuzz harness exercise many concurrent maps; this
//! module is that interface for the Oak workspace. It is implemented by
//! [`OakMap`], [`ShardedOakMap`], and the three baselines
//! (`SkipListMap<Vec<u8>, Mutex<Vec<u8>>>` — the `ConcurrentSkipListMap`
//! stand-in — [`OffHeapSkipListMap`], and [`LockedBTreeMap`]), and consumed
//! by the benchmark adapter, the druid backend, and the conformance suite.
//!
//! Design notes:
//!
//! * Compute closures take `&mut [u8]` rather than a map-specific buffer
//!   type so the trait stays implementable by maps without Oak's header
//!   layer. Each implementation brackets the closure in whatever locking
//!   it has (Oak and the off-heap skiplist use the value header's write
//!   lock; the on-heap skiplist a per-value mutex; the B+-tree its value
//!   header under the coarse lock). In-place updates cannot resize.
//! * The trait is dyn-compatible: closures are passed as `&dyn Fn` /
//!   `&mut dyn FnMut`, so `&dyn OrderedKvMap` works (the fault harness
//!   drives schedules through exactly that).
//! * [`ascend_entries`](OrderedKvMap::ascend_entries) /
//!   [`descend_entries`](OrderedKvMap::descend_entries) expose the paper's
//!   *Set API* (one ephemeral pair per entry, Figure 4e/4f's slower
//!   variant) where an implementation distinguishes it; the default
//!   forwards to the stream scans.

use oak_mempool::PoolStats;
use oak_skiplist::btree::LockedBTreeMap;
use oak_skiplist::offheap::OffHeapSkipListMap;
use oak_skiplist::SkipListMap;
use parking_lot::Mutex;

use crate::cmp::KeyComparator;
use crate::error::OakError;
use crate::map::{OakMap, OakStats};
use crate::sharded::ShardedOakMap;

/// A concurrent ordered map from byte keys to byte values.
///
/// Mirrors the paper's Table 1 API surface in map-agnostic form:
/// conditional atomic updates (`put_if_absent`, `compute_if_present`,
/// `put_if_absent_compute_if_present`), removal, and ascending/descending
/// range scans. Implementations that can read without materializing values
/// also implement [`ZeroCopyRead`].
pub trait OrderedKvMap: Send + Sync {
    /// Number of live key-value pairs.
    fn len(&self) -> usize;

    /// Whether the map is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copying get.
    fn get_copy(&self, key: &[u8]) -> Option<Vec<u8>>;

    /// Whether `key` is present.
    fn contains_key(&self, key: &[u8]) -> bool {
        self.get_copy(key).is_some()
    }

    /// Inserts or replaces `key → value`.
    fn put(&self, key: &[u8], value: &[u8]) -> Result<(), OakError>;

    /// Inserts `key → value` if absent; returns whether this call
    /// inserted.
    fn put_if_absent(&self, key: &[u8], value: &[u8]) -> Result<bool, OakError>;

    /// Atomically applies `f` to the value mapped to `key`, in place.
    /// Returns whether the value was present.
    fn compute_if_present(&self, key: &[u8], f: &dyn Fn(&mut [u8])) -> bool;

    /// If `key` is absent, inserts `value`; otherwise atomically applies
    /// `f` to the present value in place. Returns `true` if this call
    /// inserted a new mapping.
    fn put_if_absent_compute_if_present(
        &self,
        key: &[u8],
        value: &[u8],
        f: &dyn Fn(&mut [u8]),
    ) -> Result<bool, OakError>;

    /// Removes the mapping for `key`; returns whether this call removed
    /// it.
    fn remove(&self, key: &[u8]) -> bool;

    /// Ascending scan over `[lo, hi)` (unbounded where `None`); `f`
    /// borrows key and value bytes and returns whether to continue.
    /// Returns entries visited.
    fn ascend(
        &self,
        lo: Option<&[u8]>,
        hi: Option<&[u8]>,
        f: &mut dyn FnMut(&[u8], &[u8]) -> bool,
    ) -> usize;

    /// Descending scan from `from` (inclusive; `None` = from the last key)
    /// down to `lo` (inclusive; `None` = unbounded). Returns entries
    /// visited.
    fn descend(
        &self,
        from: Option<&[u8]>,
        lo: Option<&[u8]>,
        f: &mut dyn FnMut(&[u8], &[u8]) -> bool,
    ) -> usize;

    /// Ascending scan through the *Set API* (one ephemeral entry object
    /// per pair) where the implementation distinguishes it; defaults to
    /// the stream scan.
    fn ascend_entries(
        &self,
        lo: Option<&[u8]>,
        hi: Option<&[u8]>,
        f: &mut dyn FnMut(&[u8], &[u8]) -> bool,
    ) -> usize {
        self.ascend(lo, hi, f)
    }

    /// Descending *Set API* scan; defaults to the stream scan.
    fn descend_entries(
        &self,
        from: Option<&[u8]>,
        lo: Option<&[u8]>,
        f: &mut dyn FnMut(&[u8], &[u8]) -> bool,
    ) -> usize {
        self.descend(from, lo, f)
    }

    /// Off-heap pool statistics, for maps backed by an [`oak_mempool`]
    /// pool; `None` for on-heap maps.
    fn pool_stats(&self) -> Option<PoolStats> {
        None
    }
}

/// Maps that can serve reads without materializing the value: `f` borrows
/// the value bytes in place (under whatever read guard the map uses).
pub trait ZeroCopyRead: OrderedKvMap {
    /// Applies `f` to the value bytes of `key`; returns whether the key
    /// was present.
    fn read_with(&self, key: &[u8], f: &mut dyn FnMut(&[u8])) -> bool;
}

/// Maps that report Oak-shaped statistics ([`OakStats`]): the druid
/// backend's footprint estimation runs on any such map.
pub trait OakStatsSource {
    /// Aggregated statistics for the whole map.
    fn oak_stats(&self) -> OakStats;

    /// Per-shard statistics; a single element for unsharded maps.
    fn shard_stats(&self) -> Vec<OakStats> {
        vec![self.oak_stats()]
    }
}

// ---------------------------------------------------------------------------
// OakMap
// ---------------------------------------------------------------------------

impl<C: KeyComparator> OrderedKvMap for OakMap<C> {
    fn len(&self) -> usize {
        OakMap::len(self)
    }

    fn get_copy(&self, key: &[u8]) -> Option<Vec<u8>> {
        OakMap::get_copy(self, key)
    }

    fn contains_key(&self, key: &[u8]) -> bool {
        OakMap::contains_key(self, key)
    }

    fn put(&self, key: &[u8], value: &[u8]) -> Result<(), OakError> {
        OakMap::put(self, key, value)
    }

    fn put_if_absent(&self, key: &[u8], value: &[u8]) -> Result<bool, OakError> {
        OakMap::put_if_absent(self, key, value)
    }

    fn compute_if_present(&self, key: &[u8], f: &dyn Fn(&mut [u8])) -> bool {
        OakMap::compute_if_present(self, key, |buf| f(buf.as_mut_slice()))
    }

    fn put_if_absent_compute_if_present(
        &self,
        key: &[u8],
        value: &[u8],
        f: &dyn Fn(&mut [u8]),
    ) -> Result<bool, OakError> {
        OakMap::put_if_absent_compute_if_present(self, key, value, |buf| f(buf.as_mut_slice()))
    }

    fn remove(&self, key: &[u8]) -> bool {
        OakMap::remove(self, key)
    }

    fn ascend(
        &self,
        lo: Option<&[u8]>,
        hi: Option<&[u8]>,
        f: &mut dyn FnMut(&[u8], &[u8]) -> bool,
    ) -> usize {
        self.for_each_in(lo, hi, |k, v| f(k, v))
    }

    fn descend(
        &self,
        from: Option<&[u8]>,
        lo: Option<&[u8]>,
        f: &mut dyn FnMut(&[u8], &[u8]) -> bool,
    ) -> usize {
        self.for_each_descending(from, lo, |k, v| f(k, v))
    }

    // Since the chunk-batch scan rebuild, the Set adapter rides the same
    // batch pipeline as the stream scans: handing the conformance closure
    // borrowed bytes needs no per-entry buffer objects, so the historical
    // Set-API penalty (one `OakRBuffer` pair — three `Arc` clone/drop
    // pairs — per entry) is gone from this path. The object-per-entry
    // iterators ([`OakMap::iter_range`] / [`OakMap::iter_descending`])
    // remain the public Set API for callers that hold entries beyond the
    // visit.
    fn ascend_entries(
        &self,
        lo: Option<&[u8]>,
        hi: Option<&[u8]>,
        f: &mut dyn FnMut(&[u8], &[u8]) -> bool,
    ) -> usize {
        self.for_each_in(lo, hi, |k, v| f(k, v))
    }

    fn descend_entries(
        &self,
        from: Option<&[u8]>,
        lo: Option<&[u8]>,
        f: &mut dyn FnMut(&[u8], &[u8]) -> bool,
    ) -> usize {
        self.for_each_descending(from, lo, |k, v| f(k, v))
    }

    fn pool_stats(&self) -> Option<PoolStats> {
        Some(self.pool().stats())
    }
}

impl<C: KeyComparator> ZeroCopyRead for OakMap<C> {
    fn read_with(&self, key: &[u8], f: &mut dyn FnMut(&[u8])) -> bool {
        self.get_with(key, |v| f(v)).is_some()
    }
}

impl<C: KeyComparator> OakStatsSource for OakMap<C> {
    fn oak_stats(&self) -> OakStats {
        self.stats()
    }
}

// ---------------------------------------------------------------------------
// ShardedOakMap
// ---------------------------------------------------------------------------

impl<C: KeyComparator> OrderedKvMap for ShardedOakMap<C> {
    fn len(&self) -> usize {
        ShardedOakMap::len(self)
    }

    fn get_copy(&self, key: &[u8]) -> Option<Vec<u8>> {
        ShardedOakMap::get_copy(self, key)
    }

    fn contains_key(&self, key: &[u8]) -> bool {
        ShardedOakMap::contains_key(self, key)
    }

    fn put(&self, key: &[u8], value: &[u8]) -> Result<(), OakError> {
        ShardedOakMap::put(self, key, value)
    }

    fn put_if_absent(&self, key: &[u8], value: &[u8]) -> Result<bool, OakError> {
        ShardedOakMap::put_if_absent(self, key, value)
    }

    fn compute_if_present(&self, key: &[u8], f: &dyn Fn(&mut [u8])) -> bool {
        ShardedOakMap::compute_if_present(self, key, |buf| f(buf.as_mut_slice()))
    }

    fn put_if_absent_compute_if_present(
        &self,
        key: &[u8],
        value: &[u8],
        f: &dyn Fn(&mut [u8]),
    ) -> Result<bool, OakError> {
        ShardedOakMap::put_if_absent_compute_if_present(self, key, value, |buf| {
            f(buf.as_mut_slice())
        })
    }

    fn remove(&self, key: &[u8]) -> bool {
        ShardedOakMap::remove(self, key)
    }

    fn ascend(
        &self,
        lo: Option<&[u8]>,
        hi: Option<&[u8]>,
        f: &mut dyn FnMut(&[u8], &[u8]) -> bool,
    ) -> usize {
        self.for_each_in(lo, hi, |k, v| f(k, v))
    }

    fn descend(
        &self,
        from: Option<&[u8]>,
        lo: Option<&[u8]>,
        f: &mut dyn FnMut(&[u8], &[u8]) -> bool,
    ) -> usize {
        self.for_each_descending(from, lo, |k, v| f(k, v))
    }

    fn pool_stats(&self) -> Option<PoolStats> {
        Some(self.stats().pool)
    }
}

impl<C: KeyComparator> ZeroCopyRead for ShardedOakMap<C> {
    fn read_with(&self, key: &[u8], f: &mut dyn FnMut(&[u8])) -> bool {
        self.get_with(key, |v| f(v)).is_some()
    }
}

impl<C: KeyComparator> OakStatsSource for ShardedOakMap<C> {
    fn oak_stats(&self) -> OakStats {
        self.stats()
    }

    fn shard_stats(&self) -> Vec<OakStats> {
        ShardedOakMap::shard_stats(self)
    }
}

// ---------------------------------------------------------------------------
// Skiplist-OnHeap (the ConcurrentSkipListMap stand-in)
// ---------------------------------------------------------------------------

/// The on-heap baseline instantiation: boxed keys, per-value mutexes for
/// locked in-place updates (`ConcurrentSkipListMap` has no atomic compute;
/// the mutex is the closest Java-idiomatic equivalent). Named so harnesses
/// can construct it without naming the lock type.
pub type OnHeapSkipListMap = SkipListMap<Vec<u8>, Mutex<Vec<u8>>>;

impl OrderedKvMap for SkipListMap<Vec<u8>, Mutex<Vec<u8>>> {
    fn len(&self) -> usize {
        SkipListMap::len(self)
    }

    fn get_copy(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.get_with(&key.to_vec(), |v| v.lock().clone())
    }

    fn contains_key(&self, key: &[u8]) -> bool {
        self.get_with(&key.to_vec(), |_| ()).is_some()
    }

    fn put(&self, key: &[u8], value: &[u8]) -> Result<(), OakError> {
        SkipListMap::put(self, key.to_vec(), Mutex::new(value.to_vec()));
        Ok(())
    }

    fn put_if_absent(&self, key: &[u8], value: &[u8]) -> Result<bool, OakError> {
        Ok(SkipListMap::put_if_absent(
            self,
            key.to_vec(),
            Mutex::new(value.to_vec()),
        ))
    }

    fn compute_if_present(&self, key: &[u8], f: &dyn Fn(&mut [u8])) -> bool {
        self.get_with(&key.to_vec(), |v| f(&mut v.lock())).is_some()
    }

    fn put_if_absent_compute_if_present(
        &self,
        key: &[u8],
        value: &[u8],
        f: &dyn Fn(&mut [u8]),
    ) -> Result<bool, OakError> {
        loop {
            if self.get_with(&key.to_vec(), |v| f(&mut v.lock())).is_some() {
                return Ok(false);
            }
            if SkipListMap::put_if_absent(self, key.to_vec(), Mutex::new(value.to_vec())) {
                return Ok(true);
            }
        }
    }

    fn remove(&self, key: &[u8]) -> bool {
        SkipListMap::remove(self, &key.to_vec())
    }

    fn ascend(
        &self,
        lo: Option<&[u8]>,
        hi: Option<&[u8]>,
        f: &mut dyn FnMut(&[u8], &[u8]) -> bool,
    ) -> usize {
        let lo_k = lo.map(|l| l.to_vec());
        let hi_k = hi.map(|h| h.to_vec());
        self.for_each_range(lo_k.as_ref(), hi_k.as_ref(), |k, v| f(k, &v.lock()))
    }

    fn descend(
        &self,
        from: Option<&[u8]>,
        lo: Option<&[u8]>,
        f: &mut dyn FnMut(&[u8], &[u8]) -> bool,
    ) -> usize {
        let start = match from {
            Some(b) => Some(b.to_vec()),
            None => self.last_key(),
        };
        let Some(start) = start else {
            return 0;
        };
        let lo_k = lo.map(|l| l.to_vec());
        self.for_each_descending(&start, lo_k.as_ref(), |k, v| f(k, &v.lock()))
    }
}

impl ZeroCopyRead for SkipListMap<Vec<u8>, Mutex<Vec<u8>>> {
    fn read_with(&self, key: &[u8], f: &mut dyn FnMut(&[u8])) -> bool {
        // "Zero-copy" here means no materialized copy: the bytes are
        // borrowed from the boxed value under its mutex.
        self.get_with(&key.to_vec(), |v| f(&v.lock())).is_some()
    }
}

// ---------------------------------------------------------------------------
// Skiplist-OffHeap
// ---------------------------------------------------------------------------

impl OrderedKvMap for OffHeapSkipListMap {
    fn len(&self) -> usize {
        OffHeapSkipListMap::len(self)
    }

    fn get_copy(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.get(key)
    }

    fn contains_key(&self, key: &[u8]) -> bool {
        OffHeapSkipListMap::contains_key(self, key)
    }

    fn put(&self, key: &[u8], value: &[u8]) -> Result<(), OakError> {
        OffHeapSkipListMap::put(self, key, value).map_err(OakError::from)
    }

    fn put_if_absent(&self, key: &[u8], value: &[u8]) -> Result<bool, OakError> {
        OffHeapSkipListMap::put_if_absent(self, key, value).map_err(OakError::from)
    }

    fn compute_if_present(&self, key: &[u8], f: &dyn Fn(&mut [u8])) -> bool {
        OffHeapSkipListMap::compute_if_present(self, key, |b| f(b.as_mut_slice()))
    }

    fn put_if_absent_compute_if_present(
        &self,
        key: &[u8],
        value: &[u8],
        f: &dyn Fn(&mut [u8]),
    ) -> Result<bool, OakError> {
        OffHeapSkipListMap::put_if_absent_compute_if_present(self, key, value, |b| {
            f(b.as_mut_slice())
        })
        .map_err(OakError::from)
    }

    fn remove(&self, key: &[u8]) -> bool {
        OffHeapSkipListMap::remove(self, key)
    }

    fn ascend(
        &self,
        lo: Option<&[u8]>,
        hi: Option<&[u8]>,
        f: &mut dyn FnMut(&[u8], &[u8]) -> bool,
    ) -> usize {
        self.for_each_range(lo, hi, |k, v| f(k, v))
    }

    fn descend(
        &self,
        from: Option<&[u8]>,
        lo: Option<&[u8]>,
        f: &mut dyn FnMut(&[u8], &[u8]) -> bool,
    ) -> usize {
        let start = match from {
            Some(b) => Some(b.to_vec()),
            None => self.last_key(),
        };
        let Some(start) = start else {
            return 0;
        };
        self.for_each_descending(&start, lo, |k, v| f(k, v))
    }

    fn pool_stats(&self) -> Option<PoolStats> {
        Some(self.pool().stats())
    }
}

impl ZeroCopyRead for OffHeapSkipListMap {
    fn read_with(&self, key: &[u8], f: &mut dyn FnMut(&[u8])) -> bool {
        self.get_with(key, |v| f(v)).is_some()
    }
}

// ---------------------------------------------------------------------------
// MapDB-style B+-tree
// ---------------------------------------------------------------------------

impl OrderedKvMap for LockedBTreeMap {
    fn len(&self) -> usize {
        LockedBTreeMap::len(self)
    }

    fn get_copy(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.get(key)
    }

    fn contains_key(&self, key: &[u8]) -> bool {
        LockedBTreeMap::contains_key(self, key)
    }

    fn put(&self, key: &[u8], value: &[u8]) -> Result<(), OakError> {
        LockedBTreeMap::put(self, key, value).map_err(OakError::from)
    }

    fn put_if_absent(&self, key: &[u8], value: &[u8]) -> Result<bool, OakError> {
        LockedBTreeMap::put_if_absent(self, key, value).map_err(OakError::from)
    }

    fn compute_if_present(&self, key: &[u8], f: &dyn Fn(&mut [u8])) -> bool {
        LockedBTreeMap::compute_if_present(self, key, |b| f(b.as_mut_slice()))
    }

    fn put_if_absent_compute_if_present(
        &self,
        key: &[u8],
        value: &[u8],
        f: &dyn Fn(&mut [u8]),
    ) -> Result<bool, OakError> {
        LockedBTreeMap::put_if_absent_compute_if_present(self, key, value, |b| f(b.as_mut_slice()))
            .map_err(OakError::from)
    }

    fn remove(&self, key: &[u8]) -> bool {
        LockedBTreeMap::remove(self, key)
    }

    fn ascend(
        &self,
        lo: Option<&[u8]>,
        hi: Option<&[u8]>,
        f: &mut dyn FnMut(&[u8], &[u8]) -> bool,
    ) -> usize {
        self.for_each_range(lo, hi, |k, v| f(k, v))
    }

    fn descend(
        &self,
        from: Option<&[u8]>,
        lo: Option<&[u8]>,
        f: &mut dyn FnMut(&[u8], &[u8]) -> bool,
    ) -> usize {
        self.for_each_descending(from, lo, |k, v| f(k, v))
    }

    fn pool_stats(&self) -> Option<PoolStats> {
        Some(self.pool().stats())
    }
}

impl ZeroCopyRead for LockedBTreeMap {
    fn read_with(&self, key: &[u8], f: &mut dyn FnMut(&[u8])) -> bool {
        self.get_with(key, |v| f(v)).is_some()
    }
}
