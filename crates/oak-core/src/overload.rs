//! Degraded-mode controller: samples pool health and sheds load *before*
//! the out-of-memory ladder engages.
//!
//! The controller classifies the map into three states from periodic
//! samples of [`PoolStats`] plus the reclamation quarantine backlog:
//!
//! | state | entered when | behavior |
//! |---|---|---|
//! | `Healthy` | ample headroom | no intervention |
//! | `Degraded` | headroom below `degraded_headroom`, or free space badly fragmented, or the quarantine backlog large | writes prioritize rebalance draining (an opportunistic quarantine drain runs on the write path); budgeted scans past `degraded_scan_limit` entries are shed with [`OakError::Overloaded`](crate::OakError) |
//! | `Critical` | headroom below `critical_headroom` | budgeted writes are rejected early with `Overloaded` — cheaper than letting them run the emergency-reclamation OOM ladder and fail anyway |
//!
//! "Headroom" is `1 − live_bytes / capacity` where capacity is the hard
//! byte budget the pool can ever reach (`max_arenas × arena_size`, or the
//! shared reservoir's budget). Quarantined bytes count as live — they are
//! exactly the backlog reclamation has not yet returned to the free lists.
//!
//! The controller is **disabled by default**: an unconfigured map keeps the
//! historical contract of surfacing [`OakError::OutOfMemory`] only after
//! emergency reclamation genuinely fails. Enable it with
//! [`OverloadConfig::standard`] (or custom thresholds) for
//! latency-sensitive deployments that prefer early, cheap `Overloaded`
//! rejections over deep OOM excursions.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

use oak_mempool::PoolStats;

/// Controller verdict, coarsest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum OverloadState {
    /// Ample headroom; no intervention.
    Healthy,
    /// Memory pressure building: reclaim is prioritized, long scans shed.
    Degraded,
    /// Headroom effectively gone: writes rejected early with `Overloaded`.
    Critical,
}

impl OverloadState {
    fn from_u8(v: u8) -> OverloadState {
        match v {
            2 => OverloadState::Critical,
            1 => OverloadState::Degraded,
            _ => OverloadState::Healthy,
        }
    }
}

/// Thresholds and sampling cadence for the controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverloadConfig {
    /// Master switch. Default `false` (historical behavior preserved).
    pub enabled: bool,
    /// Reassess every this many budgeted write operations.
    pub sample_every: u64,
    /// Enter `Degraded` when headroom falls below this fraction.
    pub degraded_headroom: f64,
    /// Enter `Critical` when headroom falls below this fraction.
    pub critical_headroom: f64,
    /// Also enter `Degraded` when free-space fragmentation exceeds this
    /// (shattered free lists predict allocation failure well before
    /// `live_bytes` says the pool is full).
    pub degraded_fragmentation: f64,
    /// Also enter `Degraded` when quarantined-but-unreclaimed bytes exceed
    /// this fraction of capacity (reclamation is falling behind).
    pub degraded_quarantine: f64,
    /// In `Degraded`/`Critical`, budgeted scans are shed after visiting
    /// this many entries (`0` = never shed scans).
    pub degraded_scan_limit: u64,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig {
            enabled: false,
            sample_every: 256,
            degraded_headroom: 0.20,
            critical_headroom: 0.05,
            degraded_fragmentation: 0.95,
            degraded_quarantine: 0.25,
            degraded_scan_limit: 100_000,
        }
    }
}

impl OverloadConfig {
    /// Enabled with the default thresholds — the recommended starting point.
    #[must_use]
    pub fn standard() -> Self {
        OverloadConfig {
            enabled: true,
            ..OverloadConfig::default()
        }
    }

    /// Reassess every `n` budgeted writes (clamped to ≥ 1).
    #[must_use]
    pub fn sample_every(mut self, n: u64) -> Self {
        self.sample_every = n.max(1);
        self
    }

    /// Set the degraded/critical headroom thresholds.
    #[must_use]
    pub fn headroom(mut self, degraded: f64, critical: f64) -> Self {
        self.degraded_headroom = degraded;
        self.critical_headroom = critical;
        self
    }

    /// Set the scan-shedding limit for degraded mode.
    #[must_use]
    pub fn scan_limit(mut self, entries: u64) -> Self {
        self.degraded_scan_limit = entries;
        self
    }
}

/// Lock-free controller instance owned by a map (or shard).
#[derive(Debug)]
pub struct OverloadController {
    cfg: OverloadConfig,
    /// Hard byte capacity the pool can ever reach; 0 disables assessment
    /// (unknown capacity — controller stays `Healthy`).
    capacity: u64,
    state: AtomicU8,
    ticks: AtomicU64,
}

impl OverloadController {
    pub(crate) fn new(cfg: OverloadConfig, capacity: u64) -> Self {
        OverloadController {
            cfg,
            capacity,
            state: AtomicU8::new(0),
            ticks: AtomicU64::new(0),
        }
    }

    pub(crate) fn enabled(&self) -> bool {
        self.cfg.enabled && self.capacity > 0
    }

    pub(crate) fn config(&self) -> &OverloadConfig {
        &self.cfg
    }

    /// Current state without resampling.
    pub fn state(&self) -> OverloadState {
        if !self.enabled() {
            return OverloadState::Healthy;
        }
        OverloadState::from_u8(self.state.load(Ordering::Relaxed))
    }

    /// Write-path hook: every `sample_every` calls, pull fresh stats from
    /// `sample` (pool snapshot + quarantined bytes) and reclassify. Returns
    /// the state the caller should act on.
    pub(crate) fn tick(&self, sample: impl FnOnce() -> (PoolStats, u64)) -> OverloadState {
        if !self.enabled() {
            return OverloadState::Healthy;
        }
        let t = self.ticks.fetch_add(1, Ordering::Relaxed);
        if t.is_multiple_of(self.cfg.sample_every) {
            let (stats, quarantined) = sample();
            let next = self.assess(&stats, quarantined);
            self.state.store(next as u8, Ordering::Relaxed);
            next
        } else {
            OverloadState::from_u8(self.state.load(Ordering::Relaxed))
        }
    }

    /// Pure classification, separated for testability.
    pub(crate) fn assess(&self, stats: &PoolStats, quarantined: u64) -> OverloadState {
        let cap = self.capacity as f64;
        let headroom = 1.0 - stats.live_bytes as f64 / cap;
        if headroom < self.cfg.critical_headroom {
            return OverloadState::Critical;
        }
        let reserved_all = stats.reserved_bytes >= self.capacity;
        if headroom < self.cfg.degraded_headroom
            || (reserved_all && stats.fragmentation() > self.cfg.degraded_fragmentation)
            || quarantined as f64 > self.cfg.degraded_quarantine * cap
        {
            return OverloadState::Degraded;
        }
        OverloadState::Healthy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(live: u64, reserved: u64) -> PoolStats {
        PoolStats {
            live_bytes: live,
            reserved_bytes: reserved,
            ..PoolStats::default()
        }
    }

    #[test]
    fn disabled_is_always_healthy() {
        let c = OverloadController::new(OverloadConfig::default(), 1000);
        assert_eq!(c.tick(|| (stats(999, 1000), 0)), OverloadState::Healthy);
    }

    #[test]
    fn classification_thresholds() {
        let c = OverloadController::new(OverloadConfig::standard(), 1000);
        assert_eq!(c.assess(&stats(100, 1000), 0), OverloadState::Healthy);
        assert_eq!(c.assess(&stats(850, 1000), 0), OverloadState::Degraded);
        assert_eq!(c.assess(&stats(960, 1000), 0), OverloadState::Critical);
        // Quarantine backlog alone degrades.
        assert_eq!(c.assess(&stats(100, 1000), 400), OverloadState::Degraded);
    }

    #[test]
    fn sampling_caches_state() {
        let cfg = OverloadConfig::standard().sample_every(4);
        let c = OverloadController::new(cfg, 1000);
        assert_eq!(c.tick(|| (stats(960, 1000), 0)), OverloadState::Critical);
        // Next three ticks reuse the cached classification.
        for _ in 0..3 {
            assert_eq!(
                c.tick(|| panic!("should not resample")),
                OverloadState::Critical
            );
        }
        assert_eq!(c.tick(|| (stats(10, 1000), 0)), OverloadState::Healthy);
    }
}
