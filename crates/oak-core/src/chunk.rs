//! Chunk objects (§3.1, §4.1).
//!
//! A chunk covers a contiguous key range `[minKey, next.minKey)` and holds
//! an array of entries referencing off-heap keys and values. When a chunk
//! is created (by rebalance) a *sorted prefix* of the array is filled and
//! linked in order; later insertions take a cell by fetch-and-add and are
//! spliced into the intra-chunk linked list as *bypasses*, keeping searches
//! logarithmic-plus-short-walk (binary search on the prefix, then a list
//! walk).
//!
//! ## Publish/freeze protocol
//!
//! The paper coordinates updates with the rebalancer through a per-thread
//! publication array; rebalance "may help published operations complete
//! (for lock-freedom), but for simplicity, our description herein assumes
//! that it does not. Hence, we always retry an operation upon failure"
//! (§4.1). Since helping is explicitly out of scope, we implement the same
//! guarantee with a single word per chunk: a publication *counter* plus a
//! FROZEN bit. `publish` increments the counter unless the chunk is frozen;
//! `freeze` sets the bit and waits for the counter to drain. After `freeze`
//! returns, no published mutation is in flight and none can start — exactly
//! the invariant the rebalancer needs before copying entries.
//!
//! ## Memory-ordering table
//!
//! Every atomic in the hot path carries the weakest ordering that still
//! upholds its role. Two distinct roles exist:
//!
//! | atomic              | ordering           | role |
//! |---------------------|--------------------|------|
//! | `Entry::key`        | Release / Acquire  | publication: the Release store (and the Release link CAS on `next`) makes the off-heap key bytes and the cached `prefix` visible to any searcher that Acquire-loads the entry |
//! | `Entry::value`      | Release / Acquire, AcqRel CAS | same publication role, plus the value-CAS linearization points of Algorithms 2–3 |
//! | `Entry::next`       | Release-CAS / Acquire | list splice = publication of the entry |
//! | `Entry::prefix`     | Relaxed            | written before the publishing Release store of `key`, read only after an Acquire load reached the entry — the neighbouring Release/Acquire pair orders it, so the field itself needs no ordering; a reader that races ahead sees `0` = "no info" and falls back to a full compare (slow, never wrong) |
//! | `sync` (pub/freeze) | AcqRel / Acquire   | handshake: `unpublish`'s AcqRel decrement synchronizes every completed mutation with the freezer's Acquire drain loop — this is what makes frozen entries stable for copying, NOT the cursor below |
//! | `alloc_cursor`      | Relaxed            | pure index reservation / monotone accounting: the fetch-add precedes the entry-field writes, so no ordering on it could ever publish them; readers of `allocated()` only gate heuristics (`needs_reorg`) or scan entries whose own `key` loads synchronize |
//! | `live_hint`         | Relaxed            | monotone merge heuristic, tolerates drift by design |
//! | `revision`          | Relaxed            | Jiffy-style change stamp for batch scans: bumped at freeze and replacement publication, compared once per drained batch. A missed bump only delays the scan's index re-location by one hop — hopping through a replaced chunk's `next`/replacement chain is independently §1.1-correct — so the stamp is a staleness *hint* and needs no ordering; the `replacement` `OnceLock` carries its own synchronization |
//!
//! Pool statistics (`oak_mempool::stats::Counters`) and the reclamation
//! byte/count gauges are likewise Relaxed: they are monotone accounting
//! read only by observers. The one deliberate exception is the epoch
//! quarantine (`reclaim.rs`), which keeps `SeqCst` on its epoch/bin
//! operations — its grace-period proof needs the store-load fences of a
//! total order, and must not be weakened.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::{Mutex, RwLock};

use oak_mempool::{HeaderRef, MemoryPool, SliceRef};

use crate::cmp::KeyComparator;

/// Sentinel entry index for "no entry".
pub(crate) const NONE: u32 = u32::MAX;

const FROZEN: u32 = 1 << 31;

/// One slot of the entries array. `key` is written once before the entry is
/// published (linked); `value` is the CAS target of Algorithms 2–3.
///
/// `prefix` caches an order-preserving 64-bit prefix of the key
/// ([`KeyComparator::prefix`]) *on-heap*, so searches can usually decide an
/// inequality without dereferencing the off-heap key bytes (KiWi-style
/// cache-resident in-chunk search). It is written once, before the entry is
/// published, exactly like `key`; `0` means "no prefix information" and
/// forces a full compare. See `compare_entry_key` for the ordering
/// argument.
pub(crate) struct Entry {
    key: AtomicU64,
    value: AtomicU64,
    next: AtomicU32,
    prefix: AtomicU64,
}

impl Entry {
    fn empty() -> Self {
        Entry {
            key: AtomicU64::new(0),
            value: AtomicU64::new(0),
            next: AtomicU32::new(NONE),
            prefix: AtomicU64::new(0),
        }
    }
}

/// Outcome of [`Chunk::ll_put_if_absent`].
pub(crate) enum LinkOutcome {
    /// The entry was linked.
    Linked,
    /// An entry with the same key already exists; its index is returned.
    Found(u32),
    /// The chunk is frozen; the caller must retry after rebalance.
    Frozen,
}

/// One snapshot record in a scan batch: the key's slice reference, the
/// key bytes' address (the pool block translation runs once at fill time
/// instead of once per yield), the value header, and — for stream drains
/// — the fill-time scan-lock lease with the payload's resolved address.
#[derive(Clone, Copy)]
pub(crate) struct BatchEntry {
    /// The key's pool reference (revalidation re-locates from this).
    pub(crate) key: SliceRef,
    /// `pool.slice(key).as_ptr()`, stored untyped so batch buffers stay
    /// `Send`. Valid while the filling scan's epoch pin is held: key bytes
    /// are immutable and pinned slices are never reclaimed.
    pub(crate) kptr: usize,
    /// The entry's value header.
    pub(crate) hdr: HeaderRef,
    /// Release token of the read lock taken at fill time
    /// ([`ValueStore::scan_lock`](oak_mempool::ValueStore::scan_lock));
    /// 0 when this entry holds no lease (Set-API cursors, or the writer
    /// was active at fill) — such entries are read individually at yield.
    pub(crate) hbase: usize,
    /// Resolved payload address (valid only when `hbase != 0`; 0 for
    /// empty values).
    pub(crate) vptr: usize,
    /// Payload length in bytes (valid only when `hbase != 0`).
    pub(crate) vlen: u32,
}

impl BatchEntry {
    /// The key bytes through the fill-time resolved address.
    ///
    /// # Safety
    /// The epoch pin held when the batch was filled must still be held
    /// (scan cursors hold theirs for their whole lifetime).
    #[inline]
    pub(crate) unsafe fn key_bytes(&self) -> &[u8] {
        std::slice::from_raw_parts(self.kptr as *const u8, self.key.len() as usize)
    }
}

/// A chunk of the Oak map.
pub(crate) struct Chunk {
    /// Lower bound of this chunk's key range (invariant over its lifetime).
    pub(crate) min_key: Box<[u8]>,
    entries: Box<[Entry]>,
    /// Number of entries in the sorted prefix (immutable after creation).
    sorted_count: u32,
    /// Allocation cursor: next free cell (starts at `sorted_count`).
    alloc_cursor: AtomicU32,
    /// First entry of the intra-chunk linked list.
    head: AtomicU32,
    /// FROZEN bit + count of published (in-flight) mutations.
    sync: AtomicU32,
    /// Heuristic count of live entries (maintained at insert/remove
    /// linearization points; drives the merge policy).
    live_hint: AtomicU32,
    /// Index of a recently linked entry (NONE when unset): a search-start
    /// hint that turns monotone ingestion (e.g. Druid's time-ordered keys,
    /// §6) from an O(suffix) walk per insert into O(1) amortized. Purely an
    /// optimization — the hint is validated by key comparison before use
    /// and only ever set to entries that are linked (linked entries never
    /// leave the list until the chunk is replaced).
    link_hint: AtomicU32,
    /// Next chunk in the chunk list.
    next: RwLock<Option<Arc<Chunk>>>,
    /// Jiffy-style revision stamp: advanced when the chunk stops being a
    /// safe resting point for a batch scan (freeze, replacement
    /// publication). Batch cursors record it once per chunk snapshot and
    /// compare it once per drained batch — one staleness check per chunk,
    /// not per entry (see the ordering table).
    revision: AtomicU64,
    /// Set when this chunk has been replaced by rebalance: the chunks that
    /// now cover its range (first element starts at `min_key`).
    replacement: OnceLock<Arc<Chunk>>,
    /// Serializes rebalances engaging this chunk.
    pub(crate) rebalance_lock: Mutex<()>,
}

impl Chunk {
    /// Creates an empty chunk (used for the initial chunk, `minKey` = −∞).
    pub(crate) fn new_empty(capacity: u32, min_key: Box<[u8]>) -> Self {
        Chunk {
            min_key,
            entries: (0..capacity).map(|_| Entry::empty()).collect(),
            sorted_count: 0,
            alloc_cursor: AtomicU32::new(0),
            head: AtomicU32::new(NONE),
            sync: AtomicU32::new(0),
            live_hint: AtomicU32::new(0),
            link_hint: AtomicU32::new(NONE),
            revision: AtomicU64::new(0),
            next: RwLock::new(None),
            replacement: OnceLock::new(),
            rebalance_lock: Mutex::new(()),
        }
    }

    /// Creates a chunk pre-filled with a sorted prefix of
    /// `(key, value, key_prefix)` triples (used by rebalance, which carries
    /// the cached key prefixes of the old chunk's entries forward so the
    /// new chunk's searches stay prefix-accelerated without re-reading any
    /// off-heap key).
    pub(crate) fn new_sorted(
        capacity: u32,
        min_key: Box<[u8]>,
        items: &[(SliceRef, u64, u64)],
    ) -> Self {
        assert!(items.len() as u32 <= capacity);
        let entries: Box<[Entry]> = (0..capacity).map(|_| Entry::empty()).collect();
        for (i, &(k, v, p)) in items.iter().enumerate() {
            entries[i].key.store(k.to_raw(), Ordering::Relaxed);
            entries[i].value.store(v, Ordering::Relaxed);
            entries[i].prefix.store(p, Ordering::Relaxed);
            let nxt = if i + 1 < items.len() {
                (i + 1) as u32
            } else {
                NONE
            };
            entries[i].next.store(nxt, Ordering::Relaxed);
        }
        Chunk {
            min_key,
            entries,
            sorted_count: items.len() as u32,
            alloc_cursor: AtomicU32::new(items.len() as u32),
            head: AtomicU32::new(if items.is_empty() { NONE } else { 0 }),
            sync: AtomicU32::new(0),
            live_hint: AtomicU32::new(items.len() as u32),
            link_hint: AtomicU32::new(NONE),
            revision: AtomicU64::new(0),
            next: RwLock::new(None),
            replacement: OnceLock::new(),
            rebalance_lock: Mutex::new(()),
        }
    }

    pub(crate) fn capacity(&self) -> u32 {
        self.entries.len() as u32
    }

    pub(crate) fn sorted_count(&self) -> u32 {
        self.sorted_count
    }

    /// Entries allocated so far (sorted prefix + bypass suffix). Relaxed:
    /// the cursor is reservation accounting; entry visibility comes from
    /// per-entry `key` publication (see the ordering table).
    pub(crate) fn allocated(&self) -> u32 {
        self.alloc_cursor
            .load(Ordering::Relaxed)
            .min(self.capacity())
    }

    /// Whether the unsorted suffix has outgrown the configured ratio of the
    /// sorted prefix — the paper's rebalance trigger (§5.1).
    pub(crate) fn needs_reorg(&self, ratio: f64) -> bool {
        let unsorted = self.allocated().saturating_sub(self.sorted_count);
        unsorted as f64 > (self.sorted_count.max(8)) as f64 * ratio
    }

    /// Records a fresh insertion (heuristic for the merge policy).
    pub(crate) fn note_insert(&self) {
        self.live_hint.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a removal; returns the updated live estimate.
    pub(crate) fn note_remove(&self) -> u32 {
        // Saturating: hints can drift when operations land on stale chunks.
        let mut cur = self.live_hint.load(Ordering::Relaxed);
        loop {
            if cur == 0 {
                return 0;
            }
            match self.live_hint.compare_exchange_weak(
                cur,
                cur - 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return cur - 1,
                Err(x) => cur = x,
            }
        }
    }

    // --- publish / freeze -------------------------------------------------

    /// Announces an impending mutation (Algorithm 2 line 33). Fails if the
    /// chunk is frozen.
    pub(crate) fn publish(&self) -> bool {
        // Injected refusal: callers treat it exactly like publishing against
        // a frozen chunk (help rebalance, retry).
        oak_failpoints::sync_point!("chunk/publish");
        oak_failpoints::fail_point!("chunk/publish", false);
        let mut cur = self.sync.load(Ordering::Acquire);
        loop {
            if cur & FROZEN != 0 {
                return false;
            }
            match self
                .sync
                .compare_exchange_weak(cur, cur + 1, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return true,
                Err(x) => cur = x,
            }
        }
    }

    /// Clears the publication made by [`publish`](Self::publish).
    pub(crate) fn unpublish(&self) {
        // Perturbation point: a delay here holds the publication open,
        // forcing concurrent freezers to drain longer.
        oak_failpoints::fail_point!("chunk/unpublish");
        let prev = self.sync.fetch_sub(1, Ordering::AcqRel);
        debug_assert!(prev & !FROZEN > 0, "unpublish without publish");
    }

    /// Freezes the chunk and waits for in-flight publications to drain.
    /// After this returns, entry values are stable for copying.
    pub(crate) fn freeze(&self) {
        oak_failpoints::sync_point!("chunk/freeze");
        // A frozen chunk is no longer a safe resting point for batch scans
        // (its replacement is imminent): advance the revision stamp so a
        // scan draining a pre-freeze snapshot re-locates at its next
        // refill instead of trusting `next`.
        self.revision.fetch_add(1, Ordering::Relaxed);
        self.sync.fetch_or(FROZEN, Ordering::AcqRel);
        let mut spins = 0u32;
        while self.sync.load(Ordering::Acquire) & !FROZEN != 0 {
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }

    pub(crate) fn is_frozen(&self) -> bool {
        self.sync.load(Ordering::Acquire) & FROZEN != 0
    }

    // --- chunk list -------------------------------------------------------

    pub(crate) fn next_chunk(&self) -> Option<Arc<Chunk>> {
        self.next.read().clone()
    }

    pub(crate) fn set_next(&self, next: Option<Arc<Chunk>>) {
        *self.next.write() = next;
    }

    /// CAS-like guarded update of `next`: only swings the pointer if it
    /// still refers to `expect`. Returns success.
    pub(crate) fn swing_next(&self, expect: &Arc<Chunk>, to: Arc<Chunk>) -> bool {
        let mut g = self.next.write();
        match &*g {
            Some(cur) if Arc::ptr_eq(cur, expect) => {
                *g = Some(to);
                true
            }
            _ => false,
        }
    }

    pub(crate) fn replacement(&self) -> Option<&Arc<Chunk>> {
        self.replacement.get()
    }

    pub(crate) fn set_replacement(&self, r: Arc<Chunk>) {
        self.replacement
            .set(r)
            .unwrap_or_else(|_| panic!("chunk replaced twice"));
        // Stamp after the pointer publishes: a batch refill that reads the
        // pre-bump revision in the race window still sees the replacement
        // via its own `replacement()` check (refills test both).
        self.revision.fetch_add(1, Ordering::Relaxed);
    }

    /// The chunk's current revision stamp (see the ordering table).
    #[inline]
    pub(crate) fn revision(&self) -> u64 {
        self.revision.load(Ordering::Relaxed)
    }

    // --- entries ----------------------------------------------------------

    pub(crate) fn key_ref(&self, idx: u32) -> SliceRef {
        SliceRef::from_raw(self.entries[idx as usize].key.load(Ordering::Acquire))
    }

    /// Raw value-reference word (0 = ⊥).
    pub(crate) fn value_raw(&self, idx: u32) -> u64 {
        self.entries[idx as usize].value.load(Ordering::Acquire)
    }

    /// Value header reference, or `None` for ⊥.
    pub(crate) fn value_ref(&self, idx: u32) -> Option<HeaderRef> {
        let raw = self.value_raw(idx);
        if raw == 0 {
            None
        } else {
            Some(SliceRef::from_raw(raw))
        }
    }

    /// CAS on an entry's value reference (Algorithms 2–3). The caller must
    /// have published.
    pub(crate) fn cas_value(&self, idx: u32, expect: u64, new: u64) -> bool {
        oak_failpoints::sync_point!("chunk/cas-value");
        oak_failpoints::fail_point!("chunk/cas-value");
        self.entries[idx as usize]
            .value
            .compare_exchange(expect, new, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    pub(crate) fn entry_next(&self, idx: u32) -> u32 {
        self.entries[idx as usize].next.load(Ordering::Acquire)
    }

    pub(crate) fn head_entry(&self) -> u32 {
        self.head.load(Ordering::Acquire)
    }

    /// Reads an entry's key bytes, counting the off-heap dereference in
    /// the pool's hot-path statistics.
    ///
    /// # Safety-adjacent contract
    /// Key buffers are immutable and live for the map's lifetime under the
    /// default memory manager.
    pub(crate) fn key_bytes<'a>(&self, pool: &'a MemoryPool, idx: u32) -> &'a [u8] {
        let r = self.key_ref(idx);
        debug_assert!(!r.is_null(), "reading key of unallocated entry");
        pool.note_key_deref();
        unsafe { pool.slice(r) }
    }

    /// The entry's cached key prefix (0 = no information).
    ///
    /// Relaxed suffices: the prefix is written before the entry is
    /// published (linked via a Release CAS, or part of a sorted prefix
    /// published with the chunk itself), and searches only reach entries
    /// through an Acquire load of `head`/`next`/the chunk pointer, so a
    /// visible entry's prefix store happens-before this load. An entry
    /// observed mid-publication would read the initial `0`, which is the
    /// "no information" value and merely costs a full compare.
    #[inline]
    pub(crate) fn entry_prefix(&self, idx: u32) -> u64 {
        self.entries[idx as usize].prefix.load(Ordering::Relaxed)
    }

    /// Compares entry `idx`'s key against a search `key` whose cached
    /// prefix is `kp` (`0` = unknown), touching off-heap key bytes only on
    /// a prefix tie.
    ///
    /// Correctness: [`KeyComparator::prefix`] guarantees that *strict*
    /// prefix inequality implies the same strict key order, so the early
    /// return is exact. Equal, zero, or missing prefixes decide nothing
    /// and fall back to the full comparator — a stale or unwritten (zero)
    /// prefix can therefore only cost a slow full compare, never a wrong
    /// verdict.
    #[inline]
    pub(crate) fn compare_entry_key<C: KeyComparator>(
        &self,
        pool: &MemoryPool,
        cmp: &C,
        idx: u32,
        key: &[u8],
        kp: u64,
    ) -> std::cmp::Ordering {
        if kp != 0 {
            let ep = self.entry_prefix(idx);
            if ep != 0 && ep != kp {
                return ep.cmp(&kp);
            }
        }
        cmp.compare(self.key_bytes(pool, idx), key)
    }

    /// Compares the keys of two entries via their cached prefixes,
    /// dereferencing off-heap bytes only on a tie.
    #[inline]
    fn compare_entries<C: KeyComparator>(
        &self,
        pool: &MemoryPool,
        cmp: &C,
        a: u32,
        b: u32,
    ) -> std::cmp::Ordering {
        let (pa, pb) = (self.entry_prefix(a), self.entry_prefix(b));
        if pa != 0 && pb != 0 && pa != pb {
            return pa.cmp(&pb);
        }
        cmp.compare(self.key_bytes(pool, a), self.key_bytes(pool, b))
    }

    /// Allocates a fresh entry referring to `key_ref` (Algorithm 2 line
    /// 28), caching `prefix` (`0` = none) alongside it. Returns `None`
    /// when the chunk is full — the caller triggers a rebalance and
    /// retries.
    pub(crate) fn allocate_entry(&self, key_ref: SliceRef, prefix: u64) -> Option<u32> {
        // Injected exhaustion: the caller frees its speculative key and
        // rebalances, as if the chunk were full.
        oak_failpoints::fail_point!("chunk/allocate-entry", None);
        // Relaxed: the fetch-add only reserves a unique cell; it happens
        // *before* the cell's fields are written, so no ordering here could
        // publish them (the `key` Release store below does).
        let idx = self.alloc_cursor.fetch_add(1, Ordering::Relaxed);
        if idx >= self.capacity() {
            // Saturate the cursor so it cannot wrap on pathological retry
            // storms.
            self.alloc_cursor.store(self.capacity(), Ordering::Relaxed);
            return None;
        }
        let e = &self.entries[idx as usize];
        e.prefix.store(prefix, Ordering::Relaxed);
        e.key.store(key_ref.to_raw(), Ordering::Release);
        e.value.store(0, Ordering::Release);
        e.next.store(NONE, Ordering::Release);
        Some(idx)
    }

    /// Binary search on the sorted prefix: the largest prefix index whose
    /// key is ≤ `key`, or `None` if the prefix is empty / all keys > `key`.
    /// The flag reports whether the floor's key *equals* `key` — sorted
    /// keys are unique, so an `Equal` probe is necessarily the floor, and
    /// callers use the flag to skip a redundant re-compare of the floor
    /// entry (one off-heap dereference per hit). `kp` is the search key's
    /// cached prefix (`0` = unknown); probes consult the entries' cached
    /// prefixes first and dereference off-heap key bytes only on prefix
    /// ties.
    fn prefix_floor<C: KeyComparator>(
        &self,
        pool: &MemoryPool,
        cmp: &C,
        key: &[u8],
        kp: u64,
    ) -> Option<(u32, bool)> {
        let n = self.sorted_count;
        if n == 0 {
            return None;
        }
        let (mut lo, mut hi) = (0u32, n); // invariant: keys[lo-1] <= key < keys[hi]
        let mut exact = false;
        while lo < hi {
            let mid = (lo + hi) / 2;
            match self.compare_entry_key(pool, cmp, mid, key, kp) {
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => {
                    exact = true;
                    lo = mid + 1;
                }
                std::cmp::Ordering::Less => lo = mid + 1,
            }
        }
        if lo == 0 {
            None
        } else {
            Some((lo - 1, exact))
        }
    }

    /// The chunk's `lookUp(k)` (§4.1): binary search on the prefix, then a
    /// walk of the linked list. Returns the entry index holding `key`.
    pub(crate) fn lookup<C: KeyComparator>(
        &self,
        pool: &MemoryPool,
        cmp: &C,
        key: &[u8],
    ) -> Option<u32> {
        let kp = cmp.prefix(key).unwrap_or(0);
        let mut cur = match self.prefix_floor(pool, cmp, key, kp) {
            // The floor itself matched during the binary search.
            Some((i, true)) => return Some(i),
            // The floor compared strictly less: resume from its successor
            // (re-comparing the floor would be a wasted dereference).
            Some((i, false)) => {
                let nxt = self.entry_next(i);
                if nxt == NONE {
                    return None;
                }
                nxt
            }
            None => {
                let h = self.head_entry();
                if h == NONE {
                    return None;
                }
                h
            }
        };
        loop {
            match self.compare_entry_key(pool, cmp, cur, key, kp) {
                std::cmp::Ordering::Equal => return Some(cur),
                std::cmp::Ordering::Greater => return None,
                std::cmp::Ordering::Less => {
                    let nxt = self.entry_next(cur);
                    if nxt == NONE {
                        return None;
                    }
                    cur = nxt;
                }
            }
        }
    }

    /// First entry with key ≥ `key` (for range scans); `NONE` if none.
    pub(crate) fn lower_bound<C: KeyComparator>(
        &self,
        pool: &MemoryPool,
        cmp: &C,
        key: &[u8],
    ) -> u32 {
        let kp = cmp.prefix(key).unwrap_or(0);
        let mut cur = match self.prefix_floor(pool, cmp, key, kp) {
            // Exact floor: it is itself the first entry ≥ `key`.
            Some((i, true)) => return i,
            // Floor compared strictly less: start the walk at its
            // successor instead of re-comparing it.
            Some((i, false)) => self.entry_next(i),
            None => self.head_entry(),
        };
        while cur != NONE {
            if self.compare_entry_key(pool, cmp, cur, key, kp) != std::cmp::Ordering::Less {
                return cur;
            }
            cur = self.entry_next(cur);
        }
        NONE
    }

    /// `entriesLLputIfAbsent` (§4.1): links an allocated entry into the
    /// sorted list with CAS, preserving key uniqueness. Fails with
    /// [`LinkOutcome::Frozen`] during rebalance.
    pub(crate) fn ll_put_if_absent<C: KeyComparator>(
        &self,
        pool: &MemoryPool,
        cmp: &C,
        new_idx: u32,
    ) -> LinkOutcome {
        let new_key = self.key_bytes(pool, new_idx);
        // The new entry's prefix was cached by `allocate_entry`; reuse it
        // for the splice-position walk so prefix mismatches skip the
        // off-heap compare.
        let kp = self.entry_prefix(new_idx);
        loop {
            // Find (pred, succ) bracketing the new key; pred == NONE means
            // the head pointer is the predecessor link.
            let mut pred = NONE;
            let mut succ = match self.prefix_floor(pool, cmp, new_key, kp) {
                // The floor equals the new key: the key is already linked.
                Some((i, true)) => return LinkOutcome::Found(i),
                // The floor is strictly less; walk from it. (Equality is
                // fully handled above, so no floor re-compare is needed.)
                Some((i, false)) => {
                    pred = i;
                    self.entry_next(i)
                }
                None => self.head_entry(),
            };
            // Fast-forward through the bypass run using the last-linked
            // hint when it lies strictly between pred and the new key.
            let hint = self.link_hint.load(Ordering::Acquire);
            if hint != NONE {
                let hint_usable = self.compare_entry_key(pool, cmp, hint, new_key, kp)
                    == std::cmp::Ordering::Less
                    && (pred == NONE
                        || self.compare_entries(pool, cmp, pred, hint) == std::cmp::Ordering::Less);
                if hint_usable {
                    pred = hint;
                    succ = self.entry_next(hint);
                }
            }
            while succ != NONE {
                match self.compare_entry_key(pool, cmp, succ, new_key, kp) {
                    std::cmp::Ordering::Less => {
                        pred = succ;
                        succ = self.entry_next(succ);
                    }
                    std::cmp::Ordering::Equal => return LinkOutcome::Found(succ),
                    std::cmp::Ordering::Greater => break,
                }
            }
            // Splice: new → succ, then pred → new (CAS).
            self.entries[new_idx as usize]
                .next
                .store(succ, Ordering::Release);
            // Guard the structural CAS with the publish protocol so the
            // rebalancer never copies a list in mid-splice.
            if !self.publish() {
                return LinkOutcome::Frozen;
            }
            let link = if pred == NONE {
                &self.head
            } else {
                &self.entries[pred as usize].next
            };
            let ok = link
                .compare_exchange(succ, new_idx, Ordering::AcqRel, Ordering::Acquire)
                .is_ok();
            self.unpublish();
            if ok {
                self.link_hint.store(new_idx, Ordering::Release);
                return LinkOutcome::Linked;
            }
            // Lost a race; retry the position search.
        }
    }

    /// Snapshots up to `max` live entries into `out` in one pass over the
    /// sorted linked list, starting at entry `start` — the batch-scan
    /// building block. Entries are appended as [`BatchEntry`] records with
    /// the key bytes' address resolved once at fill time; `admit` judges
    /// each live candidate's value header — returning the fill-time lease
    /// `(hbase, vptr, vlen)` to record (all-zero for "read at yield"), or
    /// `None` to skip a dead entry without leaving the walk.
    ///
    /// `strict_after` skips entries ≤ the given `(key, prefix)` — the
    /// cursor's resume bound after a hop or re-entry; since the list is
    /// sorted the comparison stops being evaluated after the first entry
    /// beyond the bound. `hi` is an upper bound `(key, prefix, inclusive)`
    /// checked per entry through the cached prefixes; callers pass `None`
    /// when the successor chunk's `min_key` already proves the whole chunk
    /// in range (the chunk-range fast path — zero per-entry bound checks).
    ///
    /// Returns `(resume, bounded)`: `resume` is the entry to continue from
    /// when `max` stopped the walk (`NONE` when the list or bound ended
    /// it), `bounded` reports that the upper bound was reached — the scan
    /// is finished, not just this chunk.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn collect_batch<C: KeyComparator>(
        &self,
        pool: &MemoryPool,
        cmp: &C,
        start: u32,
        strict_after: Option<(&[u8], u64)>,
        hi: Option<(&[u8], u64, bool)>,
        max: usize,
        mut admit: impl FnMut(HeaderRef) -> Option<(usize, usize, u32)>,
        out: &mut Vec<BatchEntry>,
    ) -> (u32, bool) {
        let mut cur = start;
        let mut skipping = strict_after;
        while cur != NONE {
            if out.len() >= max {
                return (cur, false);
            }
            if let Some((k, kp)) = skipping {
                if self.compare_entry_key(pool, cmp, cur, k, kp) != std::cmp::Ordering::Greater {
                    cur = self.entry_next(cur);
                    continue;
                }
                // Sorted list: every later entry is beyond the bound too.
                skipping = None;
            }
            if let Some((b, bp, inclusive)) = hi {
                let ord = self.compare_entry_key(pool, cmp, cur, b, bp);
                let beyond = if inclusive {
                    ord == std::cmp::Ordering::Greater
                } else {
                    ord != std::cmp::Ordering::Less
                };
                if beyond {
                    return (NONE, true);
                }
            }
            if let Some(h) = self.value_ref(cur) {
                if let Some((hbase, vptr, vlen)) = admit(h) {
                    let key = self.key_ref(cur);
                    // SAFETY: key bytes are immutable and the scan's epoch
                    // pin keeps the slice from being reclaimed, so the
                    // address stays valid for the batch's lifetime.
                    let kptr = unsafe { pool.slice(key) }.as_ptr() as usize;
                    out.push(BatchEntry {
                        key,
                        kptr,
                        hdr: h,
                        hbase,
                        vptr,
                        vlen,
                    });
                }
            }
            cur = self.entry_next(cur);
        }
        (NONE, false)
    }

    /// Iterates the linked list collecting live `(key_ref, value_raw)`
    /// pairs in key order. Called by the rebalancer after freeze, and by
    /// tests. `keep` decides entry liveness from its raw value word.
    pub(crate) fn collect_live(&self, keep: impl Fn(u64) -> bool) -> Vec<(SliceRef, u64)> {
        let mut out = Vec::with_capacity(self.allocated() as usize);
        let mut cur = self.head_entry();
        while cur != NONE {
            let v = self.value_raw(cur);
            if keep(v) {
                out.push((self.key_ref(cur), v));
            }
            cur = self.entry_next(cur);
        }
        out
    }

    /// Iterates the linked list once, splitting entries into live
    /// `(key_ref, value_raw, key_prefix)` triples (key order, prefix
    /// carried from the entry's on-heap cache so the successor chunk needs
    /// no off-heap reads to stay accelerated) and the key refs of dead
    /// entries (⊥ value or `keep` says deleted). Called by the rebalancer
    /// after freeze so the live/dead partition comes from a *single* walk:
    /// post-freeze an entry can still flip live→deleted (remove needs no
    /// publish), and two separate walks could then classify one key as
    /// both copied-live and dead — double ownership of its slice.
    pub(crate) fn partition_entries(
        &self,
        keep: impl Fn(u64) -> bool,
    ) -> (Vec<(SliceRef, u64, u64)>, Vec<SliceRef>) {
        let mut live = Vec::with_capacity(self.allocated() as usize);
        let mut dead = Vec::new();
        let mut cur = self.head_entry();
        while cur != NONE {
            let v = self.value_raw(cur);
            if keep(v) {
                live.push((self.key_ref(cur), v, self.entry_prefix(cur)));
            } else {
                dead.push(self.key_ref(cur));
            }
            cur = self.entry_next(cur);
        }
        (live, dead)
    }

    /// Whether any linked entry is dead per `is_dead` — i.e. compacting
    /// this chunk would return key bytes to the pool. Used by the
    /// emergency-reclamation sweep to pick rebalance targets.
    pub(crate) fn has_dead(&self, is_dead: impl Fn(u64) -> bool) -> bool {
        let mut cur = self.head_entry();
        while cur != NONE {
            if is_dead(self.value_raw(cur)) {
                return true;
            }
            cur = self.entry_next(cur);
        }
        false
    }

    /// Number of linked entries with non-⊥ values (diagnostic).
    pub(crate) fn live_count(&self) -> usize {
        self.collect_live(|v| v != 0).len()
    }
}

impl std::fmt::Debug for Chunk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Chunk")
            .field("min_key_len", &self.min_key.len())
            .field("sorted", &self.sorted_count)
            .field("allocated", &self.allocated())
            .field("frozen", &self.is_frozen())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cmp::Lexicographic;
    use oak_mempool::PoolConfig;

    fn pool() -> Arc<MemoryPool> {
        Arc::new(MemoryPool::new(PoolConfig::small()))
    }

    fn alloc_key(pool: &MemoryPool, key: &[u8]) -> SliceRef {
        let r = pool.allocate(key.len()).unwrap();
        unsafe { pool.write_initial(r, key) };
        r
    }

    /// Inserts a key with a dummy value reference and returns its index.
    fn insert(chunk: &Chunk, pool: &MemoryPool, key: &[u8], val: u64) -> u32 {
        let kr = alloc_key(pool, key);
        let prefix = Lexicographic.prefix(key).unwrap_or(0);
        let idx = chunk.allocate_entry(kr, prefix).expect("chunk not full");
        match chunk.ll_put_if_absent(pool, &Lexicographic, idx) {
            LinkOutcome::Linked => {
                assert!(chunk.cas_value(idx, 0, val));
                idx
            }
            LinkOutcome::Found(existing) => existing,
            LinkOutcome::Frozen => panic!("unexpected freeze"),
        }
    }

    #[test]
    fn empty_chunk_lookup() {
        let p = pool();
        let c = Chunk::new_empty(16, Box::new([]));
        assert_eq!(c.lookup(&p, &Lexicographic, b"x"), None);
        assert_eq!(c.lower_bound(&p, &Lexicographic, b"x"), NONE);
    }

    #[test]
    fn insert_and_lookup_bypasses() {
        let p = pool();
        let c = Chunk::new_empty(16, Box::new([]));
        for key in [b"m", b"c", b"x", b"a", b"t"] {
            insert(&c, &p, key, 7);
        }
        for key in [b"a", b"c", b"m", b"t", b"x"] {
            let idx = c.lookup(&p, &Lexicographic, key).expect("found");
            assert_eq!(c.key_bytes(&p, idx), key);
        }
        assert_eq!(c.lookup(&p, &Lexicographic, b"b"), None);
        // Linked list is in sorted order.
        let live = c.collect_live(|v| v != 0);
        let keys: Vec<&[u8]> = live.iter().map(|(k, _)| unsafe { p.slice(*k) }).collect();
        assert_eq!(keys, vec![&b"a"[..], b"c", b"m", b"t", b"x"]);
    }

    #[test]
    fn duplicate_key_reports_existing() {
        let p = pool();
        let c = Chunk::new_empty(16, Box::new([]));
        let first = insert(&c, &p, b"dup", 1);
        let kr = alloc_key(&p, b"dup");
        let idx = c
            .allocate_entry(kr, Lexicographic.prefix(b"dup").unwrap())
            .unwrap();
        match c.ll_put_if_absent(&p, &Lexicographic, idx) {
            LinkOutcome::Found(i) => assert_eq!(i, first),
            _ => panic!("expected Found"),
        }
    }

    #[test]
    fn sorted_chunk_binary_search() {
        let p = pool();
        let items: Vec<(SliceRef, u64, u64)> = (0..50u32)
            .map(|i| {
                let key = format!("k{i:03}");
                let pre = Lexicographic.prefix(key.as_bytes()).unwrap();
                (alloc_key(&p, key.as_bytes()), i as u64 + 1, pre)
            })
            .collect();
        let c = Chunk::new_sorted(64, Box::new([]), &items);
        assert_eq!(c.sorted_count(), 50);
        for i in 0..50u32 {
            let idx = c
                .lookup(&p, &Lexicographic, format!("k{i:03}").as_bytes())
                .expect("present");
            assert_eq!(c.value_raw(idx), i as u64 + 1);
        }
        assert_eq!(c.lookup(&p, &Lexicographic, b"k0505"), None);
        // Mixed: bypass insert into a sorted chunk.
        insert(&c, &p, b"k025x", 99);
        let idx = c.lookup(&p, &Lexicographic, b"k025x").unwrap();
        assert_eq!(c.value_raw(idx), 99);
    }

    #[test]
    fn chunk_fills_up() {
        let p = pool();
        let c = Chunk::new_empty(8, Box::new([]));
        for i in 0..8u32 {
            insert(&c, &p, format!("{i}").as_bytes(), 1);
        }
        let kr = alloc_key(&p, b"overflow");
        assert!(c.allocate_entry(kr, 0).is_none());
    }

    #[test]
    fn freeze_blocks_publish_and_linking() {
        let p = pool();
        let c = Chunk::new_empty(16, Box::new([]));
        insert(&c, &p, b"pre", 1);
        c.freeze();
        assert!(c.is_frozen());
        assert!(!c.publish());
        let kr = alloc_key(&p, b"post");
        let idx = c.allocate_entry(kr, 0).unwrap();
        assert!(matches!(
            c.ll_put_if_absent(&p, &Lexicographic, idx),
            LinkOutcome::Frozen
        ));
        // Lookups still proceed on frozen chunks (paper §4.1).
        assert!(c.lookup(&p, &Lexicographic, b"pre").is_some());
    }

    #[test]
    fn freeze_waits_for_inflight_publication() {
        let c = Arc::new(Chunk::new_empty(16, Box::new([])));
        assert!(c.publish());
        let c2 = c.clone();
        let froze = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let f2 = froze.clone();
        let t = std::thread::spawn(move || {
            c2.freeze();
            f2.store(true, Ordering::SeqCst);
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!froze.load(Ordering::SeqCst), "freeze returned too early");
        c.unpublish();
        t.join().unwrap();
        assert!(froze.load(Ordering::SeqCst));
    }

    #[test]
    fn needs_reorg_tracks_unsorted_ratio() {
        let p = pool();
        let items: Vec<(SliceRef, u64, u64)> = (0..20u32)
            .map(|i| (alloc_key(&p, format!("s{i:03}").as_bytes()), 1, 0))
            .collect();
        let c = Chunk::new_sorted(64, Box::new([]), &items);
        assert!(!c.needs_reorg(0.5));
        for i in 0..11u32 {
            insert(&c, &p, format!("u{i:03}").as_bytes(), 1);
        }
        assert!(c.needs_reorg(0.5), "11 unsorted > 20 × 0.5");
    }

    #[test]
    fn concurrent_inserts_distinct_keys() {
        let p = pool();
        let c = Arc::new(Chunk::new_empty(1024, Box::new([])));
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let c = c.clone();
            let p = p.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..200u32 {
                    let key = format!("{:04}", t * 200 + i);
                    let kr = alloc_key(&p, key.as_bytes());
                    let idx = c
                        .allocate_entry(kr, Lexicographic.prefix(key.as_bytes()).unwrap())
                        .unwrap();
                    match c.ll_put_if_absent(&p, &Lexicographic, idx) {
                        LinkOutcome::Linked => assert!(c.cas_value(idx, 0, 1)),
                        _ => panic!("distinct keys cannot collide"),
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let live = c.collect_live(|v| v != 0);
        assert_eq!(live.len(), 800);
        // Sorted.
        let keys: Vec<Vec<u8>> = live
            .iter()
            .map(|(k, _)| unsafe { p.slice(*k) }.to_vec())
            .collect();
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }
}
