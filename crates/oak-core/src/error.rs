//! Oak error types.

use core::fmt;

use oak_mempool::{AllocError, ContendedInfo, ValueOpError};

/// Errors surfaced by Oak operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OakError {
    /// The off-heap pool could not satisfy an allocation.
    Alloc(AllocError),
    /// A zero-copy buffer access raced with a concurrent deletion — the
    /// analogue of Java Oak's `ConcurrentModificationException` (§2.2).
    ConcurrentModification,
    /// A value-header lock could not be acquired within its bounded
    /// spin/yield/sleep budget — evidence of a stuck or pathologically slow
    /// lock holder. The payload records which lock-site lost and how long it
    /// waited. The operation had no effect and may be retried.
    Contended(ContendedInfo),
    /// The operation's deadline (see `OpBudget`) expired before its retry
    /// discipline converged. The operation had no effect beyond already
    /// linearized sub-steps — cancellation is leak-free and the map stays
    /// fully usable.
    DeadlineExceeded,
    /// The degraded-mode controller rejected the operation up front because
    /// the map is critically overloaded (memory headroom exhausted, reclaim
    /// backlogged). Distinct from [`OakError::OutOfMemory`]: the rejection
    /// happens *before* the allocation ladder engages, shedding load while
    /// reclamation catches up.
    Overloaded,
    /// The off-heap pool was exhausted and stayed exhausted after emergency
    /// reclamation (quarantine drain + compacting rebalance of chunks with
    /// dead entries). The operation had no effect: the map remains fully
    /// consistent and readable/scannable/writable within remaining memory.
    OutOfMemory,
    /// A durable image (checkpoint segments or manifest) failed validation:
    /// a checksum mismatch, a truncated or malformed structure, or a
    /// configuration fingerprint that does not match the opening map. The
    /// on-disk bytes cannot be trusted; the caller should fall back to an
    /// older generation or discard the image.
    Corrupted(CorruptionKind),
    /// Recovery read a structurally valid image but could not rebuild a
    /// consistent in-memory map from it (for example, a re-insertion failed
    /// or the rebuilt map failed its post-open audit). The partially built
    /// map was discarded.
    RecoveryFailed(RecoveryFailure),
}

/// What exactly failed validation in a durable image (payload of
/// [`OakError::Corrupted`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptionKind {
    /// No manifest could be resolved: the `CURRENT` pointer or the manifest
    /// file it names is missing or unreadable.
    MissingManifest,
    /// The manifest's own checksum or structure is invalid.
    BadManifest,
    /// A segment chunk's CRC32C did not match its recorded checksum.
    ChunkChecksum,
    /// A segment chunk was truncated or structurally malformed (bad magic,
    /// impossible lengths, short read).
    TruncatedChunk,
    /// The image was written by a map with an incompatible configuration
    /// (different comparator/layout fingerprint).
    ConfigMismatch,
}

impl fmt::Display for CorruptionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let what = match self {
            CorruptionKind::MissingManifest => "no resolvable manifest",
            CorruptionKind::BadManifest => "manifest checksum or structure invalid",
            CorruptionKind::ChunkChecksum => "segment chunk checksum mismatch",
            CorruptionKind::TruncatedChunk => "segment chunk truncated or malformed",
            CorruptionKind::ConfigMismatch => "configuration fingerprint mismatch",
        };
        f.write_str(what)
    }
}

/// Why recovery from a structurally valid image failed (payload of
/// [`OakError::RecoveryFailed`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryFailure {
    /// Re-inserting a recovered entry into the fresh map failed (allocation
    /// exhaustion or an internal error during rebuild).
    Reinsert,
    /// The rebuilt map failed its post-open verification (entry count or
    /// audit-ledger balance did not match the manifest's claims).
    Verification,
    /// An I/O error interrupted recovery after validation began.
    Io,
}

impl fmt::Display for RecoveryFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let what = match self {
            RecoveryFailure::Reinsert => "re-insertion of a recovered entry failed",
            RecoveryFailure::Verification => "post-open verification failed",
            RecoveryFailure::Io => "I/O error during recovery",
        };
        f.write_str(what)
    }
}

impl OakError {
    /// True for errors that a caller may meaningfully retry after backing
    /// off: contention and overload are transient by construction; deadline
    /// expiry is retryable with a fresh budget.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            OakError::Contended(_) | OakError::Overloaded | OakError::DeadlineExceeded
        )
    }
}

impl fmt::Display for OakError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OakError::Alloc(e) => write!(f, "allocation failure: {e}"),
            OakError::ConcurrentModification => {
                write!(f, "buffer access raced with concurrent deletion")
            }
            OakError::Contended(info) => {
                write!(f, "value lock acquisition budget exhausted: {info}")
            }
            OakError::DeadlineExceeded => {
                write!(f, "operation deadline expired before completion")
            }
            OakError::Overloaded => {
                write!(f, "operation shed by the overload controller")
            }
            OakError::OutOfMemory => {
                write!(f, "off-heap pool exhausted after emergency reclamation")
            }
            OakError::Corrupted(kind) => {
                write!(f, "durable image corrupted: {kind}")
            }
            OakError::RecoveryFailed(why) => {
                write!(f, "recovery from durable image failed: {why}")
            }
        }
    }
}

impl std::error::Error for OakError {}

impl From<AllocError> for OakError {
    fn from(e: AllocError) -> Self {
        OakError::Alloc(e)
    }
}

impl From<oak_mempool::AccessError> for OakError {
    fn from(e: oak_mempool::AccessError) -> Self {
        match e {
            oak_mempool::AccessError::Deleted => OakError::ConcurrentModification,
            oak_mempool::AccessError::Contended(info) => OakError::Contended(info),
        }
    }
}

impl From<ContendedInfo> for OakError {
    fn from(info: ContendedInfo) -> Self {
        OakError::Contended(info)
    }
}

impl From<ValueOpError> for OakError {
    fn from(e: ValueOpError) -> Self {
        match e {
            ValueOpError::Alloc(a) => OakError::Alloc(a),
            ValueOpError::Access(a) => a.into(),
        }
    }
}
