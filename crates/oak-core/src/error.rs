//! Oak error types.

use core::fmt;

use oak_mempool::{AllocError, ContendedInfo, ValueOpError};

/// Errors surfaced by Oak operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OakError {
    /// The off-heap pool could not satisfy an allocation.
    Alloc(AllocError),
    /// A zero-copy buffer access raced with a concurrent deletion — the
    /// analogue of Java Oak's `ConcurrentModificationException` (§2.2).
    ConcurrentModification,
    /// A value-header lock could not be acquired within its bounded
    /// spin/yield/sleep budget — evidence of a stuck or pathologically slow
    /// lock holder. The payload records which lock-site lost and how long it
    /// waited. The operation had no effect and may be retried.
    Contended(ContendedInfo),
    /// The operation's deadline (see `OpBudget`) expired before its retry
    /// discipline converged. The operation had no effect beyond already
    /// linearized sub-steps — cancellation is leak-free and the map stays
    /// fully usable.
    DeadlineExceeded,
    /// The degraded-mode controller rejected the operation up front because
    /// the map is critically overloaded (memory headroom exhausted, reclaim
    /// backlogged). Distinct from [`OakError::OutOfMemory`]: the rejection
    /// happens *before* the allocation ladder engages, shedding load while
    /// reclamation catches up.
    Overloaded,
    /// The off-heap pool was exhausted and stayed exhausted after emergency
    /// reclamation (quarantine drain + compacting rebalance of chunks with
    /// dead entries). The operation had no effect: the map remains fully
    /// consistent and readable/scannable/writable within remaining memory.
    OutOfMemory,
}

impl OakError {
    /// True for errors that a caller may meaningfully retry after backing
    /// off: contention and overload are transient by construction; deadline
    /// expiry is retryable with a fresh budget.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            OakError::Contended(_) | OakError::Overloaded | OakError::DeadlineExceeded
        )
    }
}

impl fmt::Display for OakError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OakError::Alloc(e) => write!(f, "allocation failure: {e}"),
            OakError::ConcurrentModification => {
                write!(f, "buffer access raced with concurrent deletion")
            }
            OakError::Contended(info) => {
                write!(f, "value lock acquisition budget exhausted: {info}")
            }
            OakError::DeadlineExceeded => {
                write!(f, "operation deadline expired before completion")
            }
            OakError::Overloaded => {
                write!(f, "operation shed by the overload controller")
            }
            OakError::OutOfMemory => {
                write!(f, "off-heap pool exhausted after emergency reclamation")
            }
        }
    }
}

impl std::error::Error for OakError {}

impl From<AllocError> for OakError {
    fn from(e: AllocError) -> Self {
        OakError::Alloc(e)
    }
}

impl From<oak_mempool::AccessError> for OakError {
    fn from(e: oak_mempool::AccessError) -> Self {
        match e {
            oak_mempool::AccessError::Deleted => OakError::ConcurrentModification,
            oak_mempool::AccessError::Contended(info) => OakError::Contended(info),
        }
    }
}

impl From<ContendedInfo> for OakError {
    fn from(info: ContendedInfo) -> Self {
        OakError::Contended(info)
    }
}

impl From<ValueOpError> for OakError {
    fn from(e: ValueOpError) -> Self {
        match e {
            ValueOpError::Alloc(a) => OakError::Alloc(a),
            ValueOpError::Access(a) => a.into(),
        }
    }
}
