//! Oak error types.

use core::fmt;

use oak_mempool::AllocError;

/// Errors surfaced by Oak operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OakError {
    /// The off-heap pool could not satisfy an allocation.
    Alloc(AllocError),
    /// A zero-copy buffer access raced with a concurrent deletion — the
    /// analogue of Java Oak's `ConcurrentModificationException` (§2.2).
    ConcurrentModification,
    /// A value-header lock could not be acquired within its bounded
    /// spin/yield/sleep budget — evidence of a stuck or pathologically slow
    /// lock holder. The operation had no effect and may be retried.
    Contended,
    /// The off-heap pool was exhausted and stayed exhausted after emergency
    /// reclamation (quarantine drain + compacting rebalance of chunks with
    /// dead entries). The operation had no effect: the map remains fully
    /// consistent and readable/scannable/writable within remaining memory.
    OutOfMemory,
}

impl fmt::Display for OakError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OakError::Alloc(e) => write!(f, "allocation failure: {e}"),
            OakError::ConcurrentModification => {
                write!(f, "buffer access raced with concurrent deletion")
            }
            OakError::Contended => {
                write!(f, "value lock acquisition budget exhausted")
            }
            OakError::OutOfMemory => {
                write!(f, "off-heap pool exhausted after emergency reclamation")
            }
        }
    }
}

impl std::error::Error for OakError {}

impl From<AllocError> for OakError {
    fn from(e: AllocError) -> Self {
        OakError::Alloc(e)
    }
}

impl From<oak_mempool::AccessError> for OakError {
    fn from(e: oak_mempool::AccessError) -> Self {
        match e {
            oak_mempool::AccessError::Deleted => OakError::ConcurrentModification,
            oak_mempool::AccessError::Contended => OakError::Contended,
        }
    }
}
