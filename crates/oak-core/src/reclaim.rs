//! Deferred reclamation of dead key slices (quarantine).
//!
//! Rebalance replaces a frozen chunk with compacted copies and, until this
//! module existed, simply *leaked* the key slices of the replaced chunk's
//! dead entries (entries whose value was ⊥ or marked deleted) — they stayed
//! linked in the frozen chunk, unreachable through any live chunk, holding
//! pool bytes forever. They cannot be freed eagerly either: a concurrent
//! zero-copy reader or scan may still be walking the frozen chunk's linked
//! list (stale-index windows and the replacement-chase protocol make this
//! legal), and every list walk *compares key bytes of dead entries* to
//! navigate. Freeing a dead key under such a walker would hand its bytes to
//! a later allocation and corrupt comparisons.
//!
//! The fix is a small epoch-based quarantine, deliberately simpler than a
//! general EBR (we reclaim exactly one resource class — key slices of
//! replaced chunks — and the pool keeps all memory mapped, so a late read
//! is a *logical* hazard, not UB):
//!
//! * Readers and writers [`pin`](Quarantine::pin) before walking chunk
//!   lists and hold the pin for the whole operation (iterators hold one for
//!   their whole lifetime). Pins count into one of two striped bins,
//!   selected by the low bit of the global epoch at entry.
//! * Rebalance [`retire`](Quarantine::retire)s dead key slices, stamping
//!   them with the current epoch `E`.
//! * The epoch advances `E → E+1` only when the bin of parity `(E+1) & 1`
//!   is empty — i.e. no pin from epoch `E-1` or earlier survives.
//! * A retired slice is freed once `epoch ≥ stamp + 2`: two advances prove
//!   every pin taken at or before the retirement has been dropped.
//!
//! Safety argument (all epoch/bin operations are `SeqCst`, with full fences
//! at the pin and retire sites): a walker may only enter a chunk's linked
//! list after observing `replacement() == None` for that chunk *while
//! pinned* (ops locate this way; cursors re-check at every step and hop).
//! Retirement of a chunk's dead keys happens after `set_replacement`, so if
//! a pinned walker (entry epoch `E`) later walks that chunk, its
//! unreplaced-observation preceded the retirement, whose stamp is then
//! `≥ E` (the epoch cannot pass `E+1` while the pin is held — the walker
//! occupies bin `E & 1`, blocking the `E+1 → E+2` advance). Freeing needs
//! `epoch ≥ stamp + 2 ≥ E + 2`, so it waits for the pin to drop.
//!
//! Retiring threads never block: draining is opportunistic (piggybacked on
//! rebalance and on the emergency-reclamation path) and an operation
//! holding its own pin simply cannot free what it retired in the same epoch
//! window — it defers to a later drain.

use std::collections::VecDeque;
use std::sync::atomic::{fence, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use oak_mempool::{MemoryPool, SliceRef};
use parking_lot::Mutex;

/// Number of pin-counter stripes; threads are spread round-robin to keep
/// the pin/unpin hot path from serializing on one cache line.
const STRIPES: usize = 8;

/// One cache line of pin counters. `bins[p]` counts live pins whose entry
/// epoch had parity `p`.
#[repr(align(64))]
#[derive(Default)]
struct Stripe {
    bins: [AtomicUsize; 2],
}

/// A key slice awaiting reclamation, stamped with the epoch at retirement.
struct Retired {
    stamp: u64,
    slice: SliceRef,
}

/// Epoch-based quarantine for dead key slices of replaced chunks.
pub(crate) struct Quarantine {
    pool: Arc<MemoryPool>,
    epoch: AtomicU64,
    stripes: [Stripe; STRIPES],
    /// Retired slices in (approximate) stamp order. Stamps can be out of
    /// order by at most one epoch (retire reads the epoch outside the
    /// lock), so stopping a drain at the first ineligible entry only ever
    /// delays an eligible one by a single drain round.
    pending: Mutex<VecDeque<Retired>>,
    pending_bytes: AtomicU64,
    retired_count: AtomicU64,
    drained_bytes: AtomicU64,
    drained_count: AtomicU64,
}

impl Quarantine {
    pub(crate) fn new(pool: Arc<MemoryPool>) -> Self {
        Quarantine {
            pool,
            epoch: AtomicU64::new(0),
            stripes: std::array::from_fn(|_| Stripe::default()),
            pending: Mutex::new(VecDeque::new()),
            pending_bytes: AtomicU64::new(0),
            retired_count: AtomicU64::new(0),
            drained_bytes: AtomicU64::new(0),
            drained_count: AtomicU64::new(0),
        }
    }

    /// Pins the current epoch. Increment-then-validate: bump the bin for
    /// the observed epoch's parity, then re-check the epoch; if it moved,
    /// the increment may be in the wrong (reclaimable) bin — undo and
    /// retry. The trailing fence orders the pin before every subsequent
    /// chunk read.
    pub(crate) fn pin(self: &Arc<Self>) -> EpochPin {
        let stripe = stripe_index();
        loop {
            let e = self.epoch.load(Ordering::SeqCst);
            let slot = (e & 1) as usize;
            self.stripes[stripe].bins[slot].fetch_add(1, Ordering::SeqCst);
            if self.epoch.load(Ordering::SeqCst) == e {
                fence(Ordering::SeqCst);
                return EpochPin {
                    q: Arc::clone(self),
                    stripe,
                    slot,
                };
            }
            self.stripes[stripe].bins[slot].fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Quarantines one dead key slice. The leading fence orders the
    /// caller's `set_replacement` publication before the stamp read, which
    /// the epoch safety argument (module docs) relies on.
    pub(crate) fn retire(&self, slice: SliceRef) {
        debug_assert!(!slice.is_null());
        fence(Ordering::SeqCst);
        let stamp = self.epoch.load(Ordering::SeqCst);
        self.pending_bytes
            .fetch_add(slice.len() as u64, Ordering::Relaxed);
        self.retired_count.fetch_add(1, Ordering::Relaxed);
        self.pending.lock().push_back(Retired { stamp, slice });
    }

    /// Tries to advance the epoch: `E → E+1` is legal only when no pin
    /// from parity `(E+1) & 1` (entry epoch ≤ E-1) survives.
    fn try_advance(&self) -> bool {
        let e = self.epoch.load(Ordering::SeqCst);
        let stale_slot = ((e + 1) & 1) as usize;
        let busy: usize = self
            .stripes
            .iter()
            .map(|s| s.bins[stale_slot].load(Ordering::SeqCst))
            .sum();
        if busy != 0 {
            return false;
        }
        self.epoch
            .compare_exchange(e, e + 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    /// One opportunistic drain round: attempt a single epoch advance, then
    /// free every quarantined slice whose grace period (two advances past
    /// its stamp) has elapsed. Returns the bytes freed.
    pub(crate) fn try_drain(&self) -> u64 {
        oak_failpoints::fail_point!("reclaim/drain");
        self.try_advance();
        let e = self.epoch.load(Ordering::SeqCst);
        let mut batch = Vec::new();
        {
            let mut q = self.pending.lock();
            while let Some(front) = q.front() {
                if front.stamp + 2 <= e {
                    batch.push(q.pop_front().expect("front observed").slice);
                } else {
                    break;
                }
            }
        }
        let mut freed = 0u64;
        for slice in batch {
            freed += slice.len() as u64;
            self.drained_count.fetch_add(1, Ordering::Relaxed);
            self.pool.free(slice);
        }
        if freed > 0 {
            self.pending_bytes.fetch_sub(freed, Ordering::Relaxed);
            self.drained_bytes.fetch_add(freed, Ordering::Relaxed);
        }
        freed
    }

    /// Drains as much as the current pin population allows: repeated
    /// advance+free rounds until the queue is empty or an advance stalls
    /// on a surviving pin. Used by the emergency-reclamation path (whose
    /// caller has dropped its own pin) and by quiescent tests. Returns the
    /// bytes freed.
    pub(crate) fn drain_now(&self) -> u64 {
        let mut total = 0u64;
        for round in 0..8 {
            let freed = self.try_drain();
            total += freed;
            if self.pending.lock().is_empty() {
                break;
            }
            if freed == 0 && round >= 1 {
                // An advance is stalled on a concurrent pin; yielding once
                // gives short operations a chance to unpin, but we never
                // block — leftover slices wait for the next drain.
                std::thread::yield_now();
            }
        }
        total
    }

    /// Bytes currently quarantined (retired, not yet freed).
    pub(crate) fn pending_bytes(&self) -> u64 {
        self.pending_bytes.load(Ordering::Relaxed)
    }

    /// Total slices ever retired.
    pub(crate) fn retired_count(&self) -> u64 {
        self.retired_count.load(Ordering::Relaxed)
    }

    /// Total bytes freed back to the pool by drains.
    pub(crate) fn drained_bytes(&self) -> u64 {
        self.drained_bytes.load(Ordering::Relaxed)
    }

    /// Total slices freed back to the pool by drains.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn drained_count(&self) -> u64 {
        self.drained_count.load(Ordering::Relaxed)
    }

    /// Snapshot of the quarantined slices; the auditor counts these as
    /// reachable (they are owned by the quarantine, not leaked).
    #[cfg_attr(not(feature = "audit"), allow(dead_code))]
    pub(crate) fn pending_refs(&self) -> Vec<SliceRef> {
        self.pending.lock().iter().map(|r| r.slice).collect()
    }
}

impl std::fmt::Debug for Quarantine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Quarantine")
            .field("epoch", &self.epoch.load(Ordering::Relaxed))
            .field("pending_bytes", &self.pending_bytes())
            .field("retired", &self.retired_count())
            .field("drained_bytes", &self.drained_bytes())
            .finish()
    }
}

/// An epoch pin: while held, no key slice retired at or after the pin's
/// entry epoch can be freed. Cheap to take (two atomic RMWs) and `Drop`
/// releases it.
pub(crate) struct EpochPin {
    q: Arc<Quarantine>,
    stripe: usize,
    slot: usize,
}

impl Drop for EpochPin {
    fn drop(&mut self) {
        self.q.stripes[self.stripe].bins[self.slot].fetch_sub(1, Ordering::SeqCst);
    }
}

impl std::fmt::Debug for EpochPin {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochPin").finish()
    }
}

/// Per-thread stripe assignment, handed out round-robin on first use.
fn stripe_index() -> usize {
    use std::cell::Cell;
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static STRIPE: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    STRIPE.with(|s| {
        let mut v = s.get();
        if v == usize::MAX {
            v = NEXT.fetch_add(1, Ordering::Relaxed) % STRIPES;
            s.set(v);
        }
        v
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use oak_mempool::{MemoryPool, PoolConfig};

    fn pool() -> Arc<MemoryPool> {
        Arc::new(MemoryPool::new(PoolConfig {
            magazines: false,
            lockfree: false,
            arena_size: 64 * 1024,
            max_arenas: 1,
            ..Default::default()
        }))
    }

    #[test]
    fn unpinned_retire_drains_after_two_advances() {
        let q = Arc::new(Quarantine::new(pool()));
        let r = q.pool.allocate(64).unwrap();
        let live_before = q.pool.stats().live_bytes;
        q.retire(r);
        assert_eq!(q.pending_bytes(), 64);
        let freed = q.drain_now();
        assert_eq!(freed, 64);
        assert_eq!(q.pending_bytes(), 0);
        assert_eq!(q.pool.stats().live_bytes, live_before - 64);
    }

    #[test]
    fn pin_blocks_reclamation_until_dropped() {
        let q = Arc::new(Quarantine::new(pool()));
        let r = q.pool.allocate(64).unwrap();
        let pin = q.pin();
        q.retire(r);
        // The pin caps the epoch at entry+1 < stamp+2: nothing drains.
        assert_eq!(q.drain_now(), 0);
        assert_eq!(q.pending_bytes(), 64);
        drop(pin);
        assert_eq!(q.drain_now(), 64);
        assert_eq!(q.pending_bytes(), 0);
    }

    #[test]
    fn pin_taken_after_retire_does_not_block_forever() {
        let q = Arc::new(Quarantine::new(pool()));
        let r = q.pool.allocate(64).unwrap();
        q.retire(r);
        // Advance twice while unpinned, then pin: the newly pinned epoch
        // is past the stamp's grace period, so draining proceeds.
        assert!(q.try_advance());
        assert!(q.try_advance());
        let _pin = q.pin();
        assert_eq!(q.drain_now(), 64);
    }

    #[test]
    fn counters_accumulate() {
        let q = Arc::new(Quarantine::new(pool()));
        for _ in 0..3 {
            let r = q.pool.allocate(32).unwrap();
            q.retire(r);
        }
        assert_eq!(q.retired_count(), 3);
        assert_eq!(q.pending_refs().len(), 3);
        q.drain_now();
        assert_eq!(q.drained_count(), 3);
        assert_eq!(q.drained_bytes(), 96);
    }
}
