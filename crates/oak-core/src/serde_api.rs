//! Serialization traits for the legacy (typed) API.
//!
//! "To convert objects (both keys and values) to and from their serialized
//! forms, the user must implement a (1) serializer, (2) deserializer, and
//! (3) serialized size calculator" (§2.1). We fold all three into one trait
//! with three methods; the zero-copy API never calls `deserialize`.

/// Serializer / deserializer / size calculator for a key or value type.
pub trait OakSerializer: Send + Sync + 'static {
    /// The in-memory (deserialized) type.
    type Item;

    /// Exact size in bytes of `item`'s serialized form.
    fn serialized_size(&self, item: &Self::Item) -> usize;

    /// Writes `item` into `out`, which has exactly `serialized_size` bytes.
    /// This writes directly into Oak's off-heap allocation — no
    /// intermediate buffer.
    fn serialize(&self, item: &Self::Item, out: &mut [u8]);

    /// Reconstructs an item from its serialized bytes.
    fn deserialize(&self, bytes: &[u8]) -> Self::Item;
}

/// Identity serializer for raw byte vectors.
#[derive(Debug, Clone, Copy, Default)]
pub struct BytesSerializer;

impl OakSerializer for BytesSerializer {
    type Item = Vec<u8>;

    fn serialized_size(&self, item: &Vec<u8>) -> usize {
        item.len()
    }

    fn serialize(&self, item: &Vec<u8>, out: &mut [u8]) {
        out.copy_from_slice(item);
    }

    fn deserialize(&self, bytes: &[u8]) -> Vec<u8> {
        bytes.to_vec()
    }
}

/// Big-endian `u64` serializer (sorts correctly under
/// [`Lexicographic`](crate::Lexicographic)).
#[derive(Debug, Clone, Copy, Default)]
pub struct U64Serializer;

impl OakSerializer for U64Serializer {
    type Item = u64;

    fn serialized_size(&self, _: &u64) -> usize {
        8
    }

    fn serialize(&self, item: &u64, out: &mut [u8]) {
        out.copy_from_slice(&item.to_be_bytes());
    }

    fn deserialize(&self, bytes: &[u8]) -> u64 {
        u64::from_be_bytes(bytes.try_into().expect("u64 key is 8 bytes"))
    }
}

/// UTF-8 string serializer.
#[derive(Debug, Clone, Copy, Default)]
pub struct StringSerializer;

impl OakSerializer for StringSerializer {
    type Item = String;

    fn serialized_size(&self, item: &String) -> usize {
        item.len()
    }

    fn serialize(&self, item: &String, out: &mut [u8]) {
        out.copy_from_slice(item.as_bytes());
    }

    fn deserialize(&self, bytes: &[u8]) -> String {
        String::from_utf8(bytes.to_vec()).expect("stored string is valid UTF-8")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<S: OakSerializer>(s: &S, item: S::Item) -> S::Item {
        let mut buf = vec![0u8; s.serialized_size(&item)];
        s.serialize(&item, &mut buf);
        s.deserialize(&buf)
    }

    #[test]
    fn bytes_round_trip() {
        let v = vec![1u8, 2, 3, 250];
        assert_eq!(round_trip(&BytesSerializer, v.clone()), v);
    }

    #[test]
    fn u64_round_trip_and_order() {
        assert_eq!(round_trip(&U64Serializer, 0), 0);
        assert_eq!(round_trip(&U64Serializer, u64::MAX), u64::MAX);
        // Big-endian encoding sorts numerically under byte order.
        assert!(5u64.to_be_bytes() < 300u64.to_be_bytes());
    }

    #[test]
    fn string_round_trip() {
        let s = "héllo wörld".to_string();
        assert_eq!(round_trip(&StringSerializer, s.clone()), s);
    }
}
