//! # oak-core — Oak: a scalable off-heap allocated key-value map
//!
//! A Rust implementation of the Oak concurrent ordered KV-map
//! (Meir et al., PPoPP '20). Oak stores variable-size keys and values in
//! self-managed arena memory ([`oak_mempool`]) and keeps only small
//! metadata — a chunk list and a lazy index — "on heap". Its design points,
//! all implemented here:
//!
//! * **Chunk-based organization** (§3.1): entries live in large chunks with
//!   a binary-searchable sorted prefix and a bypass linked list for new
//!   inserts, giving searches locality that node-per-entry skiplists lack.
//! * **Atomic conditional updates** (§4): `put`, `put_if_absent`,
//!   `compute_if_present` and `put_if_absent_compute_if_present` are all
//!   linearizable, including the in-place compute lambdas — which the JDK's
//!   maps do not offer.
//! * **Zero-copy API** (§2.2): `get` and scans return [`OakRBuffer`] views
//!   into Oak's own memory rather than deserialized objects; update lambdas
//!   receive an [`OakWBuffer`]. A legacy copying API
//!   ([`legacy::TypedOakMap`]) mirrors `ConcurrentNavigableMap`.
//! * **Two-way scans** (§4.2): ascending scans stream through chunks;
//!   descending scans use the sorted-prefix + bypass-stack algorithm of
//!   Figure 2, avoiding a fresh O(log N) lookup per key.
//! * **Internal GC** (§3.2–§3.3): value payloads are reclaimed on remove
//!   and resize through headers with a reader/writer lock and deleted bit;
//!   headers are never reused (the default memory manager), making the
//!   `finalizeRemove` path ABA-free.
//!
//! ## Quick start
//!
//! ```
//! use oak_core::{OakMap, OakMapConfig};
//!
//! let map = OakMap::with_config(OakMapConfig::small());
//! map.put(b"hello", b"world").unwrap();
//! let len = map.get_with(b"hello", |v| v.len()).unwrap();
//! assert_eq!(len, 5);
//! map.compute_if_present(b"hello", |v| v.as_mut_slice()[0] = b'W');
//! assert_eq!(map.get_copy(b"hello").unwrap(), b"World");
//! map.remove(b"hello");
//! assert!(map.get_copy(b"hello").is_none());
//! ```

#![warn(missing_docs)]

pub mod legacy;
pub mod serde_api;

mod budget;
mod buffer;
mod chunk;
mod cmp;
mod config;
mod error;
mod index;
mod iter;
mod map;
mod ops;
mod overload;
mod rebalance;
mod reclaim;
mod sharded;
mod traits;
mod zc;

pub use budget::{OpBudget, RetryPolicy};
pub use buffer::{OakRBuffer, OakWBuffer};
pub use cmp::{KeyComparator, Lexicographic, U64BeComparator};
pub use config::OakMapConfig;
pub use error::{CorruptionKind, OakError, RecoveryFailure};
pub use iter::{DescendIter, EntryIter};
#[cfg(feature = "audit")]
pub use map::MapAuditReport;
pub use map::{OakMap, OakStats};
pub use overload::{OverloadConfig, OverloadState};
pub use sharded::{ShardSplitter, ShardedOakMap};
pub use traits::{OakStatsSource, OnHeapSkipListMap, OrderedKvMap, ZeroCopyRead};
pub use zc::{SubMapView, ZeroCopyView};

/// Canonical failpoint sites declared by this crate (see the `failpoints`
/// feature and DESIGN.md "Failure model & panic safety").
pub const FAILPOINT_SITES: &[oak_failpoints::SiteSpec] = &[
    oak_failpoints::SiteSpec::errorable("chunk/publish"),
    oak_failpoints::SiteSpec::passive("chunk/unpublish"),
    oak_failpoints::SiteSpec::passive("chunk/cas-value"),
    oak_failpoints::SiteSpec::errorable("chunk/allocate-entry"),
    oak_failpoints::SiteSpec::passive("rebalance/start"),
    oak_failpoints::SiteSpec::passive("rebalance/freeze"),
    oak_failpoints::SiteSpec::passive("rebalance/splice"),
    oak_failpoints::SiteSpec::passive("rebalance/publish-replacement"),
    oak_failpoints::SiteSpec::passive("index/publish"),
    oak_failpoints::SiteSpec::passive("index/retire"),
    oak_failpoints::SiteSpec::passive("index/replace-first"),
    oak_failpoints::SiteSpec::passive("iter/ascend-hop"),
    oak_failpoints::SiteSpec::passive("iter/descend-refill"),
    oak_failpoints::SiteSpec::passive("iter/descend-prev"),
    oak_failpoints::SiteSpec::passive("iter/stale-reenter"),
    oak_failpoints::SiteSpec::passive("iter/batch-refill"),
    oak_failpoints::SiteSpec::passive("ops/remove-marked"),
    oak_failpoints::SiteSpec::passive("reclaim/drain"),
];

/// Named *sync points* instrumented across this crate and
/// [`oak_mempool`] — the decision sites (§4.5 linearization points and the
/// scan/rebalance hand-off sites) that a deterministic
/// [`oak_failpoints::SyncSchedule`](oak_failpoints) interleaving can gate
/// on. See DESIGN.md "Linearization points and the interleaving harness"
/// for the mapping from the paper's linearization points to these names.
pub const SYNC_SITES: &[&str] = &[
    // Entry value-reference CAS (Algorithms 2–3) and the publish/freeze
    // protocol around it.
    "chunk/publish",
    "chunk/cas-value",
    "chunk/freeze",
    // Value-header state transitions (v.put / v.compute / v.remove).
    "value/put",
    "value/compute",
    "value/remove",
    // Remove marked deleted but not yet finalized (Algorithm 3 line 48→).
    "ops/remove-marked",
    // Rebalance: engage, freeze, list splice, replacement publication.
    "rebalance/start",
    "rebalance/freeze",
    "rebalance/splice",
    "rebalance/publish-replacement",
    // Lazy index maintenance and the first-pointer swing.
    "index/publish",
    "index/retire",
    "index/replace-first",
    // Scan decision sites (per-step, chunk hops, refills, stale re-entry).
    // The `iter/ascend-*`, `iter/descend-*` and `iter/stale-reenter`
    // family fires on the per-entry walker (`batch_scan(false)`); the
    // batch pipeline fires `iter/batch-step` per drained entry and
    // `iter/batch-refill` per chunk snapshot instead — entry- and
    // batch-granularity witnesses respectively.
    "iter/ascend-step",
    "iter/ascend-hop",
    "iter/descend-step",
    "iter/descend-refill",
    "iter/descend-prev",
    "iter/stale-reenter",
    "iter/batch-step",
    "iter/batch-refill",
];

/// All failpoint sites reachable through an [`OakMap`]: this crate's plus
/// [`oak_mempool::FAILPOINT_SITES`]. Test harnesses generate fault
/// schedules over this set.
pub fn all_failpoint_sites() -> Vec<oak_failpoints::SiteSpec> {
    FAILPOINT_SITES
        .iter()
        .chain(oak_mempool::FAILPOINT_SITES)
        .copied()
        .collect()
}
