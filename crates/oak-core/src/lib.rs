//! # oak-core — Oak: a scalable off-heap allocated key-value map
//!
//! A Rust implementation of the Oak concurrent ordered KV-map
//! (Meir et al., PPoPP '20). Oak stores variable-size keys and values in
//! self-managed arena memory ([`oak_mempool`]) and keeps only small
//! metadata — a chunk list and a lazy index — "on heap". Its design points,
//! all implemented here:
//!
//! * **Chunk-based organization** (§3.1): entries live in large chunks with
//!   a binary-searchable sorted prefix and a bypass linked list for new
//!   inserts, giving searches locality that node-per-entry skiplists lack.
//! * **Atomic conditional updates** (§4): `put`, `put_if_absent`,
//!   `compute_if_present` and `put_if_absent_compute_if_present` are all
//!   linearizable, including the in-place compute lambdas — which the JDK's
//!   maps do not offer.
//! * **Zero-copy API** (§2.2): `get` and scans return [`OakRBuffer`] views
//!   into Oak's own memory rather than deserialized objects; update lambdas
//!   receive an [`OakWBuffer`]. A legacy copying API
//!   ([`legacy::TypedOakMap`]) mirrors `ConcurrentNavigableMap`.
//! * **Two-way scans** (§4.2): ascending scans stream through chunks;
//!   descending scans use the sorted-prefix + bypass-stack algorithm of
//!   Figure 2, avoiding a fresh O(log N) lookup per key.
//! * **Internal GC** (§3.2–§3.3): value payloads are reclaimed on remove
//!   and resize through headers with a reader/writer lock and deleted bit;
//!   headers are never reused (the default memory manager), making the
//!   `finalizeRemove` path ABA-free.
//!
//! ## Quick start
//!
//! ```
//! use oak_core::{OakMap, OakMapConfig};
//!
//! let map = OakMap::with_config(OakMapConfig::small());
//! map.put(b"hello", b"world").unwrap();
//! let len = map.get_with(b"hello", |v| v.len()).unwrap();
//! assert_eq!(len, 5);
//! map.compute_if_present(b"hello", |v| v.as_mut_slice()[0] = b'W');
//! assert_eq!(map.get_copy(b"hello").unwrap(), b"World");
//! map.remove(b"hello");
//! assert!(map.get_copy(b"hello").is_none());
//! ```

#![warn(missing_docs)]

pub mod legacy;
pub mod serde_api;

mod buffer;
mod chunk;
mod cmp;
mod config;
mod error;
mod index;
mod iter;
mod map;
mod ops;
mod rebalance;
mod sharded;
mod traits;
mod zc;

pub use buffer::{OakRBuffer, OakWBuffer};
pub use cmp::{KeyComparator, Lexicographic, U64BeComparator};
pub use config::OakMapConfig;
pub use error::OakError;
pub use iter::{DescendIter, EntryIter};
pub use map::{OakMap, OakStats};
pub use sharded::{ShardSplitter, ShardedOakMap};
pub use traits::{OakStatsSource, OnHeapSkipListMap, OrderedKvMap, ZeroCopyRead};
pub use zc::{SubMapView, ZeroCopyView};

/// Canonical failpoint sites declared by this crate (see the `failpoints`
/// feature and DESIGN.md "Failure model & panic safety").
pub const FAILPOINT_SITES: &[oak_failpoints::SiteSpec] = &[
    oak_failpoints::SiteSpec::errorable("chunk/publish"),
    oak_failpoints::SiteSpec::passive("chunk/unpublish"),
    oak_failpoints::SiteSpec::passive("chunk/cas-value"),
    oak_failpoints::SiteSpec::errorable("chunk/allocate-entry"),
    oak_failpoints::SiteSpec::passive("rebalance/start"),
    oak_failpoints::SiteSpec::passive("rebalance/freeze"),
];

/// All failpoint sites reachable through an [`OakMap`]: this crate's plus
/// [`oak_mempool::FAILPOINT_SITES`]. Test harnesses generate fault
/// schedules over this set.
pub fn all_failpoint_sites() -> Vec<oak_failpoints::SiteSpec> {
    FAILPOINT_SITES
        .iter()
        .chain(oak_mempool::FAILPOINT_SITES)
        .copied()
        .collect()
}
