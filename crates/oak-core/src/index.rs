//! The lazy minKey→chunk index (§3.1), behind a narrow interface.
//!
//! The index maps each chunk's non-infimum `minKey` to the chunk and keeps
//! the distinguished first-chunk pointer (`minKey` = −∞, encoded as the
//! empty key). It is *lazy*: rebalances publish and retire boundaries
//! best-effort, so a lookup may land on a frozen or stale chunk —
//! [`ChunkIndex::locate`] compensates by chasing replacement pointers and
//! walking the chunk list, exactly as `locateChunk` does in the paper.
//!
//! Everything outside this module goes through the handful of methods
//! below; no other code touches the underlying skiplist or the first
//! pointer directly.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use crossbeam_epoch::{self as epoch, Atomic, Owned};

use oak_skiplist::SkipListMap;

use crate::chunk::Chunk;
use crate::cmp::{KeyComparator, MinKey};

/// Narrow interface over the lazy chunk index: locate chunks by key,
/// publish/retire rebalance boundaries, and swing the first-chunk pointer.
pub(crate) struct ChunkIndex<C: KeyComparator> {
    cmp: C,
    /// Lazy index: non-infimum `minKey` → chunk (§3.1).
    minkeys: SkipListMap<MinKey<C>, Arc<Chunk>>,
    /// The first chunk (`minKey` = −∞, encoded as the empty key).
    ///
    /// Epoch-protected atomic box rather than a lock: a map whose keys all
    /// fit in one chunk (small shards especially) funnels *every* lookup
    /// through this pointer, and even a read-mostly `RwLock` bounces its
    /// lock word between reader cores. Readers pin, load, and bump the
    /// `Arc` — no shared write other than the refcount. Swings CAS the box
    /// and defer freeing it past all current pins.
    first: Atomic<Arc<Chunk>>,
}

impl<C: KeyComparator> ChunkIndex<C> {
    pub(crate) fn new(cmp: C, first: Arc<Chunk>) -> Self {
        ChunkIndex {
            cmp,
            minkeys: SkipListMap::new(),
            first: Atomic::new(first),
        }
    }

    /// The current first chunk, *without* resolving replacement chains.
    /// Used as the fallback starting point for list walks.
    pub(crate) fn first_raw(&self) -> Arc<Chunk> {
        let guard = epoch::pin();
        let shared = self.first.load(Ordering::Acquire, &guard);
        // SAFETY: `first` is non-null from construction to drop, and a
        // swung-out box is only destroyed after every pin that could have
        // observed it is released.
        unsafe { shared.deref() }.clone()
    }

    /// The current first chunk, with replacement chains resolved.
    pub(crate) fn first_resolved(&self) -> Arc<Chunk> {
        let mut c = self.first_raw();
        while let Some(r) = c.replacement() {
            c = r.clone();
        }
        c
    }

    /// `locateChunk(key)` (§3.1): index floor plus chunk-list walk, with
    /// replacement chains resolved so callers always land on a live (or at
    /// worst freshly frozen) chunk covering `key`.
    pub(crate) fn locate(&self, key: &[u8]) -> Arc<Chunk> {
        // Probe the index with the raw key bytes (no per-lookup allocation).
        let mut c = self
            .minkeys
            .floor_by(
                |mk| self.cmp.compare(&mk.bytes, key) != std::cmp::Ordering::Greater,
                |_, v| v.clone(),
            )
            .unwrap_or_else(|| self.first_raw());
        loop {
            while let Some(r) = c.replacement() {
                c = r.clone();
            }
            match c.next_chunk() {
                Some(n) if self.cmp.compare(&n.min_key, key) != std::cmp::Ordering::Greater => {
                    c = n;
                }
                _ => {
                    if c.replacement().is_some() {
                        continue; // replaced while we looked at next
                    }
                    return c;
                }
            }
        }
    }

    /// The chunk with the greatest `minKey` strictly smaller than
    /// `min_key`, list-walked forward to the immediate predecessor (the
    /// descending scan's index query, §4.2). `min_key` must be non-empty.
    pub(crate) fn floor_before(&self, min_key: &[u8]) -> Arc<Chunk> {
        let mut prev = match self.minkeys.floor_by(
            |mk| self.cmp.compare(&mk.bytes, min_key) == std::cmp::Ordering::Less,
            |_, v| v.clone(),
        ) {
            Some(p) => p,
            None => self.first_raw(),
        };
        loop {
            while let Some(r) = prev.replacement() {
                prev = r.clone();
            }
            // Walk forward while still strictly below the old minKey.
            match prev.next_chunk() {
                Some(n) if self.cmp.compare(&n.min_key, min_key) == std::cmp::Ordering::Less => {
                    prev = n;
                }
                _ => break,
            }
        }
        prev
    }

    /// Publishes a rebalance-produced chunk boundary. No-op for the
    /// infimum key (the first chunk is tracked by the first pointer).
    pub(crate) fn publish(&self, chunk: &Arc<Chunk>) {
        oak_failpoints::sync_point!("index/publish");
        oak_failpoints::fail_point!("index/publish");
        if !chunk.min_key.is_empty() {
            self.minkeys
                .put(MinKey::new(&chunk.min_key, self.cmp.clone()), chunk.clone());
        }
    }

    /// Retires a boundary that no longer starts a chunk (merge case).
    pub(crate) fn retire(&self, min_key: &[u8]) {
        oak_failpoints::sync_point!("index/retire");
        oak_failpoints::fail_point!("index/retire");
        self.minkeys.remove(&MinKey::new(min_key, self.cmp.clone()));
    }

    /// Swings the first pointer from `old` to `new_head`, CAS-like: the
    /// swing happens only if the pointer still leads to `old` — either
    /// directly, or through the replacement chain of a stale first pointer
    /// (in which case swinging to `new_head` also helps the lazy pointer
    /// catch up). Returns whether the pointer now leads to `new_head`; a
    /// `false` return means the pointer is out of sync with the caller's
    /// view and **must not** be clobbered.
    ///
    /// The caller holds `old`'s rebalance lock, so under correct engage
    /// discipline this never fails — but a silent mismatched swing would
    /// detach an entire chunk chain, so the verify is kept in release
    /// builds too.
    #[must_use]
    pub(crate) fn replace_first(&self, old: &Arc<Chunk>, new_head: Arc<Chunk>) -> bool {
        oak_failpoints::sync_point!("index/replace-first");
        oak_failpoints::fail_point!("index/replace-first");
        let guard = epoch::pin();
        let mut new_box = Owned::new(new_head);
        loop {
            let shared = self.first.load(Ordering::Acquire, &guard);
            // SAFETY: see `first_raw`.
            let mut cur = unsafe { shared.deref() }.clone();
            let leads_to_old = loop {
                if Arc::ptr_eq(&cur, old) {
                    break true;
                }
                match cur.replacement() {
                    Some(r) => cur = r.clone(),
                    None => break false,
                }
            };
            if !leads_to_old {
                return false;
            }
            match self.first.compare_exchange(
                shared,
                new_box,
                Ordering::AcqRel,
                Ordering::Acquire,
                &guard,
            ) {
                Ok(_) => {
                    // SAFETY: `shared` was just unlinked by this CAS; no
                    // new reader can reach it, and existing pins keep the
                    // box alive until they drop.
                    unsafe { guard.defer_destroy(shared) };
                    return true;
                }
                Err(e) => {
                    // Raced with a concurrent swing (different rebalance
                    // lock holder): re-verify the chain from the new box.
                    new_box = e.new;
                }
            }
        }
    }
}

impl<C: KeyComparator> Drop for ChunkIndex<C> {
    fn drop(&mut self) {
        // SAFETY: exclusive access (`&mut self`); no concurrent readers can
        // hold a pin into this index anymore, so the current box can be
        // reclaimed immediately.
        unsafe {
            let shared = self.first.load(Ordering::Relaxed, epoch::unprotected());
            if !shared.is_null() {
                drop(shared.into_owned());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cmp::Lexicographic;

    fn chunk(min_key: &[u8]) -> Arc<Chunk> {
        Arc::new(Chunk::new_empty(8, min_key.to_vec().into_boxed_slice()))
    }

    #[test]
    fn replace_first_swings_on_match() {
        let a = chunk(b"");
        let idx = ChunkIndex::new(Lexicographic, a.clone());
        let n = chunk(b"");
        assert!(idx.replace_first(&a, n.clone()));
        assert!(Arc::ptr_eq(&idx.first_raw(), &n));
    }

    #[test]
    fn replace_first_refuses_mismatched_swing() {
        // Regression (release-mode first-pointer clobber): before the
        // CAS-like verify this silently set `first` to the unrelated
        // chunk, detaching the live chain; the old code only
        // `debug_assert!`ed the match.
        let a = chunk(b"");
        let idx = ChunkIndex::new(Lexicographic, a.clone());
        let stranger = chunk(b"");
        let n = chunk(b"");
        assert!(!idx.replace_first(&stranger, n));
        assert!(
            Arc::ptr_eq(&idx.first_raw(), &a),
            "mismatched swing clobbered the first pointer"
        );
    }

    #[test]
    fn replace_first_helps_through_replacement_chain() {
        // A lazy first pointer still at a replaced chunk: swinging from
        // the chain's live end is correct and repairs the pointer.
        let a = chunk(b"");
        let idx = ChunkIndex::new(Lexicographic, a.clone());
        let a1 = chunk(b"");
        a.set_replacement(a1.clone());
        let n = chunk(b"");
        assert!(idx.replace_first(&a1, n.clone()));
        assert!(Arc::ptr_eq(&idx.first_raw(), &n));
    }
}
