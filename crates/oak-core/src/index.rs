//! The lazy minKey→chunk index (§3.1), behind a narrow interface.
//!
//! The index maps each chunk's non-infimum `minKey` to the chunk and keeps
//! the distinguished first-chunk pointer (`minKey` = −∞, encoded as the
//! empty key). It is *lazy*: rebalances publish and retire boundaries
//! best-effort, so a lookup may land on a frozen or stale chunk —
//! [`ChunkIndex::locate`] compensates by chasing replacement pointers and
//! walking the chunk list, exactly as `locateChunk` does in the paper.
//!
//! Everything outside this module goes through the handful of methods
//! below; no other code touches the underlying skiplist or the first
//! pointer directly.

use std::sync::Arc;

use parking_lot::RwLock;

use oak_skiplist::SkipListMap;

use crate::chunk::Chunk;
use crate::cmp::{KeyComparator, MinKey};

/// Narrow interface over the lazy chunk index: locate chunks by key,
/// publish/retire rebalance boundaries, and swing the first-chunk pointer.
pub(crate) struct ChunkIndex<C: KeyComparator> {
    cmp: C,
    /// Lazy index: non-infimum `minKey` → chunk (§3.1).
    minkeys: SkipListMap<MinKey<C>, Arc<Chunk>>,
    /// The first chunk (`minKey` = −∞, encoded as the empty key).
    first: RwLock<Arc<Chunk>>,
}

impl<C: KeyComparator> ChunkIndex<C> {
    pub(crate) fn new(cmp: C, first: Arc<Chunk>) -> Self {
        ChunkIndex {
            cmp,
            minkeys: SkipListMap::new(),
            first: RwLock::new(first),
        }
    }

    /// The current first chunk, *without* resolving replacement chains.
    /// Used as the fallback starting point for list walks.
    pub(crate) fn first_raw(&self) -> Arc<Chunk> {
        self.first.read().clone()
    }

    /// The current first chunk, with replacement chains resolved.
    pub(crate) fn first_resolved(&self) -> Arc<Chunk> {
        let mut c = self.first_raw();
        while let Some(r) = c.replacement() {
            c = r.clone();
        }
        c
    }

    /// `locateChunk(key)` (§3.1): index floor plus chunk-list walk, with
    /// replacement chains resolved so callers always land on a live (or at
    /// worst freshly frozen) chunk covering `key`.
    pub(crate) fn locate(&self, key: &[u8]) -> Arc<Chunk> {
        // Probe the index with the raw key bytes (no per-lookup allocation).
        let mut c = self
            .minkeys
            .floor_by(
                |mk| self.cmp.compare(&mk.bytes, key) != std::cmp::Ordering::Greater,
                |_, v| v.clone(),
            )
            .unwrap_or_else(|| self.first_raw());
        loop {
            while let Some(r) = c.replacement() {
                c = r.clone();
            }
            match c.next_chunk() {
                Some(n) if self.cmp.compare(&n.min_key, key) != std::cmp::Ordering::Greater => {
                    c = n;
                }
                _ => {
                    if c.replacement().is_some() {
                        continue; // replaced while we looked at next
                    }
                    return c;
                }
            }
        }
    }

    /// The chunk with the greatest `minKey` strictly smaller than
    /// `min_key`, list-walked forward to the immediate predecessor (the
    /// descending scan's index query, §4.2). `min_key` must be non-empty.
    pub(crate) fn floor_before(&self, min_key: &[u8]) -> Arc<Chunk> {
        let mut prev = match self.minkeys.floor_by(
            |mk| self.cmp.compare(&mk.bytes, min_key) == std::cmp::Ordering::Less,
            |_, v| v.clone(),
        ) {
            Some(p) => p,
            None => self.first_raw(),
        };
        loop {
            while let Some(r) = prev.replacement() {
                prev = r.clone();
            }
            // Walk forward while still strictly below the old minKey.
            match prev.next_chunk() {
                Some(n) if self.cmp.compare(&n.min_key, min_key) == std::cmp::Ordering::Less => {
                    prev = n;
                }
                _ => break,
            }
        }
        prev
    }

    /// Publishes a rebalance-produced chunk boundary. No-op for the
    /// infimum key (the first chunk is tracked by the first pointer).
    pub(crate) fn publish(&self, chunk: &Arc<Chunk>) {
        if !chunk.min_key.is_empty() {
            self.minkeys
                .put(MinKey::new(&chunk.min_key, self.cmp.clone()), chunk.clone());
        }
    }

    /// Retires a boundary that no longer starts a chunk (merge case).
    pub(crate) fn retire(&self, min_key: &[u8]) {
        self.minkeys.remove(&MinKey::new(min_key, self.cmp.clone()));
    }

    /// Swings the first pointer from `old` to `new_head`. The caller holds
    /// `old`'s rebalance lock, so the pointer cannot move concurrently.
    pub(crate) fn replace_first(&self, old: &Arc<Chunk>, new_head: Arc<Chunk>) {
        let mut g = self.first.write();
        debug_assert!(Arc::ptr_eq(&g, old), "first pointer out of sync");
        *g = new_head;
    }
}
