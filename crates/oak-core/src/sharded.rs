//! [`ShardedOakMap`]: N independent [`OakMap`] shards behind one ordered
//! map.
//!
//! The paper scales a single Oak instance by rebalancing chunks; real
//! deployments (e.g. Druid's incremental ingestion, §2.1) also shard at a
//! coarser grain so rebalance and GC contention stay local to a fraction
//! of the key space. `ShardedOakMap` provides that layer: point operations
//! route to one shard via a [`ShardSplitter`]; scans k-way–merge the
//! per-shard chunk iterators so global key order is preserved under either
//! splitter; statistics aggregate per shard and across the map.
//!
//! Memory: with [`OakMapConfig::shared_arenas`] set, every shard draws its
//! arenas from the same pre-allocated reservoir, so the global off-heap
//! budget is enforced by the reservoir no matter how writes skew. Without
//! it, each shard gets a private pool whose arena budget is the
//! configured `max_arenas` divided (rounded up) across shards, keeping the
//! aggregate ceiling comparable to an unsharded map.

use std::sync::Arc;

use oak_mempool::{ArenaPool, HeaderRef, SliceRef};

use crate::budget::OpBudget;
use crate::buffer::{OakRBuffer, OakWBuffer};
use crate::cmp::{KeyComparator, Lexicographic};
use crate::config::OakMapConfig;
use crate::error::OakError;
use crate::map::{OakMap, OakStats};
use crate::overload::OverloadState;

/// How keys are partitioned across shards.
#[derive(Debug, Clone)]
pub enum ShardSplitter {
    /// Route by an FNV-1a hash of the first `prefix_len` key bytes
    /// (the whole key when shorter). Spreads load uniformly; shards hold
    /// interleaved slices of the key space, so scans always merge.
    HashPrefix {
        /// Number of leading key bytes hashed for routing.
        prefix_len: usize,
    },
    /// Route by explicit range boundaries: `boundaries[i]` is the minimal
    /// key of shard `i + 1` (so `N` shards take `N - 1` strictly
    /// ascending boundaries). Keeps each shard a contiguous key range —
    /// scans touch only the shards a range overlaps (they still merge,
    /// but non-overlapping shards drain instantly).
    KeyRanges(Vec<Vec<u8>>),
}

impl ShardSplitter {
    /// The default routing: hash of the first 8 key bytes.
    pub fn hash_prefix() -> Self {
        ShardSplitter::HashPrefix { prefix_len: 8 }
    }
}

/// 64-bit FNV-1a.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// One shard, padded to its own pair of cache lines. The shards sit in a
/// contiguous `Vec`, and each `OakMap` header carries hot atomics (length,
/// overload sampling state); without the padding, two shards can share a
/// line and read-only traffic on one shard pays for writes on its
/// neighbor (the ShardedOak 1→2-thread read regression).
#[repr(align(128))]
struct Shard<C: KeyComparator>(OakMap<C>);

/// A sharded front-end over `N` independent [`OakMap`]s.
///
/// Implements the same [`OrderedKvMap`](crate::OrderedKvMap) interface as
/// a single map: point operations are linearizable per key (they execute
/// on exactly one shard), and scans are non-atomic exactly as a single
/// map's are (§1.1), merging per-shard iterators in comparator order.
pub struct ShardedOakMap<C: KeyComparator = Lexicographic> {
    shards: Vec<Shard<C>>,
    splitter: ShardSplitter,
    cmp: C,
    /// The shared arena reservoir, when the shards draw from one.
    reservoir: Option<Arc<ArenaPool>>,
}

impl ShardedOakMap<Lexicographic> {
    /// Creates `shards` lexicographic shards with default configuration
    /// and hash-prefix routing.
    pub fn new(shards: usize) -> Self {
        Self::with_config(shards, OakMapConfig::default())
    }

    /// Creates `shards` lexicographic shards with hash-prefix routing.
    pub fn with_config(shards: usize, config: OakMapConfig) -> Self {
        Self::with_splitter(shards, ShardSplitter::hash_prefix(), config)
    }

    /// Creates `shards` lexicographic shards with an explicit splitter.
    pub fn with_splitter(shards: usize, splitter: ShardSplitter, config: OakMapConfig) -> Self {
        Self::with_comparator(shards, splitter, config, Lexicographic)
    }
}

impl Default for ShardedOakMap<Lexicographic> {
    /// Four default-configured shards with hash-prefix routing.
    fn default() -> Self {
        Self::new(4)
    }
}

impl<C: KeyComparator> ShardedOakMap<C> {
    /// Creates `shards` shards ordered by `cmp`.
    ///
    /// # Panics
    ///
    /// If `shards == 0`, or a [`ShardSplitter::KeyRanges`] splitter does
    /// not carry exactly `shards - 1` strictly ascending boundaries
    /// (under `cmp`).
    pub fn with_comparator(
        shards: usize,
        splitter: ShardSplitter,
        config: OakMapConfig,
        cmp: C,
    ) -> Self {
        assert!(shards >= 1, "a sharded map needs at least one shard");
        match &splitter {
            ShardSplitter::HashPrefix { prefix_len } => {
                assert!(*prefix_len >= 1, "hash prefix must cover at least one byte");
            }
            ShardSplitter::KeyRanges(bounds) => {
                assert_eq!(
                    bounds.len(),
                    shards - 1,
                    "{} shards need exactly {} range boundaries",
                    shards,
                    shards - 1
                );
                for w in bounds.windows(2) {
                    assert!(
                        cmp.compare(&w[0], &w[1]) == std::cmp::Ordering::Less,
                        "range boundaries must be strictly ascending"
                    );
                }
            }
        }
        let reservoir = config.shared_arenas.clone();
        let shard_config = match &reservoir {
            Some(_) => config,
            None => {
                // Private pools: split the arena budget so the aggregate
                // off-heap ceiling matches the unsharded configuration.
                let mut c = config;
                c.pool.max_arenas = c.pool.max_arenas.div_ceil(shards).max(1);
                c
            }
        };
        let maps = (0..shards)
            .map(|_| Shard(OakMap::with_comparator(shard_config.clone(), cmp.clone())))
            .collect();
        ShardedOakMap {
            shards: maps,
            splitter,
            cmp,
            reservoir,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The routing splitter.
    pub fn splitter(&self) -> &ShardSplitter {
        &self.splitter
    }

    /// The shared arena reservoir, when configured with one.
    pub fn reservoir(&self) -> Option<&Arc<ArenaPool>> {
        self.reservoir.as_ref()
    }

    /// The shard responsible for `key`.
    fn shard_of(&self, key: &[u8]) -> &OakMap<C> {
        let i = match &self.splitter {
            ShardSplitter::HashPrefix { prefix_len } => {
                let p = &key[..key.len().min(*prefix_len)];
                (fnv1a(p) % self.shards.len() as u64) as usize
            }
            ShardSplitter::KeyRanges(bounds) => {
                bounds.partition_point(|b| self.cmp.compare(b, key) != std::cmp::Ordering::Greater)
            }
        };
        &self.shards[i].0
    }

    // --- point operations (route to one shard) ----------------------------

    /// Zero-copy get: applies `f` to the value bytes of `key`.
    pub fn get_with<R>(&self, key: &[u8], f: impl FnOnce(&[u8]) -> R) -> Option<R> {
        self.shard_of(key).get_with(key, f)
    }

    /// Zero-copy get returning an [`OakRBuffer`] view.
    pub fn get(&self, key: &[u8]) -> Option<OakRBuffer> {
        self.shard_of(key).get(key)
    }

    /// Copying get.
    pub fn get_copy(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.shard_of(key).get_copy(key)
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &[u8]) -> bool {
        self.shard_of(key).contains_key(key)
    }

    /// Inserts or replaces `key → value`.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<(), OakError> {
        self.shard_of(key).put(key, value)
    }

    /// Inserts `key → value` if absent; returns whether this call
    /// inserted.
    pub fn put_if_absent(&self, key: &[u8], value: &[u8]) -> Result<bool, OakError> {
        self.shard_of(key).put_if_absent(key, value)
    }

    /// Atomically applies `f` to the value mapped to `key`, in place.
    pub fn compute_if_present(&self, key: &[u8], f: impl Fn(&mut OakWBuffer<'_>)) -> bool {
        self.shard_of(key).compute_if_present(key, f)
    }

    /// If `key` is absent, inserts `value`; otherwise atomically applies
    /// `f` to the present value in place. Returns `true` if this call
    /// inserted.
    pub fn put_if_absent_compute_if_present(
        &self,
        key: &[u8],
        value: &[u8],
        f: impl Fn(&mut OakWBuffer<'_>),
    ) -> Result<bool, OakError> {
        self.shard_of(key)
            .put_if_absent_compute_if_present(key, value, f)
    }

    /// Removes the mapping for `key`; returns whether this call removed
    /// it.
    pub fn remove(&self, key: &[u8]) -> bool {
        self.shard_of(key).remove(key)
    }

    // --- budgeted point operations (route to one shard) -------------------
    //
    // Budgets are per *operation*, not per shard: routing is a pure
    // in-memory hash/partition step, so the full deadline reaches the one
    // shard that executes the call.

    /// Budgeted zero-copy get (see [`OakMap::get_with_budgeted`]).
    pub fn get_with_budgeted<R>(
        &self,
        key: &[u8],
        budget: &OpBudget,
        f: impl FnOnce(&[u8]) -> R,
    ) -> Result<Option<R>, OakError> {
        self.shard_of(key).get_with_budgeted(key, budget, f)
    }

    /// Budgeted insert-or-replace (see [`OakMap::put_budgeted`]).
    pub fn put_budgeted(
        &self,
        key: &[u8],
        value: &[u8],
        budget: &OpBudget,
    ) -> Result<(), OakError> {
        self.shard_of(key).put_budgeted(key, value, budget)
    }

    /// Budgeted insert-if-absent (see [`OakMap::put_if_absent_budgeted`]).
    pub fn put_if_absent_budgeted(
        &self,
        key: &[u8],
        value: &[u8],
        budget: &OpBudget,
    ) -> Result<bool, OakError> {
        self.shard_of(key)
            .put_if_absent_budgeted(key, value, budget)
    }

    /// Budgeted in-place update (see
    /// [`OakMap::compute_if_present_budgeted`]).
    pub fn compute_if_present_budgeted(
        &self,
        key: &[u8],
        budget: &OpBudget,
        f: impl Fn(&mut OakWBuffer<'_>),
    ) -> Result<bool, OakError> {
        self.shard_of(key)
            .compute_if_present_budgeted(key, budget, f)
    }

    /// Budgeted remove (see [`OakMap::remove_budgeted`]).
    pub fn remove_budgeted(&self, key: &[u8], budget: &OpBudget) -> Result<bool, OakError> {
        self.shard_of(key).remove_budgeted(key, budget)
    }

    /// The worst (most degraded) overload verdict across shards. With a
    /// shared reservoir every controller samples the same pool, so shards
    /// normally agree; with private pools a single hot shard is enough to
    /// degrade the map-wide verdict — back off before that shard starts
    /// rejecting.
    pub fn overload_state(&self) -> OverloadState {
        self.shards
            .iter()
            .map(|s| s.0.overload_state())
            .max()
            .unwrap_or(OverloadState::Healthy)
    }

    // --- merged scans -----------------------------------------------------

    /// Ascending zero-copy scan over `[lo, hi)` across all shards, in
    /// global comparator order (k-way merge of the per-shard chunk
    /// iterators). Returns entries visited; stops early when `f` returns
    /// `false`.
    pub fn for_each_in(
        &self,
        lo: Option<&[u8]>,
        hi: Option<&[u8]>,
        mut f: impl FnMut(&[u8], &[u8]) -> bool,
    ) -> usize {
        let mut iters: Vec<_> = self.shards.iter().map(|s| s.0.iter_range(lo, hi)).collect();
        // Zero-copy merge heads: each head keeps the raw key reference its
        // shard cursor yielded (valid under that cursor's epoch pin, held
        // by `iters` for the whole merge) — no per-entry key buffer is
        // materialized.
        let mut heads: Vec<Option<(SliceRef, HeaderRef)>> =
            iters.iter_mut().map(|it| it.next_raw()).collect();
        let mut count = 0;
        loop {
            // Argmin over shard heads: keys are unique across shards
            // (routing is deterministic), so no tie-breaking is needed.
            let Some(best) = self.pick(&heads, std::cmp::Ordering::Less) else {
                return count;
            };
            let (kref, h) = heads[best].take().expect("picked head is live");
            // SAFETY: key buffers are immutable; `kref` is pinned by the
            // shard cursor in `iters[best]`, which outlives this use.
            let kb = unsafe { self.shards[best].0.pool().slice(kref) };
            // An Err means the entry was deleted under the scan: skip it
            // without counting.
            if let Ok(keep) = self.shards[best].0.value_store().read(h, |v| f(kb, v)) {
                count += 1;
                if !keep {
                    return count;
                }
            }
            heads[best] = iters[best].next_raw();
        }
    }

    /// Budgeted ascending merged scan: like
    /// [`for_each_in`](ShardedOakMap::for_each_in) but cooperative — the
    /// deadline is checked periodically, per-shard header-lock waits are
    /// clamped by it, and when any shard's controller reports degradation
    /// the scan is shed after the configured entry limit. Returns entries
    /// visited or the typed budget error; entries already handed to `f`
    /// stay handed (shedding truncates, never rolls back).
    pub fn for_each_in_budgeted(
        &self,
        lo: Option<&[u8]>,
        hi: Option<&[u8]>,
        budget: &OpBudget,
        mut f: impl FnMut(&[u8], &[u8]) -> bool,
    ) -> Result<u64, OakError> {
        const SCAN_CHECK_INTERVAL: u64 = 64;
        budget.check(self.shards[0].0.pool())?;
        let shed_after = match self.overload_state() {
            OverloadState::Healthy => u64::MAX,
            OverloadState::Degraded | OverloadState::Critical => {
                let limit = self.shards[0].0.overload.config().degraded_scan_limit;
                if limit == 0 {
                    u64::MAX
                } else {
                    limit
                }
            }
        };
        let mut iters: Vec<_> = self.shards.iter().map(|s| s.0.iter_range(lo, hi)).collect();
        let mut heads: Vec<Option<(SliceRef, HeaderRef)>> =
            iters.iter_mut().map(|it| it.next_raw()).collect();
        let mut count: u64 = 0;
        loop {
            let Some(best) = self.pick(&heads, std::cmp::Ordering::Less) else {
                return Ok(count);
            };
            if count >= shed_after {
                self.shards[best].0.pool().note_scan_shed();
                return Err(OakError::Overloaded);
            }
            if count > 0 && count.is_multiple_of(SCAN_CHECK_INTERVAL) && budget.expired() {
                self.shards[best].0.pool().note_deadline_exceeded();
                return Err(OakError::DeadlineExceeded);
            }
            let (kref, h) = heads[best].take().expect("picked head is live");
            // SAFETY: key buffers are immutable; `kref` is pinned by the
            // shard cursor in `iters[best]`, which outlives this use.
            let kb = unsafe { self.shards[best].0.pool().slice(kref) };
            match self.shards[best]
                .0
                .value_store()
                .read_at(h, budget.deadline, |v| f(kb, v))
            {
                Ok(keep) => {
                    count += 1;
                    if !keep {
                        return Ok(count);
                    }
                }
                Err(oak_mempool::AccessError::Deleted) => {} // skip
                Err(oak_mempool::AccessError::Contended(info)) => {
                    if budget.expired() {
                        self.shards[best].0.pool().note_deadline_exceeded();
                        return Err(OakError::DeadlineExceeded);
                    }
                    return Err(OakError::Contended(info));
                }
            }
            heads[best] = iters[best].next_raw();
        }
    }

    /// Descending zero-copy scan from `from` (inclusive; `None` = from
    /// the global last key) down to `lo` (inclusive), in global
    /// comparator order across shards. Returns entries visited.
    pub fn for_each_descending(
        &self,
        from: Option<&[u8]>,
        lo: Option<&[u8]>,
        mut f: impl FnMut(&[u8], &[u8]) -> bool,
    ) -> usize {
        let mut iters: Vec<_> = self
            .shards
            .iter()
            .map(|s| s.0.iter_descending(from, lo))
            .collect();
        let mut heads: Vec<Option<(SliceRef, HeaderRef)>> =
            iters.iter_mut().map(|it| it.next_raw()).collect();
        let mut count = 0;
        loop {
            let Some(best) = self.pick(&heads, std::cmp::Ordering::Greater) else {
                return count;
            };
            let (kref, h) = heads[best].take().expect("picked head is live");
            // SAFETY: key buffers are immutable; `kref` is pinned by the
            // shard cursor in `iters[best]`, which outlives this use.
            let kb = unsafe { self.shards[best].0.pool().slice(kref) };
            if let Ok(keep) = self.shards[best].0.value_store().read(h, |v| f(kb, v)) {
                count += 1;
                if !keep {
                    return count;
                }
            }
            heads[best] = iters[best].next_raw();
        }
    }

    /// Index of the head whose key wins under `want` (Less = argmin for
    /// ascending, Greater = argmax for descending); `None` when all
    /// iterators are drained. Heads are raw key references into their
    /// shard's pool (kept valid by the shard cursors' epoch pins);
    /// comparing derefs the off-heap bytes in place — no copies.
    fn pick(
        &self,
        heads: &[Option<(SliceRef, HeaderRef)>],
        want: std::cmp::Ordering,
    ) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, head) in heads.iter().enumerate() {
            let Some((kref, _)) = head else { continue };
            match best {
                None => best = Some(i),
                Some(b) => {
                    let bref = heads[b].as_ref().expect("best head is live").0;
                    // SAFETY: key buffers are immutable; both refs are
                    // pinned by their live shard cursors.
                    let kb = unsafe { self.shards[i].0.pool().slice(*kref) };
                    let bk = unsafe { self.shards[b].0.pool().slice(bref) };
                    if self.cmp.compare(kb, bk) == want {
                        best = Some(i);
                    }
                }
            }
        }
        best
    }

    // --- aggregate queries ------------------------------------------------

    /// Total live key-value pairs across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.0.len()).sum()
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.0.is_empty())
    }

    /// Aggregated statistics: field-wise sum over shards (shards draw
    /// disjoint arenas, so pool footprints add exactly).
    pub fn stats(&self) -> OakStats {
        let mut it = self.shards.iter().map(|s| s.0.stats());
        let first = it.next().expect("at least one shard");
        it.fold(first, |acc, s| acc.merged(&s))
    }

    /// Per-shard statistics, in shard order.
    pub fn shard_stats(&self) -> Vec<OakStats> {
        self.shards.iter().map(|s| s.0.stats()).collect()
    }

    /// Drains every shard's dead-key quarantine as far as current readers
    /// allow; returns the total bytes released to the pools (test and
    /// memory-pressure tooling support).
    #[doc(hidden)]
    pub fn drain_quarantine(&self) -> u64 {
        self.shards.iter().map(|s| s.0.drain_quarantine()).sum()
    }

    /// Runs the quiescent memory audit on every shard, in shard order
    /// (see [`OakMap::audit`]; `audit` feature).
    #[cfg(feature = "audit")]
    pub fn audit(&self) -> Vec<crate::map::MapAuditReport> {
        self.shards.iter().map(|s| s.0.audit()).collect()
    }

    /// Validates every shard's chunk-list invariants (test support).
    ///
    /// # Panics
    ///
    /// If any shard's invariants are violated.
    pub fn validate(&self) {
        for s in &self.shards {
            s.0.validate();
        }
    }
}

impl<C: KeyComparator> std::fmt::Debug for ShardedOakMap<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedOakMap")
            .field("shards", &self.shards.len())
            .field("splitter", &self.splitter)
            .field("len", &self.len())
            .finish()
    }
}
