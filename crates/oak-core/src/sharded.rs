//! [`ShardedOakMap`]: N independent [`OakMap`] shards behind one ordered
//! map.
//!
//! The paper scales a single Oak instance by rebalancing chunks; real
//! deployments (e.g. Druid's incremental ingestion, §2.1) also shard at a
//! coarser grain so rebalance and GC contention stay local to a fraction
//! of the key space. `ShardedOakMap` provides that layer: point operations
//! route to one shard via a [`ShardSplitter`]; scans k-way–merge the
//! per-shard chunk iterators so global key order is preserved under either
//! splitter; statistics aggregate per shard and across the map.
//!
//! Memory: with [`OakMapConfig::shared_arenas`] set, every shard draws its
//! arenas from the same pre-allocated reservoir, so the global off-heap
//! budget is enforced by the reservoir no matter how writes skew. Without
//! it, each shard gets a private pool whose arena budget is the
//! configured `max_arenas` divided (rounded up) across shards, keeping the
//! aggregate ceiling comparable to an unsharded map.

use std::sync::Arc;

use oak_mempool::{ArenaPool, HeaderRef, SliceRef};

use crate::budget::OpBudget;
use crate::buffer::{OakRBuffer, OakWBuffer};
use crate::cmp::{KeyComparator, Lexicographic};
use crate::config::OakMapConfig;
use crate::error::OakError;
use crate::map::{OakMap, OakStats};
use crate::overload::OverloadState;

/// How keys are partitioned across shards.
#[derive(Debug, Clone)]
pub enum ShardSplitter {
    /// Route by a hash of the first `prefix_len` key bytes (the whole
    /// key when shorter). Spreads load uniformly; shards hold
    /// interleaved slices of the key space, so scans always merge.
    HashPrefix {
        /// Number of leading key bytes hashed for routing.
        prefix_len: usize,
    },
    /// Route by explicit range boundaries: `boundaries[i]` is the minimal
    /// key of shard `i + 1` (so `N` shards take `N - 1` strictly
    /// ascending boundaries). Keeps each shard a contiguous key range —
    /// scans touch only the shards a range overlaps (they still merge,
    /// but non-overlapping shards drain instantly).
    KeyRanges(Vec<Vec<u8>>),
}

impl ShardSplitter {
    /// The default routing: hash of the whole key.
    ///
    /// Earlier revisions hashed only the first 8 bytes; any key family
    /// sharing a fixed header — zero-padded decimal keys, a common table
    /// prefix — then collapsed onto a single shard, which silently turned
    /// the sharded map into one hot shard with 1/N of the arena budget.
    /// Use an explicit [`ShardSplitter::HashPrefix`] `prefix_len` only to
    /// deliberately colocate keys that share a routing prefix.
    pub fn hash_prefix() -> Self {
        ShardSplitter::HashPrefix {
            prefix_len: usize::MAX,
        }
    }
}

/// 64-bit finalizer (murmur-style xor-shift/multiply avalanche): spreads
/// every input bit over the whole word so the high bits are usable for a
/// multiply-shift range reduction.
#[inline]
fn fmix64(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h
}

/// 64-bit routing hash, folded 8 bytes at a time (rotate-xor-multiply, an
/// FxHash-style word mixer). Byte-at-a-time FNV-1a costs one multiply per
/// byte — ~10% of a whole point op on 100-byte keys once the router hashes
/// the full key — while this does one multiply per word. Word mixing is
/// weaker per step than FNV, so the caller must finalize with [`fmix64`];
/// the trailing length fold keeps a short key and its zero-padded
/// extension from colliding.
fn route_hash(bytes: &[u8]) -> u64 {
    const K: u64 = 0x517c_c1b7_2722_0a95;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut chunks = bytes.chunks_exact(8);
    for c in chunks.by_ref() {
        let w = u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
        h = (h.rotate_left(5) ^ w).wrapping_mul(K);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut buf = [0u8; 8];
        buf[..rem.len()].copy_from_slice(rem);
        h = (h.rotate_left(5) ^ u64::from_le_bytes(buf)).wrapping_mul(K);
    }
    h ^ bytes.len() as u64
}

/// One shard, padded to its own pair of cache lines. The shards sit in a
/// contiguous `Vec`, and each `OakMap` header carries hot atomics (length,
/// overload sampling state); without the padding, two shards can share a
/// line and read-only traffic on one shard pays for writes on its
/// neighbor (the ShardedOak 1→2-thread read regression).
#[repr(align(128))]
struct Shard<C: KeyComparator>(OakMap<C>);

/// A sharded front-end over `N` independent [`OakMap`]s.
///
/// Implements the same [`OrderedKvMap`](crate::OrderedKvMap) interface as
/// a single map: point operations are linearizable per key (they execute
/// on exactly one shard), and scans are non-atomic exactly as a single
/// map's are (§1.1), merging per-shard iterators in comparator order.
pub struct ShardedOakMap<C: KeyComparator = Lexicographic> {
    shards: Vec<Shard<C>>,
    splitter: ShardSplitter,
    cmp: C,
    /// The shared arena reservoir, when the shards draw from one.
    reservoir: Option<Arc<ArenaPool>>,
}

impl ShardedOakMap<Lexicographic> {
    /// Creates `shards` lexicographic shards with default configuration
    /// and hash-prefix routing.
    pub fn new(shards: usize) -> Self {
        Self::with_config(shards, OakMapConfig::default())
    }

    /// Creates `shards` lexicographic shards with hash-prefix routing.
    pub fn with_config(shards: usize, config: OakMapConfig) -> Self {
        Self::with_splitter(shards, ShardSplitter::hash_prefix(), config)
    }

    /// Creates `shards` lexicographic shards with an explicit splitter.
    pub fn with_splitter(shards: usize, splitter: ShardSplitter, config: OakMapConfig) -> Self {
        Self::with_comparator(shards, splitter, config, Lexicographic)
    }
}

impl Default for ShardedOakMap<Lexicographic> {
    /// Four default-configured shards with hash-prefix routing.
    fn default() -> Self {
        Self::new(4)
    }
}

impl<C: KeyComparator> ShardedOakMap<C> {
    /// Creates `shards` shards ordered by `cmp`.
    ///
    /// # Panics
    ///
    /// If `shards == 0`, or a [`ShardSplitter::KeyRanges`] splitter does
    /// not carry exactly `shards - 1` strictly ascending boundaries
    /// (under `cmp`).
    pub fn with_comparator(
        shards: usize,
        splitter: ShardSplitter,
        config: OakMapConfig,
        cmp: C,
    ) -> Self {
        assert!(shards >= 1, "a sharded map needs at least one shard");
        match &splitter {
            ShardSplitter::HashPrefix { prefix_len } => {
                assert!(*prefix_len >= 1, "hash prefix must cover at least one byte");
            }
            ShardSplitter::KeyRanges(bounds) => {
                assert_eq!(
                    bounds.len(),
                    shards - 1,
                    "{} shards need exactly {} range boundaries",
                    shards,
                    shards - 1
                );
                for w in bounds.windows(2) {
                    assert!(
                        cmp.compare(&w[0], &w[1]) == std::cmp::Ordering::Less,
                        "range boundaries must be strictly ascending"
                    );
                }
            }
        }
        let reservoir = config.shared_arenas.clone();
        let shard_config = match &reservoir {
            Some(_) => config,
            None => {
                // Private pools: split the arena budget so the aggregate
                // off-heap ceiling matches the unsharded configuration.
                // When the plain division would leave a shard fewer than
                // MIN_SHARD_ARENAS arenas, shrink the arena instead of
                // starving the shard of granularity: a single-arena shard
                // has no headroom for quarantine lag under put churn and
                // tips into OutOfMemory long before its byte budget is
                // actually exhausted.
                const MIN_SHARD_ARENAS: usize = 4;
                const MIN_ARENA: usize = 64 << 10;
                let mut c = config;
                let shard_budget = (c.pool.arena_size * c.pool.max_arenas) / shards;
                c.pool.max_arenas = c.pool.max_arenas.div_ceil(shards).max(1);
                if c.pool.max_arenas < MIN_SHARD_ARENAS && c.pool.arena_size > MIN_ARENA {
                    c.pool.arena_size = (shard_budget / MIN_SHARD_ARENAS).max(MIN_ARENA) & !7;
                    c.pool.max_arenas = (shard_budget / c.pool.arena_size).max(1);
                }
                c
            }
        };
        let maps = (0..shards)
            .map(|_| Shard(OakMap::with_comparator(shard_config.clone(), cmp.clone())))
            .collect();
        ShardedOakMap {
            shards: maps,
            splitter,
            cmp,
            reservoir,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The routing splitter.
    pub fn splitter(&self) -> &ShardSplitter {
        &self.splitter
    }

    /// The shared arena reservoir, when configured with one.
    pub fn reservoir(&self) -> Option<&Arc<ArenaPool>> {
        self.reservoir.as_ref()
    }

    /// Index of the shard responsible for `key`. The hash is computed
    /// exactly once per operation and the index passed through; the range
    /// reduction is a multiply-shift on the high hash bits instead of a
    /// 64-bit modulo (a ~20-cycle divide on the point-op fast path).
    #[inline]
    fn shard_index(&self, key: &[u8]) -> usize {
        match &self.splitter {
            ShardSplitter::HashPrefix { prefix_len } => {
                let p = &key[..key.len().min(*prefix_len)];
                // Fixed-point map of h/2^32 onto [0, shards): unbiased for
                // shard counts far below 2^32 and division-free (a 64-bit
                // modulo is a ~20-cycle divide on the point-op fast path).
                // The word mixer leaves trailing-input differences poorly
                // spread, so the hash runs through an avalanche step first
                // — a multiply-shift reduction is driven entirely by the
                // high bits.
                let h = fmix64(route_hash(p));
                (((h >> 32) * self.shards.len() as u64) >> 32) as usize
            }
            ShardSplitter::KeyRanges(bounds) => {
                bounds.partition_point(|b| self.cmp.compare(b, key) != std::cmp::Ordering::Greater)
            }
        }
    }

    /// The shard responsible for `key`.
    #[inline]
    fn shard_of(&self, key: &[u8]) -> &OakMap<C> {
        &self.shards[self.shard_index(key)].0
    }

    // --- point operations (route to one shard) ----------------------------

    /// Zero-copy get: applies `f` to the value bytes of `key`.
    pub fn get_with<R>(&self, key: &[u8], f: impl FnOnce(&[u8]) -> R) -> Option<R> {
        self.shard_of(key).get_with(key, f)
    }

    /// Zero-copy get returning an [`OakRBuffer`] view.
    pub fn get(&self, key: &[u8]) -> Option<OakRBuffer> {
        self.shard_of(key).get(key)
    }

    /// Copying get.
    pub fn get_copy(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.shard_of(key).get_copy(key)
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &[u8]) -> bool {
        self.shard_of(key).contains_key(key)
    }

    /// Inserts or replaces `key → value`.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<(), OakError> {
        self.shard_of(key).put(key, value)
    }

    /// Inserts `key → value` if absent; returns whether this call
    /// inserted.
    pub fn put_if_absent(&self, key: &[u8], value: &[u8]) -> Result<bool, OakError> {
        self.shard_of(key).put_if_absent(key, value)
    }

    /// Atomically applies `f` to the value mapped to `key`, in place.
    pub fn compute_if_present(&self, key: &[u8], f: impl Fn(&mut OakWBuffer<'_>)) -> bool {
        self.shard_of(key).compute_if_present(key, f)
    }

    /// If `key` is absent, inserts `value`; otherwise atomically applies
    /// `f` to the present value in place. Returns `true` if this call
    /// inserted.
    pub fn put_if_absent_compute_if_present(
        &self,
        key: &[u8],
        value: &[u8],
        f: impl Fn(&mut OakWBuffer<'_>),
    ) -> Result<bool, OakError> {
        self.shard_of(key)
            .put_if_absent_compute_if_present(key, value, f)
    }

    /// Removes the mapping for `key`; returns whether this call removed
    /// it.
    pub fn remove(&self, key: &[u8]) -> bool {
        self.shard_of(key).remove(key)
    }

    // --- budgeted point operations (route to one shard) -------------------
    //
    // Budgets are per *operation*, not per shard: routing is a pure
    // in-memory hash/partition step, so the full deadline reaches the one
    // shard that executes the call.

    /// Budgeted zero-copy get (see [`OakMap::get_with_budgeted`]).
    pub fn get_with_budgeted<R>(
        &self,
        key: &[u8],
        budget: &OpBudget,
        f: impl FnOnce(&[u8]) -> R,
    ) -> Result<Option<R>, OakError> {
        self.shard_of(key).get_with_budgeted(key, budget, f)
    }

    /// Budgeted insert-or-replace (see [`OakMap::put_budgeted`]).
    pub fn put_budgeted(
        &self,
        key: &[u8],
        value: &[u8],
        budget: &OpBudget,
    ) -> Result<(), OakError> {
        self.shard_of(key).put_budgeted(key, value, budget)
    }

    /// Budgeted insert-if-absent (see [`OakMap::put_if_absent_budgeted`]).
    pub fn put_if_absent_budgeted(
        &self,
        key: &[u8],
        value: &[u8],
        budget: &OpBudget,
    ) -> Result<bool, OakError> {
        self.shard_of(key)
            .put_if_absent_budgeted(key, value, budget)
    }

    /// Budgeted in-place update (see
    /// [`OakMap::compute_if_present_budgeted`]).
    pub fn compute_if_present_budgeted(
        &self,
        key: &[u8],
        budget: &OpBudget,
        f: impl Fn(&mut OakWBuffer<'_>),
    ) -> Result<bool, OakError> {
        self.shard_of(key)
            .compute_if_present_budgeted(key, budget, f)
    }

    /// Budgeted remove (see [`OakMap::remove_budgeted`]).
    pub fn remove_budgeted(&self, key: &[u8], budget: &OpBudget) -> Result<bool, OakError> {
        self.shard_of(key).remove_budgeted(key, budget)
    }

    /// The worst (most degraded) overload verdict across shards. With a
    /// shared reservoir every controller samples the same pool, so shards
    /// normally agree; with private pools a single hot shard is enough to
    /// degrade the map-wide verdict — back off before that shard starts
    /// rejecting.
    pub fn overload_state(&self) -> OverloadState {
        self.shards
            .iter()
            .map(|s| s.0.overload_state())
            .max()
            .unwrap_or(OverloadState::Healthy)
    }

    // --- merged scans -----------------------------------------------------

    /// Ascending zero-copy scan over `[lo, hi)` across all shards, in
    /// global comparator order (k-way merge of the per-shard chunk
    /// iterators). Returns entries visited; stops early when `f` returns
    /// `false`.
    pub fn for_each_in(
        &self,
        lo: Option<&[u8]>,
        hi: Option<&[u8]>,
        mut f: impl FnMut(&[u8], &[u8]) -> bool,
    ) -> usize {
        let mut iters: Vec<_> = self.shards.iter().map(|s| s.0.iter_range(lo, hi)).collect();
        // Zero-copy merge heads, allocated once per scan and refilled in
        // place. Each head caches the *dereferenced* key bytes of the
        // entry its shard cursor yielded (valid under that cursor's epoch
        // pin, held by `iters` for the whole merge), so the argmin pass
        // compares cached slices instead of resolving off-heap references
        // twice per comparison — no per-entry key buffer is materialized.
        let mut heads: Vec<Option<(&[u8], HeaderRef)>> = iters
            .iter_mut()
            .enumerate()
            .map(|(i, it)| self.fill_head(i, it.next_raw()))
            .collect();
        let mut count = 0;
        loop {
            // Argmin over shard heads: keys are unique across shards
            // (routing is deterministic), so no tie-breaking is needed.
            let Some(best) = Self::pick(&self.cmp, &heads, std::cmp::Ordering::Less) else {
                return count;
            };
            let (kb, h) = heads[best].take().expect("picked head is live");
            // An Err means the entry was deleted under the scan: skip it
            // without counting.
            if let Ok(keep) = self.shards[best].0.value_store().read(h, |v| f(kb, v)) {
                count += 1;
                if !keep {
                    return count;
                }
            }
            heads[best] = self.fill_head(best, iters[best].next_raw());
        }
    }

    /// Budgeted ascending merged scan: like
    /// [`for_each_in`](ShardedOakMap::for_each_in) but cooperative — the
    /// deadline is checked periodically, per-shard header-lock waits are
    /// clamped by it, and when any shard's controller reports degradation
    /// the scan is shed after the configured entry limit. Returns entries
    /// visited or the typed budget error; entries already handed to `f`
    /// stay handed (shedding truncates, never rolls back).
    pub fn for_each_in_budgeted(
        &self,
        lo: Option<&[u8]>,
        hi: Option<&[u8]>,
        budget: &OpBudget,
        mut f: impl FnMut(&[u8], &[u8]) -> bool,
    ) -> Result<u64, OakError> {
        const SCAN_CHECK_INTERVAL: u64 = 64;
        budget.check(self.shards[0].0.pool())?;
        // The shed limit needs the worst overload verdict across shards —
        // an all-shard sampling walk. With the controller disabled (the
        // default) the verdict is always `Healthy`; skip the walk entirely
        // rather than paying N shard probes of fixed setup per scan.
        let shed_after = if !self.shards[0].0.overload.enabled() {
            u64::MAX
        } else {
            match self.overload_state() {
                OverloadState::Healthy => u64::MAX,
                OverloadState::Degraded | OverloadState::Critical => {
                    let limit = self.shards[0].0.overload.config().degraded_scan_limit;
                    if limit == 0 {
                        u64::MAX
                    } else {
                        limit
                    }
                }
            }
        };
        let mut iters: Vec<_> = self.shards.iter().map(|s| s.0.iter_range(lo, hi)).collect();
        let mut heads: Vec<Option<(&[u8], HeaderRef)>> = iters
            .iter_mut()
            .enumerate()
            .map(|(i, it)| self.fill_head(i, it.next_raw()))
            .collect();
        let mut count: u64 = 0;
        loop {
            let Some(best) = Self::pick(&self.cmp, &heads, std::cmp::Ordering::Less) else {
                return Ok(count);
            };
            if count >= shed_after {
                self.shards[best].0.pool().note_scan_shed();
                return Err(OakError::Overloaded);
            }
            if count > 0 && count.is_multiple_of(SCAN_CHECK_INTERVAL) && budget.expired() {
                self.shards[best].0.pool().note_deadline_exceeded();
                return Err(OakError::DeadlineExceeded);
            }
            let (kb, h) = heads[best].take().expect("picked head is live");
            match self.shards[best]
                .0
                .value_store()
                .read_at(h, budget.deadline, |v| f(kb, v))
            {
                Ok(keep) => {
                    count += 1;
                    if !keep {
                        return Ok(count);
                    }
                }
                Err(oak_mempool::AccessError::Deleted) => {} // skip
                Err(oak_mempool::AccessError::Contended(info)) => {
                    if budget.expired() {
                        self.shards[best].0.pool().note_deadline_exceeded();
                        return Err(OakError::DeadlineExceeded);
                    }
                    return Err(OakError::Contended(info));
                }
            }
            heads[best] = self.fill_head(best, iters[best].next_raw());
        }
    }

    /// Descending zero-copy scan from `from` (inclusive; `None` = from
    /// the global last key) down to `lo` (inclusive), in global
    /// comparator order across shards. Returns entries visited.
    pub fn for_each_descending(
        &self,
        from: Option<&[u8]>,
        lo: Option<&[u8]>,
        mut f: impl FnMut(&[u8], &[u8]) -> bool,
    ) -> usize {
        let mut iters: Vec<_> = self
            .shards
            .iter()
            .map(|s| s.0.iter_descending(from, lo))
            .collect();
        let mut heads: Vec<Option<(&[u8], HeaderRef)>> = iters
            .iter_mut()
            .enumerate()
            .map(|(i, it)| self.fill_head(i, it.next_raw()))
            .collect();
        let mut count = 0;
        loop {
            let Some(best) = Self::pick(&self.cmp, &heads, std::cmp::Ordering::Greater) else {
                return count;
            };
            let (kb, h) = heads[best].take().expect("picked head is live");
            if let Ok(keep) = self.shards[best].0.value_store().read(h, |v| f(kb, v)) {
                count += 1;
                if !keep {
                    return count;
                }
            }
            heads[best] = self.fill_head(best, iters[best].next_raw());
        }
    }

    /// Resolves a raw merge head to its dereferenced key bytes once, at
    /// refill time. The returned slice lives as long as `self`.
    ///
    /// # Safety invariant (caller-maintained)
    ///
    /// The cursor that yielded `raw` must stay alive (holding its epoch
    /// pin) until the head is consumed or dropped — exactly the discipline
    /// the merge loops follow by keeping `iters` for the whole scan. Key
    /// buffers are immutable, so the cached slice never goes stale while
    /// pinned.
    #[inline]
    fn fill_head(
        &self,
        shard: usize,
        raw: Option<(SliceRef, HeaderRef)>,
    ) -> Option<(&[u8], HeaderRef)> {
        raw.map(|(kref, h)| {
            // SAFETY: see above — `kref` is pinned by its live shard
            // cursor and key bytes are immutable once published.
            (unsafe { self.shards[shard].0.pool().slice(kref) }, h)
        })
    }

    /// Index of the head whose key wins under `want` (Less = argmin for
    /// ascending, Greater = argmax for descending); `None` when all
    /// iterators are drained. Heads carry their key bytes pre-resolved by
    /// [`fill_head`](Self::fill_head), so one merge step costs k−1 slice
    /// comparisons and zero off-heap reference resolutions (the old shape
    /// re-resolved both candidates on every comparison).
    fn pick(
        cmp: &C,
        heads: &[Option<(&[u8], HeaderRef)>],
        want: std::cmp::Ordering,
    ) -> Option<usize> {
        let mut best: Option<(usize, &[u8])> = None;
        for (i, head) in heads.iter().enumerate() {
            let Some((kb, _)) = head else { continue };
            match best {
                None => best = Some((i, kb)),
                Some((_, bk)) => {
                    if cmp.compare(kb, bk) == want {
                        best = Some((i, kb));
                    }
                }
            }
        }
        best.map(|(i, _)| i)
    }

    // --- aggregate queries ------------------------------------------------

    /// Total live key-value pairs across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.0.len()).sum()
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.0.is_empty())
    }

    /// Aggregated statistics: field-wise sum over shards (shards draw
    /// disjoint arenas, so pool footprints add exactly).
    pub fn stats(&self) -> OakStats {
        let mut it = self.shards.iter().map(|s| s.0.stats());
        let first = it.next().expect("at least one shard");
        it.fold(first, |acc, s| acc.merged(&s))
    }

    /// Per-shard statistics, in shard order.
    pub fn shard_stats(&self) -> Vec<OakStats> {
        self.shards.iter().map(|s| s.0.stats()).collect()
    }

    /// Drains every shard's dead-key quarantine as far as current readers
    /// allow; returns the total bytes released to the pools (test and
    /// memory-pressure tooling support).
    #[doc(hidden)]
    pub fn drain_quarantine(&self) -> u64 {
        self.shards.iter().map(|s| s.0.drain_quarantine()).sum()
    }

    /// Runs the quiescent memory audit on every shard, in shard order
    /// (see [`OakMap::audit`]; `audit` feature).
    #[cfg(feature = "audit")]
    pub fn audit(&self) -> Vec<crate::map::MapAuditReport> {
        self.shards.iter().map(|s| s.0.audit()).collect()
    }

    /// Validates every shard's chunk-list invariants (test support).
    ///
    /// # Panics
    ///
    /// If any shard's invariants are violated.
    pub fn validate(&self) {
        for s in &self.shards {
            s.0.validate();
        }
    }
}

impl<C: KeyComparator> std::fmt::Debug for ShardedOakMap<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedOakMap")
            .field("shards", &self.shards.len())
            .field("splitter", &self.splitter)
            .field("len", &self.len())
            .finish()
    }
}
