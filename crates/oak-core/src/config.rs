//! Map configuration.

use std::sync::Arc;
use std::time::Duration;

use oak_mempool::{ArenaPool, PoolConfig, ReclamationPolicy, DEFAULT_LOCK_WAIT};

use crate::budget::RetryPolicy;
use crate::overload::OverloadConfig;

/// Configuration for an [`OakMap`](crate::OakMap).
///
/// Defaults follow the paper's evaluation setup (§5.1): 4096 entries per
/// chunk, rebalance when the unsorted suffix exceeds half the sorted
/// prefix, 100 MB arenas.
#[derive(Debug, Clone)]
pub struct OakMapConfig {
    /// Entries per chunk.
    pub chunk_capacity: u32,
    /// Rebalance when `unsorted > sorted × ratio` (paper: 0.5).
    pub rebalance_unsorted_ratio: f64,
    /// Merge a chunk into its successor when its live entries fall below
    /// `chunk_capacity × merge_ratio`.
    pub merge_ratio: f64,
    /// Off-heap pool configuration.
    pub pool: PoolConfig,
    /// Shared pre-allocated arena reservoir (§3.2): when set, this map
    /// draws its arenas from the reservoir and returns them on drop,
    /// supporting fleets of short-lived instances (e.g. Druid I²) with no
    /// allocator traffic. `pool.arena_size` is ignored in favour of the
    /// reservoir's.
    pub shared_arenas: Option<Arc<ArenaPool>>,
    /// Value-header reclamation: the paper's default retains headers
    /// forever; [`ReclamationPolicy::ReclaimHeaders`] recycles them through
    /// generation-checked references (§3.3's epoch-based extension).
    pub reclamation: ReclamationPolicy,
    /// Cache an order-preserving 64-bit key prefix on-heap in each entry
    /// and compare prefixes before dereferencing off-heap key bytes
    /// (search touches the pool only on prefix ties). Disabling stores a
    /// `0` ("no information") prefix everywhere, making every comparison
    /// a full off-heap compare — the pre-cache behaviour, kept for A/B
    /// benchmarking. Comparators without an order-preserving prefix
    /// ([`KeyComparator::prefix`](crate::KeyComparator::prefix) returning
    /// `None`) get full compares regardless of this flag.
    pub prefix_cache: bool,
    /// Scan in chunk-resident batches: cursors snapshot a chunk's sorted
    /// live entries in one pass (one staleness/revision check per *chunk*)
    /// and drain from a reusable on-heap buffer. Disabling falls back to
    /// per-entry stepping — one staleness check and one linked-list hop
    /// per yielded entry — kept for A/B benchmarking and as the
    /// fine-grained interleaving surface the linearize harness drives.
    /// Both modes honour the same §1.1 scan-validity contract.
    pub batch_scan: bool,
    /// Default deadline applied to every operation issued through the
    /// unbudgeted public API (`put`, `get`, scans, …). `None` (the
    /// default) preserves the historical contract: operations run to
    /// completion however long that takes. The `*_budgeted` API variants
    /// override this per call.
    pub op_deadline: Option<Duration>,
    /// Retry/backoff discipline for transient failures (header-lock
    /// contention, injected faults) inside budgeted operations. The
    /// default is the legacy discipline: unlimited immediate retries on
    /// contention, injected faults surfaced.
    pub retry: RetryPolicy,
    /// Bounded wall-clock budget for a single value-header lock
    /// acquisition before the map gives up with
    /// [`OakError::Contended`](crate::OakError). Clamped further by the
    /// active operation deadline.
    pub lock_wait: Duration,
    /// Degraded-mode controller thresholds; disabled by default.
    pub overload: OverloadConfig,
}

impl Default for OakMapConfig {
    fn default() -> Self {
        OakMapConfig {
            chunk_capacity: 4096,
            rebalance_unsorted_ratio: 0.5,
            merge_ratio: 0.125,
            pool: PoolConfig::default(),
            shared_arenas: None,
            reclamation: ReclamationPolicy::RetainHeaders,
            prefix_cache: true,
            batch_scan: true,
            op_deadline: None,
            retry: RetryPolicy::default(),
            lock_wait: DEFAULT_LOCK_WAIT,
            overload: OverloadConfig::default(),
        }
    }
}

impl OakMapConfig {
    /// Small chunks and arenas: convenient for tests (forces frequent
    /// rebalancing with little data).
    pub fn small() -> Self {
        OakMapConfig {
            chunk_capacity: 64,
            pool: PoolConfig::small(),
            ..OakMapConfig::default()
        }
    }

    /// Draws arenas from a shared pre-allocated reservoir.
    pub fn shared_arenas(mut self, shared: Arc<ArenaPool>) -> Self {
        self.shared_arenas = Some(shared);
        self
    }

    /// Selects the header-reclamation policy.
    pub fn reclamation(mut self, policy: ReclamationPolicy) -> Self {
        self.reclamation = policy;
        self
    }

    /// Sets the chunk capacity (entries per chunk).
    pub fn chunk_capacity(mut self, cap: u32) -> Self {
        assert!(cap >= 4, "chunks need at least 4 entries");
        self.chunk_capacity = cap;
        self
    }

    /// Sets the pool configuration.
    pub fn pool(mut self, pool: PoolConfig) -> Self {
        self.pool = pool;
        self
    }

    /// Enables or disables the on-heap key-prefix cache.
    pub fn prefix_cache(mut self, on: bool) -> Self {
        self.prefix_cache = on;
        self
    }

    /// Enables or disables chunk-batch scanning (per-entry stepping when
    /// off).
    pub fn batch_scan(mut self, on: bool) -> Self {
        self.batch_scan = on;
        self
    }

    /// Default per-operation deadline for the unbudgeted public API.
    pub fn op_deadline(mut self, deadline: Option<Duration>) -> Self {
        self.op_deadline = deadline;
        self
    }

    /// Retry/backoff policy for transient failures inside operations.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Bounded wall-clock budget for one value-header lock acquisition.
    pub fn lock_wait(mut self, max_wait: Duration) -> Self {
        self.lock_wait = max_wait;
        self
    }

    /// Degraded-mode controller configuration.
    pub fn overload(mut self, overload: OverloadConfig) -> Self {
        self.overload = overload;
        self
    }

    /// Stable 64-bit fingerprint of the *image-affecting* configuration.
    ///
    /// A durable checkpoint stores this value in its manifest; `open`
    /// refuses images whose fingerprint disagrees with the opening map's
    /// (surfacing [`CorruptionKind::ConfigMismatch`](crate::CorruptionKind)).
    /// Only fields that change how recovered bytes are interpreted
    /// participate — tuning knobs (deadlines, overload thresholds,
    /// magazine/lock-free toggles, arena sizing) deliberately do not, so an
    /// image checkpointed on one machine opens under different resource
    /// limits on another.
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a over a fixed field encoding; stable across processes and
        // platforms (unlike `DefaultHasher`, which is randomly seeded).
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        // Format version for the fingerprint itself: bump if the encoding
        // below ever changes meaning.
        eat(&1u32.to_le_bytes());
        eat(&self.chunk_capacity.to_le_bytes());
        eat(&[u8::from(self.prefix_cache)]);
        eat(&[match self.reclamation {
            ReclamationPolicy::RetainHeaders => 0u8,
            ReclamationPolicy::ReclaimHeaders => 1u8,
        }]);
        h
    }
}
