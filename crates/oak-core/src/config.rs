//! Map configuration.

use std::sync::Arc;

use oak_mempool::{ArenaPool, PoolConfig, ReclamationPolicy};

/// Configuration for an [`OakMap`](crate::OakMap).
///
/// Defaults follow the paper's evaluation setup (§5.1): 4096 entries per
/// chunk, rebalance when the unsorted suffix exceeds half the sorted
/// prefix, 100 MB arenas.
#[derive(Debug, Clone)]
pub struct OakMapConfig {
    /// Entries per chunk.
    pub chunk_capacity: u32,
    /// Rebalance when `unsorted > sorted × ratio` (paper: 0.5).
    pub rebalance_unsorted_ratio: f64,
    /// Merge a chunk into its successor when its live entries fall below
    /// `chunk_capacity × merge_ratio`.
    pub merge_ratio: f64,
    /// Off-heap pool configuration.
    pub pool: PoolConfig,
    /// Shared pre-allocated arena reservoir (§3.2): when set, this map
    /// draws its arenas from the reservoir and returns them on drop,
    /// supporting fleets of short-lived instances (e.g. Druid I²) with no
    /// allocator traffic. `pool.arena_size` is ignored in favour of the
    /// reservoir's.
    pub shared_arenas: Option<Arc<ArenaPool>>,
    /// Value-header reclamation: the paper's default retains headers
    /// forever; [`ReclamationPolicy::ReclaimHeaders`] recycles them through
    /// generation-checked references (§3.3's epoch-based extension).
    pub reclamation: ReclamationPolicy,
    /// Cache an order-preserving 64-bit key prefix on-heap in each entry
    /// and compare prefixes before dereferencing off-heap key bytes
    /// (search touches the pool only on prefix ties). Disabling stores a
    /// `0` ("no information") prefix everywhere, making every comparison
    /// a full off-heap compare — the pre-cache behaviour, kept for A/B
    /// benchmarking. Comparators without an order-preserving prefix
    /// ([`KeyComparator::prefix`](crate::KeyComparator::prefix) returning
    /// `None`) get full compares regardless of this flag.
    pub prefix_cache: bool,
}

impl Default for OakMapConfig {
    fn default() -> Self {
        OakMapConfig {
            chunk_capacity: 4096,
            rebalance_unsorted_ratio: 0.5,
            merge_ratio: 0.125,
            pool: PoolConfig::default(),
            shared_arenas: None,
            reclamation: ReclamationPolicy::RetainHeaders,
            prefix_cache: true,
        }
    }
}

impl OakMapConfig {
    /// Small chunks and arenas: convenient for tests (forces frequent
    /// rebalancing with little data).
    pub fn small() -> Self {
        OakMapConfig {
            chunk_capacity: 64,
            rebalance_unsorted_ratio: 0.5,
            merge_ratio: 0.125,
            pool: PoolConfig::small(),
            shared_arenas: None,
            reclamation: ReclamationPolicy::RetainHeaders,
            prefix_cache: true,
        }
    }

    /// Draws arenas from a shared pre-allocated reservoir.
    pub fn shared_arenas(mut self, shared: Arc<ArenaPool>) -> Self {
        self.shared_arenas = Some(shared);
        self
    }

    /// Selects the header-reclamation policy.
    pub fn reclamation(mut self, policy: ReclamationPolicy) -> Self {
        self.reclamation = policy;
        self
    }

    /// Sets the chunk capacity (entries per chunk).
    pub fn chunk_capacity(mut self, cap: u32) -> Self {
        assert!(cap >= 4, "chunks need at least 4 entries");
        self.chunk_capacity = cap;
        self
    }

    /// Sets the pool configuration.
    pub fn pool(mut self, pool: PoolConfig) -> Self {
        self.pool = pool;
        self
    }

    /// Enables or disables the on-heap key-prefix cache.
    pub fn prefix_cache(mut self, on: bool) -> Self {
        self.prefix_cache = on;
        self
    }
}
