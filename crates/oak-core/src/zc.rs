//! The zero-copy API view (Table 1's `ZeroCopyConcurrentNavigableMap`).
//!
//! Obtained via [`OakMap::zc`]; mirrors the paper's method set. Queries
//! return [`OakRBuffer`] views instead of objects; updates do not return
//! old values (avoiding copies); `compute_if_present` and
//! `put_if_absent_compute_if_present` update atomically in place.

use crate::buffer::{OakRBuffer, OakWBuffer};
use crate::cmp::KeyComparator;
use crate::error::OakError;
use crate::iter::{DescendIter, EntryIter};
use crate::map::OakMap;

/// Borrowed zero-copy facade over an [`OakMap`].
pub struct ZeroCopyView<'a, C: KeyComparator> {
    map: &'a OakMap<C>,
}

impl<'a, C: KeyComparator> ZeroCopyView<'a, C> {
    pub(crate) fn new(map: &'a OakMap<C>) -> Self {
        ZeroCopyView { map }
    }

    /// `OakRBuffer get(K)` — a view, not a copy.
    pub fn get(&self, key: &[u8]) -> Option<OakRBuffer> {
        self.map.get(key)
    }

    /// `void put(K, V)` — does not return the old value.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<(), OakError> {
        self.map.put(key, value)
    }

    /// `void remove(K)`.
    pub fn remove(&self, key: &[u8]) {
        self.map.remove(key);
    }

    /// `boolean putIfAbsent(K, V)`.
    pub fn put_if_absent(&self, key: &[u8], value: &[u8]) -> Result<bool, OakError> {
        self.map.put_if_absent(key, value)
    }

    /// `boolean computeIfPresent(K, Function(OakWBuffer))` — atomic, unlike
    /// the legacy map's.
    pub fn compute_if_present(&self, key: &[u8], f: impl Fn(&mut OakWBuffer<'_>)) -> bool {
        self.map.compute_if_present(key, f)
    }

    /// `boolean putIfAbsentComputeIfPresent(K, V, Function(OakWBuffer))`.
    pub fn put_if_absent_compute_if_present(
        &self,
        key: &[u8],
        value: &[u8],
        f: impl Fn(&mut OakWBuffer<'_>),
    ) -> Result<bool, OakError> {
        self.map.put_if_absent_compute_if_present(key, value, f)
    }

    /// `entrySet()` over `[lo, hi)` — one ephemeral buffer pair per entry.
    pub fn entry_set(&self, lo: Option<&[u8]>, hi: Option<&[u8]>) -> EntryIter<'a, C> {
        self.map.iter_range(lo, hi)
    }

    /// `entryStreamSet()` — the object-reusing stream scan: `f` borrows the
    /// key and value bytes with no per-entry allocation.
    pub fn entry_stream_set(
        &self,
        lo: Option<&[u8]>,
        hi: Option<&[u8]>,
        f: impl FnMut(&[u8], &[u8]) -> bool,
    ) -> usize {
        self.map.for_each_in(lo, hi, f)
    }

    /// `descendingMap().entrySet()` from `from` down to `lo` (both
    /// inclusive; `None` = unbounded).
    pub fn descending_entry_set(
        &self,
        from: Option<&[u8]>,
        lo: Option<&[u8]>,
    ) -> DescendIter<'a, C> {
        self.map.iter_descending(from, lo)
    }

    /// Descending stream scan.
    pub fn descending_entry_stream_set(
        &self,
        from: Option<&[u8]>,
        lo: Option<&[u8]>,
        f: impl FnMut(&[u8], &[u8]) -> bool,
    ) -> usize {
        self.map.for_each_descending(from, lo, f)
    }

    /// `keySet()`: ascending key buffers.
    pub fn key_set(
        &self,
        lo: Option<&[u8]>,
        hi: Option<&[u8]>,
    ) -> impl Iterator<Item = OakRBuffer> + use<'a, C> {
        self.map.iter_range(lo, hi).map(|(k, _)| k)
    }

    /// `valueSet()`: ascending value buffers.
    pub fn value_set(
        &self,
        lo: Option<&[u8]>,
        hi: Option<&[u8]>,
    ) -> impl Iterator<Item = OakRBuffer> + use<'a, C> {
        self.map.iter_range(lo, hi).map(|(_, v)| v)
    }

    /// `keyStreamSet()`: key bytes only, no per-entry objects.
    pub fn key_stream_set(
        &self,
        lo: Option<&[u8]>,
        hi: Option<&[u8]>,
        mut f: impl FnMut(&[u8]) -> bool,
    ) -> usize {
        self.map.for_each_in(lo, hi, |k, _| f(k))
    }

    /// `valueStreamSet()`: value bytes only, no per-entry objects.
    pub fn value_stream_set(
        &self,
        lo: Option<&[u8]>,
        hi: Option<&[u8]>,
        mut f: impl FnMut(&[u8]) -> bool,
    ) -> usize {
        self.map.for_each_in(lo, hi, |_, v| f(v))
    }

    /// `subMap(lo, hi)`: a bounded view of the map over `[lo, hi)`
    /// (unbounded where `None`), restricting every operation to the range.
    pub fn sub_map(&self, lo: Option<&[u8]>, hi: Option<&[u8]>) -> SubMapView<'a, C> {
        SubMapView {
            map: self.map,
            lo: lo.map(|b| b.into()),
            hi: hi.map(|b| b.into()),
        }
    }
}

/// A `subMap`-style bounded view (Table 1's "sub-range … views are provided
/// by familiar subMap() … methods").
pub struct SubMapView<'a, C: KeyComparator> {
    map: &'a OakMap<C>,
    lo: Option<Box<[u8]>>,
    hi: Option<Box<[u8]>>,
}

impl<'a, C: KeyComparator> SubMapView<'a, C> {
    fn in_range(&self, key: &[u8]) -> bool {
        if let Some(lo) = &self.lo {
            if key < &lo[..] {
                return false;
            }
        }
        if let Some(hi) = &self.hi {
            if key >= &hi[..] {
                return false;
            }
        }
        true
    }

    /// Bounded `get`.
    pub fn get(&self, key: &[u8]) -> Option<OakRBuffer> {
        if !self.in_range(key) {
            return None;
        }
        self.map.get(key)
    }

    /// Bounded `put`; out-of-range keys are rejected.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<bool, OakError> {
        if !self.in_range(key) {
            return Ok(false);
        }
        self.map.put(key, value)?;
        Ok(true)
    }

    /// Bounded `remove`.
    pub fn remove(&self, key: &[u8]) -> bool {
        self.in_range(key) && self.map.remove(key)
    }

    /// Entries of the view, ascending.
    pub fn entry_set(&self) -> EntryIter<'a, C> {
        self.map.iter_range(self.lo.as_deref(), self.hi.as_deref())
    }

    /// Entries of the view, descending (`descendingMap().entrySet()`).
    pub fn descending_entry_set(&self) -> DescendIter<'a, C> {
        // The descending iterator's `from` bound is inclusive; `hi` is an
        // exclusive upper bound, so start from it exclusively by bounding
        // with the predecessor semantics of the iterator's `lo`.
        match &self.hi {
            Some(hi) => {
                let mut it = self.map.iter_descending(Some(hi), self.lo.as_deref());
                // `hi` itself is excluded from the view; skip it if present.
                // (Keys are unique, so at most one entry can match.)
                it.skip_exact(hi);
                it
            }
            None => self.map.iter_descending(None, self.lo.as_deref()),
        }
    }

    /// Number of live entries in the view (O(range size)).
    pub fn len(&self) -> usize {
        self.map
            .for_each_in(self.lo.as_deref(), self.hi.as_deref(), |_, _| true)
    }

    /// Whether the view holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map
            .for_each_in(self.lo.as_deref(), self.hi.as_deref(), |_, _| false)
            == 0
    }
}
