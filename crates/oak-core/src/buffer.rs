//! Zero-copy buffer views: `OakRBuffer` and `OakWBuffer`.
//!
//! "These types are lightweight on-heap facades to off-heap storage, which
//! provide the application with managed object semantics" (§2.1). An
//! [`OakRBuffer`] stays valid for as long as the application holds it;
//! reads of a concurrently deleted value fail with
//! [`OakError::ConcurrentModification`] rather than observing freed memory.
//! Concurrency control is per method call on the buffer (§2.2): two reads
//! of the same buffer may observe different values if a writer intervenes —
//! the documented, inevitable consequence of avoiding copies.

use std::sync::Arc;

use oak_mempool::{HeaderRef, MemoryPool, SliceRef, ValueStore};

use crate::error::OakError;
use crate::reclaim::EpochPin;

/// Read-only zero-copy view of a key or value in Oak's off-heap memory.
pub struct OakRBuffer {
    inner: Kind,
}

enum Kind {
    /// Keys are immutable while reachable; the epoch pin keeps the slice
    /// from being reclaimed (after a concurrent remove + rebalance) for as
    /// long as the buffer lives.
    Key {
        pool: Arc<MemoryPool>,
        r: SliceRef,
        _pin: Arc<EpochPin>,
    },
    /// Values are read under the header read lock and fail once deleted.
    Value { store: ValueStore, h: HeaderRef },
}

impl OakRBuffer {
    pub(crate) fn key(pool: Arc<MemoryPool>, r: SliceRef, pin: Arc<EpochPin>) -> Self {
        OakRBuffer {
            inner: Kind::Key { pool, r, _pin: pin },
        }
    }

    pub(crate) fn value(store: ValueStore, h: HeaderRef) -> Self {
        OakRBuffer {
            inner: Kind::Value { store, h },
        }
    }

    /// Applies `f` to the buffer contents atomically.
    pub fn read<R>(&self, f: impl FnOnce(&[u8]) -> R) -> Result<R, OakError> {
        match &self.inner {
            Kind::Key { pool, r, .. } => {
                // SAFETY: key buffers are immutable while reachable, and
                // the held epoch pin blocks quarantine reclamation of this
                // slice for the buffer's lifetime.
                Ok(f(unsafe { pool.slice(*r) }))
            }
            Kind::Value { store, h } => Ok(store.read(*h, f)?),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> Result<usize, OakError> {
        self.read(|b| b.len())
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> Result<bool, OakError> {
        self.read(|b| b.is_empty())
    }

    /// Copies the contents out (the boundary where zero-copy ends).
    pub fn to_vec(&self) -> Result<Vec<u8>, OakError> {
        self.read(|b| b.to_vec())
    }

    /// Reads a little-endian `u64` at byte offset `at`.
    pub fn get_u64(&self, at: usize) -> Result<u64, OakError> {
        self.read(|b| u64::from_le_bytes(b[at..at + 8].try_into().unwrap()))
    }

    /// Reads a little-endian `u32` at byte offset `at`.
    pub fn get_u32(&self, at: usize) -> Result<u32, OakError> {
        self.read(|b| u32::from_le_bytes(b[at..at + 4].try_into().unwrap()))
    }

    /// Reads a little-endian `i64` at byte offset `at`.
    pub fn get_i64(&self, at: usize) -> Result<i64, OakError> {
        self.read(|b| i64::from_le_bytes(b[at..at + 8].try_into().unwrap()))
    }

    /// Reads a little-endian `f64` at byte offset `at`.
    pub fn get_f64(&self, at: usize) -> Result<f64, OakError> {
        self.read(|b| f64::from_le_bytes(b[at..at + 8].try_into().unwrap()))
    }

    /// Copies `dst.len()` bytes starting at offset `at` into `dst`.
    pub fn read_at(&self, at: usize, dst: &mut [u8]) -> Result<(), OakError> {
        self.read(|b| dst.copy_from_slice(&b[at..at + dst.len()]))
    }

    /// Compares the buffer contents with `other` atomically.
    pub fn eq_bytes(&self, other: &[u8]) -> Result<bool, OakError> {
        self.read(|b| b == other)
    }

    /// For value buffers: whether the underlying mapping was deleted. Keys
    /// never report deleted.
    pub fn is_deleted(&self) -> bool {
        match &self.inner {
            Kind::Key { .. } => false,
            Kind::Value { store, h } => store.is_deleted(*h),
        }
    }
}

impl std::fmt::Debug for OakRBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self.inner {
            Kind::Key { .. } => "key",
            Kind::Value { .. } => "value",
        };
        write!(f, "OakRBuffer<{kind}>")
    }
}

/// Writable zero-copy view of a value, passed to `compute` lambdas.
///
/// Supports reading, writing, and resizing ("extends the value's memory
/// allocation if its code so requires", §2.2). The header write lock is
/// held for the lambda's entire execution, making it atomic.
pub type OakWBuffer<'a> = oak_mempool::ValueBytesMut<'a>;
