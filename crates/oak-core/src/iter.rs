//! Ascending and descending scans (§4.2, Figure 2).
//!
//! Scans are non-atomic (§1.1): keys inserted before the scan starts and
//! not removed before it ends are returned; keys never present (or removed
//! before the start and not re-inserted) are not; no key is returned twice.
//! Concurrent insertions/removals may or may not be observed.
//!
//! Both directions tolerate concurrent rebalances: when the chunk under a
//! scan is frozen and replaced, the walker chases the replacement chain and
//! re-enters the live chunk covering its position, bounded by the last
//! yielded key so no key is skipped or returned twice. Sync points
//! (`iter/*`) let the deterministic interleaving harness pause a scan at
//! every decision site.

use std::sync::Arc;

use oak_mempool::{HeaderRef, SliceRef};

use crate::buffer::OakRBuffer;
use crate::chunk::{Chunk, NONE};
use crate::cmp::KeyComparator;
use crate::map::OakMap;
use crate::reclaim::EpochPin;

/// Shared ascending walker over live entries.
///
/// One copy of the hop / dedup / hi-bound / replacement-chase logic, used
/// by both the Set-API [`EntryIter`] and the zero-copy stream scan
/// ([`OakMap::for_each_in`]) so scan fixes land once.
pub(crate) struct AscendCursor<'a, C: KeyComparator> {
    map: &'a OakMap<C>,
    chunk: Option<Arc<Chunk>>,
    entry: u32,
    lo: Option<Box<[u8]>>,
    hi: Option<Box<[u8]>>,
    /// Cached order-preserving prefix of `hi` (0 = no information), so the
    /// per-entry bound check compares on-heap prefixes first and touches
    /// off-heap key bytes only on prefix ties.
    hi_prefix: u64,
    last_key: Option<SliceRef>,
    /// Cached prefix of `last_key` (0 = no information), for the dedup
    /// check after hops and re-entries.
    last_prefix: u64,
    /// Epoch pin held for the cursor's whole lifetime: every chunk the
    /// walk enters was observed unreplaced under this pin, so its key
    /// slices (including `last_key`) cannot be quarantine-freed while the
    /// cursor lives. Shared into yielded key buffers.
    pin: Arc<EpochPin>,
}

impl<'a, C: KeyComparator> AscendCursor<'a, C> {
    pub(crate) fn new(map: &'a OakMap<C>, lo: Option<&[u8]>, hi: Option<&[u8]>) -> Self {
        // Pin *before* locating: the safety argument needs the
        // unreplaced-observation of every entered chunk to happen pinned.
        let pin = Arc::new(map.reclaim.pin());
        let chunk = match lo {
            Some(k) => map.locate_chunk(k),
            None => map.first_chunk(),
        };
        let entry = match lo {
            Some(k) => chunk.lower_bound(map.pool(), &map.cmp, k),
            None => chunk.head_entry(),
        };
        AscendCursor {
            map,
            chunk: Some(chunk),
            entry,
            lo: lo.map(|l| l.into()),
            hi: hi.map(|h| h.into()),
            hi_prefix: hi.map_or(0, |h| map.key_prefix(h)),
            last_key: None,
            last_prefix: 0,
            pin,
        }
    }

    /// The chunk under us was frozen and replaced by a concurrent
    /// rebalance: re-locate the live chunk covering the resume point and
    /// re-position there (the `last_key` dedup keeps already-yielded keys
    /// from repeating when the replacement's range overlaps what we
    /// covered).
    fn reposition(&mut self) {
        let map = self.map;
        let (chunk, entry) = match self.last_key {
            Some(lk) => {
                // SAFETY: key buffers are immutable and never freed.
                let lb = unsafe { map.pool().slice(lk) };
                let c = map.locate_chunk(lb);
                let e = c.lower_bound(map.pool(), &map.cmp, lb);
                (c, e)
            }
            None => match &self.lo {
                Some(l) => {
                    let c = map.locate_chunk(l);
                    let e = c.lower_bound(map.pool(), &map.cmp, l);
                    (c, e)
                }
                None => {
                    let c = map.first_chunk();
                    let e = c.head_entry();
                    (c, e)
                }
            },
        };
        self.entry = entry;
        self.chunk = Some(chunk);
    }

    /// Advances to the next live entry, returning raw references.
    pub(crate) fn next(&mut self) -> Option<(SliceRef, HeaderRef)> {
        loop {
            // Unconditional per-iteration decision site, *before* the
            // staleness check — so an interleaving schedule can park the
            // cursor here regardless of whether a concurrent rebalance
            // has already frozen the chunk (mirrors "iter/descend-step").
            oak_failpoints::sync_point!("iter/ascend-step");
            let chunk = self.chunk.clone()?;
            if chunk.replacement().is_some() {
                oak_failpoints::sync_point!("iter/stale-reenter");
                oak_failpoints::fail_point!("iter/stale-reenter");
                self.reposition();
                continue;
            }
            if self.entry == NONE {
                // Hop to the next chunk, resolving replacement chains.
                oak_failpoints::sync_point!("iter/ascend-hop");
                oak_failpoints::fail_point!("iter/ascend-hop");
                let Some(mut n) = chunk.next_chunk() else {
                    self.chunk = None;
                    return None;
                };
                while let Some(r) = n.replacement() {
                    n = r.clone();
                }
                self.entry = match self.last_key {
                    Some(lk) => {
                        let lb = unsafe { self.map.pool().slice(lk) };
                        n.lower_bound(self.map.pool(), &self.map.cmp, lb)
                    }
                    None => n.head_entry(),
                };
                self.chunk = Some(n);
                continue;
            }
            let idx = self.entry;
            self.entry = chunk.entry_next(idx);
            // Bound and dedup checks go through the entries' cached
            // prefixes; off-heap key bytes are dereferenced only on ties.
            if let Some(h) = &self.hi {
                let ord =
                    chunk.compare_entry_key(self.map.pool(), &self.map.cmp, idx, h, self.hi_prefix);
                if ord != std::cmp::Ordering::Less {
                    self.chunk = None;
                    return None;
                }
            }
            if let Some(lk) = self.last_key {
                let ep = chunk.entry_prefix(idx);
                let ord = if ep != 0 && self.last_prefix != 0 && ep != self.last_prefix {
                    ep.cmp(&self.last_prefix)
                } else {
                    // SAFETY: key buffers are immutable; `lk` is pinned.
                    let lb = unsafe { self.map.pool().slice(lk) };
                    self.map
                        .cmp
                        .compare(chunk.key_bytes(self.map.pool(), idx), lb)
                };
                if ord != std::cmp::Ordering::Greater {
                    continue; // already covered before a hop / re-entry
                }
            }
            let Some(h) = chunk.value_ref(idx) else {
                continue;
            };
            if self.map.value_store().is_deleted(h) {
                continue;
            }
            self.last_key = Some(chunk.key_ref(idx));
            self.last_prefix = chunk.entry_prefix(idx);
            return Some((chunk.key_ref(idx), h));
        }
    }
}

/// Ascending Set-API iterator: yields an ephemeral `(key, value)` buffer
/// pair per entry. The stream API ([`OakMap::for_each_in`]) avoids these
/// per-entry objects — the distinction Figure 4e measures. Both are thin
/// wrappers over the same `AscendCursor` walker.
pub struct EntryIter<'a, C: KeyComparator> {
    cursor: AscendCursor<'a, C>,
}

impl<'a, C: KeyComparator> EntryIter<'a, C> {
    pub(crate) fn new(map: &'a OakMap<C>, lo: Option<&[u8]>, hi: Option<&[u8]>) -> Self {
        EntryIter {
            cursor: AscendCursor::new(map, lo, hi),
        }
    }

    /// Advances to the next live entry, returning raw references.
    pub(crate) fn next_raw(&mut self) -> Option<(SliceRef, HeaderRef)> {
        self.cursor.next()
    }
}

impl<C: KeyComparator> Iterator for EntryIter<'_, C> {
    type Item = (OakRBuffer, OakRBuffer);

    fn next(&mut self) -> Option<Self::Item> {
        let (kref, h) = self.next_raw()?;
        Some((
            OakRBuffer::key(
                self.cursor.map.pool().clone(),
                kref,
                self.cursor.pin.clone(),
            ),
            OakRBuffer::value(self.cursor.map.value_store().clone(), h),
        ))
    }
}

/// Descending iterator implementing the stack algorithm of Figure 2.
///
/// Within a chunk: locate the last relevant entry via the sorted prefix,
/// walk each bypass run while pushing entries on a stack, pop to yield,
/// step one prefix cell back when the stack drains. On chunk exhaustion,
/// query the index for the chunk with the greatest `minKey` strictly
/// smaller than the current chunk's. When the chunk is frozen and replaced
/// mid-scan, drop the (stale) stack and re-enter the live replacement
/// bounded strictly below the last yielded key. Complexity for a scan of S
/// keys over N: O(S/B · log N + S) instead of the skiplist's O(S log N).
pub struct DescendIter<'a, C: KeyComparator> {
    map: &'a OakMap<C>,
    chunk: Option<Arc<Chunk>>,
    /// Entries pending in descending order (top = largest remaining).
    stack: Vec<u32>,
    /// Next prefix cell to refill from; -1 = the pre-prefix head run,
    /// -2 = chunk exhausted.
    next_prefix: i64,
    /// Inclusive upper bound the scan started from (`None` = the end).
    from: Option<Box<[u8]>>,
    /// Inclusive lower bound of the scan.
    lo: Option<Box<[u8]>>,
    /// Cached order-preserving prefix of `lo` (0 = no information).
    lo_prefix: u64,
    /// Last key yielded: the strict re-entry bound after a concurrent
    /// rebalance replaces the chunk under the scan.
    last_yielded: Option<SliceRef>,
    /// One-item lookahead (set by [`skip_exact`](Self::skip_exact)).
    pending: Option<(SliceRef, HeaderRef)>,
    done: bool,
    /// Lifetime epoch pin (see [`AscendCursor::pin`]).
    pin: Arc<EpochPin>,
}

impl<'a, C: KeyComparator> DescendIter<'a, C> {
    pub(crate) fn new(map: &'a OakMap<C>, from: Option<&[u8]>, lo: Option<&[u8]>) -> Self {
        let pin = Arc::new(map.reclaim.pin());
        let mut it = DescendIter {
            map,
            chunk: None,
            stack: Vec::new(),
            next_prefix: -2,
            from: from.map(|f| f.into()),
            lo: lo.map(|l| l.into()),
            lo_prefix: lo.map_or(0, |l| map.key_prefix(l)),
            last_yielded: None,
            pending: None,
            done: false,
            pin,
        };
        let chunk = it.start_chunk(from);
        it.enter_chunk(chunk, from, true);
        it
    }

    /// The chunk containing `from`, or the last chunk when unbounded.
    fn start_chunk(&self, from: Option<&[u8]>) -> Arc<Chunk> {
        match from {
            Some(k) => self.map.locate_chunk(k),
            None => {
                let mut c = self.map.first_chunk();
                loop {
                    while let Some(r) = c.replacement() {
                        c = r.clone();
                    }
                    match c.next_chunk() {
                        Some(n) => c = n,
                        None => break,
                    }
                }
                c
            }
        }
    }

    /// Initializes the stack for `chunk`: pushes every entry with key ≤
    /// `bound` (or < when `inclusive` is false; unbounded when `None`).
    fn enter_chunk(&mut self, chunk: Arc<Chunk>, bound: Option<&[u8]>, inclusive: bool) {
        let pool = self.map.pool();
        let cmp = &self.map.cmp;
        self.stack.clear();
        // Bound prefix, computed once per chunk entry: probes and the
        // in-bound walk compare cached prefixes first, dereferencing
        // off-heap key bytes only on ties.
        let bp = bound.map_or(0, |b| self.map.key_prefix(b));

        let in_bound = |idx: u32| match bound {
            None => true,
            Some(b) => match chunk.compare_entry_key(pool, cmp, idx, b, bp) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Equal => inclusive,
                std::cmp::Ordering::Greater => false,
            },
        };

        // The starting prefix cell: the last prefix entry within bound.
        // (prefix_floor is inclusive-≤; adjust for the exclusive case by
        // walking with `in_bound` below anyway.)
        let start = match bound {
            Some(b) => {
                // Largest prefix index with key ≤ b; may still be out of
                // bound in the exclusive case — in_bound filters.
                let n = chunk.sorted_count() as i64;
                let (mut a, mut z) = (0i64, n);
                while a < z {
                    let mid = (a + z) / 2;
                    if chunk.compare_entry_key(pool, cmp, mid as u32, b, bp)
                        == std::cmp::Ordering::Greater
                    {
                        z = mid;
                    } else {
                        a = mid + 1;
                    }
                }
                a - 1
            }
            None => chunk.sorted_count() as i64 - 1,
        };

        // Initial run: from prefix cell `start` (or the head run when the
        // prefix is empty / bound precedes it) pushing in-bound entries.
        let first_entry = if start >= 0 {
            start as u32
        } else {
            chunk.head_entry()
        };
        let mut cur = first_entry;
        let mut first = true;
        while cur != NONE {
            // Stop when the run flows into the prefix region (those cells
            // are handled by later refills), except for the starting cell.
            if !first && start >= 0 && cur < chunk.sorted_count() {
                break;
            }
            if start < 0 && cur < chunk.sorted_count() {
                // Head run reached the first prefix cell: prefix cells are
                // all > bound here (start < 0), so stop.
                break;
            }
            if !in_bound(cur) {
                break;
            }
            self.stack.push(cur);
            first = false;
            cur = chunk.entry_next(cur);
        }
        self.next_prefix = if start >= 0 { start - 1 } else { -2 };
        self.chunk = Some(chunk);
    }

    /// The chunk under us was frozen and replaced by a concurrent
    /// rebalance (the stack and bypass links are a stale snapshot): chase
    /// to the live chunk covering the resume point and rebuild the stack,
    /// bounded strictly below the last yielded key so no key repeats.
    fn reposition(&mut self) {
        self.chunk = None;
        match self.last_yielded {
            Some(lk) => {
                let map = self.map;
                // SAFETY: key buffers are immutable and never freed.
                let lb = unsafe { map.pool().slice(lk) };
                let live = map.locate_chunk(lb);
                self.enter_chunk(live, Some(lb), false);
            }
            None => {
                // Nothing yielded yet: redo the initial positioning.
                let from = self.from.clone();
                let chunk = self.start_chunk(from.as_deref());
                self.enter_chunk(chunk, from.as_deref(), true);
            }
        }
    }

    /// Refills the stack from the next prefix cell back (Figure 2's
    /// "move one entry back in the prefix and traverse the bypass").
    fn refill(&mut self) -> bool {
        oak_failpoints::sync_point!("iter/descend-refill");
        oak_failpoints::fail_point!("iter/descend-refill");
        let Some(chunk) = self.chunk.clone() else {
            return false;
        };
        loop {
            if self.next_prefix == -2 {
                return false;
            }
            if self.next_prefix == -1 {
                // The run of bypasses before the first prefix cell.
                let mut cur = chunk.head_entry();
                while cur != NONE && cur >= chunk.sorted_count() {
                    self.stack.push(cur);
                    cur = chunk.entry_next(cur);
                }
                self.next_prefix = -2;
                if !self.stack.is_empty() {
                    return true;
                }
                return false;
            }
            // Walk from prefix cell p through its bypass run, stopping at
            // the next prefix cell (already covered by a previous run).
            let p = self.next_prefix as u32;
            self.next_prefix -= 1;
            let mut cur = p;
            let mut first = true;
            while cur != NONE {
                if !first && cur < chunk.sorted_count() {
                    break;
                }
                self.stack.push(cur);
                first = false;
                cur = chunk.entry_next(cur);
            }
            if !self.stack.is_empty() {
                return true;
            }
        }
    }

    /// Moves to the chunk preceding the current one (index query for the
    /// greatest `minKey` strictly smaller — §4.2).
    fn prev_chunk(&mut self) -> bool {
        oak_failpoints::sync_point!("iter/descend-prev");
        oak_failpoints::fail_point!("iter/descend-prev");
        let Some(chunk) = self.chunk.take() else {
            return false;
        };
        if chunk.min_key.is_empty() {
            return false; // the first chunk has no predecessor
        }
        let prev = self.map.index.floor_before(&chunk.min_key);
        // Everything ≥ old minKey was already returned: bound strictly.
        let bound = chunk.min_key.clone();
        self.enter_chunk(prev, Some(&bound), false);
        true
    }

    /// Drops the next entry if its key is exactly `key` (used by bounded
    /// views whose upper bound is exclusive).
    pub(crate) fn skip_exact(&mut self, key: &[u8]) {
        if let Some((kref, h)) = self.next_raw() {
            let kb = unsafe { self.map.pool().slice(kref) };
            if self.map.cmp.compare(kb, key) != std::cmp::Ordering::Equal {
                self.pending = Some((kref, h));
            }
        }
    }

    /// Next raw live entry in descending order.
    pub(crate) fn next_raw(&mut self) -> Option<(SliceRef, HeaderRef)> {
        if let Some(item) = self.pending.take() {
            return Some(item);
        }
        if self.done {
            return None;
        }
        loop {
            oak_failpoints::sync_point!("iter/descend-step");
            let stale = self
                .chunk
                .as_ref()
                .is_some_and(|c| c.replacement().is_some());
            if stale {
                oak_failpoints::sync_point!("iter/stale-reenter");
                oak_failpoints::fail_point!("iter/stale-reenter");
                self.reposition();
            }
            if self.stack.is_empty() && !self.refill() && !self.prev_chunk() {
                self.done = true;
                return None;
            }
            let Some(idx) = self.stack.pop() else {
                continue;
            };
            let chunk = self.chunk.as_ref()?;
            if let Some(l) = &self.lo {
                let ord =
                    chunk.compare_entry_key(self.map.pool(), &self.map.cmp, idx, l, self.lo_prefix);
                if ord == std::cmp::Ordering::Less {
                    self.done = true; // descending: below lo means finished
                    return None;
                }
            }
            let Some(h) = chunk.value_ref(idx) else {
                continue;
            };
            if self.map.value_store().is_deleted(h) {
                continue;
            }
            self.last_yielded = Some(chunk.key_ref(idx));
            return Some((chunk.key_ref(idx), h));
        }
    }
}

impl<C: KeyComparator> Iterator for DescendIter<'_, C> {
    type Item = (OakRBuffer, OakRBuffer);

    fn next(&mut self) -> Option<Self::Item> {
        let (kref, h) = self.next_raw()?;
        Some((
            OakRBuffer::key(self.map.pool().clone(), kref, self.pin.clone()),
            OakRBuffer::value(self.map.value_store().clone(), h),
        ))
    }
}

// Stream scans (no per-entry objects): the fast path Figure 4e/4f contrast
// against the Set-API iterators above.
impl<C: KeyComparator> OakMap<C> {
    /// Ascending zero-copy scan over `[lo, hi)` (unbounded where `None`):
    /// the *stream* API — no per-entry objects, `f` borrows key and value
    /// bytes directly. Returns entries visited; stops early when `f`
    /// returns `false`.
    pub fn for_each_in(
        &self,
        lo: Option<&[u8]>,
        hi: Option<&[u8]>,
        mut f: impl FnMut(&[u8], &[u8]) -> bool,
    ) -> usize {
        let mut count = 0;
        self.stream_ascend(lo, hi, |kref, h| {
            let kb = unsafe { self.pool().slice(kref) };
            match self.value_store().read(h, |v| f(kb, v)) {
                Ok(keep) => {
                    count += 1;
                    keep
                }
                Err(_) => true, // deleted under the iterator: skip
            }
        });
        count
    }

    /// Budgeted ascending stream scan: like
    /// [`for_each_in`](OakMap::for_each_in) but cooperative — the deadline
    /// is checked periodically, header-lock waits are clamped by it, and
    /// the degraded-mode controller may shed the scan once it has visited
    /// [`OverloadConfig::degraded_scan_limit`](crate::OverloadConfig)
    /// entries. Returns the entries visited, or the typed budget error
    /// ([`OakError::DeadlineExceeded`](crate::OakError), `Overloaded`, or
    /// `Contended`). Entries already handed to `f` stay handed — shedding
    /// is a truncation, never a rollback.
    pub fn for_each_in_budgeted(
        &self,
        lo: Option<&[u8]>,
        hi: Option<&[u8]>,
        budget: &crate::OpBudget,
        mut f: impl FnMut(&[u8], &[u8]) -> bool,
    ) -> Result<u64, crate::OakError> {
        use crate::overload::OverloadState;
        /// Entries between deadline checks: cheap enough to keep overrun
        /// small, coarse enough to keep `Instant::now` off the per-entry
        /// path.
        const SCAN_CHECK_INTERVAL: u64 = 64;
        budget.check(self.pool())?;
        let shed_after = match self.overload.state() {
            OverloadState::Healthy => u64::MAX,
            OverloadState::Degraded | OverloadState::Critical => {
                let limit = self.overload.config().degraded_scan_limit;
                if limit == 0 {
                    u64::MAX
                } else {
                    limit
                }
            }
        };
        let mut count: u64 = 0;
        let mut failure: Option<crate::OakError> = None;
        self.stream_ascend(lo, hi, |kref, h| {
            if count >= shed_after {
                self.pool().note_scan_shed();
                failure = Some(crate::OakError::Overloaded);
                return false;
            }
            if count > 0 && count % SCAN_CHECK_INTERVAL == 0 && budget.expired() {
                self.pool().note_deadline_exceeded();
                failure = Some(crate::OakError::DeadlineExceeded);
                return false;
            }
            let kb = unsafe { self.pool().slice(kref) };
            match self.value_store().read_at(h, budget.deadline, |v| f(kb, v)) {
                Ok(keep) => {
                    count += 1;
                    keep
                }
                Err(oak_mempool::AccessError::Deleted) => true, // skip
                Err(oak_mempool::AccessError::Contended(info)) => {
                    if budget.expired() {
                        self.pool().note_deadline_exceeded();
                        failure = Some(crate::OakError::DeadlineExceeded);
                    } else {
                        failure = Some(crate::OakError::Contended(info));
                    }
                    false
                }
            }
        });
        match failure {
            Some(e) => Err(e),
            None => Ok(count),
        }
    }

    /// Descending stream scan (no per-entry objects). Returns entries
    /// visited; stops early when `f` returns `false`.
    pub fn for_each_descending(
        &self,
        from: Option<&[u8]>,
        lo: Option<&[u8]>,
        mut f: impl FnMut(&[u8], &[u8]) -> bool,
    ) -> usize {
        let mut count = 0;
        let mut it = DescendIter::new(self, from, lo);
        while let Some((kref, h)) = it.next_raw() {
            let kb = unsafe { self.pool().slice(kref) };
            match self.value_store().read(h, |v| f(kb, v)) {
                Ok(keep) => {
                    count += 1;
                    if !keep {
                        break;
                    }
                }
                Err(_) => continue,
            }
        }
        count
    }

    /// Internal ascending walk yielding raw `(key_ref, header_ref)` pairs
    /// of live entries. Shared by the stream API and the Set iterator —
    /// both delegate to [`AscendCursor`].
    pub(crate) fn stream_ascend(
        &self,
        lo: Option<&[u8]>,
        hi: Option<&[u8]>,
        mut f: impl FnMut(SliceRef, HeaderRef) -> bool,
    ) {
        let mut cursor = AscendCursor::new(self, lo, hi);
        while let Some((kref, h)) = cursor.next() {
            if !f(kref, h) {
                return;
            }
        }
    }
}
