//! Ascending and descending scans (§4.2, Figure 2).
//!
//! Scans are non-atomic (§1.1): keys inserted before the scan starts and
//! not removed before it ends are returned; keys never present (or removed
//! before the start and not re-inserted) are not; no key is returned twice.
//! Concurrent insertions/removals may or may not be observed.
//!
//! Both directions tolerate concurrent rebalances: when the chunk under a
//! scan is frozen and replaced, the walker chases the replacement chain and
//! re-enters the live chunk covering its position, bounded by the last
//! yielded key so no key is skipped or returned twice. Sync points
//! (`iter/*`) let the deterministic interleaving harness pause a scan at
//! every decision site.
//!
//! Two execution modes share each cursor
//! ([`OakMapConfig::batch_scan`](crate::OakMapConfig)):
//!
//! * **Batch mode** (default): the cursor snapshots a chunk's sorted live
//!   entries into a reusable on-heap buffer in one linked-list pass —
//!   one staleness check per *chunk-batch* (replacement pointer plus
//!   Jiffy-style revision stamp), zero per-entry bound checks when the
//!   successor's `min_key` proves the whole chunk in range — then drains
//!   the buffer. Refills revalidate: a chunk whose revision moved since
//!   the fill re-locates through the index, bounded by the last drained
//!   key. Sync points `iter/batch-step` (per drain) and
//!   `iter/batch-refill` (per snapshot) give the harness entry- and
//!   batch-granularity witnesses.
//! * **Per-entry mode**: the historical walker — one staleness check and
//!   one linked-list hop per yielded entry. Kept as the A/B baseline and
//!   the finest-grained interleaving surface.
//!
//! Both modes satisfy the same §1.1 contract: every entry in a batch is
//! read point-in-time during the snapshot walk, which is exactly what the
//! per-entry walker could observe under some interleaving; liveness is
//! still judged per yielded entry via the shared value-header state.

use std::sync::Arc;

use oak_mempool::{HeaderRef, ScanLock, SliceRef};

use crate::buffer::OakRBuffer;
use crate::chunk::{BatchEntry, Chunk, NONE};
use crate::cmp::KeyComparator;
use crate::map::OakMap;
use crate::reclaim::EpochPin;

/// Entries snapshotted per ascending batch refill. Bounds the reusable
/// buffer (and the staleness window of a snapshot) while still amortizing
/// the per-chunk checks over enough entries that they vanish from the
/// per-entry cost. Descending scans need the highest keys first, so they
/// bound their snapshot from the top instead: a *tail window* starting at
/// most this many prefix cells below the upper bound.
const SCAN_BATCH: usize = 128;

/// How a batch drain delivers one entry's value to the visit closure.
pub(crate) enum ValueView<'a> {
    /// The bytes, delivered under the batch's fill-time read-lock lease:
    /// no per-entry lock acquisition or address translation remains.
    Leased(&'a [u8]),
    /// No lease (Set-API cursor, or a writer was active at fill time):
    /// read through the value store's waiting path.
    Read(HeaderRef),
}

/// Shared ascending walker over live entries.
///
/// One copy of the hop / dedup / hi-bound / replacement-chase logic, used
/// by both the Set-API [`EntryIter`] and the zero-copy stream scan
/// ([`OakMap::for_each_in`]) so scan fixes land once.
pub(crate) struct AscendCursor<'a, C: KeyComparator> {
    map: &'a OakMap<C>,
    chunk: Option<Arc<Chunk>>,
    entry: u32,
    lo: Option<Box<[u8]>>,
    hi: Option<Box<[u8]>>,
    /// Cached order-preserving prefix of `hi` (0 = no information), so the
    /// per-entry bound check compares on-heap prefixes first and touches
    /// off-heap key bytes only on prefix ties.
    hi_prefix: u64,
    last_key: Option<SliceRef>,
    /// Cached prefix of `last_key` (0 = no information), for the dedup
    /// check after hops and re-entries.
    last_prefix: u64,
    /// Epoch pin held for the cursor's whole lifetime: every chunk the
    /// walk enters was observed unreplaced under this pin, so its key
    /// slices (including `last_key` and everything parked in `batch`)
    /// cannot be quarantine-freed while the cursor lives. Shared into
    /// yielded key buffers.
    pin: Arc<EpochPin>,
    /// Batch mode on (`OakMapConfig::batch_scan`)?
    batch_mode: bool,
    /// Stream-drain cursors take each entry's value read lock at fill
    /// time (a bounded lease, retired as each entry is delivered — an
    /// early-stopped scan's undrained tail releases at refill/drop), so
    /// the drain delivers pre-resolved bytes with no lock waits. Off for
    /// Set-API cursors, whose consumers read values at their own pace.
    locked_scan: bool,
    /// Reusable snapshot buffer: live entries of the current chunk-batch
    /// in ascending order, key addresses resolved at fill time. Capacity
    /// survives refills, so a whole scan allocates O(1) buffers.
    batch: Vec<BatchEntry>,
    /// Next undrained element of `batch`.
    batch_pos: usize,
    /// The chunk's revision stamp when `batch` was snapshotted; a refill
    /// that reads a different stamp revalidates through the index.
    batch_rev: u64,
    /// The upper bound was reached inside a batch: the scan is over once
    /// `batch` drains.
    tail_done: bool,
}

impl<'a, C: KeyComparator> AscendCursor<'a, C> {
    /// Set-API cursor: values are read by the consumer at its own pace,
    /// so no fill-time leases are taken (an iterator may be held
    /// indefinitely, and a lease would block writers for that long).
    pub(crate) fn new(map: &'a OakMap<C>, lo: Option<&[u8]>, hi: Option<&[u8]>) -> Self {
        Self::with_mode(map, lo, hi, false)
    }

    /// Stream-drain cursor: bounded-lifetime scans
    /// ([`OakMap::for_each_in`] and friends) take fill-time value leases
    /// — see [`Self::locked_scan`].
    pub(crate) fn new_stream(map: &'a OakMap<C>, lo: Option<&[u8]>, hi: Option<&[u8]>) -> Self {
        Self::with_mode(map, lo, hi, true)
    }

    fn with_mode(
        map: &'a OakMap<C>,
        lo: Option<&[u8]>,
        hi: Option<&[u8]>,
        locked_scan: bool,
    ) -> Self {
        // Pin *before* locating: the safety argument needs the
        // unreplaced-observation of every entered chunk to happen pinned.
        let pin = Arc::new(map.reclaim.pin());
        let chunk = match lo {
            Some(k) => map.locate_chunk(k),
            None => map.first_chunk(),
        };
        let entry = match lo {
            Some(k) => chunk.lower_bound(map.pool(), &map.cmp, k),
            None => chunk.head_entry(),
        };
        let mut cursor = AscendCursor {
            map,
            chunk: Some(chunk.clone()),
            entry,
            lo: lo.map(|l| l.into()),
            hi: hi.map(|h| h.into()),
            hi_prefix: hi.map_or(0, |h| map.key_prefix(h)),
            last_key: None,
            last_prefix: 0,
            pin,
            batch_mode: map.config.batch_scan,
            locked_scan,
            batch: Vec::new(),
            batch_pos: 0,
            batch_rev: 0,
            tail_done: false,
        };
        if cursor.batch_mode {
            cursor.fill_batch(chunk, entry, None);
        }
        cursor
    }

    /// Releases every fill-time value lease still parked in the batch
    /// buffer. Tokens are zeroed, so release is exactly-once even though
    /// both refill and drop call here.
    fn release_batch_locks(&mut self) {
        if !self.locked_scan {
            return;
        }
        let store = self.map.value_store();
        for e in &mut self.batch {
            if e.hbase != 0 {
                // SAFETY: the token was minted by `scan_lock` during this
                // batch's fill and the read lock is still held.
                unsafe { store.scan_unlock(e.hbase) };
                e.hbase = 0;
            }
        }
    }

    /// Snapshots up to [`SCAN_BATCH`] live entries of `chunk` into the
    /// reusable buffer, starting at entry `start` and skipping entries ≤
    /// `strict_after`. Applies the chunk-range fast path: when the
    /// successor chunk's `min_key` is ≤ `hi`, the chunk invariant
    /// (entries < successor `min_key`) already proves every entry in
    /// range, so the snapshot walk performs zero per-entry bound checks.
    fn fill_batch(&mut self, chunk: Arc<Chunk>, start: u32, strict_after: Option<(&[u8], u64)>) {
        self.release_batch_locks();
        let map = self.map;
        let pool = map.pool();
        if self.batch.capacity() > 0 {
            pool.note_scan_buffer_reuse();
        }
        self.batch.clear();
        self.batch_pos = 0;
        self.batch_rev = chunk.revision();
        let hi_opt: Option<(&[u8], u64, bool)> = match &self.hi {
            None => None,
            Some(h) => {
                let covered = chunk.next_chunk().is_some_and(|n| {
                    !n.min_key.is_empty()
                        && map.cmp.compare(&n.min_key, h) != std::cmp::Ordering::Greater
                });
                if covered {
                    None // whole chunk < successor minKey ≤ hi
                } else {
                    Some((h, self.hi_prefix, false)) // hi is exclusive
                }
            }
        };
        let store = map.value_store();
        let locked = self.locked_scan;
        let (resume, bounded) = chunk.collect_batch(
            pool,
            &map.cmp,
            start,
            strict_after,
            hi_opt,
            SCAN_BATCH,
            |h| {
                if locked {
                    // Fill-time lease: independent CASes pipeline across
                    // the snapshot walk; the drain then delivers payload
                    // bytes with no per-entry lock traffic. A header a
                    // writer holds right now degrades that one entry to
                    // the waiting read path at drain time.
                    match store.scan_lock(h) {
                        ScanLock::Held { hbase, vptr, vlen } => Some((hbase, vptr, vlen)),
                        ScanLock::Contended => Some((0, 0, 0)),
                        ScanLock::Dead => None,
                    }
                } else if store.is_deleted(h) {
                    None
                } else {
                    Some((0, 0, 0))
                }
            },
            &mut self.batch,
        );
        self.entry = resume;
        if bounded {
            self.tail_done = true;
        }
        pool.note_scan_chunk_batch();
        self.chunk = Some(chunk);
    }

    /// Prepares the next batch after the current one drained: revalidate
    /// the chunk (replacement pointer + revision stamp — the *only*
    /// staleness check the batch path performs, once per batch), then
    /// either continue a capped snapshot in the same chunk, or hop to the
    /// successor.
    fn refill_batch(&mut self) {
        oak_failpoints::sync_point!("iter/batch-refill");
        oak_failpoints::fail_point!("iter/batch-refill");
        let map = self.map;
        // The resume/dedup bound: the last key the drained batch yielded.
        if let Some(&BatchEntry { key: lk, .. }) = self.batch.last() {
            self.last_key = Some(lk);
            // SAFETY: key buffers are immutable; `lk` is pinned.
            let kb = unsafe { map.pool().slice(lk) };
            self.last_prefix = map.key_prefix(kb);
        }
        let Some(chunk) = self.chunk.clone() else {
            return;
        };
        if chunk.replacement().is_some() || chunk.revision() != self.batch_rev {
            // The chunk changed under the drained snapshot: re-locate the
            // live chunk covering the resume point. `strict_after` keeps
            // already-yielded keys from repeating when the replacement's
            // range overlaps what the batch covered.
            map.pool().note_scan_revalidation();
            match self.last_key {
                Some(lk) => {
                    // SAFETY: key buffers are immutable; `lk` is pinned.
                    let lb = unsafe { map.pool().slice(lk) };
                    let c = map.locate_chunk(lb);
                    let e = c.lower_bound(map.pool(), &map.cmp, lb);
                    self.fill_batch(c, e, Some((lb, self.last_prefix)));
                }
                None => {
                    let (c, e) = match self.lo.take() {
                        Some(l) => {
                            let c = map.locate_chunk(&l);
                            let e = c.lower_bound(map.pool(), &map.cmp, &l);
                            self.lo = Some(l);
                            (c, e)
                        }
                        None => {
                            let c = map.first_chunk();
                            let e = c.head_entry();
                            (c, e)
                        }
                    };
                    self.fill_batch(c, e, None);
                }
            }
            return;
        }
        if self.entry != NONE {
            // Same chunk, next slice of a capped snapshot: the resume
            // index still names the same immutable key, so no bound
            // needed.
            self.fill_batch(chunk, self.entry, None);
            return;
        }
        // Chunk exhausted: hop to the successor, resolving replacement
        // chains.
        let Some(mut n) = chunk.next_chunk() else {
            self.chunk = None;
            return;
        };
        while let Some(r) = n.replacement() {
            n = r.clone();
        }
        match self.last_key {
            Some(lk) => {
                // SAFETY: key buffers are immutable; `lk` is pinned.
                let lb = unsafe { map.pool().slice(lk) };
                let e = n.lower_bound(map.pool(), &map.cmp, lb);
                self.fill_batch(n, e, Some((lb, self.last_prefix)));
            }
            None => {
                let e = n.head_entry();
                self.fill_batch(n, e, None);
            }
        }
    }

    /// Batch-mode advance: drain the buffer, refilling between batches.
    fn next_batch(&mut self) -> Option<(SliceRef, HeaderRef)> {
        loop {
            if self.batch_pos < self.batch.len() {
                oak_failpoints::sync_point!("iter/batch-step");
                let item = self.batch[self.batch_pos];
                self.batch_pos += 1;
                return Some((item.key, item.hdr));
            }
            if self.tail_done || self.chunk.is_none() {
                self.chunk = None;
                return None;
            }
            self.refill_batch();
        }
    }

    /// Bulk drain: feeds every remaining live entry to `f` as resolved
    /// key bytes plus a [`ValueView`], until `f` returns `false` or the
    /// scan ends. Equivalent to repeated [`next`](Self::next), but a
    /// whole batch span is walked inline — no per-entry cursor dispatch,
    /// no per-entry key translation, and (on a stream cursor) no
    /// per-entry lock traffic: leased entries hand out the payload bytes
    /// resolved at fill time, still covered by the fill-time read lock.
    pub(crate) fn drain(&mut self, mut f: impl FnMut(&[u8], ValueView<'_>) -> bool) {
        if !self.batch_mode {
            while let Some((kref, h)) = self.next() {
                // SAFETY: key buffers are immutable; `kref` is pinned.
                let kb = unsafe { self.map.pool().slice(kref) };
                if !f(kb, ValueView::Read(h)) {
                    return;
                }
            }
            return;
        }
        let store = self.map.value_store();
        loop {
            while self.batch_pos < self.batch.len() {
                oak_failpoints::sync_point!("iter/batch-step");
                let item = self.batch[self.batch_pos];
                self.batch_pos += 1;
                // SAFETY: the cursor's epoch pin is held for its lifetime.
                let kb = unsafe { item.key_bytes() };
                let keep = if item.hbase != 0 {
                    oak_failpoints::fail_point!("value/read");
                    // SAFETY: the fill-time read lock is still held, so the
                    // payload cannot be torn, resized, or freed under the
                    // callback.
                    let vb: &[u8] = if item.vlen == 0 {
                        &[]
                    } else {
                        unsafe {
                            std::slice::from_raw_parts(item.vptr as *const u8, item.vlen as usize)
                        }
                    };
                    let keep = f(kb, ValueView::Leased(vb));
                    // Retire the lease the moment the callback returns:
                    // a writer is blocked for one delivery at most, never
                    // a whole batch drain (a paused scan must not wedge
                    // concurrent removes).
                    // SAFETY: minted by this batch's fill, still held.
                    unsafe { store.scan_unlock(item.hbase) };
                    self.batch[self.batch_pos - 1].hbase = 0;
                    keep
                } else {
                    f(kb, ValueView::Read(item.hdr))
                };
                if !keep {
                    return;
                }
            }
            if self.tail_done || self.chunk.is_none() {
                self.chunk = None;
                return;
            }
            self.refill_batch();
        }
    }

    /// The chunk under us was frozen and replaced by a concurrent
    /// rebalance: re-locate the live chunk covering the resume point and
    /// re-position there (the `last_key` dedup keeps already-yielded keys
    /// from repeating when the replacement's range overlaps what we
    /// covered).
    fn reposition(&mut self) {
        let map = self.map;
        let (chunk, entry) = match self.last_key {
            Some(lk) => {
                // SAFETY: key buffers are immutable and never freed.
                let lb = unsafe { map.pool().slice(lk) };
                let c = map.locate_chunk(lb);
                let e = c.lower_bound(map.pool(), &map.cmp, lb);
                (c, e)
            }
            None => match &self.lo {
                Some(l) => {
                    let c = map.locate_chunk(l);
                    let e = c.lower_bound(map.pool(), &map.cmp, l);
                    (c, e)
                }
                None => {
                    let c = map.first_chunk();
                    let e = c.head_entry();
                    (c, e)
                }
            },
        };
        self.entry = entry;
        self.chunk = Some(chunk);
    }

    /// Advances to the next live entry, returning raw references.
    pub(crate) fn next(&mut self) -> Option<(SliceRef, HeaderRef)> {
        if self.batch_mode {
            return self.next_batch();
        }
        loop {
            // Unconditional per-iteration decision site, *before* the
            // staleness check — so an interleaving schedule can park the
            // cursor here regardless of whether a concurrent rebalance
            // has already frozen the chunk (mirrors "iter/descend-step").
            oak_failpoints::sync_point!("iter/ascend-step");
            let chunk = self.chunk.clone()?;
            if chunk.replacement().is_some() {
                oak_failpoints::sync_point!("iter/stale-reenter");
                oak_failpoints::fail_point!("iter/stale-reenter");
                self.reposition();
                continue;
            }
            if self.entry == NONE {
                // Hop to the next chunk, resolving replacement chains.
                oak_failpoints::sync_point!("iter/ascend-hop");
                oak_failpoints::fail_point!("iter/ascend-hop");
                let Some(mut n) = chunk.next_chunk() else {
                    self.chunk = None;
                    return None;
                };
                while let Some(r) = n.replacement() {
                    n = r.clone();
                }
                self.entry = match self.last_key {
                    Some(lk) => {
                        let lb = unsafe { self.map.pool().slice(lk) };
                        n.lower_bound(self.map.pool(), &self.map.cmp, lb)
                    }
                    None => n.head_entry(),
                };
                self.chunk = Some(n);
                continue;
            }
            let idx = self.entry;
            self.entry = chunk.entry_next(idx);
            // Bound and dedup checks go through the entries' cached
            // prefixes; off-heap key bytes are dereferenced only on ties.
            if let Some(h) = &self.hi {
                let ord =
                    chunk.compare_entry_key(self.map.pool(), &self.map.cmp, idx, h, self.hi_prefix);
                if ord != std::cmp::Ordering::Less {
                    self.chunk = None;
                    return None;
                }
            }
            if let Some(lk) = self.last_key {
                let ep = chunk.entry_prefix(idx);
                let ord = if ep != 0 && self.last_prefix != 0 && ep != self.last_prefix {
                    ep.cmp(&self.last_prefix)
                } else {
                    // SAFETY: key buffers are immutable; `lk` is pinned.
                    let lb = unsafe { self.map.pool().slice(lk) };
                    self.map
                        .cmp
                        .compare(chunk.key_bytes(self.map.pool(), idx), lb)
                };
                if ord != std::cmp::Ordering::Greater {
                    continue; // already covered before a hop / re-entry
                }
            }
            let Some(h) = chunk.value_ref(idx) else {
                continue;
            };
            if self.map.value_store().is_deleted(h) {
                continue;
            }
            self.last_key = Some(chunk.key_ref(idx));
            self.last_prefix = chunk.entry_prefix(idx);
            return Some((chunk.key_ref(idx), h));
        }
    }
}

impl<C: KeyComparator> Drop for AscendCursor<'_, C> {
    fn drop(&mut self) {
        // An early-stopped scan's undrained tail still holds its
        // fill-time leases; retire them here.
        self.release_batch_locks();
    }
}

/// Ascending Set-API iterator: yields an ephemeral `(key, value)` buffer
/// pair per entry. The stream API ([`OakMap::for_each_in`]) avoids these
/// per-entry objects — the distinction Figure 4e measures. Both are thin
/// wrappers over the same `AscendCursor` walker.
pub struct EntryIter<'a, C: KeyComparator> {
    cursor: AscendCursor<'a, C>,
}

impl<'a, C: KeyComparator> EntryIter<'a, C> {
    pub(crate) fn new(map: &'a OakMap<C>, lo: Option<&[u8]>, hi: Option<&[u8]>) -> Self {
        EntryIter {
            cursor: AscendCursor::new(map, lo, hi),
        }
    }

    /// Advances to the next live entry, returning raw references.
    pub(crate) fn next_raw(&mut self) -> Option<(SliceRef, HeaderRef)> {
        self.cursor.next()
    }
}

impl<C: KeyComparator> Iterator for EntryIter<'_, C> {
    type Item = (OakRBuffer, OakRBuffer);

    fn next(&mut self) -> Option<Self::Item> {
        let (kref, h) = self.next_raw()?;
        Some((
            OakRBuffer::key(
                self.cursor.map.pool().clone(),
                kref,
                self.cursor.pin.clone(),
            ),
            OakRBuffer::value(self.cursor.map.value_store().clone(), h),
        ))
    }
}

/// Descending iterator implementing the stack algorithm of Figure 2.
///
/// Within a chunk: locate the last relevant entry via the sorted prefix,
/// walk each bypass run while pushing entries on a stack, pop to yield,
/// step one prefix cell back when the stack drains. On chunk exhaustion,
/// query the index for the chunk with the greatest `minKey` strictly
/// smaller than the current chunk's. When the chunk is frozen and replaced
/// mid-scan, drop the (stale) stack and re-enter the live replacement
/// bounded strictly below the last yielded key. Complexity for a scan of S
/// keys over N: O(S/B · log N + S) instead of the skiplist's O(S log N).
pub struct DescendIter<'a, C: KeyComparator> {
    map: &'a OakMap<C>,
    chunk: Option<Arc<Chunk>>,
    /// Entries pending in descending order (top = largest remaining).
    stack: Vec<u32>,
    /// Next prefix cell to refill from; -1 = the pre-prefix head run,
    /// -2 = chunk exhausted.
    next_prefix: i64,
    /// Inclusive upper bound the scan started from (`None` = the end).
    from: Option<Box<[u8]>>,
    /// Inclusive lower bound of the scan.
    lo: Option<Box<[u8]>>,
    /// Cached order-preserving prefix of `lo` (0 = no information).
    lo_prefix: u64,
    /// Last key yielded: the strict re-entry bound after a concurrent
    /// rebalance replaces the chunk under the scan.
    last_yielded: Option<SliceRef>,
    /// One-item lookahead (set by [`skip_exact`](Self::skip_exact)).
    pending: Option<(SliceRef, HeaderRef)>,
    done: bool,
    /// Lifetime epoch pin (see [`AscendCursor::pin`]).
    pin: Arc<EpochPin>,
    /// Batch mode on (`OakMapConfig::batch_scan`)?
    batch_mode: bool,
    /// Fill-time value leases on (see [`AscendCursor::locked_scan`]).
    locked_scan: bool,
    /// Reusable snapshot buffer: a tail window of the current chunk's
    /// in-range live entries in *ascending* order, drained from the
    /// back. Descending scans need the highest keys first, so the
    /// [`SCAN_BATCH`] cap bounds the window's start *below the upper
    /// bound* (see [`Self::window_more`]).
    batch: Vec<BatchEntry>,
    /// Elements of `batch` not yet drained (drain position counts down).
    rpos: usize,
    /// The chunk's revision stamp when `batch` was snapshotted.
    batch_rev: u64,
    /// The current batch is a capped *tail window* of the chunk: in-range
    /// entries below [`Self::window_bound`] were deliberately left
    /// uncollected, and the refill must re-enter this chunk (bound
    /// tightened) instead of hopping to the predecessor.
    window_more: bool,
    /// The key of the prefix cell the capped snapshot started from
    /// (pinned, like `last_yielded`): the next window's exclusive upper
    /// bound. Everything at or above it was already examined.
    window_bound: Option<SliceRef>,
    /// This chunk covers the scan's lower end: once `batch` drains the
    /// scan is over, no predecessor hop needed.
    tail_done: bool,
}

impl<'a, C: KeyComparator> DescendIter<'a, C> {
    /// Set-API iterator: no fill-time leases (see [`AscendCursor::new`]).
    pub(crate) fn new(map: &'a OakMap<C>, from: Option<&[u8]>, lo: Option<&[u8]>) -> Self {
        Self::with_mode(map, from, lo, false)
    }

    /// Stream-drain iterator: fill-time value leases on.
    pub(crate) fn new_stream(map: &'a OakMap<C>, from: Option<&[u8]>, lo: Option<&[u8]>) -> Self {
        Self::with_mode(map, from, lo, true)
    }

    fn with_mode(
        map: &'a OakMap<C>,
        from: Option<&[u8]>,
        lo: Option<&[u8]>,
        locked_scan: bool,
    ) -> Self {
        let pin = Arc::new(map.reclaim.pin());
        let mut it = DescendIter {
            map,
            chunk: None,
            stack: Vec::new(),
            next_prefix: -2,
            from: from.map(|f| f.into()),
            lo: lo.map(|l| l.into()),
            lo_prefix: lo.map_or(0, |l| map.key_prefix(l)),
            last_yielded: None,
            pending: None,
            done: false,
            pin,
            batch_mode: map.config.batch_scan,
            locked_scan,
            batch: Vec::new(),
            rpos: 0,
            batch_rev: 0,
            window_more: false,
            window_bound: None,
            tail_done: false,
        };
        let chunk = it.start_chunk(from);
        if it.batch_mode {
            it.enter_chunk_batch(chunk, from.map(|f| (f, true)));
        } else {
            it.enter_chunk(chunk, from, true);
        }
        it
    }

    /// Releases every fill-time value lease still parked in the batch
    /// buffer (see [`AscendCursor::release_batch_locks`]).
    fn release_batch_locks(&mut self) {
        if !self.locked_scan {
            return;
        }
        let store = self.map.value_store();
        for e in &mut self.batch {
            if e.hbase != 0 {
                // SAFETY: the token was minted by `scan_lock` during this
                // batch's fill and the read lock is still held.
                unsafe { store.scan_unlock(e.hbase) };
                e.hbase = 0;
            }
        }
    }

    /// Snapshots `chunk`'s in-range live entries (ascending) into the
    /// reusable buffer. `ub` is the batch's upper bound
    /// `(key, inclusive)` — the scan start, the predecessor hop's
    /// exclusive old `min_key`, or the strict revalidation bound; the
    /// lower end is positioned once via `lower_bound(lo)`, so the drain
    /// needs no per-entry `lo` checks.
    fn enter_chunk_batch(&mut self, chunk: Arc<Chunk>, ub: Option<(&[u8], bool)>) {
        self.release_batch_locks();
        let map = self.map;
        let pool = map.pool();
        if self.batch.capacity() > 0 {
            pool.note_scan_buffer_reuse();
        }
        self.batch.clear();
        self.batch_rev = chunk.revision();
        let mut start = match &self.lo {
            Some(l) => chunk.lower_bound(pool, &map.cmp, l),
            None => chunk.head_entry(),
        };
        // Tail-window cap: the drain needs the *highest* in-range keys
        // first, and a capped stream scan (the common case) may never
        // reach the low end — snapshotting (and leasing) the whole
        // in-range chunk would waste collection work on entries the
        // drain never delivers. Start at most [`SCAN_BATCH`] prefix
        // cells below the upper bound instead (bypass runs between the
        // cells only widen the window); a drained window re-enters this
        // chunk with the bound tightened to its start cell.
        self.window_more = false;
        self.window_bound = None;
        let sc = chunk.sorted_count();
        if start != NONE && start < sc {
            let top = match ub {
                Some((b, inclusive)) => {
                    // Count of prefix cells within the upper bound.
                    let bp = map.key_prefix(b);
                    let (mut a, mut z) = (0i64, sc as i64);
                    while a < z {
                        let mid = (a + z) / 2;
                        let below = match chunk.compare_entry_key(pool, &map.cmp, mid as u32, b, bp)
                        {
                            std::cmp::Ordering::Less => true,
                            std::cmp::Ordering::Equal => inclusive,
                            std::cmp::Ordering::Greater => false,
                        };
                        if below {
                            a = mid + 1;
                        } else {
                            z = mid;
                        }
                    }
                    a
                }
                None => sc as i64,
            };
            let capped = top - SCAN_BATCH as i64;
            if capped > start as i64 {
                start = capped as u32;
                self.window_more = true;
                self.window_bound = Some(chunk.key_ref(start));
            }
        }
        let ub_opt: Option<(&[u8], u64, bool)> =
            ub.map(|(b, inclusive)| (b, map.key_prefix(b), inclusive));
        let store = map.value_store();
        let locked = self.locked_scan;
        chunk.collect_batch(
            pool,
            &map.cmp,
            start,
            None,
            ub_opt,
            usize::MAX,
            |h| {
                if locked {
                    // Fill-time lease (see the ascending fill site).
                    match store.scan_lock(h) {
                        ScanLock::Held { hbase, vptr, vlen } => Some((hbase, vptr, vlen)),
                        ScanLock::Contended => Some((0, 0, 0)),
                        ScanLock::Dead => None,
                    }
                } else if store.is_deleted(h) {
                    None
                } else {
                    Some((0, 0, 0))
                }
            },
            &mut self.batch,
        );
        self.rpos = self.batch.len();
        pool.note_scan_chunk_batch();
        // Predecessor chunks hold keys < minKey; when minKey ≤ lo (or
        // this is the first chunk) they are all out of range. A capped
        // window is never the end: lower in-range entries remain here.
        self.tail_done = !self.window_more
            && (chunk.min_key.is_empty()
                || self.lo.as_ref().is_some_and(|l| {
                    map.cmp.compare(&chunk.min_key, l) != std::cmp::Ordering::Greater
                }));
        self.chunk = Some(chunk);
    }

    /// Prepares the next descending batch: revalidate the drained chunk
    /// (replacement pointer + revision stamp, once per batch), then
    /// either re-locate through the index (stale) or hop to the
    /// predecessor chunk.
    fn refill_batch(&mut self) {
        oak_failpoints::sync_point!("iter/batch-refill");
        oak_failpoints::fail_point!("iter/batch-refill");
        let map = self.map;
        let Some(chunk) = self.chunk.take() else {
            return;
        };
        if chunk.replacement().is_some() || chunk.revision() != self.batch_rev {
            map.pool().note_scan_revalidation();
            match self.last_yielded {
                Some(lk) => {
                    // SAFETY: key buffers are immutable; `lk` is pinned.
                    let lb = unsafe { map.pool().slice(lk) };
                    let live = map.locate_chunk(lb);
                    self.enter_chunk_batch(live, Some((lb, false)));
                }
                None => {
                    // Nothing yielded yet: redo the initial positioning.
                    let from = self.from.take();
                    let chunk = self.start_chunk(from.as_deref());
                    self.enter_chunk_batch(chunk, from.as_deref().map(|f| (f, true)));
                    self.from = from;
                }
            }
            return;
        }
        if self.window_more {
            // The capped tail window drained; lower in-range entries of
            // this same chunk remain. Re-enter strictly below the
            // window's start cell — everything at or above it was
            // examined (live entries delivered, dead ones skipped; a
            // concurrent revive of a dead one counts as an insert after
            // the scan start, which §1.1 lets us miss).
            let wb = self
                .window_bound
                .expect("a capped fill records its start key");
            // SAFETY: key buffers are immutable; `wb` is pinned.
            let bb = unsafe { map.pool().slice(wb) };
            self.enter_chunk_batch(chunk, Some((bb, false)));
            return;
        }
        if chunk.min_key.is_empty() {
            self.chunk = None; // the first chunk has no predecessor
            return;
        }
        let prev = map.index.floor_before(&chunk.min_key);
        // Everything ≥ old minKey was already returned: bound strictly.
        self.enter_chunk_batch(prev, Some((&chunk.min_key, false)));
    }

    /// Batch-mode advance: drain the buffer back-to-front, refilling
    /// between chunks.
    fn next_batch(&mut self) -> Option<(SliceRef, HeaderRef)> {
        loop {
            if self.rpos > 0 {
                oak_failpoints::sync_point!("iter/batch-step");
                let item = self.batch[self.rpos - 1];
                self.rpos -= 1;
                self.last_yielded = Some(item.key);
                return Some((item.key, item.hdr));
            }
            if self.tail_done || self.chunk.is_none() {
                self.done = true;
                return None;
            }
            self.refill_batch();
        }
    }

    /// Bulk drain (descending): see [`AscendCursor::drain`]. Honors a
    /// parked [`skip_exact`](Self::skip_exact) lookahead first.
    pub(crate) fn drain(&mut self, mut f: impl FnMut(&[u8], ValueView<'_>) -> bool) {
        if let Some((kref, h)) = self.pending.take() {
            // SAFETY: key buffers are immutable; `kref` is pinned.
            let kb = unsafe { self.map.pool().slice(kref) };
            if !f(kb, ValueView::Read(h)) {
                return;
            }
        }
        if self.done {
            return;
        }
        if !self.batch_mode {
            while let Some((kref, h)) = self.next_raw() {
                // SAFETY: key buffers are immutable; `kref` is pinned.
                let kb = unsafe { self.map.pool().slice(kref) };
                if !f(kb, ValueView::Read(h)) {
                    return;
                }
            }
            return;
        }
        let store = self.map.value_store();
        loop {
            while self.rpos > 0 {
                oak_failpoints::sync_point!("iter/batch-step");
                let item = self.batch[self.rpos - 1];
                self.rpos -= 1;
                self.last_yielded = Some(item.key);
                // SAFETY: the iterator's epoch pin is held for its
                // lifetime.
                let kb = unsafe { item.key_bytes() };
                let keep = if item.hbase != 0 {
                    oak_failpoints::fail_point!("value/read");
                    // SAFETY: the fill-time read lock is still held, so the
                    // payload cannot be torn, resized, or freed under the
                    // callback.
                    let vb: &[u8] = if item.vlen == 0 {
                        &[]
                    } else {
                        unsafe {
                            std::slice::from_raw_parts(item.vptr as *const u8, item.vlen as usize)
                        }
                    };
                    let keep = f(kb, ValueView::Leased(vb));
                    // Retire the lease the moment the callback returns
                    // (see the ascending drain).
                    // SAFETY: minted by this batch's fill, still held.
                    unsafe { store.scan_unlock(item.hbase) };
                    self.batch[self.rpos].hbase = 0;
                    keep
                } else {
                    f(kb, ValueView::Read(item.hdr))
                };
                if !keep {
                    return;
                }
            }
            if self.tail_done || self.chunk.is_none() {
                self.done = true;
                return;
            }
            self.refill_batch();
        }
    }

    /// The chunk containing `from`, or the last chunk when unbounded.
    fn start_chunk(&self, from: Option<&[u8]>) -> Arc<Chunk> {
        match from {
            Some(k) => self.map.locate_chunk(k),
            None => {
                let mut c = self.map.first_chunk();
                loop {
                    while let Some(r) = c.replacement() {
                        c = r.clone();
                    }
                    match c.next_chunk() {
                        Some(n) => c = n,
                        None => break,
                    }
                }
                c
            }
        }
    }

    /// Initializes the stack for `chunk`: pushes every entry with key ≤
    /// `bound` (or < when `inclusive` is false; unbounded when `None`).
    fn enter_chunk(&mut self, chunk: Arc<Chunk>, bound: Option<&[u8]>, inclusive: bool) {
        let pool = self.map.pool();
        let cmp = &self.map.cmp;
        self.stack.clear();
        // Bound prefix, computed once per chunk entry: probes and the
        // in-bound walk compare cached prefixes first, dereferencing
        // off-heap key bytes only on ties.
        let bp = bound.map_or(0, |b| self.map.key_prefix(b));

        let in_bound = |idx: u32| match bound {
            None => true,
            Some(b) => match chunk.compare_entry_key(pool, cmp, idx, b, bp) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Equal => inclusive,
                std::cmp::Ordering::Greater => false,
            },
        };

        // The starting prefix cell: the last prefix entry within bound.
        // (prefix_floor is inclusive-≤; adjust for the exclusive case by
        // walking with `in_bound` below anyway.)
        let start = match bound {
            Some(b) => {
                // Largest prefix index with key ≤ b; may still be out of
                // bound in the exclusive case — in_bound filters.
                let n = chunk.sorted_count() as i64;
                let (mut a, mut z) = (0i64, n);
                while a < z {
                    let mid = (a + z) / 2;
                    if chunk.compare_entry_key(pool, cmp, mid as u32, b, bp)
                        == std::cmp::Ordering::Greater
                    {
                        z = mid;
                    } else {
                        a = mid + 1;
                    }
                }
                a - 1
            }
            None => chunk.sorted_count() as i64 - 1,
        };

        // Initial run: from prefix cell `start` (or the head run when the
        // prefix is empty / bound precedes it) pushing in-bound entries.
        let first_entry = if start >= 0 {
            start as u32
        } else {
            chunk.head_entry()
        };
        let mut cur = first_entry;
        let mut first = true;
        while cur != NONE {
            // Stop when the run flows into the prefix region (those cells
            // are handled by later refills), except for the starting cell.
            if !first && start >= 0 && cur < chunk.sorted_count() {
                break;
            }
            if start < 0 && cur < chunk.sorted_count() {
                // Head run reached the first prefix cell: prefix cells are
                // all > bound here (start < 0), so stop.
                break;
            }
            if !in_bound(cur) {
                break;
            }
            self.stack.push(cur);
            first = false;
            cur = chunk.entry_next(cur);
        }
        self.next_prefix = if start >= 0 { start - 1 } else { -2 };
        self.chunk = Some(chunk);
    }

    /// The chunk under us was frozen and replaced by a concurrent
    /// rebalance (the stack and bypass links are a stale snapshot): chase
    /// to the live chunk covering the resume point and rebuild the stack,
    /// bounded strictly below the last yielded key so no key repeats.
    fn reposition(&mut self) {
        self.chunk = None;
        match self.last_yielded {
            Some(lk) => {
                let map = self.map;
                // SAFETY: key buffers are immutable and never freed.
                let lb = unsafe { map.pool().slice(lk) };
                let live = map.locate_chunk(lb);
                self.enter_chunk(live, Some(lb), false);
            }
            None => {
                // Nothing yielded yet: redo the initial positioning.
                let from = self.from.clone();
                let chunk = self.start_chunk(from.as_deref());
                self.enter_chunk(chunk, from.as_deref(), true);
            }
        }
    }

    /// Refills the stack from the next prefix cell back (Figure 2's
    /// "move one entry back in the prefix and traverse the bypass").
    fn refill(&mut self) -> bool {
        oak_failpoints::sync_point!("iter/descend-refill");
        oak_failpoints::fail_point!("iter/descend-refill");
        let Some(chunk) = self.chunk.clone() else {
            return false;
        };
        loop {
            if self.next_prefix == -2 {
                return false;
            }
            if self.next_prefix == -1 {
                // The run of bypasses before the first prefix cell.
                let mut cur = chunk.head_entry();
                while cur != NONE && cur >= chunk.sorted_count() {
                    self.stack.push(cur);
                    cur = chunk.entry_next(cur);
                }
                self.next_prefix = -2;
                if !self.stack.is_empty() {
                    return true;
                }
                return false;
            }
            // Walk from prefix cell p through its bypass run, stopping at
            // the next prefix cell (already covered by a previous run).
            let p = self.next_prefix as u32;
            self.next_prefix -= 1;
            let mut cur = p;
            let mut first = true;
            while cur != NONE {
                if !first && cur < chunk.sorted_count() {
                    break;
                }
                self.stack.push(cur);
                first = false;
                cur = chunk.entry_next(cur);
            }
            if !self.stack.is_empty() {
                return true;
            }
        }
    }

    /// Moves to the chunk preceding the current one (index query for the
    /// greatest `minKey` strictly smaller — §4.2).
    fn prev_chunk(&mut self) -> bool {
        oak_failpoints::sync_point!("iter/descend-prev");
        oak_failpoints::fail_point!("iter/descend-prev");
        let Some(chunk) = self.chunk.take() else {
            return false;
        };
        if chunk.min_key.is_empty() {
            return false; // the first chunk has no predecessor
        }
        let prev = self.map.index.floor_before(&chunk.min_key);
        // Everything ≥ old minKey was already returned: bound strictly.
        let bound = chunk.min_key.clone();
        self.enter_chunk(prev, Some(&bound), false);
        true
    }

    /// Drops the next entry if its key is exactly `key` (used by bounded
    /// views whose upper bound is exclusive).
    pub(crate) fn skip_exact(&mut self, key: &[u8]) {
        if let Some((kref, h)) = self.next_raw() {
            let kb = unsafe { self.map.pool().slice(kref) };
            if self.map.cmp.compare(kb, key) != std::cmp::Ordering::Equal {
                self.pending = Some((kref, h));
            }
        }
    }

    /// Next raw live entry in descending order.
    pub(crate) fn next_raw(&mut self) -> Option<(SliceRef, HeaderRef)> {
        if let Some(item) = self.pending.take() {
            return Some(item);
        }
        if self.done {
            return None;
        }
        if self.batch_mode {
            return self.next_batch();
        }
        loop {
            oak_failpoints::sync_point!("iter/descend-step");
            let stale = self
                .chunk
                .as_ref()
                .is_some_and(|c| c.replacement().is_some());
            if stale {
                oak_failpoints::sync_point!("iter/stale-reenter");
                oak_failpoints::fail_point!("iter/stale-reenter");
                self.reposition();
            }
            if self.stack.is_empty() && !self.refill() && !self.prev_chunk() {
                self.done = true;
                return None;
            }
            let Some(idx) = self.stack.pop() else {
                continue;
            };
            let chunk = self.chunk.as_ref()?;
            if let Some(l) = &self.lo {
                let ord =
                    chunk.compare_entry_key(self.map.pool(), &self.map.cmp, idx, l, self.lo_prefix);
                if ord == std::cmp::Ordering::Less {
                    self.done = true; // descending: below lo means finished
                    return None;
                }
            }
            let Some(h) = chunk.value_ref(idx) else {
                continue;
            };
            if self.map.value_store().is_deleted(h) {
                continue;
            }
            self.last_yielded = Some(chunk.key_ref(idx));
            return Some((chunk.key_ref(idx), h));
        }
    }
}

impl<C: KeyComparator> Drop for DescendIter<'_, C> {
    fn drop(&mut self) {
        // An early-stopped scan's undrained tail still holds its
        // fill-time leases; retire them here.
        self.release_batch_locks();
    }
}

impl<C: KeyComparator> Iterator for DescendIter<'_, C> {
    type Item = (OakRBuffer, OakRBuffer);

    fn next(&mut self) -> Option<Self::Item> {
        let (kref, h) = self.next_raw()?;
        Some((
            OakRBuffer::key(self.map.pool().clone(), kref, self.pin.clone()),
            OakRBuffer::value(self.map.value_store().clone(), h),
        ))
    }
}

// Stream scans (no per-entry objects): the fast path Figure 4e/4f contrast
// against the Set-API iterators above.
impl<C: KeyComparator> OakMap<C> {
    /// Ascending zero-copy scan over `[lo, hi)` (unbounded where `None`):
    /// the *stream* API — no per-entry objects, `f` borrows key and value
    /// bytes directly. Returns entries visited; stops early when `f`
    /// returns `false`.
    pub fn for_each_in(
        &self,
        lo: Option<&[u8]>,
        hi: Option<&[u8]>,
        mut f: impl FnMut(&[u8], &[u8]) -> bool,
    ) -> usize {
        let mut count = 0;
        let mut cursor = AscendCursor::new_stream(self, lo, hi);
        cursor.drain(|kb, v| match v {
            // Leased bytes are pre-resolved and lock-covered since fill.
            ValueView::Leased(vb) => {
                count += 1;
                f(kb, vb)
            }
            ValueView::Read(h) => match self.value_store().read(h, |vb| f(kb, vb)) {
                Ok(keep) => {
                    count += 1;
                    keep
                }
                Err(_) => true, // deleted under the iterator: skip
            },
        });
        count
    }

    /// Budgeted ascending stream scan: like
    /// [`for_each_in`](OakMap::for_each_in) but cooperative — the deadline
    /// is checked periodically, header-lock waits are clamped by it, and
    /// the degraded-mode controller may shed the scan once it has visited
    /// [`OverloadConfig::degraded_scan_limit`](crate::OverloadConfig)
    /// entries. Returns the entries visited, or the typed budget error
    /// ([`OakError::DeadlineExceeded`](crate::OakError), `Overloaded`, or
    /// `Contended`). Entries already handed to `f` stay handed — shedding
    /// is a truncation, never a rollback.
    pub fn for_each_in_budgeted(
        &self,
        lo: Option<&[u8]>,
        hi: Option<&[u8]>,
        budget: &crate::OpBudget,
        mut f: impl FnMut(&[u8], &[u8]) -> bool,
    ) -> Result<u64, crate::OakError> {
        use crate::overload::OverloadState;
        /// Entries between deadline checks: cheap enough to keep overrun
        /// small, coarse enough to keep `Instant::now` off the per-entry
        /// path.
        const SCAN_CHECK_INTERVAL: u64 = 64;
        budget.check(self.pool())?;
        let shed_after = match self.overload.state() {
            OverloadState::Healthy => u64::MAX,
            OverloadState::Degraded | OverloadState::Critical => {
                let limit = self.overload.config().degraded_scan_limit;
                if limit == 0 {
                    u64::MAX
                } else {
                    limit
                }
            }
        };
        let mut count: u64 = 0;
        let mut failure: Option<crate::OakError> = None;
        let mut cursor = AscendCursor::new_stream(self, lo, hi);
        cursor.drain(|kb, v| {
            if count >= shed_after {
                self.pool().note_scan_shed();
                failure = Some(crate::OakError::Overloaded);
                return false;
            }
            if count > 0 && count.is_multiple_of(SCAN_CHECK_INTERVAL) && budget.expired() {
                self.pool().note_deadline_exceeded();
                failure = Some(crate::OakError::DeadlineExceeded);
                return false;
            }
            match v {
                // Leased bytes involve no waiting, so the deadline cannot
                // clamp anything — deliver directly.
                ValueView::Leased(vb) => {
                    count += 1;
                    f(kb, vb)
                }
                ValueView::Read(h) => {
                    match self
                        .value_store()
                        .read_at(h, budget.deadline, |vb| f(kb, vb))
                    {
                        Ok(keep) => {
                            count += 1;
                            keep
                        }
                        Err(oak_mempool::AccessError::Deleted) => true, // skip
                        Err(oak_mempool::AccessError::Contended(info)) => {
                            if budget.expired() {
                                self.pool().note_deadline_exceeded();
                                failure = Some(crate::OakError::DeadlineExceeded);
                            } else {
                                failure = Some(crate::OakError::Contended(info));
                            }
                            false
                        }
                    }
                }
            }
        });
        match failure {
            Some(e) => Err(e),
            None => Ok(count),
        }
    }

    /// Descending stream scan (no per-entry objects). Returns entries
    /// visited; stops early when `f` returns `false`.
    pub fn for_each_descending(
        &self,
        from: Option<&[u8]>,
        lo: Option<&[u8]>,
        mut f: impl FnMut(&[u8], &[u8]) -> bool,
    ) -> usize {
        let mut count = 0;
        let mut it = DescendIter::new_stream(self, from, lo);
        it.drain(|kb, v| match v {
            // Leased bytes are pre-resolved and lock-covered since fill.
            ValueView::Leased(vb) => {
                count += 1;
                f(kb, vb)
            }
            ValueView::Read(h) => match self.value_store().read(h, |vb| f(kb, vb)) {
                Ok(keep) => {
                    count += 1;
                    keep
                }
                Err(_) => true, // deleted under the iterator: skip
            },
        });
        count
    }
}
