//! Key comparators over serialized bytes.
//!
//! "To allow efficient search over buffer-resident keys, the user is
//! further required to provide a comparator" (§2.1). Comparators order the
//! *serialized* key bytes so searches never deserialize.

use std::cmp::Ordering;

/// Total order over serialized key bytes.
///
/// Implementations must be cheap to clone (they are typically zero-sized)
/// and must treat the empty byte string as the infimum: Oak's first chunk
/// uses the empty key as its `minKey` (−∞).
pub trait KeyComparator: Send + Sync + Clone + 'static {
    /// Compares two serialized keys.
    fn compare(&self, a: &[u8], b: &[u8]) -> Ordering;
}

/// Plain lexicographic byte order; correct for big-endian-encoded integers
/// and UTF-8 strings, and the comparator used throughout the benchmarks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Lexicographic;

impl KeyComparator for Lexicographic {
    #[inline]
    fn compare(&self, a: &[u8], b: &[u8]) -> Ordering {
        a.cmp(b)
    }
}

/// Numeric order for 8-byte big-endian `u64` keys (equivalent to
/// lexicographic on the bytes, provided as a typed convenience; the empty
/// key sorts first).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct U64BeComparator;

impl KeyComparator for U64BeComparator {
    #[inline]
    fn compare(&self, a: &[u8], b: &[u8]) -> Ordering {
        match (a.len(), b.len()) {
            (8, 8) => {
                let x = u64::from_be_bytes(a.try_into().unwrap());
                let y = u64::from_be_bytes(b.try_into().unwrap());
                x.cmp(&y)
            }
            // Shorter keys (notably the empty −∞ minKey) sort first.
            _ => a.len().cmp(&b.len()).then_with(|| a.cmp(b)),
        }
    }
}

/// An owned key ordered by a [`KeyComparator`] — the key type of Oak's
/// on-heap chunk index.
#[derive(Debug, Clone)]
pub(crate) struct MinKey<C> {
    pub(crate) bytes: Box<[u8]>,
    pub(crate) cmp: C,
}

impl<C: KeyComparator> MinKey<C> {
    pub(crate) fn new(bytes: &[u8], cmp: C) -> Self {
        MinKey {
            bytes: bytes.into(),
            cmp,
        }
    }
}

impl<C: KeyComparator> PartialEq for MinKey<C> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp.compare(&self.bytes, &other.bytes) == Ordering::Equal
    }
}
impl<C: KeyComparator> Eq for MinKey<C> {}
impl<C: KeyComparator> PartialOrd for MinKey<C> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<C: KeyComparator> Ord for MinKey<C> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp.compare(&self.bytes, &other.bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexicographic_order() {
        let c = Lexicographic;
        assert_eq!(c.compare(b"", b"a"), Ordering::Less);
        assert_eq!(c.compare(b"a", b"a"), Ordering::Equal);
        assert_eq!(c.compare(b"ab", b"b"), Ordering::Less);
    }

    #[test]
    fn u64_be_order_matches_numeric() {
        let c = U64BeComparator;
        for (x, y) in [(0u64, 1u64), (255, 256), (1 << 40, (1 << 40) + 1)] {
            assert_eq!(
                c.compare(&x.to_be_bytes(), &y.to_be_bytes()),
                Ordering::Less,
                "{x} < {y}"
            );
        }
        assert_eq!(c.compare(b"", &0u64.to_be_bytes()), Ordering::Less);
    }

    #[test]
    fn min_key_ordering_uses_comparator() {
        let a = MinKey::new(&5u64.to_be_bytes(), U64BeComparator);
        let b = MinKey::new(&10u64.to_be_bytes(), U64BeComparator);
        assert!(a < b);
        let inf = MinKey::new(b"", U64BeComparator);
        assert!(inf < a);
    }
}
