//! Key comparators over serialized bytes.
//!
//! "To allow efficient search over buffer-resident keys, the user is
//! further required to provide a comparator" (§2.1). Comparators order the
//! *serialized* key bytes so searches never deserialize.

use std::cmp::Ordering;

/// Total order over serialized key bytes.
///
/// Implementations must be cheap to clone (they are typically zero-sized)
/// and must treat the empty byte string as the infimum: Oak's first chunk
/// uses the empty key as its `minKey` (−∞).
pub trait KeyComparator: Send + Sync + Clone + 'static {
    /// Compares two serialized keys.
    fn compare(&self, a: &[u8], b: &[u8]) -> Ordering;

    /// An order-preserving 64-bit prefix of `key`, used by chunks to
    /// short-circuit comparisons against cached on-heap prefixes without
    /// dereferencing off-heap key bytes.
    ///
    /// # Contract
    ///
    /// For any two keys `a`, `b` with `prefix(a) = Some(pa)`,
    /// `prefix(b) = Some(pb)`:
    ///
    /// - `pa < pb` implies `compare(a, b) == Less`, and symmetrically for
    ///   `Greater` (equivalently: `compare(a, b) == Less` implies
    ///   `pa <= pb`). Equal prefixes imply nothing — the caller falls back
    ///   to [`compare`](Self::compare) on a tie.
    /// - A prefix of `0` is reserved as "no information": the chunk layer
    ///   stores `None` as `0` and always falls back to a full compare when
    ///   either side's stored prefix is `0`. Implementations may return
    ///   `Some(0)` freely — it is treated exactly like `None` and can only
    ///   cost a full compare, never a wrong verdict.
    ///
    /// Returning `None` for every key (the default) opts the comparator
    /// out of prefix acceleration entirely.
    #[inline]
    fn prefix(&self, key: &[u8]) -> Option<u64> {
        let _ = key;
        None
    }
}

/// The canonical order-preserving prefix for lexicographic byte order:
/// the first eight bytes, big-endian, zero-padded on the right. Strict
/// inequality of padded prefixes implies strict lexicographic order of the
/// keys (the first differing padded byte is either a real byte difference
/// or a zero pad against a real byte, and a zero pad means the shorter key
/// is a proper prefix of the longer, hence lexicographically smaller).
#[inline]
pub fn lexicographic_prefix(key: &[u8]) -> u64 {
    let mut buf = [0u8; 8];
    let n = key.len().min(8);
    buf[..n].copy_from_slice(&key[..n]);
    u64::from_be_bytes(buf)
}

/// Plain lexicographic byte order; correct for big-endian-encoded integers
/// and UTF-8 strings, and the comparator used throughout the benchmarks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Lexicographic;

impl KeyComparator for Lexicographic {
    #[inline]
    fn compare(&self, a: &[u8], b: &[u8]) -> Ordering {
        a.cmp(b)
    }

    #[inline]
    fn prefix(&self, key: &[u8]) -> Option<u64> {
        Some(lexicographic_prefix(key))
    }
}

/// Numeric order for 8-byte big-endian `u64` keys (equivalent to
/// lexicographic on the bytes, provided as a typed convenience; the empty
/// key sorts first).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct U64BeComparator;

impl KeyComparator for U64BeComparator {
    #[inline]
    fn compare(&self, a: &[u8], b: &[u8]) -> Ordering {
        match (a.len(), b.len()) {
            (8, 8) => {
                let x = u64::from_be_bytes(a.try_into().unwrap());
                let y = u64::from_be_bytes(b.try_into().unwrap());
                x.cmp(&y)
            }
            // Shorter keys (notably the empty −∞ minKey) sort first.
            _ => a.len().cmp(&b.len()).then_with(|| a.cmp(b)),
        }
    }

    /// Only 8-byte keys get a prefix: this comparator sorts non-8-byte
    /// keys by length first, which zero-padded byte prefixes do not
    /// preserve (e.g. `[1]` sorts before `[0, 2]` here but its padded
    /// prefix is larger). Odd-length keys fall back to full compares.
    #[inline]
    fn prefix(&self, key: &[u8]) -> Option<u64> {
        if key.len() == 8 {
            Some(u64::from_be_bytes(key.try_into().unwrap()))
        } else {
            None
        }
    }
}

/// An owned key ordered by a [`KeyComparator`] — the key type of Oak's
/// on-heap chunk index.
#[derive(Debug, Clone)]
pub(crate) struct MinKey<C> {
    pub(crate) bytes: Box<[u8]>,
    pub(crate) cmp: C,
}

impl<C: KeyComparator> MinKey<C> {
    pub(crate) fn new(bytes: &[u8], cmp: C) -> Self {
        MinKey {
            bytes: bytes.into(),
            cmp,
        }
    }
}

impl<C: KeyComparator> PartialEq for MinKey<C> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp.compare(&self.bytes, &other.bytes) == Ordering::Equal
    }
}
impl<C: KeyComparator> Eq for MinKey<C> {}
impl<C: KeyComparator> PartialOrd for MinKey<C> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<C: KeyComparator> Ord for MinKey<C> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp.compare(&self.bytes, &other.bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexicographic_order() {
        let c = Lexicographic;
        assert_eq!(c.compare(b"", b"a"), Ordering::Less);
        assert_eq!(c.compare(b"a", b"a"), Ordering::Equal);
        assert_eq!(c.compare(b"ab", b"b"), Ordering::Less);
    }

    #[test]
    fn u64_be_order_matches_numeric() {
        let c = U64BeComparator;
        for (x, y) in [(0u64, 1u64), (255, 256), (1 << 40, (1 << 40) + 1)] {
            assert_eq!(
                c.compare(&x.to_be_bytes(), &y.to_be_bytes()),
                Ordering::Less,
                "{x} < {y}"
            );
        }
        assert_eq!(c.compare(b"", &0u64.to_be_bytes()), Ordering::Less);
    }

    /// Exhaustive-ish check of the prefix contract: strict prefix
    /// inequality must imply the same strict compare verdict.
    #[test]
    fn prefix_order_preservation() {
        let keys: Vec<Vec<u8>> = vec![
            vec![],
            vec![0],
            vec![0, 0],
            vec![0, 1],
            vec![1],
            vec![1, 0],
            vec![1, 0, 0, 0, 0, 0, 0, 0],
            vec![1, 0, 0, 0, 0, 0, 0, 0, 0],
            vec![1, 0, 0, 0, 0, 0, 0, 0, 1],
            vec![2],
            b"abcdefg".to_vec(),
            b"abcdefgh".to_vec(),
            b"abcdefghi".to_vec(),
            b"abcdefgi".to_vec(),
            vec![255; 7],
            vec![255; 8],
            vec![255; 9],
        ];
        let c = Lexicographic;
        for a in &keys {
            for b in &keys {
                let (pa, pb) = (c.prefix(a).unwrap(), c.prefix(b).unwrap());
                if pa < pb {
                    assert_eq!(c.compare(a, b), Ordering::Less, "{a:?} vs {b:?}");
                } else if pa > pb {
                    assert_eq!(c.compare(a, b), Ordering::Greater, "{a:?} vs {b:?}");
                }
            }
        }
        let c = U64BeComparator;
        for a in &keys {
            for b in &keys {
                let (Some(pa), Some(pb)) = (c.prefix(a), c.prefix(b)) else {
                    continue;
                };
                if pa < pb {
                    assert_eq!(c.compare(a, b), Ordering::Less, "{a:?} vs {b:?}");
                } else if pa > pb {
                    assert_eq!(c.compare(a, b), Ordering::Greater, "{a:?} vs {b:?}");
                }
            }
        }
    }

    #[test]
    fn min_key_ordering_uses_comparator() {
        let a = MinKey::new(&5u64.to_be_bytes(), U64BeComparator);
        let b = MinKey::new(&10u64.to_be_bytes(), U64BeComparator);
        assert!(a < b);
        let inf = MinKey::new(b"", U64BeComparator);
        assert!(inf < a);
    }
}
