//! Query and update operations (Algorithms 1–3): the retry loops, help
//! paths, and linearization points of `get`, `doPut`, and `doIfPresent`.
//!
//! [`map`](crate::map) holds the public shell and construction;
//! [`index`](crate::index) resolves keys to chunks; this module owns the
//! per-operation logic moved verbatim from the original monolithic map.
//!
//! Every retry loop here is *budgeted*: operations run under an
//! [`OpBudget`] whose deadline is consulted at the top of each attempt —
//! before the attempt allocates or publishes anything — and whose
//! [`RetryPolicy`](crate::RetryPolicy) paces retries of transient failures
//! (header-lock contention, injected faults). The unbudgeted public API
//! derives its budget from [`OakMapConfig`](crate::OakMapConfig), which
//! defaults to the historical "run forever, retry immediately" discipline.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use oak_mempool::{AllocError, ContendedInfo, SliceRef};

use crate::budget::{OpBudget, RetryState};
use crate::buffer::{OakRBuffer, OakWBuffer};
use crate::chunk::LinkOutcome;
use crate::cmp::KeyComparator;
use crate::error::OakError;
use crate::map::OakMap;
use crate::overload::OverloadState;
use crate::reclaim::EpochPin;

/// Emergency-reclamation retries per operation: one allocation failure may
/// be recovered per allocation site an operation has (key + value).
const OOM_RECOVER_BUDGET: u32 = 2;

/// Which insertion operation `do_put` is executing (Algorithm 2).
enum PutOp<'f> {
    Put,
    PutIfAbsent,
    /// `putIfAbsentComputeIfPresent` with its compute lambda.
    Compute(&'f dyn Fn(&mut OakWBuffer<'_>)),
}

/// Which non-insertion operation `do_if_present` is executing (Algorithm 3).
enum PresentOp<'f> {
    Compute(&'f dyn Fn(&mut OakWBuffer<'_>)),
    Remove,
}

impl<C: KeyComparator> OakMap<C> {
    // --- queries (Algorithm 1) -------------------------------------------

    /// Zero-copy get through a closure: applies `f` to the value bytes
    /// under the header read lock. Returns `None` if absent.
    pub fn get_with<R>(&self, key: &[u8], f: impl FnOnce(&[u8]) -> R) -> Option<R> {
        let _pin = self.reclaim.pin();
        let c = self.index.locate(key);
        let ei = c.lookup(self.pool(), &self.cmp, key)?;
        let h = c.value_ref(ei)?;
        self.store.read(h, f).ok()
    }

    /// Budgeted zero-copy get: like [`get_with`](OakMap::get_with) but the
    /// header-lock wait is clamped by the budget's deadline and a losing
    /// acquisition surfaces as a typed error instead of `None` —
    /// [`OakError::Contended`] while the budget has time left,
    /// [`OakError::DeadlineExceeded`] once it expires.
    pub fn get_with_budgeted<R>(
        &self,
        key: &[u8],
        budget: &OpBudget,
        f: impl FnOnce(&[u8]) -> R,
    ) -> Result<Option<R>, OakError> {
        budget.check(self.pool())?;
        let _pin = self.reclaim.pin();
        let c = self.index.locate(key);
        let Some(ei) = c.lookup(self.pool(), &self.cmp, key) else {
            return Ok(None);
        };
        let Some(h) = c.value_ref(ei) else {
            return Ok(None);
        };
        match self.store.read_at(h, budget.deadline, f) {
            Ok(r) => Ok(Some(r)),
            Err(oak_mempool::AccessError::Deleted) => Ok(None),
            Err(oak_mempool::AccessError::Contended(info)) => {
                if budget.expired() {
                    self.pool().note_deadline_exceeded();
                    Err(OakError::DeadlineExceeded)
                } else {
                    Err(OakError::Contended(info))
                }
            }
        }
    }

    /// Zero-copy get returning an [`OakRBuffer`] view (the ZC API's
    /// `get`). The buffer stays valid indefinitely; reads fail with
    /// [`OakError::ConcurrentModification`] after a concurrent remove.
    pub fn get(&self, key: &[u8]) -> Option<OakRBuffer> {
        let _pin = self.reclaim.pin();
        let c = self.index.locate(key);
        let ei = c.lookup(self.pool(), &self.cmp, key)?;
        let h = c.value_ref(ei)?;
        if self.store.is_deleted(h) {
            return None;
        }
        Some(OakRBuffer::value(self.store.clone(), h))
    }

    /// Copying get (the legacy API shape).
    pub fn get_copy(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.get_with(key, |b| b.to_vec())
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &[u8]) -> bool {
        self.get_with(key, |_| ()).is_some()
    }

    // --- insertion operations (Algorithm 2) -------------------------------

    /// Unconditionally associates `key` with `value` (ZC `put`: does not
    /// return the old value, §2.2).
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<(), OakError> {
        self.do_put(key, value, PutOp::Put, &self.default_budget())
            .map(|_| ())
    }

    /// [`put`](OakMap::put) under an explicit per-call budget.
    pub fn put_budgeted(
        &self,
        key: &[u8],
        value: &[u8],
        budget: &OpBudget,
    ) -> Result<(), OakError> {
        self.do_put(key, value, PutOp::Put, budget).map(|_| ())
    }

    /// Associates `key` with `value` if absent; returns whether this call
    /// inserted.
    pub fn put_if_absent(&self, key: &[u8], value: &[u8]) -> Result<bool, OakError> {
        self.do_put(key, value, PutOp::PutIfAbsent, &self.default_budget())
    }

    /// [`put_if_absent`](OakMap::put_if_absent) under an explicit budget.
    pub fn put_if_absent_budgeted(
        &self,
        key: &[u8],
        value: &[u8],
        budget: &OpBudget,
    ) -> Result<bool, OakError> {
        self.do_put(key, value, PutOp::PutIfAbsent, budget)
    }

    /// If `key` is absent, inserts `value`; otherwise atomically applies
    /// `f` to the present value in place. Returns `true` if this call
    /// inserted a new mapping.
    pub fn put_if_absent_compute_if_present(
        &self,
        key: &[u8],
        value: &[u8],
        f: impl Fn(&mut OakWBuffer<'_>),
    ) -> Result<bool, OakError> {
        self.do_put(key, value, PutOp::Compute(&f), &self.default_budget())
    }

    /// Algorithm 2's `doPut`, with its `case 1` / `case 2` structure and
    /// retry discipline. Returns whether a *new* mapping was inserted.
    ///
    /// Budget discipline: the deadline is checked at the top of every
    /// attempt — before the attempt pins, allocates, or publishes — so
    /// abandoning here is leak-free: either nothing happened yet, or a
    /// prior sub-step (a linked ⊥ entry, a quarantined key) is owned by
    /// the chunk and reclaimed by rebalance exactly as in the OOM path.
    fn do_put(
        &self,
        key: &[u8],
        value: &[u8],
        op: PutOp<'_>,
        budget: &OpBudget,
    ) -> Result<bool, OakError> {
        if key.is_empty() {
            return Err(OakError::Alloc(AllocError::ZeroSized));
        }
        // Overload gate: reject the write up front when the controller says
        // the map is critically short on memory — cheaper for everyone than
        // letting the write fail through the emergency-reclamation ladder.
        match self
            .overload
            .tick(|| (self.pool().stats(), self.reclaim.pending_bytes()))
        {
            OverloadState::Critical => {
                self.pool().note_overload_shed();
                return Err(OakError::Overloaded);
            }
            OverloadState::Degraded => {
                // Prioritize draining reclamation backlog on the write path.
                self.reclaim.try_drain();
            }
            OverloadState::Healthy => {}
        }
        let mut oom_budget = OOM_RECOVER_BUDGET;
        let mut retry = RetryState::new(key.as_ptr() as u64);
        loop {
            budget.check(self.pool())?;
            // Per-iteration epoch pin: quarantined keys of chunks this
            // iteration may walk stay mapped and stable until it ends.
            let pin = self.reclaim.pin();
            let c = self.index.locate(key);
            let ei = c.lookup(self.pool(), &self.cmp, key);

            if let Some(ei) = ei {
                if let Some(h) = c.value_ref(ei) {
                    if !self.store.is_deleted(h) {
                        // Case 1: key present.
                        match &op {
                            PutOp::PutIfAbsent => return Ok(false),
                            PutOp::Put => {
                                match self.store.put_at(h, value, budget.deadline) {
                                    Ok(true) => {
                                        // l.p.: the nested v.put (§4.5).
                                        return Ok(false);
                                    }
                                    Ok(false) => continue, // deleted under us
                                    Err(e) => {
                                        self.recover_or_err(
                                            e.into(),
                                            &mut oom_budget,
                                            &mut retry,
                                            budget,
                                            pin,
                                        )?;
                                        continue;
                                    }
                                }
                            }
                            PutOp::Compute(f) => {
                                match self.compute_guarded(h, *f, budget.deadline) {
                                    Ok(true) => {
                                        // l.p.: the nested v.compute (§4.5).
                                        return Ok(false);
                                    }
                                    Ok(false) => continue, // deleted under us
                                    Err(info) => {
                                        self.recover_or_err(
                                            info.into(),
                                            &mut oom_budget,
                                            &mut retry,
                                            budget,
                                            pin,
                                        )?;
                                        continue;
                                    }
                                }
                            }
                        }
                    }
                    // Value deleted but reference not yet ⊥: help the
                    // remover finish (mirrors Algorithm 3 case 2, avoiding
                    // a blocking wait on finalizeRemove) and retry.
                    if !c.publish() {
                        self.rebalance_until(&c, budget.deadline);
                        continue;
                    }
                    c.cas_value(ei, h.to_raw(), 0);
                    c.unpublish();
                    continue;
                }
            }

            // Case 2: key absent (no entry, or an entry with valRef = ⊥
            // that we reuse — §4.3).
            let ei = match ei {
                Some(existing) => existing,
                None => {
                    if c.is_frozen() {
                        self.rebalance_until(&c, budget.deadline);
                        continue;
                    }
                    let kref = match self.allocate_key(key) {
                        Ok(r) => r,
                        Err(e) => {
                            self.recover_or_err(e, &mut oom_budget, &mut retry, budget, pin)?;
                            continue;
                        }
                    };
                    let Some(new_ei) = c.allocate_entry(kref, self.key_prefix(key)) else {
                        // Chunk full: free the speculative key, rebalance,
                        // retry (Algorithm 2 line 31).
                        self.pool().free(kref);
                        self.rebalance_until(&c, budget.deadline);
                        continue;
                    };
                    match c.ll_put_if_absent(self.pool(), &self.cmp, new_ei) {
                        LinkOutcome::Linked => new_ei,
                        LinkOutcome::Found(existing) => {
                            // Our allocated entry stays unlinked and
                            // unreachable; reclaim its key buffer.
                            self.pool().free(kref);
                            existing
                        }
                        LinkOutcome::Frozen => {
                            self.pool().free(kref);
                            self.rebalance_until(&c, budget.deadline);
                            continue;
                        }
                    }
                }
            };

            // Allocate and write the value off-heap (line 30), publish,
            // and CAS it in (line 35). On pool exhaustion the key slice
            // just linked (if any) stays owned by its entry — a retry
            // reuses the ⊥-valued entry rather than re-allocating (§4.3),
            // and a rebalance quarantines it, so nothing leaks. The same
            // argument covers deadline expiry: a ⊥ entry abandoned by a
            // cancelled operation is chunk-owned garbage, not a leak.
            let newh = match self.store.allocate_value(value) {
                Ok(h) => h,
                Err(e) => {
                    self.recover_or_err(e.into(), &mut oom_budget, &mut retry, budget, pin)?;
                    continue;
                }
            };
            if !c.publish() {
                self.undo_value(newh);
                self.rebalance_until(&c, budget.deadline);
                continue;
            }
            let ok = c.cas_value(ei, 0, newh.to_raw());
            c.unpublish();
            if ok {
                // l.p. of a fresh insertion: the successful CAS (§4.5).
                self.len.fetch_add(1, Ordering::Relaxed);
                c.note_insert();
                self.maybe_reorg(&c);
                return Ok(true);
            }
            // CAS failed: a concurrent insertion or removal got there
            // first; undo and retry (line 38).
            self.undo_value(newh);
        }
    }

    /// Runs a user compute closure through
    /// [`ValueStore::compute_at`](oak_mempool::ValueStore::compute_at),
    /// keeping `len` consistent if the closure panics. The store's panic
    /// guard poisons the value (logically deleting it), so the pair it
    /// belonged to is gone from the map; account for that before the panic
    /// resumes — otherwise `len()` and `validate()` would drift after every
    /// poisoning. Returns whether the compute ran (`Ok(false)`: value
    /// deleted; `Err`: write lock lost within the wait budget).
    fn compute_guarded(
        &self,
        h: oak_mempool::HeaderRef,
        f: &dyn Fn(&mut OakWBuffer<'_>),
        deadline: Option<Instant>,
    ) -> Result<bool, ContendedInfo> {
        struct LenFixOnPanic<'a>(&'a AtomicUsize);
        impl Drop for LenFixOnPanic<'_> {
            fn drop(&mut self) {
                self.0.fetch_sub(1, Ordering::Relaxed);
            }
        }
        let fix = LenFixOnPanic(&self.len);
        let ran = self.store.compute_at(h, deadline, |b| f(b));
        std::mem::forget(fix);
        ran.map(|r| r.is_some())
    }

    /// Reclaims a speculative value allocation that was never published.
    fn undo_value(&self, h: oak_mempool::HeaderRef) {
        // Marks deleted and frees the payload; the 16-byte header is
        // retained, consistent with the default memory manager (§3.3).
        // The header is unpublished, so the lock is uncontended by
        // construction and this cannot fail.
        self.store.remove(h);
    }

    fn allocate_key(&self, key: &[u8]) -> Result<SliceRef, OakError> {
        let r = self
            .pool()
            .allocate_tagged(key.len(), oak_mempool::AllocClass::Key)?;
        // SAFETY: fresh, unpublished allocation.
        unsafe { self.pool().write_initial(r, key) };
        Ok(r)
    }

    /// Decides what to do with a transient failure mid-operation — the
    /// single funnel for the budget/retry discipline:
    ///
    /// * **Contention** (and, when the policy opts in, injected transient
    ///   faults): consult the [`RetryState`] — either a jittered,
    ///   deadline-clamped backoff is taken and the caller retries
    ///   (`Ok(())`), or the retry budget is exhausted and the error
    ///   surfaces.
    /// * **Pool exhaustion**: spend one unit of `oom_budget` on an
    ///   emergency reclamation pass and retry; once the budget is gone,
    ///   surface a clean [`OakError::OutOfMemory`]. An expired deadline
    ///   short-circuits to [`OakError::DeadlineExceeded`] *before* paying
    ///   for reclamation.
    /// * Anything else propagates unchanged.
    ///
    /// The operation has had no effect when an error surfaces and the map
    /// stays fully consistent. Consumes the caller's epoch pin:
    /// reclamation (and backoff sleeps) must run unpinned or they could
    /// stall the reclamation of slices retired during this very operation.
    fn recover_or_err(
        &self,
        e: OakError,
        oom_budget: &mut u32,
        retry: &mut RetryState,
        budget: &OpBudget,
        pin: EpochPin,
    ) -> Result<(), OakError> {
        drop(pin);
        match e {
            OakError::Contended(_) => retry.backoff_or(budget, self.pool(), e),
            OakError::Alloc(AllocError::Injected) if budget.policy.retry_transient_faults => {
                retry.backoff_or(budget, self.pool(), e)
            }
            OakError::Alloc(AllocError::PoolExhausted) => {
                if budget.expired() {
                    self.pool().note_deadline_exceeded();
                    return Err(OakError::DeadlineExceeded);
                }
                if *oom_budget == 0 {
                    self.pool().note_oom_failure();
                    return Err(OakError::OutOfMemory);
                }
                *oom_budget -= 1;
                self.emergency_reclaim(budget.deadline);
                Ok(())
            }
            _ => Err(e),
        }
    }

    /// Emergency reclamation: drain the dead-key quarantine as far as
    /// concurrent pins allow, compact every chunk holding dead entries
    /// (rebalance drops ⊥/deleted entries and quarantines their keys;
    /// under-used chunks merge), then drain again so the just-retired
    /// slices can return to the pool once their grace period passes.
    /// Called with no epoch pin held. Never allocates from the pool —
    /// replacement chunks are heap objects — so it cannot recurse into
    /// the OOM path it serves. A deadline bounds the chunk walk: an
    /// expired budget stops compacting early (the operation is about to
    /// surface `DeadlineExceeded` anyway; whatever was compacted stays).
    pub(crate) fn emergency_reclaim(&self, deadline: Option<Instant>) {
        self.pool().note_emergency_reclaim();
        // First rung: slices parked in allocation magazines are free memory
        // the free lists cannot see; hand them back before paying for a
        // compaction pass (and before `recover_or_err` can ever conclude
        // OutOfMemory with free bytes still parked thread-side).
        self.pool().flush_magazines();
        self.reclaim.drain_now();
        let is_dead = |raw: u64| raw == 0 || self.store.is_deleted(SliceRef::from_raw(raw));
        let expired = || deadline.is_some_and(|d| Instant::now() >= d);
        let mut c = self.first_chunk();
        loop {
            // Snapshot the successor before a rebalance replaces `c`.
            let next = c.next_chunk();
            if c.replacement().is_none() && c.has_dead(is_dead) {
                self.rebalance(&c);
            }
            if expired() {
                break;
            }
            match next {
                Some(n) => c = n,
                None => break,
            }
        }
        self.reclaim.drain_now();
    }

    /// Triggers a rebalance if the chunk outgrew its sorted prefix
    /// (the paper's reorganization policy, §5.1).
    fn maybe_reorg(&self, c: &std::sync::Arc<crate::chunk::Chunk>) {
        if c.needs_reorg(self.config.rebalance_unsorted_ratio) || c.allocated() >= c.capacity() {
            self.rebalance(c);
        }
    }

    /// Merge policy trigger: when a removal leaves the chunk empty (by the
    /// live-entry heuristic) and it has a successor, rebalance it — the
    /// rebalancer will fold it into its neighbour ("merges chunks when they
    /// are under-used", §4.1).
    fn maybe_merge(&self, c: &std::sync::Arc<crate::chunk::Chunk>) {
        if c.note_remove() == 0 && !c.is_frozen() && c.next_chunk().is_some() {
            self.rebalance(c);
        }
    }

    // --- non-insertion operations (Algorithm 3) ----------------------------

    /// Atomically applies `f` to the value mapped to `key`, in place, under
    /// the value's write lock. Returns whether the value was present.
    pub fn compute_if_present(&self, key: &[u8], f: impl Fn(&mut OakWBuffer<'_>)) -> bool {
        self.do_if_present(key, PresentOp::Compute(&f), &self.default_budget())
            .unwrap_or(false)
    }

    /// [`compute_if_present`](OakMap::compute_if_present) under an explicit
    /// budget, surfacing budget errors instead of swallowing them.
    pub fn compute_if_present_budgeted(
        &self,
        key: &[u8],
        budget: &OpBudget,
        f: impl Fn(&mut OakWBuffer<'_>),
    ) -> Result<bool, OakError> {
        self.do_if_present(key, PresentOp::Compute(&f), budget)
    }

    /// Removes the mapping for `key`; returns whether this call removed it.
    pub fn remove(&self, key: &[u8]) -> bool {
        self.do_if_present(key, PresentOp::Remove, &self.default_budget())
            .unwrap_or(false)
    }

    /// [`remove`](OakMap::remove) under an explicit budget, surfacing
    /// budget errors instead of swallowing them.
    pub fn remove_budgeted(&self, key: &[u8], budget: &OpBudget) -> Result<bool, OakError> {
        self.do_if_present(key, PresentOp::Remove, budget)
    }

    /// Algorithm 3's `doIfPresent`.
    fn do_if_present(
        &self,
        key: &[u8],
        op: PresentOp<'_>,
        budget: &OpBudget,
    ) -> Result<bool, OakError> {
        let mut oom_budget = OOM_RECOVER_BUDGET;
        let mut retry = RetryState::new(key.as_ptr() as u64);
        loop {
            budget.check(self.pool())?;
            let pin = self.reclaim.pin();
            let c = self.index.locate(key);
            let ei = c.lookup(self.pool(), &self.cmp, key);
            let Some(ei) = ei else {
                return Ok(false); // l.p.: entry not found (line 44)
            };
            let Some(h) = c.value_ref(ei) else {
                return Ok(false); // l.p.: valRef = ⊥ (line 44)
            };

            if !self.store.is_deleted(h) {
                // Case 1: value exists and is not deleted. A lost header
                // lock is a *transient* failure routed through the retry
                // funnel — unlike a deleted value, it must never fall
                // through to the CAS-to-⊥ cleanup below, which would erase
                // a live entry.
                match &op {
                    PresentOp::Compute(f) => {
                        match self.compute_guarded(h, *f, budget.deadline) {
                            Ok(true) => {
                                // l.p.: successful nested v.compute (line 46).
                                return Ok(true);
                            }
                            Ok(false) => {} // deleted under us: clean below
                            Err(info) => {
                                self.recover_or_err(
                                    info.into(),
                                    &mut oom_budget,
                                    &mut retry,
                                    budget,
                                    pin,
                                )?;
                                continue;
                            }
                        }
                    }
                    PresentOp::Remove => match self.store.remove_at(h, budget.deadline) {
                        Ok(true) => {
                            // l.p.: v.remove set the deleted bit (line 48).
                            self.len.fetch_sub(1, Ordering::Relaxed);
                            oak_failpoints::sync_point!("ops/remove-marked");
                            oak_failpoints::fail_point!("ops/remove-marked");
                            self.finalize_remove(key, h, budget.deadline);
                            self.maybe_merge(&c);
                            return Ok(true);
                        }
                        Ok(false) => {} // already deleted: clean below
                        Err(info) => {
                            self.recover_or_err(
                                info.into(),
                                &mut oom_budget,
                                &mut retry,
                                budget,
                                pin,
                            )?;
                            continue;
                        }
                    },
                }
            }
            // Case 2: value deleted — ensure the entry is removed by
            // CASing its value reference to ⊥ (lines 50–55).
            if !c.publish() {
                self.rebalance_until(&c, budget.deadline);
                continue;
            }
            let ok = c.cas_value(ei, h.to_raw(), 0);
            c.unpublish();
            if ok {
                return Ok(false); // l.p.: successful CAS to ⊥ (line 52)
            }
            // CAS failed: the entry changed under us; retry (line 54).
        }
    }

    /// Removal that atomically returns a copy of the removed value — the
    /// legacy `ConcurrentNavigableMap.remove` shape. Same structure as
    /// `do_if_present(Remove)` with a copying `v.remove`.
    pub(crate) fn remove_with_copy(&self, key: &[u8]) -> Option<Vec<u8>> {
        let budget = self.default_budget();
        let mut oom_budget = OOM_RECOVER_BUDGET;
        let mut retry = RetryState::new(key.as_ptr() as u64);
        loop {
            if budget.check(self.pool()).is_err() {
                return None;
            }
            let pin = self.reclaim.pin();
            let c = self.index.locate(key);
            let ei = c.lookup(self.pool(), &self.cmp, key)?;
            let h = c.value_ref(ei)?;
            if !self.store.is_deleted(h) {
                match self.store.remove_returning_at(h, budget.deadline) {
                    Ok(Some(old)) => {
                        self.len.fetch_sub(1, Ordering::Relaxed);
                        oak_failpoints::sync_point!("ops/remove-marked");
                        oak_failpoints::fail_point!("ops/remove-marked");
                        self.finalize_remove(key, h, budget.deadline);
                        self.maybe_merge(&c);
                        return Some(old);
                    }
                    Ok(None) => {} // deleted under us: clean below
                    Err(info) => {
                        if self
                            .recover_or_err(info.into(), &mut oom_budget, &mut retry, &budget, pin)
                            .is_err()
                        {
                            return None;
                        }
                        continue;
                    }
                }
            }
            // Value deleted: ensure the entry is cleaned, as in case 2.
            if !c.publish() {
                self.rebalance_until(&c, budget.deadline);
                continue;
            }
            let ok = c.cas_value(ei, h.to_raw(), 0);
            c.unpublish();
            if ok {
                return None;
            }
        }
    }

    /// Algorithm 3's `finalizeRemove`: best-effort CAS of the entry's value
    /// reference to ⊥ after a successful remove. Headers are never reused,
    /// so comparing against `prev` is ABA-free (§4.4). Purely *helping* —
    /// the remove already linearized — so an expired deadline simply stops
    /// helping (a later operation on the key finishes the cleanup).
    fn finalize_remove(&self, key: &[u8], prev: oak_mempool::HeaderRef, deadline: Option<Instant>) {
        loop {
            if deadline.is_some_and(|d| Instant::now() >= d) {
                return;
            }
            let _pin = self.reclaim.pin();
            let c = self.index.locate(key);
            let Some(ei) = c.lookup(self.pool(), &self.cmp, key) else {
                return;
            };
            let v = c.value_raw(ei);
            if v != prev.to_raw() {
                return; // key removed or replaced already (line 65)
            }
            if !c.publish() {
                if !self.rebalance_until(&c, deadline) {
                    return;
                }
                continue;
            }
            // Success or failure both fine: remove already linearized.
            c.cas_value(ei, v, 0);
            c.unpublish();
            return;
        }
    }
}
