//! Operation budgets: deadlines and retry/backoff discipline.
//!
//! Every Oak operation runs under an [`OpBudget`]: an optional wall-clock
//! deadline plus a [`RetryPolicy`] governing how internal retry loops behave
//! when they hit transient failures (header-lock contention, injected
//! faults). The default budget reproduces the map's historical semantics —
//! no deadline, unlimited immediate retries on contention, injected faults
//! surfaced to the caller — so existing callers observe no change.
//!
//! Budgets make cancellation *cooperative*: the deadline is consulted at the
//! top of each retry loop and inside the header-lock sleep ladder (via
//! [`LockLimit::clamped_by`](oak_mempool::LockLimit)), never mid-mutation.
//! An operation that gives up therefore either never linearized (clean
//! [`OakError::DeadlineExceeded`], nothing allocated or leaked) or had
//! already linearized before the expiry check (success is reported). The
//! chaos soak and the cancellation property tests hold the map to exactly
//! that contract, auditor-verified.

use std::time::{Duration, Instant};

use oak_mempool::MemoryPool;

use crate::error::OakError;

/// How budgeted operations respond to transient failures.
///
/// The default is the map's legacy discipline: retry contention immediately
/// and forever (the header-lock backoff ladder already paces the loop), and
/// surface injected/transient allocation faults to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RetryPolicy {
    /// Maximum budgeted retries per operation; `None` means unlimited.
    pub max_retries: Option<u32>,
    /// First backoff sleep in microseconds; `0` disables sleeping between
    /// retries (immediate retry, legacy behavior).
    pub base_micros: u64,
    /// Ceiling for the exponential backoff sleep, in microseconds.
    pub cap_micros: u64,
    /// When true, transient injected faults
    /// ([`AllocError::Injected`](oak_mempool::AllocError)) are retried under
    /// this policy instead of being surfaced. Chaos testing runs with this
    /// enabled so seeded fault schedules exercise the retry discipline.
    pub retry_transient_faults: bool,
}

impl RetryPolicy {
    /// Bound the number of budgeted retries.
    #[must_use]
    pub fn bounded(max_retries: u32) -> Self {
        RetryPolicy {
            max_retries: Some(max_retries),
            ..RetryPolicy::default()
        }
    }

    /// Sleep a jittered exponential backoff between retries, starting at
    /// `base_micros` and capped at `cap_micros`.
    #[must_use]
    pub fn with_backoff(mut self, base_micros: u64, cap_micros: u64) -> Self {
        self.base_micros = base_micros;
        self.cap_micros = cap_micros.max(base_micros);
        self
    }

    /// Retry transient injected faults instead of surfacing them.
    #[must_use]
    pub fn with_transient_fault_retry(mut self, yes: bool) -> Self {
        self.retry_transient_faults = yes;
        self
    }
}

/// Per-operation budget: an optional deadline plus the retry policy.
///
/// Cheap to copy; construct one per call (or once and reuse — budgets with a
/// deadline are anchored to an absolute [`Instant`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct OpBudget {
    /// Absolute expiry; `None` means the operation may run forever.
    pub deadline: Option<Instant>,
    /// Retry discipline for transient failures within the deadline.
    pub policy: RetryPolicy,
}

impl OpBudget {
    /// No deadline, legacy retry policy — the behavior of the unbudgeted
    /// public API.
    #[must_use]
    pub fn unbounded() -> Self {
        OpBudget::default()
    }

    /// Budget expiring `timeout` from now.
    #[must_use]
    pub fn with_deadline(timeout: Duration) -> Self {
        OpBudget {
            deadline: Some(Instant::now() + timeout),
            policy: RetryPolicy::default(),
        }
    }

    /// Budget expiring at an absolute instant.
    #[must_use]
    pub fn until(deadline: Instant) -> Self {
        OpBudget {
            deadline: Some(deadline),
            policy: RetryPolicy::default(),
        }
    }

    /// Replace the retry policy.
    #[must_use]
    pub fn with_policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Has the deadline passed?
    pub fn expired(&self) -> bool {
        match self.deadline {
            Some(d) => Instant::now() >= d,
            None => false,
        }
    }

    /// Time left before expiry (`None` = unbounded).
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Cooperative cancellation point: called at the top of retry loops,
    /// before any allocation or publication for the coming attempt, so
    /// giving up here can never leak.
    pub(crate) fn check(&self, pool: &MemoryPool) -> Result<(), OakError> {
        if self.expired() {
            pool.note_deadline_exceeded();
            Err(OakError::DeadlineExceeded)
        } else {
            Ok(())
        }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mutable retry bookkeeping for one operation attempt loop.
pub(crate) struct RetryState {
    attempts: u32,
    jitter: u64,
}

impl RetryState {
    /// `seed` decorrelates the jitter streams of concurrent operations;
    /// callers pass something thread-distinct (e.g. a stack address).
    pub(crate) fn new(seed: u64) -> Self {
        RetryState {
            attempts: 0,
            jitter: seed | 1,
        }
    }

    /// Decide whether the operation may retry after the transient failure
    /// `err`. On `Ok(())` the caller loops (a jittered, deadline-clamped
    /// backoff sleep has already been taken); on `Err` the caller must
    /// surface the returned error. Expiry always wins over the retry count
    /// so an op never overruns its deadline by more than one backoff step.
    pub(crate) fn backoff_or(
        &mut self,
        budget: &OpBudget,
        pool: &MemoryPool,
        err: OakError,
    ) -> Result<(), OakError> {
        if budget.expired() {
            pool.note_deadline_exceeded();
            return Err(OakError::DeadlineExceeded);
        }
        if let Some(max) = budget.policy.max_retries {
            if self.attempts >= max {
                return Err(err);
            }
        }
        self.attempts += 1;
        pool.note_op_retry();
        let base = budget.policy.base_micros;
        if base > 0 {
            let exp = self.attempts.min(16) - 1;
            let cap = budget.policy.cap_micros.max(base);
            let raw = base.saturating_mul(1u64 << exp).min(cap);
            // Decorrelated jitter in [raw/2, raw].
            let half = raw / 2;
            let jittered = half + splitmix64(&mut self.jitter) % (raw - half + 1);
            let mut sleep = Duration::from_micros(jittered);
            if let Some(d) = budget.deadline {
                sleep = sleep.min(d.saturating_duration_since(Instant::now()));
            }
            if !sleep.is_zero() {
                std::thread::sleep(sleep);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oak_mempool::PoolConfig;

    fn pool() -> MemoryPool {
        MemoryPool::new(PoolConfig::small())
    }

    #[test]
    fn default_budget_never_expires() {
        let b = OpBudget::unbounded();
        assert!(!b.expired());
        assert_eq!(b.remaining(), None);
        assert!(b.check(&pool()).is_ok());
    }

    #[test]
    fn deadline_expires() {
        let b = OpBudget::with_deadline(Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(5));
        assert!(b.expired());
        let p = pool();
        assert_eq!(b.check(&p), Err(OakError::DeadlineExceeded));
        assert_eq!(p.stats().deadline_exceeded, 1);
    }

    #[test]
    fn retry_count_bounds() {
        let p = pool();
        let budget = OpBudget::unbounded().with_policy(RetryPolicy::bounded(2));
        let mut rs = RetryState::new(7);
        let err = OakError::Overloaded;
        assert!(rs.backoff_or(&budget, &p, err).is_ok());
        assert!(rs.backoff_or(&budget, &p, err).is_ok());
        assert_eq!(rs.backoff_or(&budget, &p, err), Err(err));
        assert_eq!(p.stats().op_retries, 2);
    }

    #[test]
    fn expiry_beats_retry_budget() {
        let p = pool();
        let budget = OpBudget::with_deadline(Duration::from_millis(1))
            .with_policy(RetryPolicy::bounded(1_000_000).with_backoff(100, 1_000));
        let mut rs = RetryState::new(7);
        let start = Instant::now();
        let mut last = Ok(());
        for _ in 0..1_000_000 {
            last = rs.backoff_or(&budget, &p, OakError::Overloaded);
            if last.is_err() {
                break;
            }
        }
        assert_eq!(last, Err(OakError::DeadlineExceeded));
        // One bounded backoff step of slack at most (cap 1ms) plus scheduling.
        assert!(start.elapsed() < Duration::from_millis(500));
    }
}
