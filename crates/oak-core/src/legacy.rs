//! The legacy (copying) API — `ConcurrentNavigableMap` compatibility.
//!
//! "For backward compatibility, Oak also supports the (less efficient)
//! legacy KV-map API" (§1). Every query deserializes a fresh object and
//! every update serializes its arguments; `put`/`remove` return the old
//! value, which is exactly the copying the ZC API exists to avoid — and
//! what the `Oak-Copy` curves in Figure 4c measure.

use std::marker::PhantomData;

use crate::cmp::KeyComparator;
use crate::error::OakError;
use crate::map::OakMap;
use crate::serde_api::OakSerializer;

/// A typed, copying facade over an [`OakMap`].
pub struct TypedOakMap<KS, VS, C = crate::Lexicographic>
where
    KS: OakSerializer,
    VS: OakSerializer,
    C: KeyComparator,
{
    map: OakMap<C>,
    key_serde: KS,
    val_serde: VS,
    _marker: PhantomData<(KS, VS)>,
}

impl<KS, VS, C> TypedOakMap<KS, VS, C>
where
    KS: OakSerializer,
    VS: OakSerializer,
    C: KeyComparator,
{
    /// Wraps an [`OakMap`] with key and value serializers.
    pub fn new(map: OakMap<C>, key_serde: KS, val_serde: VS) -> Self {
        TypedOakMap {
            map,
            key_serde,
            val_serde,
            _marker: PhantomData,
        }
    }

    /// The underlying zero-copy map.
    pub fn inner(&self) -> &OakMap<C> {
        &self.map
    }

    fn key_bytes(&self, key: &KS::Item) -> Vec<u8> {
        let mut buf = vec![0u8; self.key_serde.serialized_size(key)];
        self.key_serde.serialize(key, &mut buf);
        buf
    }

    fn val_bytes(&self, val: &VS::Item) -> Vec<u8> {
        let mut buf = vec![0u8; self.val_serde.serialized_size(val)];
        self.val_serde.serialize(val, &mut buf);
        buf
    }

    /// `V get(K)` — deserializes a fresh value object.
    pub fn get(&self, key: &KS::Item) -> Option<VS::Item> {
        let kb = self.key_bytes(key);
        self.map.get_with(&kb, |v| self.val_serde.deserialize(v))
    }

    /// `V put(K, V)` — returns the previous value (atomically), forcing a
    /// deserializing copy of the old contents.
    pub fn put(&self, key: &KS::Item, value: &VS::Item) -> Result<Option<VS::Item>, OakError> {
        let kb = self.key_bytes(key);
        let vb = self.val_bytes(value);
        loop {
            // Try to replace an existing value, capturing the old bytes.
            let existing = {
                let c = self.map.locate_chunk(&kb);
                c.lookup(self.map.pool(), &self.map.cmp, &kb)
                    .and_then(|ei| c.value_ref(ei))
            };
            if let Some(h) = existing {
                match self.map.value_store().replace(h, &vb)? {
                    Some(old) => return Ok(Some(self.val_serde.deserialize(&old))),
                    None => {
                        // Deleted under us; fall through to insertion.
                    }
                }
            }
            if self.map.put_if_absent(&kb, &vb)? {
                return Ok(None);
            }
            // Raced with a concurrent insert; retry as replace.
        }
    }

    /// `V remove(K)` — returns the removed value (atomically).
    pub fn remove(&self, key: &KS::Item) -> Option<VS::Item> {
        let kb = self.key_bytes(key);
        self.map
            .remove_with_copy(&kb)
            .map(|old| self.val_serde.deserialize(&old))
    }

    /// `boolean putIfAbsent(K, V)` (legacy signature returns the old value;
    /// we return whether this call inserted, the useful bit).
    pub fn put_if_absent(&self, key: &KS::Item, value: &VS::Item) -> Result<bool, OakError> {
        let kb = self.key_bytes(key);
        let vb = self.val_bytes(value);
        self.map.put_if_absent(&kb, &vb)
    }

    /// Non-atomic `computeIfPresent`, JDK-style: deserialize → apply →
    /// serialize back (the whole step *is* made atomic here by the value
    /// write lock, but the object round-trip copying is what the paper's
    /// legacy API costs).
    pub fn compute_if_present(&self, key: &KS::Item, f: impl Fn(VS::Item) -> VS::Item) -> bool {
        let kb = self.key_bytes(key);
        self.map.compute_if_present(&kb, |buf| {
            let cur = self.val_serde.deserialize(buf.as_slice());
            let new = f(cur);
            let size = self.val_serde.serialized_size(&new);
            if buf.len() != size {
                buf.resize(size).expect("value resize");
            }
            self.val_serde.serialize(&new, buf.as_mut_slice());
        })
    }

    /// Ascending scan with deserialized pairs.
    pub fn collect_range(
        &self,
        lo: Option<&KS::Item>,
        hi: Option<&KS::Item>,
    ) -> Vec<(KS::Item, VS::Item)> {
        let lo_b = lo.map(|k| self.key_bytes(k));
        let hi_b = hi.map(|k| self.key_bytes(k));
        let mut out = Vec::new();
        self.map
            .for_each_in(lo_b.as_deref(), hi_b.as_deref(), |k, v| {
                out.push((self.key_serde.deserialize(k), self.val_serde.deserialize(v)));
                true
            });
        out
    }

    /// `merge(K, V, f)`: insert `value` if absent, else replace with
    /// `f(current, value)` — the JDK signature Oak's
    /// `putIfAbsentComputeIfPresent` improves on (Table 1). Atomic here via
    /// the value write lock; the copying round-trip is the legacy cost.
    pub fn merge(
        &self,
        key: &KS::Item,
        value: &VS::Item,
        f: impl Fn(VS::Item, &VS::Item) -> VS::Item,
    ) -> Result<(), OakError> {
        let kb = self.key_bytes(key);
        let vb = self.val_bytes(value);
        self.map.put_if_absent_compute_if_present(&kb, &vb, |buf| {
            let cur = self.val_serde.deserialize(buf.as_slice());
            let new = f(cur, value);
            let size = self.val_serde.serialized_size(&new);
            if buf.len() != size {
                buf.resize(size).expect("value resize");
            }
            self.val_serde.serialize(&new, buf.as_mut_slice());
        })?;
        Ok(())
    }

    /// `firstKey()`.
    pub fn first_key(&self) -> Option<KS::Item> {
        let mut out = None;
        self.map.for_each_in(None, None, |k, _| {
            out = Some(self.key_serde.deserialize(k));
            false
        });
        out
    }

    /// `lastKey()`.
    pub fn last_key(&self) -> Option<KS::Item> {
        let mut out = None;
        self.map.for_each_descending(None, None, |k, _| {
            out = Some(self.key_serde.deserialize(k));
            false
        });
        out
    }

    /// `descendingMap()`-style collection (deserialized copies).
    pub fn collect_descending(
        &self,
        from: Option<&KS::Item>,
        lo: Option<&KS::Item>,
    ) -> Vec<(KS::Item, VS::Item)> {
        let from_b = from.map(|k| self.key_bytes(k));
        let lo_b = lo.map(|k| self.key_bytes(k));
        let mut out = Vec::new();
        self.map
            .for_each_descending(from_b.as_deref(), lo_b.as_deref(), |k, v| {
                out.push((self.key_serde.deserialize(k), self.val_serde.deserialize(v)));
                true
            });
        out
    }

    /// `containsKey(K)`.
    pub fn contains_key(&self, key: &KS::Item) -> bool {
        let kb = self.key_bytes(key);
        self.map.contains_key(&kb)
    }

    /// Number of live mappings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}
