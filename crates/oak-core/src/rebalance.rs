//! Chunk rebalancing: split, merge, and compaction (§4.1).
//!
//! "The chunk object has a rebalance method, which splits chunks when they
//! are over-utilized, merges chunks when they are under-used, and
//! reorganizes chunks' internals." The rebalancer:
//!
//! 1. engages the chunk (per-chunk mutex; concurrent rebalancers of the
//!    same chunk serialize, later ones find it already replaced and
//!    return),
//! 2. freezes it — after `freeze` returns no published mutation is in
//!    flight and none can start,
//! 3. collects the live entries in key order (entries with ⊥ or deleted
//!    values are dropped, garbage-collecting removed keys),
//! 4. optionally engages the successor for a merge when the chunk is
//!    under-used,
//! 5. builds replacement chunks with fully sorted prefixes,
//! 6. splices them into the chunk list and records the replacement pointer
//!    on each engaged chunk (stale readers chase these), and
//! 7. lazily updates the index (§3.1 — the index may be outdated; `locate`
//!    compensates by walking the list).
//!
//! The rebalance guarantees RB1–RB3 follow from freezing: the collected
//! sequence is exactly the live entries at freeze time, sorted; keys
//! inserted before the freeze and not removed are kept (RB1), never-present
//! or removed keys are not resurrected (RB2), and `new_sorted` preserves
//! order (RB3). `tests/rebalance_guarantees.rs` exercises them under
//! concurrency.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use oak_mempool::SliceRef;

use crate::chunk::Chunk;
use crate::cmp::KeyComparator;
use crate::map::OakMap;

impl<C: KeyComparator> OakMap<C> {
    /// Rebalances `chunk` (idempotent: returns immediately if it was
    /// already replaced). Blocks while another thread rebalances it.
    pub(crate) fn rebalance(&self, chunk: &Arc<Chunk>) {
        oak_failpoints::sync_point!("rebalance/start");
        oak_failpoints::fail_point!("rebalance/start");
        let engaged = chunk.rebalance_lock.lock();
        self.rebalance_engaged(chunk, engaged);
    }

    /// Deadline-aware rebalance: bounds only the wait to *engage* the
    /// chunk (another thread may hold the rebalance lock through a long
    /// merge chain). Once engaged, the rebalance runs to completion —
    /// freeze and splice are irrevocable shared mutations with no safe
    /// abandon point, so cancellation stops at the engage gate (see
    /// DESIGN.md "Overload and degradation"). Returns `false` when the
    /// engage wait timed out; the caller's next budget check then
    /// surfaces [`DeadlineExceeded`](crate::OakError) cleanly.
    pub(crate) fn rebalance_until(
        &self,
        chunk: &Arc<Chunk>,
        deadline: Option<std::time::Instant>,
    ) -> bool {
        let Some(d) = deadline else {
            self.rebalance(chunk);
            return true;
        };
        oak_failpoints::sync_point!("rebalance/start");
        oak_failpoints::fail_point!("rebalance/start");
        let wait = d.saturating_duration_since(std::time::Instant::now());
        let Some(engaged) = chunk.rebalance_lock.try_lock_for(wait) else {
            return false;
        };
        self.rebalance_engaged(chunk, engaged);
        true
    }

    /// The rebalance body, entered with the chunk engaged.
    fn rebalance_engaged(&self, chunk: &Arc<Chunk>, _engaged: parking_lot::MutexGuard<'_, ()>) {
        if chunk.replacement().is_some() {
            return;
        }
        // Perturbation between engage and freeze widens the window in which
        // writers race the freeze drain.
        oak_failpoints::sync_point!("rebalance/freeze");
        oak_failpoints::fail_point!("rebalance/freeze");
        chunk.freeze();

        // Live/dead split must come from one walk per chunk (see
        // `partition_entries`): dead keys are quarantined below, after the
        // replacement pointers publish.
        let keep = |raw: u64| raw != 0 && !self.store.is_deleted(SliceRef::from_raw(raw));
        let (mut items, mut dead_keys) = chunk.partition_entries(keep);

        // Merge policy: engage the successor when we are under-used.
        let merge_threshold =
            (self.config.chunk_capacity as f64 * self.config.merge_ratio) as usize;
        let next_holder = if items.len() <= merge_threshold {
            chunk.next_chunk()
        } else {
            None
        };
        let mut merged_next: Option<&Arc<Chunk>> = None;
        let mut _next_guard = None;
        if let Some(n) = next_holder.as_ref() {
            // try_lock: if the successor is being rebalanced concurrently,
            // skip the merge rather than risk waiting behind a chain.
            if let Some(g) = n.rebalance_lock.try_lock() {
                if n.replacement().is_none() {
                    n.freeze();
                    let (live_n, dead_n) = n.partition_entries(keep);
                    items.extend(live_n);
                    dead_keys.extend(dead_n);
                    merged_next = Some(n);
                    _next_guard = Some(g);
                }
            }
        }

        // Build replacement chunks: each at most half full so fresh
        // bypass insertions have room.
        let cap = self.config.chunk_capacity;
        let per_chunk = (cap / 2).max(1) as usize;
        let mut new_chunks: Vec<Arc<Chunk>> = Vec::new();
        if items.is_empty() {
            new_chunks.push(Arc::new(Chunk::new_empty(cap, chunk.min_key.clone())));
        } else {
            for (i, group) in items.chunks(per_chunk).enumerate() {
                let min_key: Box<[u8]> = if i == 0 {
                    // The first replacement inherits the engaged range's
                    // lower bound (minKey is invariant, §3.1).
                    chunk.min_key.clone()
                } else {
                    // SAFETY: key buffers are immutable and live.
                    unsafe { self.pool().slice(group[0].0) }.into()
                };
                new_chunks.push(Arc::new(Chunk::new_sorted(cap, min_key, group)));
            }
        }

        // Chain the new chunks and attach the tail.
        let tail = match merged_next {
            Some(n) => n.next_chunk(),
            None => chunk.next_chunk(),
        };
        for w in new_chunks.windows(2) {
            w[0].set_next(Some(w[1].clone()));
        }
        new_chunks
            .last()
            .expect("at least one replacement")
            .set_next(tail);

        // Splice into the chunk list, then record replacements so stale
        // readers (and the lazy index) converge on the new chunks.
        let new_head = new_chunks[0].clone();
        oak_failpoints::sync_point!("rebalance/splice");
        oak_failpoints::fail_point!("rebalance/splice");
        self.splice(chunk, new_head.clone());
        oak_failpoints::sync_point!("rebalance/publish-replacement");
        oak_failpoints::fail_point!("rebalance/publish-replacement");
        chunk.set_replacement(new_head.clone());
        if let Some(n) = merged_next {
            // The chunk now covering n's range start: the last new chunk
            // whose min_key ≤ n.min_key.
            let cover = new_chunks
                .iter()
                .rev()
                .find(|nc| self.cmp.compare(&nc.min_key, &n.min_key) != std::cmp::Ordering::Greater)
                .unwrap_or(&new_head)
                .clone();
            n.set_replacement(cover);
        }

        // Lazy index maintenance: publish new minKeys, drop stale ones.
        for nc in &new_chunks {
            self.index.publish(nc);
        }
        if let Some(n) = merged_next {
            let still_a_boundary = new_chunks
                .iter()
                .any(|nc| self.cmp.compare(&nc.min_key, &n.min_key) == std::cmp::Ordering::Equal);
            if !still_a_boundary {
                self.index.retire(&n.min_key);
            }
        }

        self.rebalances.fetch_add(1, Ordering::Relaxed);

        // Quarantine the replaced chunks' dead key slices. This must come
        // after `set_replacement` on every engaged chunk: the epoch safety
        // argument (reclaim.rs module docs) needs any walker that can still
        // enter these chunks' linked lists to have pinned before the
        // retirement stamp. Exactly-once ownership holds because only the
        // rebalancer that installs the replacement reaches this point for a
        // given chunk (engage + replaced-check above). Then drain
        // opportunistically — grace-expired slices from *earlier*
        // rebalances go back to the pool; our own batch waits two epochs.
        for k in dead_keys {
            self.reclaim.retire(k);
        }
        self.reclaim.try_drain();
    }

    /// Replaces `old` with `new_head` in the chunk list. `old` is engaged
    /// (its rebalance lock is held) and not yet marked replaced, so it is
    /// reachable from the live chain.
    fn splice(&self, old: &Arc<Chunk>, new_head: Arc<Chunk>) {
        if old.min_key.is_empty() {
            // `old` is the first chunk; the index's first pointer
            // necessarily points at it (each first-replacement updates the
            // pointer under the old first's rebalance lock, which we hold
            // transitively). A failed verify-and-swing here means that
            // invariant broke — fail loudly rather than detach the chain.
            let swung = self.index.replace_first(old, new_head);
            assert!(swung, "first pointer out of sync during head splice");
            return;
        }
        let mut spins = 0u64;
        'outer: loop {
            let mut cur = self.index.first_raw();
            loop {
                while let Some(r) = cur.replacement() {
                    cur = r.clone();
                }
                let Some(n) = cur.next_chunk() else {
                    // `old` temporarily unreachable through the live chain
                    // (a concurrent splice is mid-flight); retry.
                    break;
                };
                if Arc::ptr_eq(&n, old) {
                    if cur.swing_next(old, new_head.clone()) {
                        return;
                    }
                    continue 'outer;
                }
                if let Some(r) = n.replacement() {
                    // Resurrected-chunk race: a rebalancer captures its
                    // tail pointer before building replacements, so a
                    // concurrent splice of that tail chunk leaves the
                    // rebalancer re-linking the replaced tail into the
                    // next-chain. The tail's live replacement is then
                    // reachable only through replacement pointers — no
                    // predecessor's `next` leads to it, and a later
                    // rebalance of it would walk here forever. Heal the
                    // chain by physically unlinking the replaced chunk
                    // before walking on.
                    let mut live = r.clone();
                    while let Some(r2) = live.replacement() {
                        live = r2.clone();
                    }
                    if !cur.swing_next(&n, live) {
                        continue 'outer; // chain changed under us; re-walk
                    }
                    continue; // re-examine `cur`'s healed successor
                }
                cur = n;
            }
            spins += 1;
            assert!(spins < 1_000_000, "splice could not find engaged chunk");
            std::hint::spin_loop();
        }
    }
}
