//! Property-based state machine for the value-header lock protocol (§3.3).
//!
//! Drives arbitrary single-threaded op sequences through [`ValueStore`]
//! against a sequential model, under **both** reclamation policies, and
//! checks after every step that the header's [`LockState`] is quiescent and
//! consistent with the model:
//!
//! * no op leaks a lock — readers and the writer bit always return to zero;
//! * the deleted bit tracks the model exactly (including through recycled
//!   slots, where stale references must fail the generation check);
//! * `remove` is idempotent — exactly one caller succeeds;
//! * reads after delete fail cleanly, never returning stale bytes;
//! * resize (move) keeps contents equal to the model byte-for-byte.

use std::sync::Arc;

use oak_mempool::{AccessError, HeaderRef, MemoryPool, PoolConfig, ReclamationPolicy, ValueStore};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    /// Allocate a fresh value; the handle joins the tracked set.
    Alloc(Vec<u8>),
    /// `v.put` on the n-th handle (same-size overwrite or resizing move).
    Put(usize, Vec<u8>),
    /// `v.replace` returning the prior contents.
    Replace(usize, Vec<u8>),
    /// `v.remove`; applied twice to check idempotence.
    Remove(usize),
    /// `v.read` / `value_len` against the model.
    Read(usize),
    /// In-place compute that grows the payload by one byte.
    ComputeGrow(usize, u8),
    /// In-place compute that truncates the payload to half its length.
    ComputeShrink(usize),
}

fn payloads() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(any::<u8>(), 0..48)
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            payloads().prop_map(Op::Alloc),
            (any::<usize>(), payloads()).prop_map(|(i, p)| Op::Put(i, p)),
            (any::<usize>(), payloads()).prop_map(|(i, p)| Op::Replace(i, p)),
            any::<usize>().prop_map(Op::Remove),
            any::<usize>().prop_map(Op::Read),
            (any::<usize>(), any::<u8>()).prop_map(|(i, b)| Op::ComputeGrow(i, b)),
            any::<usize>().prop_map(Op::ComputeShrink),
        ],
        1..200,
    )
}

/// A tracked handle: the reference we hold and what the model says it
/// contains (`None` = removed).
type Tracked = (HeaderRef, Option<Vec<u8>>);

/// Quiescence + deleted-bit agreement for one handle. Between ops no lock
/// may be held, and the deleted bit must match the model — for recycled
/// slots the *stale* reference must still read as deleted via the
/// generation fence, even though the slot itself is live again.
fn check_handle(
    vs: &ValueStore,
    h: HeaderRef,
    model: &Option<Vec<u8>>,
) -> Result<(), TestCaseError> {
    let state = vs.lock_state(h);
    prop_assert!(!state.writer, "writer bit leaked");
    prop_assert_eq!(state.readers, 0, "reader count leaked");
    prop_assert_eq!(
        vs.is_deleted(h),
        model.is_none(),
        "deleted bit disagrees with model"
    );
    Ok(())
}

fn run(ops: &[Op], policy: ReclamationPolicy) -> Result<(), TestCaseError> {
    let pool = Arc::new(MemoryPool::new(PoolConfig::small()));
    let vs = ValueStore::with_policy(pool, policy);
    let mut tracked: Vec<Tracked> = Vec::new();

    for op in ops {
        match op {
            Op::Alloc(data) => {
                let h = vs.allocate_value(data).unwrap();
                tracked.push((h, Some(data.clone())));
            }
            Op::Put(i, data) => {
                if tracked.is_empty() {
                    continue;
                }
                let idx = i % tracked.len();
                let (h, model) = &mut tracked[idx];
                let ok = vs.put(*h, data).unwrap();
                prop_assert_eq!(ok, model.is_some(), "put success disagrees");
                if model.is_some() {
                    *model = Some(data.clone());
                }
            }
            Op::Replace(i, data) => {
                if tracked.is_empty() {
                    continue;
                }
                let idx = i % tracked.len();
                let (h, model) = &mut tracked[idx];
                let prior = vs.replace(*h, data).unwrap();
                match (&prior, &*model) {
                    (Some(got), Some(want)) => {
                        prop_assert_eq!(got, want, "replace returned wrong prior")
                    }
                    (None, None) => {}
                    _ => prop_assert!(false, "replace presence disagrees"),
                }
                if model.is_some() {
                    *model = Some(data.clone());
                }
            }
            Op::Remove(i) => {
                if tracked.is_empty() {
                    continue;
                }
                let idx = i % tracked.len();
                let (h, model) = &mut tracked[idx];
                let first = vs.remove(*h);
                prop_assert_eq!(first, model.is_some(), "remove success disagrees");
                // Idempotence: a second remove of the same reference must
                // always lose.
                prop_assert!(!vs.remove(*h), "double remove succeeded");
                *model = None;
            }
            Op::Read(i) => {
                if tracked.is_empty() {
                    continue;
                }
                let idx = i % tracked.len();
                let (h, model) = &tracked[idx];
                match (vs.read_to_vec(*h), model) {
                    (Ok(bytes), Some(want)) => {
                        prop_assert_eq!(&bytes, want, "read returned wrong bytes");
                        prop_assert_eq!(vs.value_len(*h), Ok(want.len()));
                    }
                    (Err(AccessError::Deleted), None) => {}
                    (got, want) => {
                        prop_assert!(false, "read mismatch: {:?} vs {:?}", got, want)
                    }
                }
            }
            Op::ComputeGrow(i, byte) => {
                if tracked.is_empty() {
                    continue;
                }
                let idx = i % tracked.len();
                let (h, model) = &mut tracked[idx];
                let ran = vs.compute(*h, |b| {
                    let n = b.len();
                    b.resize(n + 1).unwrap();
                    b.as_mut_slice()[n] = *byte;
                });
                prop_assert_eq!(ran.is_some(), model.is_some(), "compute presence disagrees");
                if let Some(m) = model {
                    m.push(*byte);
                }
            }
            Op::ComputeShrink(i) => {
                if tracked.is_empty() {
                    continue;
                }
                let idx = i % tracked.len();
                let (h, model) = &mut tracked[idx];
                let ran = vs.compute(*h, |b| {
                    let n = b.len() / 2;
                    b.resize(n).unwrap();
                });
                prop_assert_eq!(ran.is_some(), model.is_some(), "compute presence disagrees");
                if let Some(m) = model {
                    m.truncate(m.len() / 2);
                }
            }
        }
        for (h, model) in &tracked {
            check_handle(&vs, *h, model)?;
        }
    }

    // Final sweep: every surviving value still reads back exactly.
    for (h, model) in &tracked {
        match (vs.read_to_vec(*h), model) {
            (Ok(bytes), Some(want)) => prop_assert_eq!(&bytes, want),
            (Err(AccessError::Deleted), None) => {}
            (got, want) => prop_assert!(false, "final mismatch: {:?} vs {:?}", got, want),
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn header_state_machine_retaining(ops in ops()) {
        run(&ops, ReclamationPolicy::RetainHeaders)?;
    }

    #[test]
    fn header_state_machine_reclaiming(ops in ops()) {
        run(&ops, ReclamationPolicy::ReclaimHeaders)?;
    }
}
