//! Property-based tests for the memory pool substrate.
//!
//! These check the allocator invariants the rest of the system leans on:
//! no double-allocation, exact accounting, reference round-trips, and value
//! store sequential consistency against a model.

use std::collections::HashMap;
use std::sync::Arc;

use oak_mempool::{AllocError, FreeList, MemoryPool, PoolConfig, SliceRef, ValueStore};
use proptest::prelude::*;

/// Model-checks the free list: random interleavings of allocs and frees must
/// keep segments disjoint, keep accounting exact, and never hand out
/// overlapping regions.
#[derive(Debug, Clone)]
enum FlOp {
    Alloc(u32),
    FreeNth(usize),
}

fn fl_ops() -> impl Strategy<Value = Vec<FlOp>> {
    prop::collection::vec(
        prop_oneof![
            (1u32..400).prop_map(|n| FlOp::Alloc(n * 8)),
            (0usize..64).prop_map(FlOp::FreeNth),
        ],
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn freelist_never_overlaps(ops in fl_ops()) {
        let cap = 64 * 1024;
        let mut fl = FreeList::new(cap);
        let mut live: Vec<(u32, u32)> = Vec::new();
        for op in ops {
            match op {
                FlOp::Alloc(len) => {
                    if let Some(off) = fl.allocate(len) {
                        // Must not overlap any live allocation.
                        for &(o, l) in &live {
                            prop_assert!(
                                off + len <= o || o + l <= off,
                                "overlap: new [{off},+{len}) vs live [{o},+{l})"
                            );
                        }
                        live.push((off, len));
                    }
                }
                FlOp::FreeNth(i) => {
                    if !live.is_empty() {
                        let (off, len) = live.swap_remove(i % live.len());
                        fl.free(off, len);
                    }
                }
            }
            fl.check_invariants();
            let live_bytes: u64 = live.iter().map(|&(_, l)| l as u64).sum();
            prop_assert_eq!(fl.free_bytes() + live_bytes, cap as u64);
        }
    }

    #[test]
    fn slice_refs_round_trip(block in 0usize..100, offset in 0u32..1_000_000, len in 1u32..100_000) {
        let r = SliceRef::new(block, offset, len);
        let raw = r.to_raw();
        let back = SliceRef::from_raw(raw);
        prop_assert_eq!(back.block(), block);
        prop_assert_eq!(back.offset(), offset);
        prop_assert_eq!(back.len(), len);
        prop_assert!(!back.is_null());
    }

    /// Pool allocations hold their contents: write a fingerprint into every
    /// allocation, free a random subset, allocate more, and verify the
    /// survivors are intact (i.e. reuse never clobbers live data).
    #[test]
    fn pool_preserves_live_contents(sizes in prop::collection::vec(1usize..2048, 1..100),
                                    free_mask in prop::collection::vec(any::<bool>(), 1..100)) {
        let pool = MemoryPool::new(PoolConfig { magazines: false, lockfree: false, arena_size: 1 << 16, max_arenas: 64, ..Default::default() });
        let mut live: HashMap<u64, u8> = HashMap::new();
        for (i, &sz) in sizes.iter().enumerate() {
            let r = pool.allocate(sz).unwrap();
            let tag = (i % 251) as u8;
            unsafe { pool.slice_mut(r) }.fill(tag);
            live.insert(r.to_raw(), tag);
            if *free_mask.get(i).unwrap_or(&false) {
                // Free a random earlier allocation (the first in map order).
                if let Some((&raw, _)) = live.iter().next() {
                    pool.free(SliceRef::from_raw(raw));
                    live.remove(&raw);
                }
            }
        }
        for (&raw, &tag) in &live {
            let r = SliceRef::from_raw(raw);
            let s = unsafe { pool.slice(r) };
            prop_assert!(s.iter().all(|&b| b == tag), "clobbered allocation");
        }
    }

    /// The value store agrees with a sequential model under arbitrary
    /// single-threaded op sequences.
    #[test]
    fn value_store_matches_model(ops in prop::collection::vec(0u8..5, 1..200),
                                 payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 1..200)) {
        let vs = ValueStore::new(Arc::new(MemoryPool::new(PoolConfig::small())));
        let mut handles: Vec<(oak_mempool::HeaderRef, Option<Vec<u8>>)> = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            let data = &payloads[i % payloads.len()];
            match op {
                0 => {
                    let h = vs.allocate_value(data).unwrap();
                    handles.push((h, Some(data.clone())));
                }
                1 if !handles.is_empty() => {
                    let idx = i % handles.len();
                    let (h, model) = &mut handles[idx];
                    let ok = vs.put(*h, data).unwrap();
                    prop_assert_eq!(ok, model.is_some());
                    if model.is_some() {
                        *model = Some(data.clone());
                    }
                }
                2 if !handles.is_empty() => {
                    let idx = i % handles.len();
                    let (h, model) = &mut handles[idx];
                    let ok = vs.remove(*h);
                    prop_assert_eq!(ok, model.is_some());
                    *model = None;
                }
                3 if !handles.is_empty() => {
                    let idx = i % handles.len();
                    let (h, model) = &handles[idx];
                    match (vs.read_to_vec(*h), model) {
                        (Ok(bytes), Some(m)) => prop_assert_eq!(&bytes, m),
                        (Err(_), None) => {}
                        (got, want) => prop_assert!(false, "mismatch: {:?} vs {:?}", got, want),
                    }
                }
                4 if !handles.is_empty() => {
                    let idx = i % handles.len();
                    let (h, model) = &mut handles[idx];
                    let res = vs.compute(*h, |b| {
                        let n = b.len();
                        b.resize(n + 1).unwrap();
                        b.as_mut_slice()[n] = 0xAB;
                    });
                    prop_assert_eq!(res.is_some(), model.is_some());
                    if let Some(m) = model {
                        m.push(0xAB);
                    }
                }
                _ => {}
            }
        }
    }
}

/// Deterministic regression: pool exhaustion surfaces as an error, never a
/// panic or a bogus reference.
#[test]
fn budget_exhaustion_is_clean() {
    let pool = MemoryPool::new(PoolConfig {
        magazines: false,
        lockfree: false,
        arena_size: 4096,
        max_arenas: 2,
        ..Default::default()
    });
    let mut got = 0;
    loop {
        match pool.allocate(512) {
            Ok(_) => got += 1,
            Err(AllocError::PoolExhausted) => break,
            Err(e) => panic!("unexpected: {e}"),
        }
    }
    assert_eq!(got, 16);
    assert_eq!(pool.stats().reserved_bytes, 8192);
}
