//! Model-based property tests for the first-fit, coalescing [`FreeList`].
//!
//! A naive reference model (sorted vector of free segments, linear
//! first-fit scan, eager full-vector coalescing) runs the same random
//! alloc/free sequence as the real list. The real list must return the
//! *same offsets* (first-fit is deterministic), keep free segments
//! disjoint and never adjacent, and keep `free_bytes` exactly equal to
//! `capacity - live bytes` after every single step.

use oak_mempool::FreeList;
use proptest::prelude::*;

const GRAN: u32 = 8;
const CAPACITY: u32 = 4096;

/// Naive reference allocator: sorted free segments, linear first-fit,
/// eager coalescing by rebuilding the whole vector on every free.
#[derive(Debug)]
struct Model {
    /// `(offset, len)` sorted by offset; disjoint and non-adjacent.
    segs: Vec<(u32, u32)>,
}

impl Model {
    fn new(capacity: u32) -> Self {
        Model {
            segs: if capacity > 0 {
                vec![(0, capacity)]
            } else {
                Vec::new()
            },
        }
    }

    fn allocate(&mut self, len: u32) -> Option<u32> {
        let i = self.segs.iter().position(|&(_, l)| l >= len)?;
        let (off, seg_len) = self.segs[i];
        if seg_len == len {
            self.segs.remove(i);
        } else {
            self.segs[i] = (off + len, seg_len - len);
        }
        Some(off)
    }

    fn free(&mut self, offset: u32, len: u32) {
        let i = self
            .segs
            .iter()
            .position(|&(o, _)| o > offset)
            .unwrap_or(self.segs.len());
        self.segs.insert(i, (offset, len));
        let mut merged: Vec<(u32, u32)> = Vec::with_capacity(self.segs.len());
        for &(o, l) in &self.segs {
            match merged.last_mut() {
                Some(last) if last.0 + last.1 == o => last.1 += l,
                _ => merged.push((o, l)),
            }
        }
        self.segs = merged;
    }

    fn free_bytes(&self) -> u64 {
        self.segs.iter().map(|&(_, l)| l as u64).sum()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_alloc_free_matches_model(words in prop::collection::vec(any::<u64>(), 1..300)) {
        let mut fl = FreeList::new(CAPACITY);
        let mut model = Model::new(CAPACITY);
        let mut live: Vec<(u32, u32)> = Vec::new();
        for w in words {
            if w % 3 != 0 || live.is_empty() {
                // Allocate a granular size in [8, 256].
                let len = (((w >> 8) % 32) as u32 + 1) * GRAN;
                let got = fl.allocate(len);
                let want = model.allocate(len);
                prop_assert_eq!(got, want, "first-fit divergence for len {}", len);
                if let Some(off) = got {
                    for &(o, l) in &live {
                        prop_assert!(
                            off + len <= o || o + l <= off,
                            "allocated [{},+{}) overlaps live [{},+{})", off, len, o, l
                        );
                    }
                    prop_assert!(off as u64 + len as u64 <= CAPACITY as u64);
                    live.push((off, len));
                }
            } else {
                let i = ((w >> 16) as usize) % live.len();
                let (off, len) = live.swap_remove(i);
                fl.free(off, len);
                model.free(off, len);
            }
            // Structural invariants (disjoint, coalesced, granular) plus
            // exact byte accounting, after every operation.
            fl.check_invariants();
            prop_assert_eq!(fl.free_bytes(), model.free_bytes());
            prop_assert_eq!(fl.segment_count(), model.segs.len());
            let live_sum: u64 = live.iter().map(|&(_, l)| l as u64).sum();
            prop_assert_eq!(fl.free_bytes() + live_sum, CAPACITY as u64);
        }
        // Drain: freeing everything must coalesce back to one full segment.
        for (off, len) in live.drain(..) {
            fl.free(off, len);
        }
        fl.check_invariants();
        prop_assert_eq!(fl.free_bytes(), CAPACITY as u64);
        prop_assert_eq!(fl.segment_count(), 1);
        prop_assert_eq!(fl.largest_segment(), CAPACITY);
    }

    #[test]
    fn largest_segment_bounds_allocatability(words in prop::collection::vec(any::<u64>(), 1..80)) {
        // `largest_segment` is exactly the largest request the list can
        // still satisfy: one byte (granule) more must fail.
        let mut fl = FreeList::new(CAPACITY);
        let mut live: Vec<(u32, u32)> = Vec::new();
        for w in words {
            let len = (((w >> 4) % 64) as u32 + 1) * GRAN;
            if w % 2 == 0 {
                if let Some(off) = fl.allocate(len) {
                    live.push((off, len));
                }
            } else if !live.is_empty() {
                let (off, l) = live.swap_remove(((w >> 32) as usize) % live.len());
                fl.free(off, l);
            }
        }
        let largest = fl.largest_segment();
        if largest > 0 {
            let off = fl.allocate(largest);
            prop_assert!(off.is_some(), "largest_segment {} not allocatable", largest);
            fl.free(off.unwrap(), largest);
        }
        prop_assert!(fl.allocate(largest + GRAN).is_none());
    }
}

/// Regression: freeing the final segment, whose end sits exactly at
/// `capacity`, must pass the bounds check (`offset + len == capacity` is
/// legal, not out of range) and coalesce with a preceding hole.
#[test]
fn free_at_capacity_boundary() {
    let mut fl = FreeList::new(128);
    let a = fl.allocate(64).unwrap();
    let b = fl.allocate(64).unwrap();
    assert_eq!(b + 64, 128, "second allocation must end at capacity");
    fl.free(a, 64);
    fl.free(b, 64);
    fl.check_invariants();
    assert_eq!(fl.free_bytes(), 128);
    assert_eq!(fl.segment_count(), 1);
    assert_eq!(fl.largest_segment(), 128);
}

/// Regression: the same boundary free when it is the *first* free (no
/// predecessor hole to coalesce with) and when offsets near `u32` scale
/// would overflow a careless `offset + len` check done in 32 bits.
#[test]
fn free_boundary_without_predecessor() {
    let mut fl = FreeList::new(256);
    let mut offs = Vec::new();
    while let Some(o) = fl.allocate(64) {
        offs.push(o);
    }
    assert_eq!(fl.free_bytes(), 0);
    // Free back-to-front: each free's end abuts capacity or the previous
    // (already freed) segment's start.
    for &o in offs.iter().rev() {
        fl.free(o, 64);
        fl.check_invariants();
    }
    assert_eq!(fl.segment_count(), 1);
    assert_eq!(fl.free_bytes(), 256);
}
