//! Lock-free allocator equivalence and soak tests.
//!
//! The class-stack + magazine fast path must be *observationally
//! equivalent* to the plain mutex free list: the same operation sequence
//! succeeds or fails identically, live contents are never clobbered, and
//! the byte accounting balances to the reserved capacity in both modes.
//! (These are written against a deterministic xorshift op stream rather
//! than proptest so they run in every configuration, including Miri.)

use std::sync::Arc;

use oak_mempool::{AllocError, MemoryPool, PoolConfig, SliceRef};

/// Deterministic xorshift64* — the test must replay identically in both
/// pool modes, so no external RNG.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

#[derive(Debug, Clone, Copy)]
enum Op {
    /// Allocate `len` bytes and fill them with a tag.
    Alloc(usize),
    /// Free the n-th live allocation (mod the live count).
    FreeNth(usize),
}

fn op_stream(seed: u64, len: usize) -> Vec<Op> {
    let mut rng = Rng(seed | 1);
    // Track the live count the replay will see (FreeNth is a no-op on an
    // empty set) and keep the working set well under the pool budget:
    // below budget, *both* modes must satisfy every request — the
    // lock-free pool through its flush rung when parked slices hide the
    // contiguous space — so success counts must match exactly.
    //
    // The stream is phase-bursty (grow to 400 live, shrink to 0), the way
    // ingest/teardown cycles behave: the shrink phases free >64 slices of
    // one class in a row, which is exactly what overflows a magazine and
    // cascades onto the class stacks.
    let mut live = 0usize;
    let mut growing = true;
    (0..len)
        .map(|_| {
            if live == 400 {
                growing = false;
            } else if live == 0 {
                growing = true;
            }
            if growing {
                live += 1;
                // Mostly the dominant map classes (key slices, headers,
                // small payloads) — realistic reuse that exercises the
                // stacks — plus scattered sub-2 KiB sizes and the
                // occasional oversized mutex-fallback allocation.
                const DOMINANT: [usize; 3] = [24, 48, 136];
                let sz = match rng.below(20) {
                    0..=15 => DOMINANT[rng.below(3) as usize],
                    16..=18 => 1 + rng.below(2048) as usize,
                    _ => 2049 + rng.below(2048) as usize,
                };
                Op::Alloc(sz)
            } else {
                live -= 1;
                Op::FreeNth(rng.below(64) as usize)
            }
        })
        .collect()
}

/// Replays `ops` against `pool`, checking contents of every live slice
/// before it is freed. Returns (successful allocs, frees, OOM count).
fn replay(pool: &MemoryPool, ops: &[Op]) -> (u64, u64, u64) {
    let mut live: Vec<(SliceRef, u8)> = Vec::new();
    let (mut allocs, mut frees, mut ooms) = (0u64, 0u64, 0u64);
    for (i, op) in ops.iter().enumerate() {
        match *op {
            Op::Alloc(len) => match pool.allocate(len) {
                Ok(r) => {
                    let tag = (i % 251) as u8;
                    unsafe { pool.slice_mut(r) }.fill(tag);
                    live.push((r, tag));
                    allocs += 1;
                }
                Err(AllocError::PoolExhausted) => ooms += 1,
                Err(e) => panic!("unexpected alloc error: {e}"),
            },
            Op::FreeNth(n) => {
                if !live.is_empty() {
                    let (r, tag) = live.swap_remove(n % live.len());
                    let s = unsafe { pool.slice(r) };
                    assert!(s.iter().all(|&b| b == tag), "slice clobbered before free");
                    pool.free(r);
                    frees += 1;
                }
            }
        }
    }
    for (r, tag) in live {
        let s = unsafe { pool.slice(r) };
        assert!(s.iter().all(|&b| b == tag), "slice clobbered at teardown");
        pool.free(r);
        frees += 1;
    }
    (allocs, frees, ooms)
}

fn config(lockfree: bool) -> PoolConfig {
    PoolConfig {
        arena_size: 64 << 10,
        max_arenas: 4,
        magazines: lockfree,
        lockfree,
        ..Default::default()
    }
}

fn assert_balanced(pool: &MemoryPool) {
    let stats = pool.stats();
    assert_eq!(stats.live_bytes, 0, "teardown left live bytes: {stats:?}");
    assert_eq!(
        stats.magazine_bytes + stats.class_stack_bytes + stats.free_bytes,
        stats.reserved_bytes,
        "accounting imbalance: {stats:?}"
    );
}

/// Single-threaded: the lock-free pool must complete the same op stream
/// with the same number of successful allocations as the mutex pool (both
/// never spuriously OOM below capacity) and identical accounting.
#[test]
fn lockfree_matches_mutex_freelist_sequentially() {
    let n = if cfg!(miri) { 300 } else { 4000 };
    for seed in [0x9E37_79B9, 0xDEAD_BEEF, 0x0BAD_F00D] {
        let ops = op_stream(seed, n);
        let mutex_pool = MemoryPool::new(config(false));
        let lf_pool = MemoryPool::new(config(true));
        let (a0, f0, o0) = replay(&mutex_pool, &ops);
        let (a1, f1, o1) = replay(&lf_pool, &ops);
        // The working set never exceeds the budget, so neither mode may
        // refuse a single request (the lock-free pool must flush parked
        // slices rather than spuriously OOM) and the outcomes coincide.
        assert_eq!(o0, 0, "mutex pool spuriously exhausted (seed {seed:x})");
        assert_eq!(o1, 0, "lockfree pool spuriously exhausted (seed {seed:x})");
        assert_eq!((a0, f0), (a1, f1), "op outcomes diverged (seed {seed:x})");
        assert_balanced(&mutex_pool);
        assert_balanced(&lf_pool);
        let lf = lf_pool.stats();
        assert!(lf.class_stack_pushes > 0, "stacks never engaged: {lf:?}");
    }
}

/// Multi-threaded churn: recycled slices circulate through magazines and
/// class stacks across threads without clobbering live data, and the
/// free-list mutex stays cold relative to the op count.
#[test]
fn lockfree_concurrent_churn_stays_coherent() {
    let pool = Arc::new(MemoryPool::new(config(true)));
    let iters = if cfg!(miri) { 60 } else { 3000 };
    // Dominant size classes, as the map produces them (key slices, value
    // headers, small payloads) — class reuse is what the stacks amortize.
    const SIZES: [u64; 5] = [24, 48, 64, 136, 264];
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let pool = Arc::clone(&pool);
            s.spawn(move || {
                let mut rng = Rng(0xACE1 << t | 1);
                let mut live: Vec<(SliceRef, u8)> = Vec::new();
                for i in 0..iters {
                    // Keep the working set well under budget: this test
                    // measures steady-state recycling, not the OOM ladder.
                    if (rng.below(5) < 3 && live.len() < 120) || live.is_empty() {
                        let len = SIZES[rng.below(SIZES.len() as u64) as usize] as usize;
                        match pool.allocate(len) {
                            Ok(r) => {
                                let tag = (t as u8) ^ (i as u8);
                                unsafe { pool.slice_mut(r) }.fill(tag);
                                live.push((r, tag));
                            }
                            Err(AllocError::PoolExhausted) => {
                                for (r, _) in live.drain(..) {
                                    pool.free(r);
                                }
                            }
                            Err(e) => panic!("unexpected: {e}"),
                        }
                    } else {
                        let n = rng.below(live.len() as u64) as usize;
                        let (r, tag) = live.swap_remove(n);
                        let s = unsafe { pool.slice(r) };
                        assert!(s.iter().all(|&b| b == tag), "cross-thread clobber");
                        pool.free(r);
                    }
                }
                for (r, tag) in live {
                    let s = unsafe { pool.slice(r) };
                    assert!(s.iter().all(|&b| b == tag), "teardown clobber");
                    pool.free(r);
                }
            });
        }
    });
    assert_balanced(&pool);
    let stats = pool.stats();
    let ops = stats.alloc_count + stats.free_count;
    assert!(
        stats.freelist_lock_acquires * 10 <= ops,
        "free-list mutex stayed hot: {} locks for {} ops",
        stats.freelist_lock_acquires,
        ops
    );
}

/// With the auditor compiled in, the lock-free path must keep the ledger
/// balanced: no double-free, no foreign free, and capacity = live + free
/// with stack-held bytes on the free side.
#[cfg(feature = "audit")]
#[test]
fn lockfree_audit_ledger_stays_balanced() {
    let pool = MemoryPool::new(config(true));
    let ops = op_stream(0x5EED, if cfg!(miri) { 200 } else { 3000 });
    replay(&pool, &ops);
    let report = pool.audit();
    assert!(
        report.violations.is_empty(),
        "audit violations: {:?}",
        report.violations
    );
    assert!(
        report.balanced,
        "live {} + free {} != capacity {}",
        report.live_bytes, report.free_bytes, report.capacity_bytes
    );
    pool.flush_magazines();
    let report = pool.audit();
    assert!(report.balanced, "imbalance after flush");
}
