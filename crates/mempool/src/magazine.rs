//! Size-classed allocation magazines.
//!
//! *Concurrent Fixed-Size Allocation and Free in Constant Time* (PAPERS.md)
//! observes that a concurrent allocator's fast path should not take a shared
//! lock. The pool's first-fit free lists are guarded by per-arena mutexes,
//! and every thread probes arenas in the same order, so allocation-heavy
//! workloads serialize on arena 0's lock. This module interposes a magazine
//! layer: small per-slot caches of ready-to-hand-out slices, one stack per
//! size class, refilled in batches from (and flushed in batches back to) the
//! free lists so the lock is amortized over [`REFILL_BATCH`] slices instead
//! of being taken once per allocation.
//!
//! Slots, not threads, own magazines: the rack holds a fixed array of
//! [`SLOTS`] mutex-guarded slot magazines and each thread is pinned to one
//! slot by a process-wide thread counter (threads ≤ slots ⇒ no sharing; more
//! threads degrade gracefully to a shared slot). Compared to true
//! `thread_local!` storage this keeps every cached slice reachable from the
//! pool itself, which buys three properties the design needs:
//!
//! - **Emergency flush**: `recover_or_err`'s out-of-memory ladder can flush
//!   *all* magazines from whichever thread hit exhaustion
//!   ([`MemoryPool::flush_magazines`](crate::MemoryPool::flush_magazines)).
//! - **Audit compatibility**: slices parked in a magazine are *free, not
//!   leaked*. The rack tracks its held bytes so `stats()`/`audit()` can
//!   count them on the free side of the balance sheet.
//! - **No pool-identity hazards**: a thread-local cache keyed by pool
//!   address would outlive the pool and could poison a new pool reusing the
//!   same address; the rack dies with its pool.
//!
//! An uncontended `parking_lot` mutex acquisition is a single CAS, so a
//! magazine hit costs one CAS on a slot nothing else touches — the
//! contended path (free-list lock plus first-fit search) is reserved for
//! refills and flushes, which [`PoolStats::magazine_hits`] vs
//! [`PoolStats::freelist_lock_acquires`](crate::PoolStats) quantify.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use parking_lot::Mutex;

use crate::freelist::GRANULARITY;

/// Largest padded slice size served from magazines. Covers keys, value
/// headers, and the benchmark's default 1 KiB values; larger slices skip
/// the magazine batching (which would retain too much memory) and recycle
/// through the oversized class stacks or the free lists.
pub(crate) const MAG_MAX_PADDED: u32 = crate::freelist::SMALL_MAX_PADDED;

/// Number of slot magazines per rack. Threads are striped across slots, so
/// up to this many threads allocate with zero slot sharing.
pub(crate) const SLOTS: usize = 16;

/// Slices grabbed from a free list per refill (one lock acquisition).
pub(crate) const REFILL_BATCH: usize = 16;

/// Per-class capacity of a slot magazine; pushing beyond this trims the
/// magazine back to half, returning the surplus to the free lists.
pub(crate) const MAG_CAP: usize = 64;

/// Process-wide thread counter used to stripe threads across slots.
static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_SLOT: usize = NEXT_THREAD.fetch_add(1, Ordering::Relaxed) % SLOTS;
}

/// The slot this thread is pinned to.
#[inline]
pub(crate) fn thread_slot() -> usize {
    THREAD_SLOT.with(|s| *s)
}

/// A cached slice: arena index and byte offset. The length is implied by
/// the size class it is filed under.
pub(crate) type CachedSlice = (u32, u32);

#[derive(Default)]
struct SlotMag {
    /// One LIFO stack per size class, lazily materialized. Index is
    /// `padded / GRANULARITY - 1`.
    classes: Vec<Vec<CachedSlice>>,
}

impl SlotMag {
    #[inline]
    fn class_mut(&mut self, idx: usize) -> &mut Vec<CachedSlice> {
        if self.classes.len() <= idx {
            self.classes.resize_with(idx + 1, Vec::new);
        }
        &mut self.classes[idx]
    }
}

/// A pool's rack of slot magazines.
pub(crate) struct MagazineRack {
    slots: Box<[Mutex<SlotMag>]>,
    /// Total bytes parked across all slots: free capacity invisible to the
    /// free lists, reported by `stats()`/`audit()` as free.
    held_bytes: AtomicU64,
}

#[inline]
fn class_index(padded: u32) -> usize {
    debug_assert!((GRANULARITY..=MAG_MAX_PADDED).contains(&padded));
    (padded / GRANULARITY) as usize - 1
}

impl MagazineRack {
    pub(crate) fn new() -> Self {
        MagazineRack {
            slots: (0..SLOTS)
                .map(|_| Mutex::new(SlotMag::default()))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            held_bytes: AtomicU64::new(0),
        }
    }

    /// Bytes currently parked in magazines.
    #[inline]
    pub(crate) fn held_bytes(&self) -> u64 {
        self.held_bytes.load(Ordering::Relaxed)
    }

    /// Pops a cached slice of class `padded` from the calling thread's
    /// slot, if one is available.
    pub(crate) fn try_pop(&self, padded: u32) -> Option<CachedSlice> {
        let idx = class_index(padded);
        let mut slot = self.slots[thread_slot()].lock();
        let cached = slot.classes.get_mut(idx)?.pop()?;
        self.held_bytes.fetch_sub(padded as u64, Ordering::Relaxed);
        Some(cached)
    }

    /// Files a freed slice into the calling thread's slot. When the class
    /// overflows [`MAG_CAP`], returns the surplus (trimmed to half
    /// capacity) for the pool to hand back to the free lists.
    pub(crate) fn push(&self, padded: u32, slice: CachedSlice) -> Option<Vec<CachedSlice>> {
        let idx = class_index(padded);
        let mut slot = self.slots[thread_slot()].lock();
        let class = slot.class_mut(idx);
        class.push(slice);
        if class.len() <= MAG_CAP {
            self.held_bytes.fetch_add(padded as u64, Ordering::Relaxed);
            return None;
        }
        // Trim from the bottom of the stack so the hottest (most recently
        // freed, cache-warm) slices stay in the magazine.
        let trim = class.len() - MAG_CAP / 2;
        let surplus: Vec<CachedSlice> = class.drain(..trim).collect();
        // The pushed slice is part of the surplus; only the retained delta
        // (if any) counts as newly held. Here exactly one slice's worth
        // leaves relative to before the push, net of the one pushed:
        let released = (surplus.len() as u64 - 1) * padded as u64;
        self.held_bytes.fetch_sub(released, Ordering::Relaxed);
        Some(surplus)
    }

    /// Banks a refill batch into the calling thread's slot.
    pub(crate) fn bank(&self, padded: u32, slices: &[CachedSlice]) {
        if slices.is_empty() {
            return;
        }
        let idx = class_index(padded);
        let mut slot = self.slots[thread_slot()].lock();
        slot.class_mut(idx).extend_from_slice(slices);
        self.held_bytes
            .fetch_add(padded as u64 * slices.len() as u64, Ordering::Relaxed);
    }

    /// Empties every slot, returning `(padded_len, slice)` pairs so the
    /// pool can return them to the free lists. Used by the emergency
    /// out-of-memory ladder and by exhaustion-triggered retries.
    pub(crate) fn drain_all(&self) -> Vec<(u32, CachedSlice)> {
        let mut out = Vec::new();
        for slot in self.slots.iter() {
            let mut slot = slot.lock();
            for (idx, class) in slot.classes.iter_mut().enumerate() {
                let padded = (idx as u32 + 1) * GRANULARITY;
                for slice in class.drain(..) {
                    self.held_bytes.fetch_sub(padded as u64, Ordering::Relaxed);
                    out.push((padded, slice));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pop_returns_pushed() {
        let rack = MagazineRack::new();
        assert!(rack.try_pop(64).is_none());
        assert!(rack.push(64, (0, 128)).is_none());
        assert_eq!(rack.held_bytes(), 64);
        assert_eq!(rack.try_pop(64), Some((0, 128)));
        assert_eq!(rack.held_bytes(), 0);
        // Different class stays empty.
        assert!(rack.push(64, (0, 256)).is_none());
        assert!(rack.try_pop(72).is_none());
    }

    #[test]
    fn overflow_trims_to_half() {
        let rack = MagazineRack::new();
        for i in 0..MAG_CAP {
            assert!(rack.push(8, (0, i as u32 * 8)).is_none());
        }
        let surplus = rack.push(8, (0, 9999)).expect("overflow");
        assert_eq!(surplus.len(), MAG_CAP / 2 + 1);
        assert_eq!(rack.held_bytes(), (MAG_CAP / 2) as u64 * 8);
    }

    #[test]
    fn drain_all_empties_every_class() {
        let rack = MagazineRack::new();
        rack.bank(8, &[(0, 0), (0, 8)]);
        rack.bank(2048, &[(1, 0)]);
        assert_eq!(rack.held_bytes(), 16 + 2048);
        let mut drained = rack.drain_all();
        drained.sort_unstable();
        assert_eq!(drained, vec![(8, (0, 0)), (8, (0, 8)), (2048, (1, 0))]);
        assert_eq!(rack.held_bytes(), 0);
        assert!(rack.drain_all().is_empty());
    }
}
