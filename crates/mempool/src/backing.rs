//! Pluggable arena backing: anonymous heap memory or file-backed mmap.
//!
//! ROADMAP item 5 asks for a paged arena backend so datasets can exceed
//! RAM (cf. the page-store abstraction in `obliviouslabs/ordb`'s
//! `pagefile.rs`). [`ArenaBacking`] is that seam: the pool's growth path
//! asks the backing for each new [`Arena`](crate::Arena), and the
//! file-backed variant maps a per-arena file `MAP_SHARED` so the kernel
//! pages arena bytes in and out on demand — and so the bytes survive the
//! process, which is what the `oak-durable` checkpoint/recovery layer
//! builds on.
//!
//! The crate has no `libc` dependency, so on `x86_64-unknown-linux-gnu`
//! the mapping syscalls (`mmap`/`munmap`/`msync`) are issued directly via
//! inline assembly. Other targets fall back to a *buffered* file backing:
//! a heap region loaded from the file at creation and written back on
//! [`Arena::flush`](crate::Arena::flush) — the same durability contract,
//! without demand paging.

use std::path::PathBuf;

use crate::arena::Arena;
use crate::error::AllocError;

/// Where a pool's arenas live.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum ArenaBacking {
    /// Anonymous heap memory (the default): arenas come from the system
    /// allocator and vanish with the process.
    #[default]
    Anon,
    /// File-backed arenas: arena `i` maps `dir/arena-NNNN.oakmem` with
    /// `MAP_SHARED`, so the region is demand-paged (datasets may exceed
    /// RAM) and [`MemoryPool::sync_backing`](crate::MemoryPool) can make
    /// its bytes durable. The directory is created on first growth.
    File {
        /// Directory holding one backing file per arena.
        dir: PathBuf,
    },
}

impl ArenaBacking {
    /// File-backed arenas rooted at `dir`.
    pub fn file(dir: impl Into<PathBuf>) -> Self {
        ArenaBacking::File { dir: dir.into() }
    }

    /// `true` when arenas are file-backed.
    pub fn is_file(&self) -> bool {
        matches!(self, ArenaBacking::File { .. })
    }

    /// The backing file path for arena slot `index`, if file-backed.
    pub fn arena_path(&self, index: usize) -> Option<PathBuf> {
        match self {
            ArenaBacking::Anon => None,
            ArenaBacking::File { dir } => Some(dir.join(format!("arena-{index:04}.oakmem"))),
        }
    }

    /// Obtains the arena for slot `index`. Heap allocation failure aborts
    /// (as for any `std` collection); file-backing failure is reported as
    /// a typed allocation error so one operation fails instead of the
    /// process.
    pub(crate) fn create_arena(&self, index: usize, len: usize) -> Result<Arena, AllocError> {
        match self {
            ArenaBacking::Anon => Ok(Arena::new(len)),
            ArenaBacking::File { dir } => {
                if std::fs::create_dir_all(dir).is_err() {
                    return Err(AllocError::Internal("backing directory creation failed"));
                }
                let path = self.arena_path(index).expect("file backing has a path");
                Arena::file_backed(&path, len)
                    .map_err(|_| AllocError::Internal("file-backed arena mapping failed"))
            }
        }
    }
}

/// Raw Linux mapping syscalls (x86_64). The crate deliberately has no
/// `libc` dependency; these three calls are the entire surface it would
/// need from it.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
pub(crate) mod sys {
    use std::arch::asm;

    const SYS_MMAP: usize = 9;
    const SYS_MUNMAP: usize = 11;
    const SYS_MSYNC: usize = 26;

    const PROT_READ: usize = 0x1;
    const PROT_WRITE: usize = 0x2;
    const MAP_SHARED: usize = 0x01;
    const MS_SYNC: usize = 0x4;

    /// One raw syscall. Returns the kernel's raw result: `-errno` on
    /// failure, encoded in the usual `[-4095, -1]` window.
    ///
    /// # Safety
    /// The caller is responsible for the syscall's own contract.
    unsafe fn syscall6(n: usize, a1: usize, a2: usize, a3: usize, a4: usize, a5: usize) -> isize {
        let ret: isize;
        asm!(
            "syscall",
            inlateout("rax") n as isize => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            in("r10") a4,
            in("r8") a5,
            in("r9") 0usize,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack)
        );
        ret
    }

    fn check(ret: isize) -> std::io::Result<usize> {
        if (-4095..0).contains(&ret) {
            Err(std::io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(ret as usize)
        }
    }

    /// Maps `len` bytes of `fd` (from offset 0) shared and read-write.
    ///
    /// # Safety
    /// `fd` must be a valid open file descriptor of at least `len` bytes.
    pub(crate) unsafe fn map_shared(fd: i32, len: usize) -> std::io::Result<*mut u8> {
        let ret = syscall6(
            SYS_MMAP,
            0,
            len,
            PROT_READ | PROT_WRITE,
            MAP_SHARED,
            fd as usize,
        );
        check(ret).map(|addr| addr as *mut u8)
    }

    /// Unmaps a region previously returned by [`map_shared`].
    ///
    /// # Safety
    /// `(ptr, len)` must be exactly a live mapping from [`map_shared`].
    pub(crate) unsafe fn unmap(ptr: *mut u8, len: usize) -> std::io::Result<()> {
        check(syscall6(SYS_MUNMAP, ptr as usize, len, 0, 0, 0)).map(|_| ())
    }

    /// Synchronously writes a mapped region's dirty pages to its file.
    ///
    /// # Safety
    /// `(ptr, len)` must lie within a live mapping from [`map_shared`].
    pub(crate) unsafe fn sync(ptr: *mut u8, len: usize) -> std::io::Result<()> {
        check(syscall6(SYS_MSYNC, ptr as usize, len, MS_SYNC, 0, 0)).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_anon() {
        assert_eq!(ArenaBacking::default(), ArenaBacking::Anon);
        assert!(!ArenaBacking::Anon.is_file());
        assert_eq!(ArenaBacking::Anon.arena_path(3), None);
    }

    #[test]
    fn file_backing_names_arenas() {
        let b = ArenaBacking::file("/tmp/oak-test");
        assert!(b.is_file());
        assert_eq!(
            b.arena_path(7).unwrap(),
            PathBuf::from("/tmp/oak-test/arena-0007.oakmem")
        );
    }
}
