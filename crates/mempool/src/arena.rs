//! A single large, fixed-size raw memory region.
//!
//! One arena corresponds to what the paper calls an "off-heap arena": a large
//! (100 MB by default) region pre-allocated once and carved up internally.
//! The region is allocated directly through [`std::alloc`] with an explicit
//! layout, zero-initialized, and never resized or handed back until drop.

use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};
use std::fs::OpenOptions;
#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
use std::io::Read;
use std::io::{Seek, SeekFrom, Write};
use std::path::Path;
use std::ptr::NonNull;
use std::sync::atomic::{AtomicU32, AtomicU64};

/// Alignment of every arena and of every allocation carved out of it.
///
/// 8-byte alignment lets value headers embed `AtomicU32`/`AtomicU64` words.
pub const ARENA_ALIGN: usize = 8;

/// How the arena's byte region is obtained and released.
enum Region {
    /// Anonymous heap memory from the system allocator.
    Heap,
    /// A `MAP_SHARED` mapping of `file`: pages are backed by the file and
    /// demand-paged by the kernel. The handle is retained for `sync_all`
    /// after `msync` on flush.
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    Mapped { file: std::fs::File },
    /// Portable fallback for targets without the raw mmap syscalls: a heap
    /// region loaded from `file` at creation and written back on flush.
    #[allow(dead_code)]
    Buffered { file: std::fs::File },
}

/// A fixed-size raw memory region with interior-mutable byte access.
///
/// `Arena` hands out raw views into its region. It performs **no** access
/// synchronization itself: callers (the pool / value store) guarantee
/// exclusion, e.g. through value-header locks or publication protocols.
///
/// An arena is either *anonymous* ([`Arena::new`]) or *file-backed*
/// ([`Arena::file_backed`]); the access API is identical, only creation,
/// [`flush`](Arena::flush), and teardown differ.
pub struct Arena {
    ptr: NonNull<u8>,
    len: usize,
    region: Region,
}

// SAFETY: the arena is a plain byte region; synchronization of contents is
// the responsibility of callers, and the pointer itself is never mutated.
unsafe impl Send for Arena {}
unsafe impl Sync for Arena {}

impl Arena {
    /// Allocates a new zero-initialized arena of `len` bytes.
    ///
    /// # Panics
    /// Panics if `len` is zero or not a multiple of [`ARENA_ALIGN`]; aborts
    /// on allocation failure (consistent with `std` collection behaviour).
    pub fn new(len: usize) -> Self {
        let ptr = Self::heap_region(len);
        Arena {
            ptr,
            len,
            region: Region::Heap,
        }
    }

    fn heap_region(len: usize) -> NonNull<u8> {
        assert!(len > 0, "arena must be non-empty");
        assert!(
            len.is_multiple_of(ARENA_ALIGN),
            "arena length must be a multiple of {ARENA_ALIGN}"
        );
        let layout = Layout::from_size_align(len, ARENA_ALIGN).expect("valid arena layout");
        // SAFETY: layout has non-zero size as asserted above.
        let raw = unsafe { alloc_zeroed(layout) };
        match NonNull::new(raw) {
            Some(ptr) => ptr,
            None => handle_alloc_error(layout),
        }
    }

    /// Opens (creating if absent) `path`, sizes it to `len` bytes, and maps
    /// it as this arena's region. Bytes already in the file are visible in
    /// the region — that is what recovery reads — and a fresh file reads as
    /// zeros (`set_len` extends with zero bytes), matching [`Arena::new`].
    ///
    /// On `x86_64-unknown-linux-gnu` the region is a real `MAP_SHARED`
    /// mapping (demand-paged; the dataset may exceed RAM). Elsewhere a
    /// buffered fallback loads the file into heap memory and
    /// [`flush`](Arena::flush) writes it back.
    ///
    /// # Panics
    /// Panics if `len` is zero or not a multiple of [`ARENA_ALIGN`].
    pub fn file_backed(path: &Path, len: usize) -> std::io::Result<Self> {
        assert!(len > 0, "arena must be non-empty");
        assert!(
            len.is_multiple_of(ARENA_ALIGN),
            "arena length must be a multiple of {ARENA_ALIGN}"
        );
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        file.set_len(len as u64)?;
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        {
            use std::os::fd::AsRawFd;
            // SAFETY: the fd is open and the file was just sized to `len`.
            let raw = unsafe { crate::backing::sys::map_shared(file.as_raw_fd(), len)? };
            let ptr = NonNull::new(raw).expect("mmap never returns null on success");
            Ok(Arena {
                ptr,
                len,
                region: Region::Mapped { file },
            })
        }
        #[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
        {
            let ptr = Self::heap_region(len);
            // SAFETY: the region was just allocated and is exclusively ours.
            let buf = unsafe { std::slice::from_raw_parts_mut(ptr.as_ptr(), len) };
            let mut file = file;
            file.seek(SeekFrom::Start(0))?;
            file.read_exact(buf)?;
            Ok(Arena {
                ptr,
                len,
                region: Region::Buffered { file },
            })
        }
    }

    /// `true` when this arena's bytes are backed by a file.
    pub fn is_file_backed(&self) -> bool {
        !matches!(self.region, Region::Heap)
    }

    /// Synchronously writes the region's contents through to its backing
    /// file (`msync` + `fsync` for mapped arenas, a full write-back for the
    /// buffered fallback). A no-op `Ok(())` for anonymous arenas.
    ///
    /// Races with concurrent writers are benign: `msync` flushes whatever
    /// bytes are in the pages at the instant it runs. Callers wanting a
    /// *consistent* image quiesce writes first (the durable checkpoint
    /// does).
    pub fn flush(&self) -> std::io::Result<()> {
        match &self.region {
            Region::Heap => Ok(()),
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            Region::Mapped { file } => {
                // SAFETY: (ptr, len) is exactly our live mapping.
                unsafe { crate::backing::sys::sync(self.ptr.as_ptr(), self.len)? };
                file.sync_all()
            }
            Region::Buffered { file } => {
                // SAFETY: the region is live for self's lifetime; flush
                // tolerates concurrent writes (see doc comment).
                let buf = unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) };
                let mut f = file;
                f.seek(SeekFrom::Start(0))?;
                f.write_all(buf)?;
                file.sync_all()
            }
        }
    }

    /// Size of the region in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Always `false`: arenas are non-empty by construction.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    #[inline]
    fn check(&self, offset: u32, len: u32) {
        let end = offset as usize + len as usize;
        assert!(
            end <= self.len,
            "arena access out of bounds: {end} > {}",
            self.len
        );
    }

    /// Returns a shared view of `len` bytes at `offset`.
    ///
    /// # Safety
    /// The caller must guarantee that no thread writes to this byte range for
    /// the lifetime of the returned slice (e.g. the range holds an immutable
    /// key, or the caller holds the value-header read lock).
    #[inline]
    pub unsafe fn slice(&self, offset: u32, len: u32) -> &[u8] {
        self.check(offset, len);
        std::slice::from_raw_parts(self.ptr.as_ptr().add(offset as usize), len as usize)
    }

    /// Returns an exclusive view of `len` bytes at `offset`.
    ///
    /// # Safety
    /// The caller must guarantee exclusive access to this byte range for the
    /// lifetime of the returned slice (e.g. it holds the value-header write
    /// lock, or the range is freshly allocated and unpublished).
    #[allow(clippy::mut_from_ref)]
    #[inline]
    pub unsafe fn slice_mut(&self, offset: u32, len: u32) -> &mut [u8] {
        self.check(offset, len);
        std::slice::from_raw_parts_mut(self.ptr.as_ptr().add(offset as usize), len as usize)
    }

    /// The virtual address of the byte at `offset` — address arithmetic
    /// only, no access permission implied. Callers that later dereference
    /// the address must hold whatever synchronization the range requires.
    #[inline]
    pub fn addr_of(&self, offset: u32) -> usize {
        self.check(offset, 0);
        self.ptr.as_ptr() as usize + offset as usize
    }

    /// Returns a reference to an `AtomicU32` embedded at `offset`.
    ///
    /// # Safety
    /// `offset` must be 4-byte aligned and within bounds. Atomic words may be
    /// shared freely; this is how value headers synchronize access.
    #[inline]
    pub unsafe fn atomic_u32(&self, offset: u32) -> &AtomicU32 {
        debug_assert!(offset.is_multiple_of(4), "unaligned atomic access");
        self.check(offset, 4);
        &*(self.ptr.as_ptr().add(offset as usize) as *const AtomicU32)
    }

    /// Returns a reference to an `AtomicU64` embedded at `offset`.
    ///
    /// # Safety
    /// `offset` must be 8-byte aligned and within bounds.
    #[inline]
    pub unsafe fn atomic_u64(&self, offset: u32) -> &AtomicU64 {
        debug_assert!(offset.is_multiple_of(8), "unaligned atomic access");
        self.check(offset, 8);
        &*(self.ptr.as_ptr().add(offset as usize) as *const AtomicU64)
    }
}

impl Drop for Arena {
    fn drop(&mut self) {
        match &self.region {
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            Region::Mapped { .. } => {
                // SAFETY: (ptr, len) is exactly the live mapping created in
                // `file_backed`; nothing references it after drop.
                let _ = unsafe { crate::backing::sys::unmap(self.ptr.as_ptr(), self.len) };
            }
            _ => {
                let layout =
                    Layout::from_size_align(self.len, ARENA_ALIGN).expect("valid arena layout");
                // SAFETY: ptr was produced by alloc_zeroed with this layout.
                unsafe { dealloc(self.ptr.as_ptr(), layout) };
            }
        }
    }
}

impl std::fmt::Debug for Arena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Arena").field("len", &self.len).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn arena_is_zeroed() {
        let a = Arena::new(4096);
        let s = unsafe { a.slice(0, 4096) };
        assert!(s.iter().all(|&b| b == 0));
    }

    #[test]
    fn write_then_read() {
        let a = Arena::new(1024);
        unsafe {
            a.slice_mut(100, 4).copy_from_slice(&[1, 2, 3, 4]);
            assert_eq!(a.slice(100, 4), &[1, 2, 3, 4]);
            // Neighbouring bytes untouched.
            assert_eq!(a.slice(99, 1), &[0]);
            assert_eq!(a.slice(104, 1), &[0]);
        }
    }

    #[test]
    fn atomics_in_arena() {
        let a = Arena::new(64);
        unsafe {
            let w = a.atomic_u32(8);
            w.store(42, Ordering::SeqCst);
            assert_eq!(a.atomic_u32(8).load(Ordering::SeqCst), 42);
            let d = a.atomic_u64(16);
            d.fetch_add(7, Ordering::SeqCst);
            assert_eq!(d.load(Ordering::SeqCst), 7);
        }
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_access_panics() {
        let a = Arena::new(64);
        let _ = unsafe { a.slice(60, 8) };
    }

    #[test]
    fn file_backed_roundtrip_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("oak-arena-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.oakmem");
        {
            let a = Arena::file_backed(&path, 4096).unwrap();
            assert!(a.is_file_backed());
            // Fresh file: zeroed, like an anonymous arena.
            assert!(unsafe { a.slice(0, 4096) }.iter().all(|&b| b == 0));
            unsafe { a.slice_mut(128, 5) }.copy_from_slice(b"durab");
            a.flush().unwrap();
        }
        // Reopen: the written bytes are visible in a fresh mapping.
        let b = Arena::file_backed(&path, 4096).unwrap();
        assert_eq!(unsafe { b.slice(128, 5) }, b"durab");
        assert_eq!(unsafe { b.slice(127, 1) }, &[0]);
        drop(b);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn anon_flush_is_a_noop() {
        let a = Arena::new(64);
        assert!(!a.is_file_backed());
        a.flush().unwrap();
    }

    #[test]
    fn concurrent_atomic_increments() {
        let a = std::sync::Arc::new(Arena::new(64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let a = a.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    unsafe { a.atomic_u64(0) }.fetch_add(1, Ordering::Relaxed);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(unsafe { a.atomic_u64(0) }.load(Ordering::SeqCst), 4000);
    }
}
