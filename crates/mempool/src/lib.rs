//! # oak-mempool — Oak's self-managed "off-heap" memory
//!
//! This crate is the Rust equivalent of Oak's off-heap memory manager
//! (paper §3.2–§3.3). In the Java original, key and value buffers live in
//! large pre-allocated `DirectByteBuffer` arenas outside the garbage-collected
//! heap. In Rust, "off-heap" translates to *self-managed*: each arena is one
//! large raw allocation obtained once from the system and carved up by our own
//! first-fit free list. No per-object allocator metadata, no global-allocator
//! traffic on the data path, and an exactly computable RAM footprint.
//!
//! The crate provides:
//!
//! * [`Arena`] — a single large, fixed-size raw memory region;
//! * [`FreeList`] — a first-fit, coalescing free list over one arena;
//! * [`MemoryPool`] — a multi-arena pool handing out packed 64-bit
//!   [`SliceRef`]s, with exact footprint accounting;
//! * [`ValueStore`] — the value-access layer: every value is fronted by a
//!   16-byte *header* holding a reader/writer lock word, a deleted bit, and an
//!   indirection to the payload, enabling atomic `put`/`compute`/`remove` and
//!   in-place payload resize (paper §3.3). Headers are bump-allocated and
//!   never reused, which makes the `finalizeRemove` ABA argument of §4.4 hold.
//!
//! All memory handed out by this crate stays mapped until the pool is
//! dropped, so reading a stale buffer is never undefined behaviour — logical
//! staleness is surfaced through the header's deleted bit instead
//! (the Rust analogue of Java Oak's `ConcurrentModificationException`).

#![warn(missing_docs)]

mod arena;
mod audit;
mod backing;
mod classstack;
mod error;
mod freelist;
mod header;
mod magazine;
mod pool;
mod refs;
mod shared;
mod stats;
mod value;

pub use arena::{Arena, ARENA_ALIGN};
pub use audit::AllocClass;
#[cfg(feature = "audit")]
pub use audit::{AuditReport, AuditViolation, LiveAlloc, ViolationKind};
pub use backing::ArenaBacking;
pub use classstack::LARGE_MAX_PADDED;
pub use error::{AccessError, AllocError, ContendedInfo, LockSite, ValueOpError};
pub use freelist::FreeList;
pub use header::{HeaderRef, LockLimit, LockState, DEFAULT_LOCK_WAIT, HEADER_SIZE};
pub use pool::{MemoryPool, PoolConfig};
pub use refs::{SliceRef, MAX_ARENA_SIZE, MAX_BLOCKS, MAX_SLICE_LEN};
pub use shared::{ArenaPool, ArenaPoolStats};
pub use stats::PoolStats;
pub use value::{ReclamationPolicy, ScanLock, ValueBytes, ValueBytesMut, ValueStore};

/// Canonical failpoint sites declared by this crate (see the `failpoints`
/// feature and DESIGN.md "Failure model & panic safety"). Errorable sites
/// can be scheduled with return-error injection; passive sites only perturb
/// timing (yield / delay) or panic under explicit test configuration.
pub const FAILPOINT_SITES: &[oak_failpoints::SiteSpec] = &[
    oak_failpoints::SiteSpec::errorable("pool/alloc"),
    oak_failpoints::SiteSpec::errorable("pool/grow"),
    oak_failpoints::SiteSpec::errorable("freelist/pop"),
    oak_failpoints::SiteSpec::passive("pool/free"),
    oak_failpoints::SiteSpec::errorable("value/alloc"),
    oak_failpoints::SiteSpec::errorable("value/put"),
    oak_failpoints::SiteSpec::errorable("value/replace"),
    oak_failpoints::SiteSpec::passive("value/compute"),
    oak_failpoints::SiteSpec::passive("value/remove"),
    oak_failpoints::SiteSpec::passive("value/read"),
];
