//! Footprint accounting.
//!
//! Oak "supports fast estimation of its RAM footprint – a common application
//! requirement" (§1.1). The pool keeps exact atomic counters so footprint
//! queries are O(1) reads, and Figure 5c-style memory-overhead reports can be
//! produced without walking the data structure. Free-space fragmentation
//! figures are gathered by briefly walking the per-arena free lists in
//! [`MemoryPool::stats`](crate::MemoryPool::stats).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Number of lanes in a [`Striped`] counter. A power of two so the lane
/// pick is a mask; 8 lanes × 64 B padding = 512 B per striped counter.
const LANES: usize = 8;

/// Process-wide thread counter used to stripe threads across lanes.
static NEXT_LANE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static LANE: usize = NEXT_LANE.fetch_add(1, Ordering::Relaxed) % LANES;
}

/// One cache-line-padded counter lane, so two threads bumping different
/// lanes never write the same line.
#[derive(Debug, Default)]
#[repr(align(64))]
struct Lane(AtomicU64);

/// A thread-striped monotonic counter: increments go to a thread-affine
/// cache-line-padded lane, reads sum the lanes. Used for the hot-path
/// traffic counters (key dereferences, magazine hits, class-stack ops)
/// where a single shared `fetch_add` line becomes the scaling bottleneck
/// it is supposed to measure.
#[derive(Debug, Default)]
pub(crate) struct Striped {
    lanes: [Lane; LANES],
}

impl Striped {
    #[inline]
    pub(crate) fn add(&self, n: u64) {
        let lane = LANE.with(|l| *l);
        self.lanes[lane].0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn incr(&self) {
        self.add(1);
    }

    pub(crate) fn sum(&self) -> u64 {
        self.lanes.iter().map(|l| l.0.load(Ordering::Relaxed)).sum()
    }
}

/// Internal atomic counters owned by the pool.
/// Hot per-operation counters (every alloc/free bumps several) are
/// [`Striped`] so the accounting itself never becomes the shared cache
/// line that serializes the threads it measures; rare-event counters
/// (aborts, failures, sheds) stay single `AtomicU64`s.
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub(crate) allocated_bytes: Striped,
    pub(crate) freed_bytes: Striped,
    pub(crate) alloc_count: Striped,
    pub(crate) free_count: Striped,
    pub(crate) header_bytes: Striped,
    pub(crate) lock_retries: Striped,
    pub(crate) contended_aborts: AtomicU64,
    pub(crate) failed_allocs: AtomicU64,
    pub(crate) poisoned_values: AtomicU64,
    /// Maintained at snapshot time from the striped allocated/freed sums
    /// (a per-alloc `fetch_max` would re-sum eight lanes on every call).
    /// The reported peak is therefore the highest live footprint *seen by
    /// any snapshot*, which is what footprint reporting reads.
    pub(crate) peak_live_bytes: AtomicU64,
    pub(crate) emergency_reclaims: AtomicU64,
    pub(crate) oom_failures: AtomicU64,
    pub(crate) offheap_key_derefs: Striped,
    pub(crate) freelist_lock_acquires: Striped,
    pub(crate) magazine_hits: Striped,
    pub(crate) magazine_refills: Striped,
    pub(crate) magazine_flushes: Striped,
    pub(crate) class_stack_pushes: Striped,
    pub(crate) class_stack_pops: Striped,
    pub(crate) cas_retries: Striped,
    pub(crate) lockfree_refills: Striped,
    pub(crate) reservoir_takes: AtomicU64,
    pub(crate) reservoir_returns: AtomicU64,
    pub(crate) reservoir_cas_retries: AtomicU64,
    pub(crate) reservoir_steals: AtomicU64,
    pub(crate) op_retries: AtomicU64,
    pub(crate) deadline_exceeded: AtomicU64,
    pub(crate) overload_sheds: AtomicU64,
    pub(crate) scan_sheds: AtomicU64,
    pub(crate) scan_chunk_batches: Striped,
    pub(crate) scan_revalidations: AtomicU64,
    pub(crate) scan_buffer_reuses: Striped,
}

/// Free-list aggregates gathered by walking the arenas.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct FreeListStats {
    pub(crate) free_bytes: u64,
    pub(crate) free_segments: u64,
    pub(crate) largest_free_segment: u64,
}

impl Counters {
    pub(crate) fn snapshot(
        &self,
        arenas: u64,
        arena_size: u64,
        fl: FreeListStats,
        magazine_bytes: u64,
        class_stack_bytes: u64,
    ) -> PoolStats {
        let allocated = self.allocated_bytes.sum();
        let freed = self.freed_bytes.sum();
        let live = allocated.saturating_sub(freed);
        // Snapshot-time high-water mark (see the field comment).
        let peak = self
            .peak_live_bytes
            .fetch_max(live, Ordering::Relaxed)
            .max(live);
        PoolStats {
            arenas,
            reserved_bytes: arenas * arena_size,
            live_bytes: live,
            allocated_bytes: allocated,
            freed_bytes: freed,
            alloc_count: self.alloc_count.sum(),
            free_count: self.free_count.sum(),
            header_bytes: self.header_bytes.sum(),
            lock_retries: self.lock_retries.sum(),
            contended_aborts: self.contended_aborts.load(Ordering::Relaxed),
            failed_allocs: self.failed_allocs.load(Ordering::Relaxed),
            poisoned_values: self.poisoned_values.load(Ordering::Relaxed),
            free_bytes: fl.free_bytes,
            free_segments: fl.free_segments,
            largest_free_segment: fl.largest_free_segment,
            peak_live_bytes: peak,
            emergency_reclaims: self.emergency_reclaims.load(Ordering::Relaxed),
            oom_failures: self.oom_failures.load(Ordering::Relaxed),
            offheap_key_derefs: self.offheap_key_derefs.sum(),
            freelist_lock_acquires: self.freelist_lock_acquires.sum(),
            magazine_hits: self.magazine_hits.sum(),
            magazine_refills: self.magazine_refills.sum(),
            magazine_flushes: self.magazine_flushes.sum(),
            magazine_bytes,
            class_stack_pushes: self.class_stack_pushes.sum(),
            class_stack_pops: self.class_stack_pops.sum(),
            cas_retries: self.cas_retries.sum(),
            lockfree_refills: self.lockfree_refills.sum(),
            reservoir_takes: self.reservoir_takes.load(Ordering::Relaxed),
            reservoir_returns: self.reservoir_returns.load(Ordering::Relaxed),
            reservoir_cas_retries: self.reservoir_cas_retries.load(Ordering::Relaxed),
            reservoir_steals: self.reservoir_steals.load(Ordering::Relaxed),
            class_stack_bytes,
            op_retries: self.op_retries.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            overload_sheds: self.overload_sheds.load(Ordering::Relaxed),
            scan_sheds: self.scan_sheds.load(Ordering::Relaxed),
            scan_chunk_batches: self.scan_chunk_batches.sum(),
            scan_revalidations: self.scan_revalidations.load(Ordering::Relaxed),
            scan_buffer_reuses: self.scan_buffer_reuses.sum(),
        }
    }
}

/// A point-in-time snapshot of pool memory usage.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Number of arenas currently reserved.
    pub arenas: u64,
    /// Total bytes reserved from the OS (arenas × arena size). This is the
    /// pool's RAM footprint.
    pub reserved_bytes: u64,
    /// Bytes currently allocated to live slices (granularity-rounded).
    pub live_bytes: u64,
    /// Cumulative bytes ever allocated.
    pub allocated_bytes: u64,
    /// Cumulative bytes ever freed.
    pub freed_bytes: u64,
    /// Number of allocations performed.
    pub alloc_count: u64,
    /// Number of frees performed.
    pub free_count: u64,
    /// Bytes consumed by value headers (never reclaimed by the default
    /// memory manager, per paper §3.3).
    pub header_bytes: u64,
    /// Header-lock acquisition attempts that found the lock busy and had to
    /// back off (spin/yield/sleep rounds, summed over all acquisitions).
    pub lock_retries: u64,
    /// Header-lock acquisitions abandoned after exhausting the bounded
    /// backoff budget ([`AccessError::Contended`](crate::AccessError)).
    pub contended_aborts: u64,
    /// Allocation requests that returned an error (exhaustion, oversize,
    /// injected faults, internal errors).
    pub failed_allocs: u64,
    /// Values logically deleted by the panic-safety guard because a user
    /// closure panicked inside `compute` while holding the write lock.
    pub poisoned_values: u64,
    /// Bytes currently on the free lists across all reserved arenas.
    pub free_bytes: u64,
    /// Number of free segments across all arenas (external-fragmentation
    /// indicator: more segments for the same `free_bytes` is worse).
    pub free_segments: u64,
    /// Largest single free segment in any arena — the biggest allocation
    /// the pool can satisfy without reserving a new arena.
    pub largest_free_segment: u64,
    /// High-water mark of `live_bytes` (low-watermark of available space).
    pub peak_live_bytes: u64,
    /// Emergency reclamation passes run in response to pool exhaustion.
    pub emergency_reclaims: u64,
    /// Operations that surfaced out-of-memory to the caller even after
    /// emergency reclamation.
    pub oom_failures: u64,
    /// Off-heap key-byte dereferences performed by chunk search
    /// (`pool.slice()` on a key). The key-prefix cache exists to shrink
    /// this number; it is the primary hot-path proof counter.
    pub offheap_key_derefs: u64,
    /// Times an allocation or free path locked a per-arena free list.
    /// With magazines enabled, refills/flushes amortize many slices per
    /// acquisition, so this falls far below `alloc_count + free_count`.
    pub freelist_lock_acquires: u64,
    /// Allocations served from a thread-affine magazine without touching
    /// any free-list lock.
    pub magazine_hits: u64,
    /// Magazine refills (each grabs a batch of slices under one lock).
    pub magazine_refills: u64,
    /// Magazine flushes (overflow trims plus full emergency flushes).
    pub magazine_flushes: u64,
    /// Bytes currently parked in magazines at snapshot time: free capacity
    /// that is not on any free list (counted as free, not leaked).
    pub magazine_bytes: u64,
    /// Slices pushed onto the lock-free per-class CAS stacks (frees and
    /// magazine overflow trims that avoided the free-list mutex).
    pub class_stack_pushes: u64,
    /// Slices popped from the lock-free per-class CAS stacks (allocations
    /// and magazine refills that avoided the free-list mutex).
    pub class_stack_pops: u64,
    /// Failed head CASes retried by the class-stack push/pop loops: the
    /// lock-free path's contention indicator (compare with
    /// `freelist_lock_acquires`, the mutex path's).
    pub cas_retries: u64,
    /// Magazine refills served from a class stack instead of a free-list
    /// lock (each banks up to a refill batch of slices without a mutex).
    pub lockfree_refills: u64,
    /// Arenas this pool took from the shared lock-free reservoir
    /// ([`ArenaPool`](crate::ArenaPool)). Zero for private-reservation
    /// pools.
    pub reservoir_takes: u64,
    /// Arenas this pool returned to the shared reservoir (all of them, at
    /// drop, plus growth-race losers).
    pub reservoir_returns: u64,
    /// Failed head CASes retried by this pool's reservoir take/give-back
    /// calls. The reservoir has no mutex; this is its only contention
    /// counter, and it stays ≈ 0 when shards keep to their own lanes.
    pub reservoir_cas_retries: u64,
    /// Reservoir takes that drained another pool's lane because this
    /// pool's own lane was empty (cross-shard arena traffic).
    pub reservoir_steals: u64,
    /// Bytes currently parked on the class stacks at snapshot time: free
    /// capacity not on any free list (counted as free, not leaked).
    pub class_stack_bytes: u64,
    /// Budgeted operation retries taken under the jittered-backoff policy
    /// (each is one backoff sleep followed by a fresh attempt).
    pub op_retries: u64,
    /// Operations that surfaced `DeadlineExceeded`: their budget expired
    /// before the retry discipline converged.
    pub deadline_exceeded: u64,
    /// Writes rejected early with `Overloaded` by the degraded-mode
    /// controller (load shed before the OOM ladder could engage).
    pub overload_sheds: u64,
    /// Scans shed by the degraded-mode controller (`Overloaded` surfaced
    /// to a budgeted scan).
    pub scan_sheds: u64,
    /// Chunk batches snapshotted by the batch scan pipeline: each is one
    /// staleness/revision check amortized over every entry it yields (the
    /// one-check-per-chunk invariant's proof counter).
    pub scan_chunk_batches: u64,
    /// Batch refills that found their chunk changed (frozen/replaced,
    /// revision stamp advanced) and re-located via the index. Low values
    /// relative to `scan_chunk_batches` show scans revalidate only when a
    /// chunk actually changed.
    pub scan_revalidations: u64,
    /// Batch refills that reused the cursor's on-heap buffer capacity
    /// instead of allocating a fresh one (per-scan allocation is O(1), not
    /// O(entries)).
    pub scan_buffer_reuses: u64,
}

impl PoolStats {
    /// Field-wise sum of two snapshots, for aggregating the footprint of
    /// several pools (e.g. the shards of a sharded map). Note that pools
    /// drawing arenas from one shared [`ArenaPool`](crate::ArenaPool)
    /// reserve disjoint arenas, so summing `reserved_bytes` stays exact.
    /// `largest_free_segment` takes the max (it answers "what is the
    /// biggest allocation any pool can satisfy").
    #[must_use]
    pub fn merged(mut self, other: &PoolStats) -> PoolStats {
        self.arenas += other.arenas;
        self.reserved_bytes += other.reserved_bytes;
        self.live_bytes += other.live_bytes;
        self.allocated_bytes += other.allocated_bytes;
        self.freed_bytes += other.freed_bytes;
        self.alloc_count += other.alloc_count;
        self.free_count += other.free_count;
        self.header_bytes += other.header_bytes;
        self.lock_retries += other.lock_retries;
        self.contended_aborts += other.contended_aborts;
        self.failed_allocs += other.failed_allocs;
        self.poisoned_values += other.poisoned_values;
        self.free_bytes += other.free_bytes;
        self.free_segments += other.free_segments;
        self.largest_free_segment = self.largest_free_segment.max(other.largest_free_segment);
        self.peak_live_bytes += other.peak_live_bytes;
        self.emergency_reclaims += other.emergency_reclaims;
        self.oom_failures += other.oom_failures;
        self.offheap_key_derefs += other.offheap_key_derefs;
        self.freelist_lock_acquires += other.freelist_lock_acquires;
        self.magazine_hits += other.magazine_hits;
        self.magazine_refills += other.magazine_refills;
        self.magazine_flushes += other.magazine_flushes;
        self.magazine_bytes += other.magazine_bytes;
        self.class_stack_pushes += other.class_stack_pushes;
        self.class_stack_pops += other.class_stack_pops;
        self.cas_retries += other.cas_retries;
        self.lockfree_refills += other.lockfree_refills;
        self.reservoir_takes += other.reservoir_takes;
        self.reservoir_returns += other.reservoir_returns;
        self.reservoir_cas_retries += other.reservoir_cas_retries;
        self.reservoir_steals += other.reservoir_steals;
        self.class_stack_bytes += other.class_stack_bytes;
        self.op_retries += other.op_retries;
        self.deadline_exceeded += other.deadline_exceeded;
        self.overload_sheds += other.overload_sheds;
        self.scan_sheds += other.scan_sheds;
        self.scan_chunk_batches += other.scan_chunk_batches;
        self.scan_revalidations += other.scan_revalidations;
        self.scan_buffer_reuses += other.scan_buffer_reuses;
        self
    }

    /// Fraction of reserved memory holding live data; 0 for an empty pool.
    pub fn utilization(&self) -> f64 {
        if self.reserved_bytes == 0 {
            0.0
        } else {
            self.live_bytes as f64 / self.reserved_bytes as f64
        }
    }

    /// External fragmentation of the free space in `[0, 1]`: the fraction
    /// of free bytes *not* in the largest free segment. 0 when all free
    /// space is one contiguous run (or there is none); approaching 1 when
    /// free space is shattered into many small holes.
    pub fn fragmentation(&self) -> f64 {
        if self.free_bytes == 0 {
            0.0
        } else {
            1.0 - self.largest_free_segment as f64 / self.free_bytes as f64
        }
    }
}
