//! Footprint accounting.
//!
//! Oak "supports fast estimation of its RAM footprint – a common application
//! requirement" (§1.1). The pool keeps exact atomic counters so footprint
//! queries are O(1) reads, and Figure 5c-style memory-overhead reports can be
//! produced without walking the data structure.

use std::sync::atomic::{AtomicU64, Ordering};

/// Internal atomic counters owned by the pool.
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub(crate) allocated_bytes: AtomicU64,
    pub(crate) freed_bytes: AtomicU64,
    pub(crate) alloc_count: AtomicU64,
    pub(crate) free_count: AtomicU64,
    pub(crate) header_bytes: AtomicU64,
}

impl Counters {
    pub(crate) fn snapshot(&self, arenas: u64, arena_size: u64) -> PoolStats {
        let allocated = self.allocated_bytes.load(Ordering::Relaxed);
        let freed = self.freed_bytes.load(Ordering::Relaxed);
        PoolStats {
            arenas,
            reserved_bytes: arenas * arena_size,
            live_bytes: allocated.saturating_sub(freed),
            allocated_bytes: allocated,
            freed_bytes: freed,
            alloc_count: self.alloc_count.load(Ordering::Relaxed),
            free_count: self.free_count.load(Ordering::Relaxed),
            header_bytes: self.header_bytes.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time snapshot of pool memory usage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Number of arenas currently reserved.
    pub arenas: u64,
    /// Total bytes reserved from the OS (arenas × arena size). This is the
    /// pool's RAM footprint.
    pub reserved_bytes: u64,
    /// Bytes currently allocated to live slices (granularity-rounded).
    pub live_bytes: u64,
    /// Cumulative bytes ever allocated.
    pub allocated_bytes: u64,
    /// Cumulative bytes ever freed.
    pub freed_bytes: u64,
    /// Number of allocations performed.
    pub alloc_count: u64,
    /// Number of frees performed.
    pub free_count: u64,
    /// Bytes consumed by value headers (never reclaimed by the default
    /// memory manager, per paper §3.3).
    pub header_bytes: u64,
}

impl PoolStats {
    /// Fraction of reserved memory holding live data; 0 for an empty pool.
    pub fn utilization(&self) -> f64 {
        if self.reserved_bytes == 0 {
            0.0
        } else {
            self.live_bytes as f64 / self.reserved_bytes as f64
        }
    }
}
