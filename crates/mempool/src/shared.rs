//! The shared arena pool (§3.2).
//!
//! "Oak's allocator manages a shared pool of large (100 MB by default)
//! pre-allocated off-heap arenas. The pool supports multiple Oak instances.
//! Each arena is associated with a single Oak instance and returns to the
//! pool when that instance is disposed."
//!
//! [`ArenaPool`] pre-allocates its arenas eagerly — the point of the design
//! is that short-lived ingestion structures (like Druid's I², created and
//! disposed continuously) never touch the system allocator on their data
//! path. A [`MemoryPool`](crate::MemoryPool) built with
//! [`MemoryPool::with_shared`](crate::MemoryPool::with_shared) draws arenas
//! from here and hands them back from its destructor.
//!
//! Returned arenas are **not** re-zeroed (zeroing 100 MB on every index
//! disposal would defeat the purpose); all pool allocations are fully
//! overwritten before publication, so recycled contents are never
//! observable through the API.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::arena::Arena;

/// A pre-allocated reservoir of equally sized arenas shared by multiple
/// map instances.
pub struct ArenaPool {
    arena_size: usize,
    capacity: usize,
    free: Mutex<Vec<Arena>>,
    taken: AtomicU64,
    returned: AtomicU64,
}

/// Point-in-time statistics for an [`ArenaPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaPoolStats {
    /// Arena size in bytes.
    pub arena_size: usize,
    /// Total arenas owned by the reservoir.
    pub capacity: usize,
    /// Arenas currently lent out to live instances.
    pub outstanding: usize,
    /// Cumulative take operations.
    pub taken: u64,
    /// Cumulative returns.
    pub returned: u64,
}

impl ArenaPool {
    /// Pre-allocates `capacity` arenas of `arena_size` bytes each.
    pub fn new(arena_size: usize, capacity: usize) -> Self {
        assert!(arena_size >= 64 && arena_size.is_multiple_of(8));
        assert!(capacity >= 1);
        let free = (0..capacity).map(|_| Arena::new(arena_size)).collect();
        ArenaPool {
            arena_size,
            capacity,
            free: Mutex::new(free),
            taken: AtomicU64::new(0),
            returned: AtomicU64::new(0),
        }
    }

    /// Arena size in bytes.
    pub fn arena_size(&self) -> usize {
        self.arena_size
    }

    /// Takes an arena for a map instance; `None` when the reservoir is
    /// exhausted (the caller surfaces `PoolExhausted`).
    pub(crate) fn take(&self) -> Option<Arena> {
        let a = self.free.lock().pop();
        if a.is_some() {
            self.taken.fetch_add(1, Ordering::Relaxed);
        }
        a
    }

    /// Returns an arena after its instance is disposed.
    pub(crate) fn give_back(&self, arena: Arena) {
        debug_assert_eq!(arena.len(), self.arena_size);
        self.returned.fetch_add(1, Ordering::Relaxed);
        self.free.lock().push(arena);
    }

    /// Current statistics.
    pub fn stats(&self) -> ArenaPoolStats {
        ArenaPoolStats {
            arena_size: self.arena_size,
            capacity: self.capacity,
            outstanding: self.capacity - self.free.lock().len(),
            taken: self.taken.load(Ordering::Relaxed),
            returned: self.returned.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for ArenaPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArenaPool")
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_and_return_cycle() {
        let pool = ArenaPool::new(4096, 3);
        assert_eq!(pool.stats().outstanding, 0);
        let a = pool.take().unwrap();
        let b = pool.take().unwrap();
        assert_eq!(pool.stats().outstanding, 2);
        pool.give_back(a);
        assert_eq!(pool.stats().outstanding, 1);
        let c = pool.take().unwrap();
        let d = pool.take().unwrap();
        assert!(pool.take().is_none(), "reservoir of 3 exhausted");
        pool.give_back(b);
        pool.give_back(c);
        pool.give_back(d);
        let s = pool.stats();
        assert_eq!(s.outstanding, 0);
        assert_eq!(s.taken, 4);
        assert_eq!(s.returned, 4);
    }
}
