//! The shared arena pool (§3.2).
//!
//! "Oak's allocator manages a shared pool of large (100 MB by default)
//! pre-allocated off-heap arenas. The pool supports multiple Oak instances.
//! Each arena is associated with a single Oak instance and returns to the
//! pool when that instance is disposed."
//!
//! [`ArenaPool`] pre-allocates its arenas eagerly — the point of the design
//! is that short-lived ingestion structures (like Druid's I², created and
//! disposed continuously) never touch the system allocator on their data
//! path. A [`MemoryPool`](crate::MemoryPool) built with
//! [`MemoryPool::with_shared`](crate::MemoryPool::with_shared) draws arenas
//! from here and hands them back from its destructor.
//!
//! ## Lock-free, lane-striped reservoir
//!
//! The reservoir used to be a mutex-guarded `Vec<Arena>` — one lock that
//! every shard's growth path serialized on, and one cache line that every
//! shard's growth path bounced. It is now an array of [`RESERVOIR_LANES`]
//! Treiber stacks using the same tagged-head protocol as the lock-free
//! size-class stacks (`classstack.rs`): each lane owns a preallocated node
//! slab threaded through two tagged intrusive lists (parked arenas + spare
//! nodes), every head CAS bumps a 32-bit tag (ABA defense), and a node's
//! `Arena` payload is only touched by the thread that exclusively owns the
//! node — between winning a pop from one list and pushing onto the other.
//!
//! Each [`MemoryPool`](crate::MemoryPool) is pinned to one lane at
//! construction (shards of a sharded map land on distinct lanes), so
//! steady-state take/give-back traffic from different shards never writes
//! the same cache line: a shard's arenas cycle through its own lane. A
//! take only *steals* from other lanes when its own lane is empty, and a
//! give-back only overflows to another lane in the (transient) case that
//! every spare node of its own lane is mid-pop elsewhere. Both events are
//! counted ([`TakeOutcome::steals`], CAS retries) so the
//! "reservoir is contention-free" claim is checkable from `PoolStats`.
//!
//! Returned arenas are **not** re-zeroed (zeroing 100 MB on every index
//! disposal would defeat the purpose); all pool allocations are fully
//! overwritten before publication, so recycled contents are never
//! observable through the API.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};

use crate::arena::Arena;

/// Number of independent Treiber lanes in the reservoir. A power of two so
/// lane selection is a mask; 8 lanes comfortably separate the shard counts
/// the sharded front-end runs with (4/8/16 — at 16 shards pairs share a
/// lane but the arenas-per-shard traffic is already halved).
pub(crate) const RESERVOIR_LANES: usize = 8;

/// Sentinel node index for an empty list.
const NIL: u32 = u32::MAX;

#[inline]
fn pack(tag: u32, idx: u32) -> u64 {
    ((tag as u64) << 32) | idx as u64
}

#[inline]
fn unpack(word: u64) -> (u32, u32) {
    ((word >> 32) as u32, word as u32)
}

/// A preallocated lane node. `next` is atomic because a stalled contender
/// may read it after the node was recycled (the tagged head CAS discards
/// such reads); `slot` is only ever accessed by the node's exclusive
/// owner — the thread that popped it off one list and has not yet pushed
/// it onto the other.
struct Node {
    next: AtomicU32,
    slot: UnsafeCell<Option<Arena>>,
}

/// Outcome of one tagged-CAS pop loop.
struct PopOutcome {
    idx: Option<u32>,
    retries: u64,
}

/// One reservoir lane: a slab of `capacity` nodes threaded through two
/// tagged Treiber lists. Padded so neighboring lanes' heads never share a
/// cache line (the whole point of striping).
#[repr(align(128))]
struct ReservoirLane {
    nodes: Box<[Node]>,
    /// Tagged head of the parked-arena list.
    live: AtomicU64,
    /// Tagged head of the spare-node list.
    free: AtomicU64,
}

// SAFETY: `slot` is only dereferenced by a node's exclusive owner. A node
// is owned from winning the pop CAS on one list until the push CAS that
// publishes it on the other; the pop's Acquire on a head RMW
// synchronizes-with the previous owner's Release push (RMWs extend the
// release sequence), so the owner's `slot` write happens-before the next
// owner's read. `Arena` itself is `Send`.
unsafe impl Send for ReservoirLane {}
unsafe impl Sync for ReservoirLane {}

impl ReservoirLane {
    /// Builds a lane whose first `parked` nodes hold the arenas of `seed`
    /// (threaded as the live list); the remaining nodes form the spare
    /// list.
    fn new(capacity: usize, seed: Vec<Arena>) -> Self {
        assert!(capacity < NIL as usize && seed.len() <= capacity);
        let parked = seed.len();
        let mut seed = seed.into_iter();
        let nodes: Box<[Node]> = (0..capacity)
            .map(|i| {
                let (next, arena) = if i < parked {
                    // Live chain: 0 → 1 → … → parked-1 → NIL.
                    let next = if i + 1 < parked { i as u32 + 1 } else { NIL };
                    (next, seed.next())
                } else {
                    // Spare chain: parked → parked+1 → … → NIL.
                    let next = if i + 1 < capacity { i as u32 + 1 } else { NIL };
                    (next, None)
                };
                Node {
                    next: AtomicU32::new(next),
                    slot: UnsafeCell::new(arena),
                }
            })
            .collect();
        ReservoirLane {
            nodes,
            live: AtomicU64::new(pack(0, if parked > 0 { 0 } else { NIL })),
            free: AtomicU64::new(pack(
                0,
                if parked < capacity {
                    parked as u32
                } else {
                    NIL
                },
            )),
        }
    }

    /// Treiber pop from `list`; the `next` read under a stale head may be
    /// garbage, the tagged CAS rejects it.
    fn list_pop(&self, list: &AtomicU64) -> PopOutcome {
        let mut retries = 0u64;
        let mut cur = list.load(Ordering::Acquire);
        loop {
            let (tag, idx) = unpack(cur);
            if idx == NIL {
                return PopOutcome { idx: None, retries };
            }
            let next = self.nodes[idx as usize].next.load(Ordering::Relaxed);
            match list.compare_exchange_weak(
                cur,
                pack(tag.wrapping_add(1), next),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    return PopOutcome {
                        idx: Some(idx),
                        retries,
                    }
                }
                Err(seen) => {
                    retries += 1;
                    cur = seen;
                }
            }
        }
    }

    /// Treiber push of owned node `idx` onto `list`.
    fn list_push(&self, list: &AtomicU64, idx: u32) -> u64 {
        let mut retries = 0u64;
        let mut cur = list.load(Ordering::Relaxed);
        loop {
            let (tag, head_idx) = unpack(cur);
            self.nodes[idx as usize]
                .next
                .store(head_idx, Ordering::Relaxed);
            match list.compare_exchange_weak(
                cur,
                pack(tag.wrapping_add(1), idx),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return retries,
                Err(seen) => {
                    retries += 1;
                    cur = seen;
                }
            }
        }
    }

    /// Pops a parked arena, or `None` when the lane is empty.
    fn take(&self) -> (Option<Arena>, u64) {
        let PopOutcome { idx, retries } = self.list_pop(&self.live);
        let Some(idx) = idx else {
            return (None, retries);
        };
        // SAFETY: winning the pop made this node exclusively ours; the
        // parker's slot write happens-before via the Acquire head RMW.
        let arena = unsafe { (*self.nodes[idx as usize].slot.get()).take() };
        let free_retries = self.list_push(&self.free, idx);
        (
            Some(arena.expect("live reservoir node holds an arena")),
            retries + free_retries,
        )
    }

    /// Parks `arena` on this lane. `Err(arena)` means no spare node was
    /// available (every node is live or mid-pop elsewhere); the caller
    /// tries another lane.
    fn park(&self, arena: Arena) -> Result<u64, Arena> {
        let PopOutcome { idx, retries } = self.list_pop(&self.free);
        let Some(idx) = idx else {
            return Err(arena);
        };
        // SAFETY: winning the pop made this node exclusively ours.
        unsafe { *self.nodes[idx as usize].slot.get() = Some(arena) };
        let push_retries = self.list_push(&self.live, idx);
        Ok(retries + push_retries)
    }
}

/// Result of [`ArenaPool::take`]: the arena (if any) plus the contention
/// evidence the caller banks into its own `PoolStats` counters.
pub(crate) struct TakeOutcome {
    pub(crate) arena: Option<Arena>,
    /// Failed head CASes across all list operations of this call.
    pub(crate) cas_retries: u64,
    /// 1 when the arena came from another pool's lane (the caller's own
    /// lane was empty), 0 otherwise.
    pub(crate) steals: u64,
}

/// A pre-allocated reservoir of equally sized arenas shared by multiple
/// map instances. Entirely lock-free: see the module docs for the lane
/// protocol.
pub struct ArenaPool {
    arena_size: usize,
    capacity: usize,
    lanes: Box<[ReservoirLane]>,
    /// Arenas currently parked (capacity − outstanding). Arena-granularity
    /// traffic, so a shared counter line is not a scaling concern.
    available: AtomicUsize,
    taken: AtomicU64,
    returned: AtomicU64,
    cas_retries: AtomicU64,
    lane_steals: AtomicU64,
}

/// Point-in-time statistics for an [`ArenaPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaPoolStats {
    /// Arena size in bytes.
    pub arena_size: usize,
    /// Total arenas owned by the reservoir.
    pub capacity: usize,
    /// Arenas currently lent out to live instances.
    pub outstanding: usize,
    /// Cumulative take operations.
    pub taken: u64,
    /// Cumulative returns.
    pub returned: u64,
    /// Failed head CASes across all reservoir operations — the lock-free
    /// path's contention gauge (there is no lock to count).
    pub cas_retries: u64,
    /// Takes that had to drain another pool's lane because their own was
    /// empty (cross-shard traffic the per-lane caching exists to avoid).
    pub lane_steals: u64,
}

impl ArenaPool {
    /// Pre-allocates `capacity` arenas of `arena_size` bytes each,
    /// distributed round-robin over the lanes.
    pub fn new(arena_size: usize, capacity: usize) -> Self {
        assert!(arena_size >= 64 && arena_size.is_multiple_of(8));
        assert!(capacity >= 1);
        // Deal arenas round-robin: lane L seeds ceil/floor(capacity/LANES).
        let mut seeds: Vec<Vec<Arena>> = (0..RESERVOIR_LANES).map(|_| Vec::new()).collect();
        for i in 0..capacity {
            seeds[i % RESERVOIR_LANES].push(Arena::new(arena_size));
        }
        // Every lane gets a full `capacity` node slab so any skew of
        // returns (all arenas parked on one shard's lane) still finds
        // spare nodes; at 16 bytes a node the slack is trivial.
        let lanes: Box<[ReservoirLane]> = seeds
            .into_iter()
            .map(|seed| ReservoirLane::new(capacity, seed))
            .collect();
        ArenaPool {
            arena_size,
            capacity,
            lanes,
            available: AtomicUsize::new(capacity),
            taken: AtomicU64::new(0),
            returned: AtomicU64::new(0),
            cas_retries: AtomicU64::new(0),
            lane_steals: AtomicU64::new(0),
        }
    }

    /// Arena size in bytes.
    pub fn arena_size(&self) -> usize {
        self.arena_size
    }

    /// Takes an arena for a map instance, preferring `lane` (the caller's
    /// pinned lane) and stealing round-robin from the others only when it
    /// is empty. `arena: None` means the reservoir is exhausted (the
    /// caller surfaces `PoolExhausted`).
    pub(crate) fn take(&self, lane: usize) -> TakeOutcome {
        let mut retries = 0u64;
        for k in 0..RESERVOIR_LANES {
            let (arena, r) = self.lanes[(lane + k) % RESERVOIR_LANES].take();
            retries += r;
            if let Some(arena) = arena {
                let steals = u64::from(k > 0);
                self.taken.fetch_add(1, Ordering::Relaxed);
                self.available.fetch_sub(1, Ordering::Relaxed);
                self.cas_retries.fetch_add(retries, Ordering::Relaxed);
                self.lane_steals.fetch_add(steals, Ordering::Relaxed);
                return TakeOutcome {
                    arena: Some(arena),
                    cas_retries: retries,
                    steals,
                };
            }
        }
        self.cas_retries.fetch_add(retries, Ordering::Relaxed);
        TakeOutcome {
            arena: None,
            cas_retries: retries,
            steals: 0,
        }
    }

    /// Returns an arena after its instance is disposed, parking it on
    /// `lane` (so the next take from the same shard finds it without
    /// crossing lanes). Returns the CAS retries spent.
    ///
    /// A lane can transiently have no spare node (each of its `capacity`
    /// nodes is live or owned by an in-flight take); conservation
    /// guarantees a spare surfaces somewhere — this thread holds an arena,
    /// so at most `capacity − 1` nodes are live across the reservoir —
    /// hence the yield-retry loop terminates.
    pub(crate) fn give_back(&self, lane: usize, arena: Arena) -> u64 {
        debug_assert_eq!(arena.len(), self.arena_size);
        let mut retries = 0u64;
        let mut arena = arena;
        loop {
            for k in 0..RESERVOIR_LANES {
                match self.lanes[(lane + k) % RESERVOIR_LANES].park(arena) {
                    Ok(r) => {
                        retries += r;
                        self.returned.fetch_add(1, Ordering::Relaxed);
                        self.available.fetch_add(1, Ordering::Relaxed);
                        self.cas_retries.fetch_add(retries, Ordering::Relaxed);
                        return retries;
                    }
                    Err(a) => arena = a,
                }
            }
            std::thread::yield_now();
        }
    }

    /// Current statistics.
    pub fn stats(&self) -> ArenaPoolStats {
        ArenaPoolStats {
            arena_size: self.arena_size,
            capacity: self.capacity,
            outstanding: self.capacity - self.available.load(Ordering::Relaxed),
            taken: self.taken.load(Ordering::Relaxed),
            returned: self.returned.load(Ordering::Relaxed),
            cas_retries: self.cas_retries.load(Ordering::Relaxed),
            lane_steals: self.lane_steals.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for ArenaPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArenaPool")
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn take_and_return_cycle() {
        let pool = ArenaPool::new(4096, 3);
        assert_eq!(pool.stats().outstanding, 0);
        let a = pool.take(0).arena.unwrap();
        let b = pool.take(0).arena.unwrap();
        assert_eq!(pool.stats().outstanding, 2);
        pool.give_back(0, a);
        assert_eq!(pool.stats().outstanding, 1);
        let c = pool.take(0).arena.unwrap();
        let d = pool.take(0).arena.unwrap();
        assert!(pool.take(0).arena.is_none(), "reservoir of 3 exhausted");
        pool.give_back(0, b);
        pool.give_back(0, c);
        pool.give_back(0, d);
        let s = pool.stats();
        assert_eq!(s.outstanding, 0);
        assert_eq!(s.taken, 4);
        assert_eq!(s.returned, 4);
    }

    #[test]
    fn own_lane_is_preferred_and_steals_are_counted() {
        // 2 arenas land on lanes 0 and 1 at construction.
        let pool = ArenaPool::new(4096, 2);
        // Taking on lane 1 drains lane 1 without stealing.
        let a = pool.take(1);
        assert!(a.arena.is_some());
        assert_eq!(pool.stats().lane_steals, 0);
        // Taking on lane 1 again must steal (only lane 0 still holds one).
        let b = pool.take(1);
        assert!(b.arena.is_some());
        assert_eq!(b.steals, 1);
        assert_eq!(pool.stats().lane_steals, 1);
        // Give both back on lane 5: the next lane-5 take is steal-free.
        pool.give_back(5, a.arena.unwrap());
        pool.give_back(5, b.arena.unwrap());
        let c = pool.take(5);
        assert_eq!(c.steals, 0);
        pool.give_back(5, c.arena.unwrap());
    }

    #[test]
    fn concurrent_take_give_back_conserves_arenas() {
        // N threads churn take/give-back on distinct lanes; afterwards
        // every arena is parked exactly once and the balance sheet is
        // exact. This is the mutex-free replacement for what the old
        // Mutex<Vec> gave for free — conservation under contention.
        let threads = 4usize;
        let iters = if cfg!(miri) { 50 } else { 5_000 };
        let pool = Arc::new(ArenaPool::new(256, 8));
        let mut handles = Vec::new();
        for t in 0..threads {
            let pool = Arc::clone(&pool);
            handles.push(std::thread::spawn(move || {
                let mut held: Vec<Arena> = Vec::new();
                for i in 0..iters {
                    if i % 3 == 2 {
                        if let Some(a) = held.pop() {
                            pool.give_back(t, a);
                        }
                    } else if let Some(a) = pool.take(t).arena {
                        held.push(a);
                    }
                }
                for a in held {
                    pool.give_back(t, a);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = pool.stats();
        assert_eq!(s.outstanding, 0, "arenas lost or duplicated: {s:?}");
        assert_eq!(s.taken, s.returned, "take/return ledger unbalanced: {s:?}");
        // Every parked arena is still takeable.
        let all: Vec<Arena> = (0..8).map(|_| pool.take(0).arena.unwrap()).collect();
        assert!(pool.take(0).arena.is_none());
        for a in all {
            pool.give_back(0, a);
        }
    }

    #[test]
    fn skewed_returns_all_fit_on_one_lane() {
        // Every arena returned to a single lane must find a spare node
        // (each lane's slab is sized at full capacity).
        let pool = ArenaPool::new(4096, 5);
        let arenas: Vec<Arena> = (0..5).map(|l| pool.take(l).arena.unwrap()).collect();
        for a in arenas {
            pool.give_back(3, a);
        }
        let s = pool.stats();
        assert_eq!(s.outstanding, 0);
        // And all five drain from that lane without stealing.
        let before = s.lane_steals;
        let drained: Vec<Arena> = (0..5).map(|_| pool.take(3).arena.unwrap()).collect();
        assert_eq!(pool.stats().lane_steals, before);
        for a in drained {
            pool.give_back(3, a);
        }
    }
}
