//! Error types for allocation and value access.

use core::fmt;

/// Errors returned by pool allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// The pool reached its configured arena budget and no arena could
    /// satisfy the request.
    PoolExhausted,
    /// The requested size exceeds the maximum encodable slice length
    /// (or the arena size).
    TooLarge {
        /// Requested size in bytes.
        requested: usize,
        /// Maximum supported size in bytes.
        max: usize,
    },
    /// A zero-sized allocation was requested; Oak keys and values are
    /// always at least one byte.
    ZeroSized,
    /// An internal invariant was violated (e.g. an arena slot was found
    /// already initialized while growing). Reported instead of panicking so
    /// callers can fail one operation rather than poison the process.
    Internal(&'static str),
    /// A fault-injection site (`failpoints` feature) forced this allocation
    /// to fail. Never produced in normal builds.
    Injected,
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::PoolExhausted => write!(f, "memory pool exhausted"),
            AllocError::TooLarge { requested, max } => {
                write!(
                    f,
                    "allocation of {requested} bytes exceeds maximum of {max}"
                )
            }
            AllocError::ZeroSized => write!(f, "zero-sized allocation"),
            AllocError::Internal(what) => write!(f, "internal allocator error: {what}"),
            AllocError::Injected => write!(f, "allocation failed by fault injection"),
        }
    }
}

impl std::error::Error for AllocError {}

/// Errors returned when accessing a value through its header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessError {
    /// The value was concurrently deleted. This is the Rust analogue of the
    /// `ConcurrentModificationException` thrown by Java Oak's buffers.
    Deleted,
    /// The header lock could not be acquired within the bounded
    /// spin/yield/sleep budget (several seconds of escalating backoff).
    /// Indicates a stuck or extremely slow lock holder; the value itself
    /// is untouched and the operation may be retried.
    Contended,
}

impl fmt::Display for AccessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessError::Deleted => write!(f, "value was concurrently deleted"),
            AccessError::Contended => {
                write!(f, "header lock acquisition budget exhausted")
            }
        }
    }
}

impl std::error::Error for AccessError {}
