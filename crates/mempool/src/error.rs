//! Error types for allocation and value access.

use core::fmt;

/// Errors returned by pool allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// The pool reached its configured arena budget and no arena could
    /// satisfy the request.
    PoolExhausted,
    /// The requested size exceeds the maximum encodable slice length
    /// (or the arena size).
    TooLarge {
        /// Requested size in bytes.
        requested: usize,
        /// Maximum supported size in bytes.
        max: usize,
    },
    /// A zero-sized allocation was requested; Oak keys and values are
    /// always at least one byte.
    ZeroSized,
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::PoolExhausted => write!(f, "memory pool exhausted"),
            AllocError::TooLarge { requested, max } => {
                write!(f, "allocation of {requested} bytes exceeds maximum of {max}")
            }
            AllocError::ZeroSized => write!(f, "zero-sized allocation"),
        }
    }
}

impl std::error::Error for AllocError {}

/// Errors returned when accessing a value through its header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessError {
    /// The value was concurrently deleted. This is the Rust analogue of the
    /// `ConcurrentModificationException` thrown by Java Oak's buffers.
    Deleted,
}

impl fmt::Display for AccessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessError::Deleted => write!(f, "value was concurrently deleted"),
        }
    }
}

impl std::error::Error for AccessError {}
