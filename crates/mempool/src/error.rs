//! Error types for allocation and value access.

use core::fmt;

/// Errors returned by pool allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// The pool reached its configured arena budget and no arena could
    /// satisfy the request.
    PoolExhausted,
    /// The requested size exceeds the maximum encodable slice length
    /// (or the arena size).
    TooLarge {
        /// Requested size in bytes.
        requested: usize,
        /// Maximum supported size in bytes.
        max: usize,
    },
    /// A zero-sized allocation was requested; Oak keys and values are
    /// always at least one byte.
    ZeroSized,
    /// An internal invariant was violated (e.g. an arena slot was found
    /// already initialized while growing). Reported instead of panicking so
    /// callers can fail one operation rather than poison the process.
    Internal(&'static str),
    /// A fault-injection site (`failpoints` feature) forced this allocation
    /// to fail. Never produced in normal builds.
    Injected,
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::PoolExhausted => write!(f, "memory pool exhausted"),
            AllocError::TooLarge { requested, max } => {
                write!(
                    f,
                    "allocation of {requested} bytes exceeds maximum of {max}"
                )
            }
            AllocError::ZeroSized => write!(f, "zero-sized allocation"),
            AllocError::Internal(what) => write!(f, "internal allocator error: {what}"),
            AllocError::Injected => write!(f, "allocation failed by fault injection"),
        }
    }
}

impl std::error::Error for AllocError {}

/// Which lock-acquisition site abandoned its wait (carried by
/// [`ContendedInfo`] so `Contended` errors name where they arose instead of
/// being opaque).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockSite {
    /// A value-header *read* lock (`v.read` and the zero-copy read path).
    ValueRead,
    /// A value-header *write* lock (`v.put`, `v.compute`, `v.remove`).
    ValueWrite,
}

impl fmt::Display for LockSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockSite::ValueRead => write!(f, "value read lock"),
            LockSite::ValueWrite => write!(f, "value write lock"),
        }
    }
}

/// Diagnostics attached to a [`AccessError::Contended`] abort: where the
/// wait happened, how long the waiter actually slept, and how many backoff
/// rounds it burned before giving up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContendedInfo {
    /// The lock-acquisition site that gave up.
    pub site: LockSite,
    /// Microseconds spent sleeping in the escalation phase before the
    /// abort (spin/yield rounds are not timed; they are sub-millisecond).
    pub waited_micros: u64,
    /// Total backoff rounds (spins + yields + sleeps) consumed.
    pub rounds: u32,
}

impl fmt::Display for ContendedInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} lost after {} rounds (~{} µs slept)",
            self.site, self.rounds, self.waited_micros
        )
    }
}

/// Errors returned when accessing a value through its header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessError {
    /// The value was concurrently deleted. This is the Rust analogue of the
    /// `ConcurrentModificationException` thrown by Java Oak's buffers.
    Deleted,
    /// The header lock could not be acquired within the bounded
    /// spin/yield/sleep budget (configurable via
    /// [`LockLimit`](crate::LockLimit); ~2 s of escalating backoff by
    /// default, clamped by the caller's deadline when one is active).
    /// Indicates a stuck or extremely slow lock holder; the value itself
    /// is untouched and the operation may be retried.
    Contended(ContendedInfo),
}

impl fmt::Display for AccessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessError::Deleted => write!(f, "value was concurrently deleted"),
            AccessError::Contended(info) => {
                write!(
                    f,
                    "{} acquisition budget exhausted after {} rounds (~{} µs slept)",
                    info.site, info.rounds, info.waited_micros
                )
            }
        }
    }
}

impl std::error::Error for AccessError {}

/// Combined error for value operations that both take the header lock and
/// allocate (deadline-aware `put`/`replace`): either the allocation failed
/// or the lock wait was abandoned. The legacy (non-deadline) entry points
/// fold `Access` losses into their boolean results for compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueOpError {
    /// The payload (re)allocation failed.
    Alloc(AllocError),
    /// The header lock wait was abandoned (`Contended`) or the reference
    /// was stale (`Deleted`).
    Access(AccessError),
}

impl fmt::Display for ValueOpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueOpError::Alloc(e) => write!(f, "{e}"),
            ValueOpError::Access(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ValueOpError {}

impl From<AllocError> for ValueOpError {
    fn from(e: AllocError) -> Self {
        ValueOpError::Alloc(e)
    }
}

impl From<AccessError> for ValueOpError {
    fn from(e: AccessError) -> Self {
        ValueOpError::Access(e)
    }
}
