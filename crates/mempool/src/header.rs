//! Value headers: per-value concurrency control and deletion marking.
//!
//! "Oak allows atomic access to an off-heap value v via the methods
//! `v.put(val)`, `v.compute(func)`, `v.remove()`, and `v.isDeleted()`. To
//! this end, it allocates headers to all values […] Oak's default concurrency
//! control mechanism uses a read-write lock (in the header) […] The header
//! also includes a bit indicating whether the value is deleted." (§3.3)
//!
//! Our header is a 16-byte slot inside the pool:
//!
//! ```text
//! +0  AtomicU32  lock word: [ DELETED:1 | WRITER:1 | readers:30 ]
//! +4  AtomicU32  generation (reserved for epoch-based header reclamation)
//! +8  AtomicU64  payload SliceRef (raw)
//! ```
//!
//! Headers are **never freed** by the default memory manager ("Oak's default
//! mechanism simply refrains from reclaiming headers while allowing reuse of
//! the space taken up by the deleted value"), so a `HeaderRef` observed by
//! any operation remains valid and un-reused for the lifetime of the map —
//! which is exactly what makes the `finalizeRemove` `prev` comparison of
//! §4.4 ABA-free.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crate::error::{AccessError, ContendedInfo, LockSite};
use crate::pool::MemoryPool;
use crate::refs::SliceRef;
use crate::stats::Counters;

/// Size of a value header in bytes.
pub const HEADER_SIZE: usize = 16;

/// Reference to a value header (a 16-byte pool slice).
pub type HeaderRef = SliceRef;

const DELETED: u32 = 1 << 31;
const WRITER: u32 = 1 << 30;
const READER_MASK: u32 = WRITER - 1;

/// Spin iterations before yielding the thread while waiting on the lock.
const SPIN_LIMIT: u32 = 64;
/// Backoff rounds (including the spins) before escalating from
/// `yield_now` to sleeping.
const YIELD_LIMIT: u32 = SPIN_LIMIT + 256;
/// First sleep duration once yielding has not helped.
const SLEEP_BASE_MICROS: u64 = 10;
/// Per-round sleep cap during the escalation phase.
const SLEEP_CAP_MICROS: u64 = 1_000;
/// Default total sleep budget before lock acquisition is abandoned with
/// [`AccessError::Contended`] — far beyond any legitimate hold time
/// (writers only copy/compute bounded payloads), yet bounded, so a stuck
/// or killed lock holder cannot hang its peers forever.
pub const DEFAULT_LOCK_WAIT: Duration = Duration::from_secs(2);

/// Bounds one header-lock acquisition: how long the waiter may sleep in
/// total, clamped by the caller's operation deadline when one is active.
///
/// The spin and yield phases (a few hundred sub-microsecond rounds) are
/// always run in full; only the sleep escalation consults the limit, so
/// the uncontended and lightly contended fast paths never touch the clock.
#[derive(Debug, Clone, Copy)]
pub struct LockLimit {
    /// Maximum cumulative sleep before abandoning with `Contended`.
    pub max_wait: Duration,
    /// Absolute deadline clamping the wait (an operation budget): the
    /// waiter aborts as soon as it notices the deadline passed, even with
    /// `max_wait` budget remaining.
    pub deadline: Option<Instant>,
}

impl Default for LockLimit {
    fn default() -> Self {
        LockLimit {
            max_wait: DEFAULT_LOCK_WAIT,
            deadline: None,
        }
    }
}

impl LockLimit {
    /// A limit with an explicit sleep budget and no deadline.
    pub fn with_max_wait(max_wait: Duration) -> Self {
        LockLimit {
            max_wait,
            deadline: None,
        }
    }

    /// The same sleep budget clamped by `deadline`.
    #[must_use]
    pub fn clamped_by(mut self, deadline: Option<Instant>) -> Self {
        self.deadline = deadline;
        self
    }
}

/// Decoded view of a header lock word, mainly for diagnostics and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockState {
    /// Deleted bit set: all further access fails.
    pub deleted: bool,
    /// A writer currently holds the lock.
    pub writer: bool,
    /// Number of readers currently holding the lock.
    pub readers: u32,
}

impl LockState {
    /// Decodes a raw lock word.
    pub fn decode(word: u32) -> Self {
        LockState {
            deleted: word & DELETED != 0,
            writer: word & WRITER != 0,
            readers: word & READER_MASK,
        }
    }
}

/// Outcome of [`Header::try_read_lock`].
pub(crate) enum TryReadLock {
    /// The read lock is held; release with `read_unlock`.
    Held,
    /// A writer is active — acquire through the waiting path instead.
    Busy,
    /// The value is deleted.
    Dead,
}

/// A borrowed view of one header's three words.
///
/// Constructed by [`Header::at`]; all synchronization for the value payload
/// flows through this type.
pub(crate) struct Header<'a> {
    state: &'a AtomicU32,
    generation: &'a AtomicU32,
    payload: &'a AtomicU64,
    counters: &'a Counters,
}

impl<'a> Header<'a> {
    /// Resolves a header reference inside `pool`.
    ///
    /// # Safety
    /// `h` must be a header slot allocated by
    /// [`ValueStore::allocate_value`](crate::ValueStore::allocate_value)
    /// on this pool (16 bytes, 8-aligned). This holds for every `HeaderRef`
    /// the crate hands out.
    #[inline]
    pub(crate) unsafe fn at(pool: &'a MemoryPool, h: HeaderRef) -> Self {
        // Versioned references (the reclaiming manager) carry the slot
        // generation in the length field; resolve against the fixed slot
        // extent either way.
        let slot = SliceRef::new(h.block(), h.offset(), HEADER_SIZE as u32);
        let (state, generation, payload) = pool.header_words(slot);
        Header {
            state,
            generation,
            payload,
            counters: pool.counters(),
        }
    }

    /// Rebuilds a header view from a base address previously obtained via
    /// [`base_addr`](Self::base_addr).
    ///
    /// # Safety
    /// `base` must be the base address of a live header slot in the pool
    /// that owns `counters` (arenas never move, so any address from
    /// `base_addr` stays valid for the pool's lifetime).
    #[inline]
    pub(crate) unsafe fn from_base(base: usize, counters: &'a Counters) -> Self {
        Header {
            state: &*(base as *const AtomicU32),
            generation: &*((base + 4) as *const AtomicU32),
            payload: &*((base + 8) as *const AtomicU64),
            counters,
        }
    }

    /// The slot's base address (the address of its state word), for
    /// deferred operations that must not repeat the block translation —
    /// scan batches release their fill-time read locks through
    /// [`from_base`](Self::from_base).
    #[inline]
    pub(crate) fn base_addr(&self) -> usize {
        self.state.as_ptr() as usize
    }

    /// Single-attempt read-lock acquisition for snapshot scans: never
    /// backs off. Retries the CAS only against reader-count churn; a
    /// writer or the deleted bit resolves immediately.
    #[inline]
    pub(crate) fn try_read_lock(&self) -> TryReadLock {
        let mut cur = self.state.load(Ordering::Acquire);
        loop {
            if cur & DELETED != 0 {
                return TryReadLock::Dead;
            }
            if cur & WRITER != 0 {
                return TryReadLock::Busy;
            }
            debug_assert!(cur & READER_MASK < READER_MASK, "reader count overflow");
            match self.state.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::Acquire,
                Ordering::Acquire,
            ) {
                Ok(_) => return TryReadLock::Held,
                Err(now) => cur = now,
            }
        }
    }

    /// Acquires the read lock, failing if the value is deleted.
    ///
    /// Readers spin briefly while a writer is active, then yield, then sleep
    /// with escalating backoff; writers hold the lock only for bounded
    /// copy/compute work, so the wait budget is generous. If `limit` is
    /// nevertheless exhausted (a stuck writer) — or its deadline passes —
    /// acquisition fails with [`AccessError::Contended`] instead of hanging
    /// forever. The uncontended fast path is a single load + CAS, unchanged.
    pub(crate) fn read_lock(&self, limit: &LockLimit) -> Result<(), AccessError> {
        let mut rounds = 0u32;
        let mut slept = 0u64;
        loop {
            let cur = self.state.load(Ordering::Acquire);
            if cur & DELETED != 0 {
                self.note_retries(rounds);
                return Err(AccessError::Deleted);
            }
            if cur & WRITER != 0 {
                if !backoff(&mut rounds, &mut slept, limit) {
                    return self.abort_contended(LockSite::ValueRead, rounds, slept);
                }
                continue;
            }
            debug_assert!(cur & READER_MASK < READER_MASK, "reader count overflow");
            if self
                .state
                .compare_exchange_weak(cur, cur + 1, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                self.note_retries(rounds);
                return Ok(());
            }
        }
    }

    /// Releases a read lock acquired by [`read_lock`](Self::read_lock).
    #[inline]
    pub(crate) fn read_unlock(&self) {
        let prev = self.state.fetch_sub(1, Ordering::Release);
        debug_assert!(prev & READER_MASK > 0, "read_unlock without read_lock");
    }

    /// Acquires the write lock, failing if the value is deleted. Waits are
    /// bounded exactly as in [`read_lock`](Self::read_lock).
    pub(crate) fn write_lock(&self, limit: &LockLimit) -> Result<(), AccessError> {
        let mut rounds = 0u32;
        let mut slept = 0u64;
        loop {
            let cur = self.state.load(Ordering::Acquire);
            if cur & DELETED != 0 {
                self.note_retries(rounds);
                return Err(AccessError::Deleted);
            }
            if cur != 0 {
                // Readers or another writer active.
                if !backoff(&mut rounds, &mut slept, limit) {
                    return self.abort_contended(LockSite::ValueWrite, rounds, slept);
                }
                continue;
            }
            if self
                .state
                .compare_exchange_weak(0, WRITER, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                self.note_retries(rounds);
                return Ok(());
            }
        }
    }

    /// Releases the write lock.
    #[inline]
    pub(crate) fn write_unlock(&self) {
        let prev = self.state.swap(0, Ordering::Release);
        debug_assert_eq!(prev, WRITER, "write_unlock without write_lock");
    }

    /// Marks the value deleted and releases the write lock in one step.
    ///
    /// This is the linearization point of a successful `remove` (§4.5): the
    /// single transition that makes exactly one remover succeed.
    #[inline]
    pub(crate) fn mark_deleted_and_unlock(&self) {
        let prev = self.state.swap(DELETED, Ordering::Release);
        debug_assert_eq!(prev, WRITER, "mark_deleted without write_lock");
    }

    /// Whether the deleted bit is set.
    #[inline]
    pub(crate) fn is_deleted(&self) -> bool {
        self.state.load(Ordering::Acquire) & DELETED != 0
    }

    /// Loads the payload reference. Callers needing a stable payload must
    /// hold the read or write lock; lock-free peeks are allowed only for
    /// heuristics.
    #[inline]
    pub(crate) fn payload(&self) -> SliceRef {
        SliceRef::from_raw(self.payload.load(Ordering::Acquire))
    }

    /// Stores a new payload reference (callers hold the write lock, or the
    /// header is freshly allocated and unpublished).
    #[inline]
    pub(crate) fn set_payload(&self, r: SliceRef) {
        self.payload.store(r.to_raw(), Ordering::Release);
    }

    /// Decoded lock state for diagnostics.
    pub(crate) fn lock_state(&self) -> LockState {
        LockState::decode(self.state.load(Ordering::Acquire))
    }

    /// Current slot generation (the ABA counter of the reclaiming memory
    /// manager, §3.3/§4.4).
    #[inline]
    pub(crate) fn generation(&self) -> u32 {
        self.generation.load(Ordering::Acquire)
    }

    /// Bumps the slot generation; called by the reclaiming manager under
    /// the write lock, immediately before the slot is retired for reuse.
    #[inline]
    pub(crate) fn bump_generation(&self) -> u32 {
        self.generation.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Clears the lock word for a recycled slot (new value, unpublished to
    /// holders of the *new* reference; stale readers are fenced off by the
    /// generation check).
    #[inline]
    pub(crate) fn reset_state(&self) {
        self.state.store(0, Ordering::Release);
    }

    /// Flushes this acquisition's backoff-round count into the pool's
    /// contention counter. Zero-cost on the uncontended path.
    #[inline]
    fn note_retries(&self, rounds: u32) {
        if rounds > 0 {
            self.counters.lock_retries.add(rounds as u64);
        }
    }

    #[cold]
    fn abort_contended(
        &self,
        site: LockSite,
        rounds: u32,
        waited_micros: u64,
    ) -> Result<(), AccessError> {
        self.note_retries(rounds);
        self.counters
            .contended_aborts
            .fetch_add(1, Ordering::Relaxed);
        Err(AccessError::Contended(ContendedInfo {
            site,
            waited_micros,
            rounds,
        }))
    }
}

/// One backoff round: spin, then yield, then escalating bounded sleeps.
/// `slept` accumulates sleep time; the round fails (returns `false`) once
/// it reaches `limit.max_wait` or the clamping deadline has passed. The
/// clock is consulted only in the sleep phase, keeping the spin/yield fast
/// path free of timer syscalls.
#[inline]
fn backoff(rounds: &mut u32, slept: &mut u64, limit: &LockLimit) -> bool {
    *rounds += 1;
    if *rounds <= SPIN_LIMIT {
        std::hint::spin_loop();
    } else if *rounds <= YIELD_LIMIT {
        std::thread::yield_now();
    } else {
        if *slept >= limit.max_wait.as_micros() as u64 {
            return false;
        }
        if let Some(d) = limit.deadline {
            if Instant::now() >= d {
                return false;
            }
        }
        let over = (*rounds - YIELD_LIMIT) as u64;
        let micros = (SLEEP_BASE_MICROS * over).min(SLEEP_CAP_MICROS);
        std::thread::sleep(Duration::from_micros(micros));
        *slept += micros;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::PoolConfig;
    use crate::value::ValueStore;
    use std::sync::Arc;

    fn store() -> ValueStore {
        ValueStore::new(Arc::new(MemoryPool::new(PoolConfig::small())))
    }

    #[test]
    fn lock_state_decoding() {
        let s = LockState::decode(DELETED | 5);
        assert!(s.deleted);
        assert!(!s.writer);
        assert_eq!(s.readers, 5);
        let s = LockState::decode(WRITER);
        assert!(s.writer && !s.deleted);
    }

    #[test]
    fn read_lock_counts() {
        let vs = store();
        let h = vs.allocate_value(b"abc").unwrap();
        let hd = unsafe { Header::at(vs.pool(), h) };
        let limit = LockLimit::default();
        hd.read_lock(&limit).unwrap();
        hd.read_lock(&limit).unwrap();
        assert_eq!(hd.lock_state().readers, 2);
        hd.read_unlock();
        hd.read_unlock();
        assert_eq!(hd.lock_state().readers, 0);
    }

    #[test]
    fn deleted_blocks_all_locks() {
        let vs = store();
        let h = vs.allocate_value(b"abc").unwrap();
        assert!(vs.remove(h));
        let hd = unsafe { Header::at(vs.pool(), h) };
        let limit = LockLimit::default();
        assert_eq!(hd.read_lock(&limit), Err(AccessError::Deleted));
        assert_eq!(hd.write_lock(&limit), Err(AccessError::Deleted));
        assert!(hd.is_deleted());
    }

    #[test]
    fn writer_excludes_readers() {
        let vs = store();
        let h = vs.allocate_value(&[0u8; 8]).unwrap();
        let pool = vs.pool().clone();
        let vs = Arc::new(vs);

        // One writer mutates the payload many times while readers verify
        // they never observe a torn write.
        let writer = {
            let vs = vs.clone();
            std::thread::spawn(move || {
                for i in 0..2000u64 {
                    let bytes = i.to_le_bytes();
                    assert!(vs.put(h, &bytes).unwrap());
                }
            })
        };
        let mut readers = Vec::new();
        for _ in 0..3 {
            let vs = vs.clone();
            readers.push(std::thread::spawn(move || {
                for _ in 0..2000 {
                    let v = vs
                        .read(h, |b| u64::from_le_bytes(b.try_into().unwrap()))
                        .unwrap();
                    assert!(v < 2000);
                }
            }));
        }
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
        drop(pool);
    }
}
