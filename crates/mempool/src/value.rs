//! The value-access layer: atomic `put`, `compute`, `remove`, `read`.
//!
//! `ValueStore` implements §3.3 of the paper. A *value* is a header slot
//! (see [`crate::header`]) plus a separately allocated payload slice. The
//! header's read-write lock makes each access method atomic; the deleted bit
//! makes post-removal access fail. Because the payload is reached through an
//! indirection in the header, `put` and `compute` can *resize* a value in
//! place ("extends the value's memory allocation if its code so requires",
//! §2.2) without disturbing concurrent operations that hold only the
//! header reference.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::audit::AllocClass;
use crate::error::{AccessError, AllocError, ContendedInfo, ValueOpError};
use crate::header::{Header, HeaderRef, LockLimit, LockState, TryReadLock, HEADER_SIZE};
use crate::pool::MemoryPool;
use crate::refs::SliceRef;

/// How value headers are reclaimed after removal (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReclamationPolicy {
    /// The paper's default: removed values free their payload but retain
    /// the 16-byte header forever. Header references are never reused, so
    /// the `finalizeRemove` comparison is trivially ABA-free.
    #[default]
    RetainHeaders,
    /// The paper's "more elaborate solution that uses generations (epochs)
    /// in order to reclaim headers as well": removed headers are recycled
    /// through a free list, and every reference carries the slot's
    /// generation. A stale reference fails its generation check after
    /// acquiring the lock — the "monotonically increasing ABA counter"
    /// of §4.4.
    ReclaimHeaders,
}

/// Width of the generation carried in a versioned header reference (the
/// reference's length field).
const GEN_BITS: u32 = 20;
const GEN_MASK: u32 = (1 << GEN_BITS) - 1;

/// Outcome of [`ValueStore::scan_lock`] — fill-time value admission for
/// snapshot scan batches.
#[derive(Debug, Clone, Copy)]
pub enum ScanLock {
    /// The read lock is held and the payload resolved: deliver the bytes
    /// at `vptr..vptr + vlen` (empty value when `vlen == 0`), then release
    /// via [`ValueStore::scan_unlock`] with `hbase`.
    Held {
        /// The header slot's base address (release token).
        hbase: usize,
        /// Resolved payload address (0 for empty values).
        vptr: usize,
        /// Payload length in bytes.
        vlen: u32,
    },
    /// Live, but a writer holds the lock: read this entry individually
    /// through the waiting path ([`ValueStore::read`]).
    Contended,
    /// Deleted (or stale generation): skip the entry.
    Dead,
}

/// Allocation and atomic access for header-fronted values.
///
/// Cloning is cheap: stores share the underlying pool and recycle list.
///
/// ```
/// use std::sync::Arc;
/// use oak_mempool::{MemoryPool, PoolConfig, ValueStore};
///
/// let store = ValueStore::new(Arc::new(MemoryPool::new(PoolConfig::small())));
/// let v = store.allocate_value(b"hello").unwrap();
/// assert_eq!(store.read_to_vec(v).unwrap(), b"hello");
/// store.compute(v, |buf| buf.as_mut_slice().make_ascii_uppercase());
/// assert_eq!(store.read_to_vec(v).unwrap(), b"HELLO");
/// assert!(store.remove(v));
/// assert!(store.read(v, |_| ()).is_err()); // deleted
/// ```
#[derive(Clone, Debug)]
pub struct ValueStore {
    pool: Arc<MemoryPool>,
    policy: ReclamationPolicy,
    /// Retired header slots awaiting reuse (reclaiming policy only).
    recycled: Arc<Mutex<Vec<SliceRef>>>,
    /// Total sleep budget for one header-lock acquisition before it is
    /// abandoned with [`AccessError::Contended`].
    lock_wait: Duration,
}

impl ValueStore {
    /// Creates a value store over `pool` with the default (retaining)
    /// policy.
    pub fn new(pool: Arc<MemoryPool>) -> Self {
        Self::with_policy(pool, ReclamationPolicy::RetainHeaders)
    }

    /// Creates a value store with an explicit reclamation policy.
    pub fn with_policy(pool: Arc<MemoryPool>, policy: ReclamationPolicy) -> Self {
        ValueStore {
            pool,
            policy,
            recycled: Arc::new(Mutex::new(Vec::new())),
            lock_wait: crate::header::DEFAULT_LOCK_WAIT,
        }
    }

    /// Sets the per-acquisition header-lock sleep budget (builder form).
    /// The default is [`DEFAULT_LOCK_WAIT`](crate::DEFAULT_LOCK_WAIT).
    #[must_use]
    pub fn lock_wait(mut self, max_wait: Duration) -> Self {
        self.lock_wait = max_wait;
        self
    }

    /// The configured per-acquisition lock sleep budget.
    pub fn lock_wait_budget(&self) -> Duration {
        self.lock_wait
    }

    /// The lock limit for one acquisition, clamped by `deadline`.
    #[inline]
    fn limit(&self, deadline: Option<Instant>) -> LockLimit {
        LockLimit {
            max_wait: self.lock_wait,
            deadline,
        }
    }

    /// The active reclamation policy.
    pub fn policy(&self) -> ReclamationPolicy {
        self.policy
    }

    /// Number of retired header slots currently awaiting reuse.
    pub fn recycled_headers(&self) -> usize {
        self.recycled.lock().len()
    }

    /// The underlying pool (shared with key storage and footprint queries).
    pub fn pool(&self) -> &Arc<MemoryPool> {
        &self.pool
    }

    /// Whether `header`'s current generation matches reference `h`.
    #[inline]
    fn gen_matches(&self, header: &Header<'_>, h: HeaderRef) -> bool {
        match self.policy {
            ReclamationPolicy::RetainHeaders => true,
            ReclamationPolicy::ReclaimHeaders => header.generation() & GEN_MASK == h.len(),
        }
    }

    /// Acquires the read lock and validates the reference generation.
    fn read_locked(
        &self,
        h: HeaderRef,
        deadline: Option<Instant>,
    ) -> Result<Header<'_>, AccessError> {
        // SAFETY: h designates a header slot from allocate_value.
        let header = unsafe { Header::at(&self.pool, h) };
        header.read_lock(&self.limit(deadline))?;
        if !self.gen_matches(&header, h) {
            header.read_unlock();
            return Err(AccessError::Deleted);
        }
        Ok(header)
    }

    /// Acquires the write lock and validates the reference generation.
    fn write_locked(
        &self,
        h: HeaderRef,
        deadline: Option<Instant>,
    ) -> Result<Header<'_>, AccessError> {
        // SAFETY: h designates a header slot from allocate_value.
        let header = unsafe { Header::at(&self.pool, h) };
        header.write_lock(&self.limit(deadline))?;
        if !self.gen_matches(&header, h) {
            header.write_unlock();
            return Err(AccessError::Deleted);
        }
        Ok(header)
    }

    /// Allocates a fresh value holding `data` and returns its header ref.
    ///
    /// The value is unlocked and not deleted. Empty values are allowed (the
    /// payload reference is null and reads observe `&[]`).
    pub fn allocate_value(&self, data: &[u8]) -> Result<HeaderRef, AllocError> {
        oak_failpoints::fail_point!("value/alloc", Err(AllocError::Injected));
        let payload = if data.is_empty() {
            SliceRef::NULL
        } else {
            let p = self
                .pool
                .allocate_tagged(data.len(), AllocClass::ValuePayload)?;
            // SAFETY: freshly allocated, unpublished.
            unsafe { self.pool.write_initial(p, data) };
            p
        };
        // Reuse a retired slot under the reclaiming policy (popped only
        // after the fallible payload allocation so slots never leak).
        let recycled_slot = match self.policy {
            ReclamationPolicy::RetainHeaders => None,
            ReclamationPolicy::ReclaimHeaders => self.recycled.lock().pop(),
        };
        if let Some(slot) = recycled_slot {
            // SAFETY: slot is a retired header from this store.
            let header = unsafe { Header::at(&self.pool, slot) };
            let generation = header.generation() & GEN_MASK;
            header.set_payload(payload);
            // Publish to the lock protocol last: until this store, stale
            // readers fail on the deleted bit; afterwards they fail the
            // generation check.
            header.reset_state();
            return Ok(SliceRef::new(slot.block(), slot.offset(), generation));
        }
        let href = match self.pool.allocate_tagged(HEADER_SIZE, AllocClass::Header) {
            Ok(href) => href,
            Err(e) => {
                // The payload was already carved out; hand it back before
                // surfacing the failure or those bytes leak for good.
                if !payload.is_null() {
                    self.pool.free(payload);
                }
                return Err(e);
            }
        };
        self.pool.counters().header_bytes.add(HEADER_SIZE as u64);
        // SAFETY: href is a fresh 16-byte 8-aligned slot. It may be
        // recycled arena memory (frees of *payloads* can hand the same
        // region back); reset all three words before publication.
        let header = unsafe { Header::at(&self.pool, href) };
        unsafe {
            self.pool.atomic_u32_at(href, 0).store(0, Ordering::Relaxed);
            self.pool.atomic_u32_at(href, 4).store(0, Ordering::Relaxed);
        }
        header.set_payload(payload);
        match self.policy {
            ReclamationPolicy::RetainHeaders => Ok(href),
            // Fresh slot: generation 0.
            ReclamationPolicy::ReclaimHeaders => Ok(SliceRef::new(href.block(), href.offset(), 0)),
        }
    }

    /// Admits one entry into a scan snapshot: tries the read lock once
    /// (no waiting), and on success resolves the payload's address so the
    /// scan's drain can deliver the bytes without re-translating. The
    /// returned lock — readers only exclude writers, so holding it across
    /// a bounded batch drain keeps the delivery torn-read-free without
    /// blocking other scans — must be released with
    /// [`scan_unlock`](Self::scan_unlock).
    ///
    /// `Contended` (a writer was active) and `Dead` (deleted, or a stale
    /// generation under the reclaiming policy) leave nothing held.
    #[inline]
    pub fn scan_lock(&self, h: HeaderRef) -> ScanLock {
        // SAFETY: h designates a header slot from allocate_value.
        let header = unsafe { Header::at(&self.pool, h) };
        match header.try_read_lock() {
            TryReadLock::Dead => ScanLock::Dead,
            TryReadLock::Busy => ScanLock::Contended,
            TryReadLock::Held => {
                if !self.gen_matches(&header, h) {
                    header.read_unlock();
                    return ScanLock::Dead;
                }
                let payload = header.payload();
                let (vptr, vlen) = if payload.is_null() {
                    (0, 0)
                } else {
                    (self.pool.resolve_addr(payload), payload.len())
                };
                ScanLock::Held {
                    hbase: header.base_addr(),
                    vptr,
                    vlen,
                }
            }
        }
    }

    /// Releases a read lock taken by [`scan_lock`](Self::scan_lock).
    ///
    /// # Safety
    /// `hbase` must come from a `ScanLock::Held` issued by this store's
    /// pool and be released exactly once.
    #[inline]
    pub unsafe fn scan_unlock(&self, hbase: usize) {
        Header::from_base(hbase, self.pool.counters()).read_unlock();
    }

    /// Atomically reads the value, passing the payload bytes to `f`.
    ///
    /// Fails with [`AccessError::Deleted`] if the value was removed. The
    /// read lock is released even if `f` panics (readers don't mutate, so
    /// unlocking — not poisoning — is the correct unwind behaviour).
    pub fn read<R>(&self, h: HeaderRef, f: impl FnOnce(&[u8]) -> R) -> Result<R, AccessError> {
        self.read_at(h, None, f)
    }

    /// [`read`](Self::read) with the lock wait clamped by `deadline`
    /// (the budgeted-operation variant).
    pub fn read_at<R>(
        &self,
        h: HeaderRef,
        deadline: Option<Instant>,
        f: impl FnOnce(&[u8]) -> R,
    ) -> Result<R, AccessError> {
        oak_failpoints::fail_point!("value/read");
        let header = self.read_locked(h, deadline)?;
        let unlock = ReadUnlockOnDrop { header: &header };
        let payload = header.payload();
        let result = if payload.is_null() {
            f(&[])
        } else {
            // SAFETY: read lock held — no writer can mutate or free payload.
            f(unsafe { self.pool.slice(payload) })
        };
        drop(unlock);
        Ok(result)
    }

    /// Atomically replaces the value's contents with `data` (the paper's
    /// `v.put`). Returns `Ok(false)` if the value is deleted or the header
    /// lock budget was exhausted (see [`AccessError::Contended`]) — callers
    /// needing to distinguish those use [`put_at`](Self::put_at).
    pub fn put(&self, h: HeaderRef, data: &[u8]) -> Result<bool, AllocError> {
        match self.put_at(h, data, None) {
            Ok(written) => Ok(written),
            // Legacy conflation: a lost lock wait reads as "not written",
            // exactly like a deletion (the caller re-walks and retries).
            Err(ValueOpError::Access(_)) => Ok(false),
            Err(ValueOpError::Alloc(e)) => Err(e),
        }
    }

    /// [`put`](Self::put) with the lock wait clamped by `deadline`, and
    /// with lock-wait abandonment surfaced as a typed error instead of
    /// being folded into the boolean: `Ok(true)` wrote, `Ok(false)` found
    /// the value deleted (retry the full operation),
    /// `Err(Access(Contended))` lost the bounded lock wait.
    pub fn put_at(
        &self,
        h: HeaderRef,
        data: &[u8],
        deadline: Option<Instant>,
    ) -> Result<bool, ValueOpError> {
        oak_failpoints::sync_point!("value/put");
        oak_failpoints::fail_point!("value/put", Err(AllocError::Injected.into()));
        let header = match self.write_locked(h, deadline) {
            Ok(header) => header,
            Err(AccessError::Deleted) => return Ok(false),
            Err(e @ AccessError::Contended(_)) => return Err(e.into()),
        };
        let old = header.payload();
        let result = if old.len() as usize == data.len() {
            if !data.is_empty() {
                // SAFETY: write lock grants exclusive payload access.
                unsafe { self.pool.slice_mut(old) }.copy_from_slice(data);
            }
            Ok(true)
        } else {
            // Resize: allocate-copy-swap-free, all under the write lock.
            match self.replace_payload(&header, old, data) {
                Ok(()) => Ok(true),
                Err(e) => Err(e.into()),
            }
        };
        header.write_unlock();
        result
    }

    fn replace_payload(
        &self,
        header: &Header<'_>,
        old: SliceRef,
        data: &[u8],
    ) -> Result<(), AllocError> {
        let new = if data.is_empty() {
            SliceRef::NULL
        } else {
            let p = self
                .pool
                .allocate_tagged(data.len(), AllocClass::ValuePayload)?;
            unsafe { self.pool.write_initial(p, data) };
            p
        };
        header.set_payload(new);
        if !old.is_null() {
            self.pool.free(old);
        }
        Ok(())
    }

    /// Like [`put`](Self::put), but atomically returns a copy of the old
    /// contents (the legacy `ConcurrentNavigableMap.put` shape, which must
    /// return the previous value). Returns `Ok(None)` if deleted.
    pub fn replace(&self, h: HeaderRef, data: &[u8]) -> Result<Option<Vec<u8>>, AllocError> {
        oak_failpoints::fail_point!("value/replace", Err(AllocError::Injected));
        let Ok(header) = self.write_locked(h, None) else {
            return Ok(None);
        };
        let old = header.payload();
        let old_copy = if old.is_null() {
            Vec::new()
        } else {
            // SAFETY: write lock grants exclusive payload access.
            unsafe { self.pool.slice(old) }.to_vec()
        };
        let result = if old.len() as usize == data.len() {
            if !data.is_empty() {
                unsafe { self.pool.slice_mut(old) }.copy_from_slice(data);
            }
            Ok(Some(old_copy))
        } else {
            match self.replace_payload(&header, old, data) {
                Ok(()) => Ok(Some(old_copy)),
                Err(e) => Err(e),
            }
        };
        header.write_unlock();
        result
    }

    /// Atomically applies `f` to the value in place (the paper's
    /// `v.compute`). Returns `None` if the value is deleted, otherwise the
    /// closure's result. The closure receives a [`ValueBytesMut`] supporting
    /// reads, writes, and resizing.
    ///
    /// # Panic safety
    ///
    /// `f` is arbitrary user code running under the header write lock. If
    /// it panics, an RAII guard *poisons* the value before the panic
    /// propagates: the payload (possibly half-mutated) is freed and the
    /// header transitions to deleted exactly as in [`remove`](Self::remove),
    /// releasing the lock. Concurrent and subsequent accesses observe a
    /// cleanly deleted value — never a torn one, and never a header locked
    /// forever by a dead frame.
    pub fn compute<R>(
        &self,
        h: HeaderRef,
        f: impl FnOnce(&mut ValueBytesMut<'_>) -> R,
    ) -> Option<R> {
        // Legacy conflation: a lost lock wait reads as "value gone".
        self.compute_at(h, None, f).unwrap_or(None)
    }

    /// [`compute`](Self::compute) with the lock wait clamped by `deadline`
    /// and lock-wait abandonment surfaced distinctly: `Ok(None)` means the
    /// value is deleted, `Err` carries the contention diagnostics.
    pub fn compute_at<R>(
        &self,
        h: HeaderRef,
        deadline: Option<Instant>,
        f: impl FnOnce(&mut ValueBytesMut<'_>) -> R,
    ) -> Result<Option<R>, ContendedInfo> {
        oak_failpoints::sync_point!("value/compute");
        oak_failpoints::fail_point!("value/compute");
        let header = match self.write_locked(h, deadline) {
            Ok(header) => header,
            Err(AccessError::Deleted) => return Ok(None),
            Err(AccessError::Contended(info)) => return Err(info),
        };
        let payload = header.payload();
        let poison = PoisonOnPanic {
            store: self,
            header: &header,
            h,
            armed: std::cell::Cell::new(true),
        };
        let mut guard = ValueBytesMut {
            store: self,
            header: &header,
            payload,
        };
        let result = f(&mut guard);
        poison.armed.set(false);
        header.write_unlock();
        Ok(Some(result))
    }

    /// Like [`remove`](Self::remove), but atomically returns a copy of the
    /// removed contents (legacy `ConcurrentNavigableMap.remove` shape).
    pub fn remove_returning(&self, h: HeaderRef) -> Option<Vec<u8>> {
        self.remove_returning_at(h, None).unwrap_or(None)
    }

    /// [`remove_returning`](Self::remove_returning) with the lock wait
    /// clamped by `deadline`; `Ok(None)` means already deleted, `Err`
    /// carries the contention diagnostics.
    pub fn remove_returning_at(
        &self,
        h: HeaderRef,
        deadline: Option<Instant>,
    ) -> Result<Option<Vec<u8>>, ContendedInfo> {
        oak_failpoints::sync_point!("value/remove");
        oak_failpoints::fail_point!("value/remove");
        let header = match self.write_locked(h, deadline) {
            Ok(header) => header,
            Err(AccessError::Deleted) => return Ok(None),
            Err(AccessError::Contended(info)) => return Err(info),
        };
        let payload = header.payload();
        let copy = if payload.is_null() {
            Vec::new()
        } else {
            // SAFETY: write lock held.
            unsafe { self.pool.slice(payload) }.to_vec()
        };
        header.set_payload(SliceRef::NULL);
        self.retire(&header, h);
        if !payload.is_null() {
            self.pool.free(payload);
        }
        Ok(Some(copy))
    }

    /// Marks the value deleted and, under the reclaiming policy, bumps the
    /// generation and queues the slot for reuse. Caller holds the write
    /// lock, which this releases.
    fn retire(&self, header: &Header<'_>, h: HeaderRef) {
        if self.policy == ReclamationPolicy::ReclaimHeaders {
            // Invalidate outstanding references before the deleted bit is
            // even cleared by a future recycle.
            header.bump_generation();
        }
        header.mark_deleted_and_unlock();
        if self.policy == ReclamationPolicy::ReclaimHeaders {
            self.recycled
                .lock()
                .push(SliceRef::new(h.block(), h.offset(), HEADER_SIZE as u32));
        }
    }

    /// Atomically marks the value deleted and reclaims its payload (the
    /// paper's `v.remove`). Returns `false` if already deleted — exactly one
    /// caller succeeds.
    pub fn remove(&self, h: HeaderRef) -> bool {
        self.remove_at(h, None).unwrap_or(false)
    }

    /// [`remove`](Self::remove) with the lock wait clamped by `deadline`;
    /// `Ok(false)` means already deleted, `Err` carries the contention
    /// diagnostics (the value is *not* removed in that case).
    pub fn remove_at(
        &self,
        h: HeaderRef,
        deadline: Option<Instant>,
    ) -> Result<bool, ContendedInfo> {
        oak_failpoints::sync_point!("value/remove");
        oak_failpoints::fail_point!("value/remove");
        let header = match self.write_locked(h, deadline) {
            Ok(header) => header,
            Err(AccessError::Deleted) => return Ok(false),
            Err(AccessError::Contended(info)) => return Err(info),
        };
        let payload = header.payload();
        header.set_payload(SliceRef::NULL);
        // The linearization point: deleted becomes visible to all.
        self.retire(&header, h);
        if !payload.is_null() {
            // Safe to reclaim: any reader must first take the read lock,
            // which now fails on the deleted bit; readers that held the lock
            // before we acquired the write lock have already released it.
            self.pool.free(payload);
        }
        Ok(true)
    }

    /// Whether the value's deleted bit is set.
    pub fn is_deleted(&self, h: HeaderRef) -> bool {
        let header = unsafe { Header::at(&self.pool, h) };
        header.is_deleted() || !self.gen_matches(&header, h)
    }

    /// Current payload length in bytes; fails if deleted.
    pub fn value_len(&self, h: HeaderRef) -> Result<usize, AccessError> {
        self.read(h, |b| b.len())
    }

    /// Copies the value out; fails if deleted.
    pub fn read_to_vec(&self, h: HeaderRef) -> Result<Vec<u8>, AccessError> {
        self.read(h, |b| b.to_vec())
    }

    /// Diagnostic view of the header lock word.
    pub fn lock_state(&self, h: HeaderRef) -> LockState {
        unsafe { Header::at(&self.pool, h) }.lock_state()
    }

    /// The payload slice currently referenced by `h`'s header, or `None`
    /// when the value is empty or deleted. Lock-free diagnostic read used
    /// by the memory auditor's reachability walk — only meaningful at a
    /// quiescent point (a concurrent resize or remove can swap the
    /// payload out from under the snapshot).
    #[doc(hidden)]
    pub fn payload_of(&self, h: HeaderRef) -> Option<SliceRef> {
        // SAFETY: h designates a header slot from allocate_value.
        let header = unsafe { Header::at(&self.pool, h) };
        let payload = header.payload();
        (!payload.is_null()).then_some(payload)
    }
}

/// Releases a read lock on unwind as well as on the normal path.
struct ReadUnlockOnDrop<'a> {
    header: &'a Header<'a>,
}

impl Drop for ReadUnlockOnDrop<'_> {
    fn drop(&mut self) {
        self.header.read_unlock();
    }
}

/// Poisons a value if a `compute` closure panics while holding the write
/// lock: frees the (possibly half-mutated) payload and retires the header
/// exactly like a remove, so the lock is released and every later access
/// sees a clean deletion. Disarmed on the normal path.
struct PoisonOnPanic<'a> {
    store: &'a ValueStore,
    header: &'a Header<'a>,
    h: HeaderRef,
    armed: std::cell::Cell<bool>,
}

impl Drop for PoisonOnPanic<'_> {
    fn drop(&mut self) {
        if !self.armed.get() {
            return;
        }
        // Re-read the payload: the closure may have resized it.
        let payload = self.header.payload();
        self.header.set_payload(SliceRef::NULL);
        self.store
            .pool
            .counters()
            .poisoned_values
            .fetch_add(1, Ordering::Relaxed);
        self.store.retire(self.header, self.h);
        if !payload.is_null() {
            self.store.pool.free(payload);
        }
    }
}

/// Read-only alias used by zero-copy buffer APIs.
pub type ValueBytes<'a> = &'a [u8];

/// Exclusive, resizable access to a value's payload inside
/// [`ValueStore::compute`]. The header write lock is held for the guard's
/// whole lifetime.
pub struct ValueBytesMut<'a> {
    store: &'a ValueStore,
    header: &'a Header<'a>,
    payload: SliceRef,
}

impl ValueBytesMut<'_> {
    /// Current length of the payload in bytes.
    pub fn len(&self) -> usize {
        self.payload.len() as usize
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.payload.is_null() || self.payload.len() == 0
    }

    /// Shared view of the payload.
    pub fn as_slice(&self) -> &[u8] {
        if self.payload.is_null() {
            &[]
        } else {
            // SAFETY: write lock held for the guard lifetime.
            unsafe { self.store.pool.slice(self.payload) }
        }
    }

    /// Exclusive view of the payload.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        if self.payload.is_null() {
            &mut []
        } else {
            // SAFETY: write lock held for the guard lifetime.
            unsafe { self.store.pool.slice_mut(self.payload) }
        }
    }

    /// Resizes the payload to `new_len` bytes, preserving the common prefix
    /// and zero-filling any extension. This is how `compute` lambdas grow a
    /// value ("extends the value's memory allocation if its code so
    /// requires").
    pub fn resize(&mut self, new_len: usize) -> Result<(), AllocError> {
        if new_len == self.len() {
            return Ok(());
        }
        let new = if new_len == 0 {
            SliceRef::NULL
        } else {
            let p = self
                .store
                .pool
                .allocate_tagged(new_len, AllocClass::ValuePayload)?;
            let keep = new_len.min(self.len());
            // SAFETY: p is fresh and unpublished; old payload exclusive.
            unsafe {
                let dst = self.store.pool.slice_mut(p);
                dst[..keep].copy_from_slice(&self.as_slice()[..keep]);
                dst[keep..].fill(0);
            }
            p
        };
        let old = self.payload;
        self.header.set_payload(new);
        self.payload = new;
        if !old.is_null() {
            self.store.pool.free(old);
        }
        Ok(())
    }

    /// Reads a little-endian `u64` at byte offset `at`.
    pub fn get_u64(&self, at: usize) -> u64 {
        u64::from_le_bytes(self.as_slice()[at..at + 8].try_into().unwrap())
    }

    /// Writes a little-endian `u64` at byte offset `at`.
    pub fn put_u64(&mut self, at: usize, v: u64) {
        self.as_mut_slice()[at..at + 8].copy_from_slice(&v.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::PoolConfig;

    fn vs() -> ValueStore {
        ValueStore::new(Arc::new(MemoryPool::new(PoolConfig::small())))
    }

    #[test]
    fn allocate_and_read() {
        let vs = vs();
        let h = vs.allocate_value(b"value-1").unwrap();
        assert_eq!(vs.read_to_vec(h).unwrap(), b"value-1");
        assert_eq!(vs.value_len(h).unwrap(), 7);
        assert!(!vs.is_deleted(h));
    }

    #[test]
    fn empty_value_supported() {
        let vs = vs();
        let h = vs.allocate_value(b"").unwrap();
        assert_eq!(vs.read_to_vec(h).unwrap(), Vec::<u8>::new());
        assert!(vs.put(h, b"now nonempty").unwrap());
        assert_eq!(vs.read_to_vec(h).unwrap(), b"now nonempty");
    }

    #[test]
    fn put_same_size_in_place() {
        let vs = vs();
        let h = vs.allocate_value(b"aaaa").unwrap();
        let before = vs.pool().stats().alloc_count;
        assert!(vs.put(h, b"bbbb").unwrap());
        // Same-size put must not allocate.
        assert_eq!(vs.pool().stats().alloc_count, before);
        assert_eq!(vs.read_to_vec(h).unwrap(), b"bbbb");
    }

    #[test]
    fn put_resizes() {
        let vs = vs();
        let h = vs.allocate_value(b"short").unwrap();
        assert!(vs.put(h, b"a much longer value indeed").unwrap());
        assert_eq!(vs.read_to_vec(h).unwrap(), b"a much longer value indeed");
        assert!(vs.put(h, b"x").unwrap());
        assert_eq!(vs.read_to_vec(h).unwrap(), b"x");
    }

    #[test]
    fn remove_is_exactly_once() {
        let vs = vs();
        let h = vs.allocate_value(b"gone").unwrap();
        assert!(vs.remove(h));
        assert!(!vs.remove(h));
        assert!(vs.is_deleted(h));
        assert_eq!(vs.read(h, |_| ()), Err(AccessError::Deleted));
        assert_eq!(vs.put(h, b"zz"), Ok(false));
        assert!(vs.compute(h, |_| ()).is_none());
    }

    #[test]
    fn compute_mutates_in_place() {
        let vs = vs();
        let h = vs.allocate_value(&0u64.to_le_bytes()).unwrap();
        for _ in 0..10 {
            vs.compute(h, |b| {
                let v = b.get_u64(0);
                b.put_u64(0, v + 1);
            })
            .unwrap();
        }
        let v = vs
            .read(h, |b| u64::from_le_bytes(b.try_into().unwrap()))
            .unwrap();
        assert_eq!(v, 10);
    }

    #[test]
    fn compute_can_grow_value() {
        let vs = vs();
        let h = vs.allocate_value(b"ab").unwrap();
        vs.compute(h, |b| {
            b.resize(6).unwrap();
            b.as_mut_slice()[2..].copy_from_slice(b"cdef");
        })
        .unwrap();
        assert_eq!(vs.read_to_vec(h).unwrap(), b"abcdef");
        // Shrink preserves prefix.
        vs.compute(h, |b| b.resize(3).unwrap()).unwrap();
        assert_eq!(vs.read_to_vec(h).unwrap(), b"abc");
    }

    #[test]
    fn remove_frees_payload_but_not_header() {
        let vs = vs();
        let h = vs.allocate_value(&[7u8; 1000]).unwrap();
        let live_before = vs.pool().stats().live_bytes;
        assert!(vs.remove(h));
        let stats = vs.pool().stats();
        // Payload (1000 → 1000 padded) freed; 16-byte header retained.
        assert_eq!(live_before - stats.live_bytes, 1000);
        assert_eq!(stats.header_bytes, 16);
    }

    #[test]
    fn concurrent_compute_is_atomic() {
        // Increment a counter from many threads through compute; the header
        // write lock must make every increment take effect exactly once.
        let vs = Arc::new(vs());
        let h = vs.allocate_value(&0u64.to_le_bytes()).unwrap();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let vs = vs.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    vs.compute(h, |b| {
                        let v = b.get_u64(0);
                        b.put_u64(0, v + 1);
                    })
                    .unwrap();
                }
            }));
        }
        for hdl in handles {
            hdl.join().unwrap();
        }
        let v = vs
            .read(h, |b| u64::from_le_bytes(b.try_into().unwrap()))
            .unwrap();
        assert_eq!(v, 2000);
    }

    #[test]
    fn panicking_compute_poisons_value() {
        let vs = vs();
        let h = vs.allocate_value(b"doomed").unwrap();
        let live_before = vs.pool().stats().live_bytes;
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            vs.compute(h, |b| {
                b.as_mut_slice()[0] = b'X'; // half-done mutation
                panic!("user closure exploded");
            })
        }))
        .unwrap_err();
        assert!(err.downcast_ref::<&str>().is_some());
        // The value is cleanly deleted: no torn reads, no stuck lock.
        assert!(vs.is_deleted(h));
        assert_eq!(vs.read(h, |_| ()), Err(AccessError::Deleted));
        assert_eq!(vs.put(h, b"zz"), Ok(false));
        assert!(!vs.remove(h));
        let stats = vs.pool().stats();
        assert_eq!(stats.poisoned_values, 1);
        // Payload reclaimed like a normal remove.
        assert_eq!(live_before - stats.live_bytes, 8);
        // The store remains fully usable.
        let h2 = vs.allocate_value(b"fresh").unwrap();
        assert_eq!(vs.read_to_vec(h2).unwrap(), b"fresh");
    }

    #[test]
    fn panicking_compute_after_resize_frees_new_payload() {
        let vs = vs();
        let h = vs.allocate_value(b"ab").unwrap();
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            vs.compute(h, |b| {
                b.resize(100).unwrap();
                panic!("after resize");
            })
        }));
        assert!(vs.is_deleted(h));
        let stats = vs.pool().stats();
        // Both the original and the resized payload are back on the free
        // list: nothing is live except the retained header.
        assert_eq!(stats.live_bytes, stats.header_bytes);
    }

    #[test]
    fn panicking_read_releases_lock() {
        let vs = vs();
        let h = vs.allocate_value(b"peek").unwrap();
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            vs.read(h, |_| panic!("reader closure exploded"))
        }));
        // Readers don't mutate, so the value survives and is writable.
        assert_eq!(vs.lock_state(h).readers, 0);
        assert_eq!(vs.read_to_vec(h).unwrap(), b"peek");
        assert!(vs.put(h, b"still").unwrap());
    }

    #[test]
    fn concurrent_remove_single_winner() {
        let vs = Arc::new(vs());
        for _ in 0..50 {
            let h = vs.allocate_value(b"contended").unwrap();
            let mut handles = Vec::new();
            for _ in 0..4 {
                let vs = vs.clone();
                handles.push(std::thread::spawn(move || vs.remove(h) as u32));
            }
            let winners: u32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(winners, 1, "exactly one remove must succeed");
        }
    }
}

#[cfg(test)]
mod reclaim_tests {
    use super::*;
    use crate::pool::PoolConfig;

    fn vs() -> ValueStore {
        ValueStore::with_policy(
            Arc::new(MemoryPool::new(PoolConfig::small())),
            ReclamationPolicy::ReclaimHeaders,
        )
    }

    #[test]
    fn headers_are_recycled() {
        let store = vs();
        let h1 = store.allocate_value(b"first").unwrap();
        let slab_after_first = store.pool().stats().header_bytes;
        assert!(store.remove(h1));
        assert_eq!(store.recycled_headers(), 1);
        let h2 = store.allocate_value(b"second").unwrap();
        assert_eq!(store.recycled_headers(), 0);
        // Same physical slot, different generation.
        assert_eq!((h1.block(), h1.offset()), (h2.block(), h2.offset()));
        assert_ne!(h1.len(), h2.len());
        // No new header slab space was consumed.
        assert_eq!(store.pool().stats().header_bytes, slab_after_first);
        assert_eq!(store.read_to_vec(h2).unwrap(), b"second");
    }

    #[test]
    fn stale_reference_fails_all_access() {
        let store = vs();
        let h_old = store.allocate_value(b"old").unwrap();
        assert!(store.remove(h_old));
        let h_new = store.allocate_value(b"new").unwrap();
        // h_old points at the recycled slot now holding "new": every access
        // through the stale reference must fail, not observe "new".
        assert_eq!(store.read(h_old, |b| b.to_vec()), Err(AccessError::Deleted));
        assert_eq!(store.put(h_old, b"clobber"), Ok(false));
        assert!(store.compute(h_old, |_| ()).is_none());
        assert!(
            !store.remove(h_old),
            "stale remove must not kill the new value"
        );
        assert!(store.is_deleted(h_old));
        // The new value is untouched.
        assert_eq!(store.read_to_vec(h_new).unwrap(), b"new");
        assert!(!store.is_deleted(h_new));
    }

    #[test]
    fn header_slab_stays_bounded_under_churn() {
        let store = vs();
        for i in 0..10_000u32 {
            let h = store.allocate_value(&i.to_le_bytes()).unwrap();
            assert!(store.remove(h));
        }
        let stats = store.pool().stats();
        // The retaining policy would have burned 10_000 × 16 B of headers;
        // recycling caps the slab at a handful of slots.
        assert!(
            stats.header_bytes <= 16 * 8,
            "header slab grew to {} bytes",
            stats.header_bytes
        );
    }

    #[test]
    fn concurrent_churn_with_stale_readers() {
        let store = Arc::new(vs());
        let h0 = store.allocate_value(&0u64.to_le_bytes()).unwrap();
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        // Writer: endless remove/allocate cycles on the same slot.
        let writer = {
            let (store, stop) = (store.clone(), stop.clone());
            std::thread::spawn(move || {
                let mut h = h0;
                let mut i = 1u64;
                while !stop.load(Ordering::Relaxed) {
                    assert!(store.remove(h));
                    h = store.allocate_value(&i.to_le_bytes()).unwrap();
                    i += 1;
                }
            })
        };
        // Stale readers: only ever use the original reference; they must
        // see either the original value (before its removal) or Deleted —
        // never a torn or newer value.
        let mut readers = Vec::new();
        for _ in 0..3 {
            let store = store.clone();
            readers.push(std::thread::spawn(move || {
                for _ in 0..20_000 {
                    match store.read(h0, |b| u64::from_le_bytes(b.try_into().unwrap())) {
                        Ok(v) => assert_eq!(v, 0, "stale ref observed a newer value"),
                        Err(AccessError::Deleted) => {}
                        Err(AccessError::Contended(_)) => panic!("budget exhausted in test"),
                    }
                }
            }));
        }
        for r in readers {
            r.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
    }

    #[test]
    fn panicking_compute_recycles_header() {
        let store = vs();
        let h = store.allocate_value(b"boom").unwrap();
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            store.compute(h, |_| panic!("in reclaiming store"))
        }));
        // Poisoning under the reclaiming policy retires the slot for reuse;
        // the stale reference is fenced off by the generation bump.
        assert_eq!(store.recycled_headers(), 1);
        assert!(store.is_deleted(h));
        let h2 = store.allocate_value(b"reuse").unwrap();
        assert_eq!((h.block(), h.offset()), (h2.block(), h2.offset()));
        assert_eq!(store.read(h, |b| b.to_vec()), Err(AccessError::Deleted));
        assert_eq!(store.read_to_vec(h2).unwrap(), b"reuse");
    }

    #[test]
    fn retaining_policy_unaffected() {
        let store = ValueStore::new(Arc::new(MemoryPool::new(PoolConfig::small())));
        let h = store.allocate_value(b"x").unwrap();
        store.remove(h);
        assert_eq!(store.recycled_headers(), 0);
        let h2 = store.allocate_value(b"y").unwrap();
        assert_ne!((h.block(), h.offset()), (h2.block(), h2.offset()));
    }
}
