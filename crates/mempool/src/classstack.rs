//! Lock-free per-size-class slice stacks.
//!
//! *Concurrent Fixed-Size Allocation and Free in Constant Time* (PAPERS.md,
//! Blelloch & Wei) observes that once allocation is size-classed, the free
//! path and the refill path reduce to push/pop on a per-class pool that a
//! CAS loop can serve in constant time — no allocator-wide mutex. This
//! module supplies that layer for the dominant (≤ 2 KiB padded) classes:
//!
//! - [`ClassStack`] is a bounded Treiber stack of packed `(arena, offset)`
//!   slice words. Nodes are preallocated in one boxed slab and threaded
//!   through **two** tagged intrusive lists (the live stack and the free
//!   node list), so a push is pop-free-node → store value → CAS-publish and
//!   a pop is the mirror image: every operation is a constant number of
//!   CAS attempts per contender, with no locks and no dynamic memory.
//! - [`ClassStacks`] is the pool-facing rack: one lazily-materialized
//!   `ClassStack` per size class, plus the held-bytes ledger that keeps
//!   `stats()`/`audit()` balance sheets exact (stack-parked bytes are free
//!   capacity, not leaks).
//!
//! ## ABA defense: tagged heads
//!
//! Both list heads pack `(tag, node index)` into one `AtomicU64`; every
//! successful CAS bumps the 32-bit tag. A pop that read head `(t, n)` and
//! was preempted while node `n` was popped, recycled, and re-pushed will
//! fail its CAS — the head may hold index `n` again but never tag `t`
//! (wrap-around would require exactly 2³² successful operations between
//! one contender's read and its CAS). Node payloads (`next`, `val`) are
//! plain atomics, so the benign stale reads inherent to Treiber stacks are
//! data-race-free under Miri/TSan: a loser's stale `next`/`val` read is
//! discarded when its tagged CAS fails.
//!
//! ## Ordering
//!
//! `val` is stored `Relaxed` *before* the `Release` CAS that publishes the
//! node on the live stack; the popping thread's `Acquire` CAS on the same
//! head synchronizes-with it (RMWs extend the release sequence), so the
//! value read after winning a pop is the pusher's. Failed CAS loads are
//! `Acquire` only to refresh the head; values read under a stale head are
//! never used.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::OnceLock;

use crate::freelist::{GRANULARITY, LARGE_GRANULARITY};
use crate::magazine::{CachedSlice, MAG_MAX_PADDED};
use crate::stats::Counters;

/// Sentinel node index for an empty list.
const NIL: u32 = u32::MAX;

/// Nodes per class stack. Bounds how many free slices a class can park
/// off the coalescing free lists (1024 × 2 KiB = 2 MiB worst case per hot
/// class); a push to a full stack falls back to the mutex free list, so
/// the bound is a retention cap, not a correctness limit.
pub(crate) const STACK_CAP: usize = 1024;

/// Number of size classes served lock-free: `8, 16, …, 2048` padded bytes.
pub(crate) const NUM_CLASSES: usize = (MAG_MAX_PADDED / GRANULARITY) as usize;

/// Largest padded size the oversized class-stack tier recycles lock-free.
/// Frees above this take the per-arena mutex free list — they are rare
/// (multi-chunk-entry arrays and jumbo values) and coalescing them eagerly
/// matters more than lock traffic.
pub const LARGE_MAX_PADDED: u32 = 32 * 1024;

/// Oversized size classes: `2048+256, 2048+512, …, 32768` padded bytes —
/// one exact-size stack per [`LARGE_GRANULARITY`] step above the small
/// cutoff (padded sizes over the cutoff are rounded to that granularity,
/// so every oversized padded size names exactly one class).
pub(crate) const NUM_LARGE_CLASSES: usize =
    ((LARGE_MAX_PADDED - MAG_MAX_PADDED) / LARGE_GRANULARITY) as usize;

/// Nodes per oversized class stack: a smaller retention cap because each
/// parked slice is big (128 × 32 KiB = 4 MiB worst case per class).
pub(crate) const LARGE_STACK_CAP: usize = 128;

#[inline]
fn pack(tag: u32, idx: u32) -> u64 {
    ((tag as u64) << 32) | idx as u64
}

#[inline]
fn unpack(word: u64) -> (u32, u32) {
    ((word >> 32) as u32, word as u32)
}

/// Packs a cached slice into the 64-bit node payload.
#[inline]
fn pack_slice((block, offset): CachedSlice) -> u64 {
    ((block as u64) << 32) | offset as u64
}

#[inline]
fn unpack_slice(word: u64) -> CachedSlice {
    ((word >> 32) as u32, word as u32)
}

/// A preallocated stack node. Both fields are atomics because a stalled
/// contender may read them after the node was recycled (see module docs);
/// such reads are discarded when the tagged head CAS fails.
#[derive(Debug)]
struct Node {
    next: AtomicU32,
    val: AtomicU64,
}

/// Outcome of one CAS loop: the popped index (if any) plus how many CAS
/// attempts failed before the loop resolved, for the `cas_retries` counter.
struct PopOutcome {
    idx: Option<u32>,
    retries: u64,
}

/// A bounded lock-free Treiber stack of packed slice words.
#[derive(Debug)]
pub(crate) struct ClassStack {
    nodes: Box<[Node]>,
    /// Tagged head of the live stack (slices ready to hand out).
    head: AtomicU64,
    /// Tagged head of the free-node list (capacity for future pushes).
    free: AtomicU64,
}

impl ClassStack {
    pub(crate) fn new(cap: usize) -> Self {
        assert!(
            cap > 0 && cap < NIL as usize,
            "invalid class-stack capacity"
        );
        let nodes: Box<[Node]> = (0..cap)
            .map(|i| Node {
                next: AtomicU32::new(if i + 1 < cap { i as u32 + 1 } else { NIL }),
                val: AtomicU64::new(0),
            })
            .collect();
        ClassStack {
            nodes,
            head: AtomicU64::new(pack(0, NIL)),
            free: AtomicU64::new(pack(0, 0)),
        }
    }

    /// Treiber pop from `list`. The `next` read under a stale head may be
    /// garbage; the tagged CAS rejects it.
    fn list_pop(&self, list: &AtomicU64) -> PopOutcome {
        let mut retries = 0u64;
        let mut cur = list.load(Ordering::Acquire);
        loop {
            let (tag, idx) = unpack(cur);
            if idx == NIL {
                return PopOutcome { idx: None, retries };
            }
            let next = self.nodes[idx as usize].next.load(Ordering::Relaxed);
            match list.compare_exchange_weak(
                cur,
                pack(tag.wrapping_add(1), next),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    return PopOutcome {
                        idx: Some(idx),
                        retries,
                    }
                }
                Err(seen) => {
                    retries += 1;
                    cur = seen;
                }
            }
        }
    }

    /// Treiber push of owned node `idx` onto `list`.
    fn list_push(&self, list: &AtomicU64, idx: u32) -> u64 {
        let mut retries = 0u64;
        let mut cur = list.load(Ordering::Relaxed);
        loop {
            let (tag, head_idx) = unpack(cur);
            self.nodes[idx as usize]
                .next
                .store(head_idx, Ordering::Relaxed);
            match list.compare_exchange_weak(
                cur,
                pack(tag.wrapping_add(1), idx),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return retries,
                Err(seen) => {
                    retries += 1;
                    cur = seen;
                }
            }
        }
    }

    /// Pushes a slice word. `Err(val)` means the stack is at capacity (no
    /// free node) and the caller must fall back to the mutex free list.
    /// On success returns the CAS retries spent.
    pub(crate) fn try_push(&self, val: u64) -> Result<u64, u64> {
        let PopOutcome { idx, retries } = self.list_pop(&self.free);
        let Some(idx) = idx else {
            return Err(val);
        };
        self.nodes[idx as usize].val.store(val, Ordering::Relaxed);
        let push_retries = self.list_push(&self.head, idx);
        Ok(retries + push_retries)
    }

    /// Pops a slice word, returning `(value, cas_retries)`.
    pub(crate) fn try_pop(&self) -> (Option<u64>, u64) {
        let PopOutcome { idx, retries } = self.list_pop(&self.head);
        let Some(idx) = idx else {
            return (None, retries);
        };
        // The node is exclusively ours after winning the pop CAS; the
        // Acquire edge makes the pusher's val store visible.
        let val = self.nodes[idx as usize].val.load(Ordering::Relaxed);
        let free_retries = self.list_push(&self.free, idx);
        (Some(val), retries + free_retries)
    }

    /// Number of slices currently on the live stack. Exact only at a
    /// quiescent point (walks the intrusive list); bounded by capacity so
    /// a concurrent mutation can't loop it forever.
    #[cfg(test)]
    pub(crate) fn quiescent_len(&self) -> usize {
        let (_, mut idx) = unpack(self.head.load(Ordering::Acquire));
        let mut n = 0usize;
        while idx != NIL && n < self.nodes.len() {
            n += 1;
            idx = self.nodes[idx as usize].next.load(Ordering::Relaxed);
        }
        n
    }
}

/// The pool-facing rack: one lazily-built stack per size class — the
/// fine-grained ≤ 2 KiB tier plus the coarse oversized tier up to
/// [`LARGE_MAX_PADDED`].
pub(crate) struct ClassStacks {
    stacks: Box<[OnceLock<ClassStack>]>,
    /// Oversized tier: exact-size stacks for `(2 KiB, 32 KiB]` classes.
    large: Box<[OnceLock<ClassStack>]>,
    /// Bytes parked across all class stacks: free capacity off the free
    /// lists, counted on the free side by `stats()`/`audit()`. Updated
    /// once per (batched) push/pop call, not per CAS.
    held_bytes: AtomicU64,
}

#[inline]
fn class_index(padded: u32) -> usize {
    debug_assert!((GRANULARITY..=MAG_MAX_PADDED).contains(&padded));
    (padded / GRANULARITY) as usize - 1
}

#[inline]
fn large_index(padded: u32) -> usize {
    debug_assert!(padded > MAG_MAX_PADDED && padded <= LARGE_MAX_PADDED);
    debug_assert!(padded.is_multiple_of(LARGE_GRANULARITY));
    ((padded - MAG_MAX_PADDED) / LARGE_GRANULARITY) as usize - 1
}

/// `true` when `padded` belongs to a lock-free size class (either tier).
#[inline]
pub(crate) fn serves(padded: u32) -> bool {
    padded <= LARGE_MAX_PADDED
}

impl ClassStacks {
    pub(crate) fn new() -> Self {
        ClassStacks {
            stacks: (0..NUM_CLASSES)
                .map(|_| OnceLock::new())
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            large: (0..NUM_LARGE_CLASSES)
                .map(|_| OnceLock::new())
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            held_bytes: AtomicU64::new(0),
        }
    }

    #[inline]
    fn slot(&self, padded: u32) -> &OnceLock<ClassStack> {
        if padded <= MAG_MAX_PADDED {
            &self.stacks[class_index(padded)]
        } else {
            &self.large[large_index(padded)]
        }
    }

    #[inline]
    fn stack(&self, padded: u32) -> &ClassStack {
        let cap = if padded <= MAG_MAX_PADDED {
            STACK_CAP
        } else {
            LARGE_STACK_CAP
        };
        self.slot(padded).get_or_init(|| ClassStack::new(cap))
    }

    /// Bytes currently parked on the class stacks.
    #[inline]
    pub(crate) fn held_bytes(&self) -> u64 {
        self.held_bytes.load(Ordering::Relaxed)
    }

    /// Pushes one freed slice onto its class stack. `false` means the
    /// stack was full and the caller must take the mutex free list.
    pub(crate) fn try_push(&self, padded: u32, slice: CachedSlice, counters: &Counters) -> bool {
        match self.stack(padded).try_push(pack_slice(slice)) {
            Ok(retries) => {
                if retries > 0 {
                    counters.cas_retries.add(retries);
                }
                counters.class_stack_pushes.incr();
                self.held_bytes.fetch_add(padded as u64, Ordering::Relaxed);
                true
            }
            Err(_) => false,
        }
    }

    /// Pops up to `want` slices of class `padded` into `out`. Returns the
    /// number popped (0 when the class stack is empty).
    pub(crate) fn pop_batch(
        &self,
        padded: u32,
        want: usize,
        out: &mut Vec<CachedSlice>,
        counters: &Counters,
    ) -> usize {
        // Don't materialize a stack just to find it empty.
        let Some(stack) = self.slot(padded).get() else {
            return 0;
        };
        let mut got = 0usize;
        let mut retries = 0u64;
        while got < want {
            let (val, r) = stack.try_pop();
            retries += r;
            match val {
                Some(v) => {
                    out.push(unpack_slice(v));
                    got += 1;
                }
                None => break,
            }
        }
        if retries > 0 {
            counters.cas_retries.add(retries);
        }
        if got > 0 {
            counters.class_stack_pops.add(got as u64);
            self.held_bytes
                .fetch_sub(padded as u64 * got as u64, Ordering::Relaxed);
        }
        got
    }

    /// Drains every class stack, returning `(padded_len, slice)` pairs so
    /// the pool can coalesce them back into the mutex free lists. This is
    /// the class-stack rung of the flush-all ladder; safe to run
    /// concurrently with pushes (it pops until empty, not until a count).
    pub(crate) fn drain_all(&self, counters: &Counters) -> Vec<(u32, CachedSlice)> {
        let mut out = Vec::new();
        let small = self
            .stacks
            .iter()
            .enumerate()
            .map(|(idx, slot)| ((idx as u32 + 1) * GRANULARITY, slot));
        let large = self
            .large
            .iter()
            .enumerate()
            .map(|(idx, slot)| (MAG_MAX_PADDED + (idx as u32 + 1) * LARGE_GRANULARITY, slot));
        for (padded, slot) in small.chain(large) {
            let Some(stack) = slot.get() else { continue };
            let mut drained = 0u64;
            let mut retries = 0u64;
            loop {
                let (val, r) = stack.try_pop();
                retries += r;
                match val {
                    Some(v) => {
                        out.push((padded, unpack_slice(v)));
                        drained += 1;
                    }
                    None => break,
                }
            }
            if retries > 0 {
                counters.cas_retries.add(retries);
            }
            if drained > 0 {
                counters.class_stack_pops.add(drained);
                self.held_bytes
                    .fetch_sub(padded as u64 * drained, Ordering::Relaxed);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_is_lifo() {
        let s = ClassStack::new(8);
        assert_eq!(s.try_pop().0, None);
        s.try_push(10).unwrap();
        s.try_push(20).unwrap();
        s.try_push(30).unwrap();
        assert_eq!(s.quiescent_len(), 3);
        assert_eq!(s.try_pop().0, Some(30));
        assert_eq!(s.try_pop().0, Some(20));
        assert_eq!(s.try_pop().0, Some(10));
        assert_eq!(s.try_pop().0, None);
        assert_eq!(s.quiescent_len(), 0);
    }

    #[test]
    fn full_stack_rejects_push() {
        let s = ClassStack::new(2);
        s.try_push(1).unwrap();
        s.try_push(2).unwrap();
        assert_eq!(s.try_push(3), Err(3));
        // Popping frees a node; pushing works again.
        assert_eq!(s.try_pop().0, Some(2));
        s.try_push(4).unwrap();
        assert_eq!(s.try_pop().0, Some(4));
        assert_eq!(s.try_pop().0, Some(1));
    }

    #[test]
    fn nodes_recycle_without_value_mixups() {
        // Exercises the ABA-prone pattern sequentially: the same node gets
        // reused for many distinct values and each pop sees the matching
        // value, not a stale one.
        let s = ClassStack::new(1);
        for v in 0..10_000u64 {
            s.try_push(v).unwrap();
            assert_eq!(s.try_pop().0, Some(v));
        }
    }

    #[test]
    fn concurrent_push_pop_conserves_values() {
        // N producers push disjoint value ranges while N consumers pop;
        // afterwards every pushed value was popped exactly once. Run under
        // Miri (reduced iterations) and TSan in CI: the all-atomic node
        // design must hold up with no data races and no lost/duplicated
        // slices even under the ABA-heavy recycle pattern a small stack
        // forces.
        let iters: u64 = if cfg!(miri) { 40 } else { 5_000 };
        let threads = 4u64;
        let s = Arc::new(ClassStack::new(16));
        let popped = Arc::new(parking_lot::Mutex::new(Vec::<u64>::new()));
        let mut handles = Vec::new();
        for t in 0..threads {
            let s = Arc::clone(&s);
            let popped = Arc::clone(&popped);
            handles.push(std::thread::spawn(move || {
                let mut mine = Vec::new();
                for i in 0..iters {
                    let v = t * iters + i + 1;
                    // Alternate push/pop so the tiny stack churns nodes.
                    if s.try_push(v).is_err() {
                        mine.push(v); // full: "fell back to the mutex path"
                    }
                    if i % 2 == 1 {
                        if let (Some(got), _) = s.try_pop() {
                            mine.push(got);
                        }
                    }
                }
                popped.lock().extend(mine);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Drain the residue.
        let mut all = popped.lock().clone();
        while let (Some(v), _) = s.try_pop() {
            all.push(v);
        }
        all.sort_unstable();
        let expected: Vec<u64> = (1..=threads * iters).collect();
        assert_eq!(all, expected, "lost or duplicated values");
    }

    #[test]
    fn oversized_tier_recycles_and_accounts() {
        let counters = Counters::default();
        let rack = ClassStacks::new();
        // 2304 is the first oversized class, 32768 the last.
        assert!(rack.try_push(2304, (0, 0), &counters));
        assert!(rack.try_push(LARGE_MAX_PADDED, (1, 4096), &counters));
        assert_eq!(rack.held_bytes(), 2304 + LARGE_MAX_PADDED as u64);
        let mut out = Vec::new();
        assert_eq!(rack.pop_batch(2304, 4, &mut out, &counters), 1);
        assert_eq!(out, vec![(0, 0)]);
        assert_eq!(rack.held_bytes(), LARGE_MAX_PADDED as u64);
        let drained = rack.drain_all(&counters);
        assert_eq!(drained, vec![(LARGE_MAX_PADDED, (1, 4096))]);
        assert_eq!(rack.held_bytes(), 0);
        let snap = counters.snapshot(0, 0, Default::default(), 0, 0);
        assert_eq!(snap.class_stack_pushes, 2);
        assert_eq!(snap.class_stack_pops, 2);
    }

    #[test]
    fn rack_pops_what_it_pushed_and_accounts_bytes() {
        let counters = Counters::default();
        let rack = ClassStacks::new();
        assert!(rack.try_push(64, (3, 4096), &counters));
        assert!(rack.try_push(64, (3, 8192), &counters));
        assert!(rack.try_push(2048, (1, 0), &counters));
        assert_eq!(rack.held_bytes(), 64 + 64 + 2048);
        let mut out = Vec::new();
        assert_eq!(rack.pop_batch(64, 16, &mut out, &counters), 2);
        assert_eq!(out, vec![(3, 8192), (3, 4096)]);
        assert_eq!(rack.held_bytes(), 2048);
        // Unmaterialized class pops nothing and allocates nothing.
        assert_eq!(rack.pop_batch(72, 4, &mut out, &counters), 0);
        let drained = rack.drain_all(&counters);
        assert_eq!(drained, vec![(2048, (1, 0))]);
        assert_eq!(rack.held_bytes(), 0);
        let snap = counters.snapshot(0, 0, Default::default(), 0, 0);
        assert_eq!(snap.class_stack_pushes, 3);
        assert_eq!(snap.class_stack_pops, 3);
    }
}
