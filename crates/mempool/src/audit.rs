//! Off-heap memory auditor (feature `audit`).
//!
//! Oak manages its own off-heap memory, so classic allocator bugs —
//! double-free, freeing a reference that was never allocated, reading a
//! slice after it went back on the free list — do not crash the process:
//! they silently corrupt the free list or surface as torn reads much
//! later. The auditor is a pool-side ledger that catches these at the
//! `free`/`slice` boundary, plus an [`audit`](crate::MemoryPool::audit)
//! walk that proves `live_bytes + free_bytes == capacity` and attributes
//! every live byte to an allocation class.
//!
//! The ledger tracks every allocation by its packed address
//! `(block << 32) | offset` together with its padded length, allocation
//! class, and a monotonically increasing allocation sequence number (the
//! "generation" of that address). On `free`, the reference must match a
//! live ledger entry exactly; otherwise the free is *recorded as a
//! violation and skipped*, so the free list is never corrupted by a
//! buggy caller. On `slice`/`slice_mut`, the reference must fall inside a
//! live entry; otherwise a use-after-free is recorded (the access itself
//! stays memory-safe — arenas are never unmapped while the pool lives).
//!
//! Everything in this module is compiled only under the `audit` feature,
//! except [`AllocClass`], which call sites use unconditionally (tagging
//! is free when the feature is off).

/// What a pool allocation is used for. Callers tag allocations via
/// [`MemoryPool::allocate_tagged`](crate::MemoryPool::allocate_tagged) so
/// the auditor can attribute leaks to a slice class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AllocClass {
    /// An immutable key buffer owned by a chunk entry.
    Key,
    /// A value payload reached through a header's indirection word.
    ValuePayload,
    /// A 16-byte value header slot. Headers are retained (or recycled via
    /// the header free list) by design and are exempt from leak checks.
    Header,
    /// Anything else (untagged callers, tests).
    #[default]
    Other,
}

#[cfg(feature = "audit")]
pub use enabled::{AuditReport, AuditViolation, LiveAlloc, ViolationKind};

#[cfg(feature = "audit")]
pub(crate) use enabled::Ledger;

#[cfg(feature = "audit")]
mod enabled {
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicU64, Ordering};

    use parking_lot::Mutex;

    use super::AllocClass;
    use crate::refs::SliceRef;

    /// Packed ledger key for a slice address.
    #[inline]
    pub(crate) fn addr_key(r: SliceRef) -> u64 {
        ((r.block() as u64) << 32) | r.offset() as u64
    }

    /// A live allocation as tracked by the ledger.
    #[derive(Debug, Clone, Copy)]
    pub struct LiveAlloc {
        /// Granularity-padded length actually taken from the free list.
        pub padded_len: u32,
        /// The caller-declared slice class.
        pub class: AllocClass,
        /// Monotonic allocation sequence number (attribution of "which
        /// allocation leaked", stable across reuse of the same address).
        pub seq: u64,
    }

    /// The kind of lifecycle violation the auditor detected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum ViolationKind {
        /// `free` of an address that was live earlier but already freed.
        DoubleFree,
        /// `free` of an address/length the pool never handed out (or a
        /// length mismatching the live allocation at that address).
        ForeignFree,
        /// `slice`/`slice_mut` of bytes not covered by a live allocation.
        UseAfterFree,
    }

    /// One recorded lifecycle violation.
    #[derive(Debug, Clone, Copy)]
    pub struct AuditViolation {
        /// What went wrong.
        pub kind: ViolationKind,
        /// The offending reference.
        pub r: SliceRef,
        /// Class of the previous allocation at this address, if known.
        pub class: Option<AllocClass>,
    }

    /// Result of a full pool audit: per-class live accounting cross-checked
    /// against the free lists, plus every violation recorded so far.
    #[derive(Debug, Clone)]
    pub struct AuditReport {
        /// Bytes live according to the ledger (padded).
        pub live_bytes: u64,
        /// Bytes free according to the free lists.
        pub free_bytes: u64,
        /// Total managed capacity (arenas × arena size).
        pub capacity_bytes: u64,
        /// Whether `live_bytes + free_bytes == capacity_bytes`.
        pub balanced: bool,
        /// Live bytes attributed to each allocation class.
        pub live_by_class: Vec<(AllocClass, u64)>,
        /// All lifecycle violations recorded since pool creation.
        pub violations: Vec<AuditViolation>,
    }

    impl AuditReport {
        /// Live bytes of one class (0 if the class has no live bytes).
        pub fn class_bytes(&self, class: AllocClass) -> u64 {
            self.live_by_class
                .iter()
                .find(|(c, _)| *c == class)
                .map_or(0, |(_, b)| *b)
        }
    }

    #[derive(Default)]
    struct LedgerInner {
        /// Live allocations by packed address.
        live: HashMap<u64, LiveAlloc>,
        /// Most recent freed allocation per address, evicted when the
        /// address is handed out again. Distinguishes double-free from
        /// foreign-free.
        freed: HashMap<u64, LiveAlloc>,
        violations: Vec<AuditViolation>,
    }

    /// Pool-side allocation ledger (one per [`MemoryPool`](crate::MemoryPool)).
    #[derive(Default)]
    pub(crate) struct Ledger {
        inner: Mutex<LedgerInner>,
        next_seq: AtomicU64,
        double_frees: AtomicU64,
        foreign_frees: AtomicU64,
        use_after_frees: AtomicU64,
    }

    impl Ledger {
        pub(crate) fn record_alloc(&self, r: SliceRef, padded_len: u32, class: AllocClass) {
            let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
            let mut inner = self.inner.lock();
            let key = addr_key(r);
            inner.freed.remove(&key);
            let prev = inner.live.insert(
                key,
                LiveAlloc {
                    padded_len,
                    class,
                    seq,
                },
            );
            debug_assert!(
                prev.is_none(),
                "allocator handed out an address twice without an intervening free"
            );
        }

        /// Validates a `free`. Returns `true` when the caller may proceed
        /// with the actual free-list insertion; on violation the free is
        /// recorded and must be skipped (keeping the free list intact).
        pub(crate) fn check_free(&self, r: SliceRef, padded_len: u32) -> bool {
            let mut inner = self.inner.lock();
            let key = addr_key(r);
            match inner.live.get(&key).copied() {
                Some(entry) if entry.padded_len == padded_len => {
                    inner.live.remove(&key);
                    inner.freed.insert(key, entry);
                    true
                }
                Some(entry) => {
                    // Live address, wrong length: the caller is freeing
                    // with a reference it did not get from `allocate`.
                    self.foreign_frees.fetch_add(1, Ordering::Relaxed);
                    inner.violations.push(AuditViolation {
                        kind: ViolationKind::ForeignFree,
                        r,
                        class: Some(entry.class),
                    });
                    false
                }
                None => {
                    let (kind, class) = match inner.freed.get(&key) {
                        Some(prev) => (ViolationKind::DoubleFree, Some(prev.class)),
                        None => (ViolationKind::ForeignFree, None),
                    };
                    match kind {
                        ViolationKind::DoubleFree => {
                            self.double_frees.fetch_add(1, Ordering::Relaxed)
                        }
                        _ => self.foreign_frees.fetch_add(1, Ordering::Relaxed),
                    };
                    inner.violations.push(AuditViolation { kind, r, class });
                    false
                }
            }
        }

        /// Validates a `slice`/`slice_mut` access: the referenced bytes
        /// must lie inside a live allocation starting at the same address.
        pub(crate) fn check_access(&self, r: SliceRef, padded_len: u32) {
            let mut inner = self.inner.lock();
            let key = addr_key(r);
            let ok = matches!(inner.live.get(&key), Some(e) if padded_len <= e.padded_len);
            if !ok {
                let class = inner.freed.get(&key).map(|e| e.class);
                self.use_after_frees.fetch_add(1, Ordering::Relaxed);
                inner.violations.push(AuditViolation {
                    kind: ViolationKind::UseAfterFree,
                    r,
                    class,
                });
            }
        }

        pub(crate) fn live_allocations(&self) -> Vec<(SliceRef, LiveAlloc)> {
            let inner = self.inner.lock();
            inner
                .live
                .iter()
                .map(|(&key, &alloc)| {
                    let r = SliceRef::new(
                        (key >> 32) as usize,
                        key as u32,
                        // Reconstruct with the padded length; callers only
                        // need the address and class.
                        alloc.padded_len,
                    );
                    (r, alloc)
                })
                .collect()
        }

        pub(crate) fn violations(&self) -> Vec<AuditViolation> {
            self.inner.lock().violations.clone()
        }

        pub(crate) fn violation_count(&self) -> u64 {
            self.double_frees.load(Ordering::Relaxed)
                + self.foreign_frees.load(Ordering::Relaxed)
                + self.use_after_frees.load(Ordering::Relaxed)
        }

        /// Ledger-side live byte total and per-class breakdown.
        pub(crate) fn live_summary(&self) -> (u64, Vec<(AllocClass, u64)>) {
            let inner = self.inner.lock();
            let mut total = 0u64;
            let mut by_class: HashMap<AllocClass, u64> = HashMap::new();
            for alloc in inner.live.values() {
                total += alloc.padded_len as u64;
                *by_class.entry(alloc.class).or_default() += alloc.padded_len as u64;
            }
            let mut by_class: Vec<_> = by_class.into_iter().collect();
            by_class.sort_by_key(|(c, _)| format!("{c:?}"));
            (total, by_class)
        }
    }
}
