//! Packed 64-bit references into the pool.
//!
//! Oak's memory manager returns references "consisting of an arena id, an
//! offset, and a length" (§3.2). We pack all three into a single `u64` so a
//! chunk entry's value reference is one `AtomicU64` and the CAS steps of
//! Algorithms 2 and 3 are single hardware CAS instructions.
//!
//! Layout (most significant to least significant):
//!
//! ```text
//! | block+1 : 12 bits | offset : 32 bits | len : 20 bits |
//! ```
//!
//! The block field stores `block_index + 1` so that the all-zero word is
//! never a valid reference; `0` therefore encodes ⊥ (null).

/// Number of bits used for the block (arena) index.
pub const BLOCK_BITS: u32 = 12;
/// Number of bits used for the byte offset within an arena.
pub const OFFSET_BITS: u32 = 32;
/// Number of bits used for the slice length.
pub const LEN_BITS: u32 = 20;

/// Maximum number of arenas a pool can hold (`block+1` must fit in 12 bits).
pub const MAX_BLOCKS: usize = (1 << BLOCK_BITS) - 1;
/// Maximum arena size in bytes (offsets must fit in 32 bits).
pub const MAX_ARENA_SIZE: usize = u32::MAX as usize;
/// Maximum length of a single allocation in bytes.
pub const MAX_SLICE_LEN: usize = (1 << LEN_BITS) - 1;

/// A packed reference to a byte slice inside a [`MemoryPool`](crate::MemoryPool).
///
/// `SliceRef` is `Copy`, 8 bytes, and convertible to/from a raw `u64` for
/// storage in atomics. The zero word is the null reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SliceRef(u64);

impl SliceRef {
    /// The null reference (⊥ in the paper's pseudocode).
    pub const NULL: SliceRef = SliceRef(0);

    /// Packs `(block, offset, len)` into a reference.
    ///
    /// # Panics
    /// Panics if any component exceeds its field width; the pool validates
    /// sizes before calling this.
    #[inline]
    pub fn new(block: usize, offset: u32, len: u32) -> Self {
        assert!(block < MAX_BLOCKS, "block index {block} out of range");
        assert!((len as usize) <= MAX_SLICE_LEN, "len {len} out of range");
        let packed = ((block as u64 + 1) << (OFFSET_BITS + LEN_BITS))
            | ((offset as u64) << LEN_BITS)
            | len as u64;
        SliceRef(packed)
    }

    /// Returns `true` if this is the null reference.
    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }

    /// The arena (block) index.
    #[inline]
    pub fn block(self) -> usize {
        debug_assert!(!self.is_null());
        ((self.0 >> (OFFSET_BITS + LEN_BITS)) - 1) as usize
    }

    /// The byte offset within the arena.
    #[inline]
    pub fn offset(self) -> u32 {
        ((self.0 >> LEN_BITS) & ((1 << OFFSET_BITS) - 1)) as u32
    }

    /// The slice length in bytes.
    #[inline]
    pub fn len(self) -> u32 {
        (self.0 & ((1 << LEN_BITS) - 1)) as u32
    }

    /// Returns `true` for zero-length slices (only the null ref in practice).
    #[inline]
    pub fn is_empty(self) -> bool {
        self.len() == 0
    }

    /// The raw packed word, suitable for storage in an `AtomicU64`.
    #[inline]
    pub fn to_raw(self) -> u64 {
        self.0
    }

    /// Reconstructs a reference from a raw packed word.
    #[inline]
    pub fn from_raw(raw: u64) -> Self {
        SliceRef(raw)
    }
}

impl Default for SliceRef {
    fn default() -> Self {
        SliceRef::NULL
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_is_zero() {
        assert!(SliceRef::NULL.is_null());
        assert_eq!(SliceRef::NULL.to_raw(), 0);
        assert_eq!(SliceRef::from_raw(0), SliceRef::NULL);
    }

    #[test]
    fn round_trip_fields() {
        let r = SliceRef::new(7, 123_456, 999);
        assert!(!r.is_null());
        assert_eq!(r.block(), 7);
        assert_eq!(r.offset(), 123_456);
        assert_eq!(r.len(), 999);
        let raw = r.to_raw();
        assert_eq!(SliceRef::from_raw(raw), r);
    }

    #[test]
    fn block_zero_offset_zero_is_not_null() {
        // The +1 bias guarantees (0, 0, len) packs to a non-zero word.
        let r = SliceRef::new(0, 0, 1);
        assert!(!r.is_null());
        assert_eq!(r.block(), 0);
        assert_eq!(r.offset(), 0);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn extremes_round_trip() {
        let r = SliceRef::new(MAX_BLOCKS - 1, u32::MAX, MAX_SLICE_LEN as u32);
        assert_eq!(r.block(), MAX_BLOCKS - 1);
        assert_eq!(r.offset(), u32::MAX);
        assert_eq!(r.len() as usize, MAX_SLICE_LEN);
    }

    #[test]
    #[should_panic]
    fn oversized_block_panics() {
        let _ = SliceRef::new(MAX_BLOCKS, 0, 1);
    }

    #[test]
    #[should_panic]
    fn oversized_len_panics() {
        let _ = SliceRef::new(0, 0, MAX_SLICE_LEN as u32 + 1);
    }
}
