//! Multi-arena memory pool.
//!
//! The pool owns a set of fixed-size [`Arena`]s, each carved up by its own
//! first-fit [`FreeList`]. Allocation tries existing arenas in order and
//! lazily reserves a new arena when all are full, up to a configurable
//! budget — the Rust rendering of the paper's "shared pool of large (100 MB
//! by default) pre-allocated off-heap arenas" (§3.2).
//!
//! Arena slots are pre-sized and initialized at most once, so the read path
//! (`slice`, `atomic_*`) indexes into arenas without taking any lock.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

use parking_lot::Mutex;

use crate::arena::Arena;
use crate::audit::AllocClass;
use crate::backing::ArenaBacking;
use crate::classstack::{self, ClassStacks};
use crate::error::AllocError;
use crate::freelist::{round_up, FreeList};
use crate::magazine::{thread_slot, CachedSlice, MagazineRack, MAG_MAX_PADDED, REFILL_BATCH};
use crate::refs::{SliceRef, MAX_BLOCKS, MAX_SLICE_LEN};
use crate::shared::ArenaPool;
use crate::stats::{Counters, FreeListStats, PoolStats};

/// Deals each new pool onto a reservoir lane round-robin, so the shards of
/// a sharded map (constructed back to back) land on distinct lanes.
static NEXT_POOL_LANE: AtomicUsize = AtomicUsize::new(0);

/// Configuration for a [`MemoryPool`].
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Size of each arena in bytes. The paper's default is 100 MB; tests and
    /// scaled-down benchmarks use much smaller arenas.
    pub arena_size: usize,
    /// Maximum number of arenas the pool may reserve. Reaching this budget
    /// makes further allocations fail with [`AllocError::PoolExhausted`].
    pub max_arenas: usize,
    /// Route small allocations (≤ 2 KiB padded) through thread-affine
    /// allocation magazines that batch-refill from and batch-flush to the
    /// per-arena free lists, taking the free-list lock once per batch
    /// instead of once per operation. Off by default so the direct path's
    /// deterministic first-fit behaviour is preserved for tests; the
    /// benchmarks enable it.
    pub magazines: bool,
    /// Recycle freed slices through lock-free per-class CAS stacks: frees
    /// push and refills pop without taking any mutex, leaving the
    /// free-list locks to cold carves of fresh space. Small classes
    /// (≤ 2 KiB padded) feed the magazine layer in batches; larger classes
    /// up to [the oversized cutoff](crate::LARGE_MAX_PADDED) recycle
    /// through their own exact-size stacks. Off by default for the same
    /// deterministic-first-fit reason as `magazines`; the benchmarks
    /// enable both.
    pub lockfree: bool,
    /// Where arenas live: anonymous heap memory (the default) or
    /// file-backed mmap regions that are demand-paged and survive the
    /// process (see [`ArenaBacking`]).
    pub backing: ArenaBacking,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            arena_size: 100 << 20, // 100 MB, as in the paper
            max_arenas: 256,
            magazines: false,
            lockfree: false,
            backing: ArenaBacking::Anon,
        }
    }
}

impl PoolConfig {
    /// A small configuration convenient for unit tests.
    pub fn small() -> Self {
        PoolConfig {
            arena_size: 1 << 20, // 1 MB
            max_arenas: 64,
            ..PoolConfig::default()
        }
    }

    /// Configuration with an explicit total RAM budget in bytes.
    pub fn with_budget(arena_size: usize, budget_bytes: usize) -> Self {
        PoolConfig {
            arena_size,
            max_arenas: (budget_bytes / arena_size).max(1),
            ..PoolConfig::default()
        }
    }

    /// Enables or disables the magazine layer.
    #[must_use]
    pub fn magazines(mut self, on: bool) -> Self {
        self.magazines = on;
        self
    }

    /// Enables or disables the lock-free class-stack layer.
    #[must_use]
    pub fn lockfree(mut self, on: bool) -> Self {
        self.lockfree = on;
        self
    }

    /// Sets the arena backing.
    #[must_use]
    pub fn backing(mut self, backing: ArenaBacking) -> Self {
        self.backing = backing;
        self
    }

    /// Convenience: file-backed arenas rooted at `dir`.
    #[must_use]
    pub fn file_backed(self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.backing(ArenaBacking::file(dir))
    }
}

struct Block {
    arena: Arena,
    free: Mutex<FreeList>,
}

/// A multi-arena, thread-safe memory pool with packed-reference addressing.
pub struct MemoryPool {
    config: PoolConfig,
    blocks: Box<[OnceLock<Block>]>,
    /// Number of *claimed* block slots. Slots `[0, nblocks)` are either
    /// initialized or mid-publish by a growing thread (their `OnceLock` is
    /// still empty for the few instructions between the claim CAS and the
    /// `set`); readers skip pending slots, and no `SliceRef` can point at
    /// one because references are only handed out after initialization.
    nblocks: AtomicUsize,
    counters: Counters,
    /// When set, arenas come from (and return to) a shared reservoir
    /// instead of the system allocator (§3.2).
    shared: Option<std::sync::Arc<ArenaPool>>,
    /// This pool's reservoir lane. Pools (e.g. the shards of a sharded
    /// map) are dealt onto distinct lanes at construction so their
    /// steady-state arena traffic never contends on one Treiber head.
    lane: usize,
    /// Thread-affine allocation magazines (`config.magazines`).
    rack: Option<MagazineRack>,
    /// Lock-free per-class slice stacks (`config.lockfree`).
    stacks: Option<ClassStacks>,
    /// Allocation ledger for lifecycle auditing (feature `audit`).
    #[cfg(feature = "audit")]
    ledger: crate::audit::Ledger,
}

impl MemoryPool {
    /// Creates an empty pool; the first arena is reserved on first use.
    pub fn new(config: PoolConfig) -> Self {
        assert!(config.arena_size >= 64, "arena too small");
        assert!(
            config.arena_size.is_multiple_of(8),
            "arena size must be 8-byte aligned"
        );
        assert!(
            config.arena_size <= u32::MAX as usize,
            "arena size must fit 32-bit offsets"
        );
        let max_arenas = config.max_arenas.min(MAX_BLOCKS);
        let blocks = (0..max_arenas)
            .map(|_| OnceLock::new())
            .collect::<Vec<_>>()
            .into_boxed_slice();
        let rack = config.magazines.then(MagazineRack::new);
        let stacks = config.lockfree.then(ClassStacks::new);
        MemoryPool {
            config: PoolConfig {
                max_arenas,
                ..config
            },
            blocks,
            nblocks: AtomicUsize::new(0),
            counters: Counters::default(),
            shared: None,
            lane: NEXT_POOL_LANE.fetch_add(1, Ordering::Relaxed) % crate::shared::RESERVOIR_LANES,
            rack,
            stacks,
            #[cfg(feature = "audit")]
            ledger: crate::audit::Ledger::default(),
        }
    }

    /// Creates a pool with the default (paper) configuration.
    pub fn with_defaults() -> Self {
        Self::new(PoolConfig::default())
    }

    /// Creates a pool that draws its arenas from a shared pre-allocated
    /// reservoir and returns them when dropped — the paper's multi-instance
    /// arena pool (§3.2). `max_arenas` still caps this instance's own
    /// growth.
    pub fn with_shared(max_arenas: usize, shared: std::sync::Arc<ArenaPool>) -> Self {
        let mut pool = Self::new(PoolConfig {
            arena_size: shared.arena_size(),
            max_arenas,
            ..PoolConfig::default()
        });
        pool.shared = Some(shared);
        pool
    }

    /// The shared reservoir this pool draws from, if any.
    pub fn shared_pool(&self) -> Option<&std::sync::Arc<ArenaPool>> {
        self.shared.as_ref()
    }

    /// The pool configuration.
    pub fn config(&self) -> &PoolConfig {
        &self.config
    }

    /// Allocates `len` bytes and returns a packed reference.
    ///
    /// The referenced bytes are zero-initialized on first use of the arena
    /// but may contain stale data from previously freed slices; callers
    /// always overwrite before publishing.
    pub fn allocate(&self, len: usize) -> Result<SliceRef, AllocError> {
        self.allocate_tagged(len, AllocClass::Other)
    }

    /// Like [`allocate`](Self::allocate), but declares what the slice will
    /// hold so the auditor (feature `audit`) can attribute live bytes and
    /// leaks to a slice class. Without the feature the tag is free.
    pub fn allocate_tagged(&self, len: usize, class: AllocClass) -> Result<SliceRef, AllocError> {
        let result = self.allocate_inner(len);
        match &result {
            Ok(r) => {
                #[cfg(feature = "audit")]
                self.ledger.record_alloc(*r, round_up(r.len()), class);
                #[cfg(not(feature = "audit"))]
                let _ = (r, class);
                // `peak_live_bytes` is maintained at snapshot time: the
                // byte counters are thread-striped, so summing them here on
                // every allocation would reintroduce the shared-line walk
                // striping removed.
            }
            Err(_) => {
                self.counters.failed_allocs.fetch_add(1, Ordering::Relaxed);
            }
        }
        result
    }

    fn allocate_inner(&self, len: usize) -> Result<SliceRef, AllocError> {
        if len == 0 {
            return Err(AllocError::ZeroSized);
        }
        if len > MAX_SLICE_LEN || len > self.config.arena_size {
            return Err(AllocError::TooLarge {
                requested: len,
                max: MAX_SLICE_LEN.min(self.config.arena_size),
            });
        }
        oak_failpoints::fail_point!("pool/alloc", Err(AllocError::Injected));
        let padded = round_up(len as u32);
        if padded as usize > self.config.arena_size {
            // Coarse oversized rounding can push a near-arena-size request
            // past the arena; no free list could ever satisfy it.
            return Err(AllocError::TooLarge {
                requested: len,
                max: MAX_SLICE_LEN.min(self.config.arena_size),
            });
        }

        if padded <= MAG_MAX_PADDED {
            if let Some(rack) = &self.rack {
                // Magazine fast path: one uncontended slot lock, no
                // free-list traffic.
                if let Some((block, offset)) = rack.try_pop(padded) {
                    self.counters.magazine_hits.incr();
                    self.note_allocated(padded);
                    return Ok(SliceRef::new(block as usize, offset, len as u32));
                }
            }
            // Magazine miss (or magazines off): refill from the lock-free
            // class stack before touching any free-list mutex. With a rack
            // present the whole refill batch comes off the stack in one
            // pass — the first slice serves this allocation, the rest are
            // banked — so recycled slices circulate entirely mutex-free.
            let batch = if self.rack.is_some() { REFILL_BATCH } else { 1 };
            if let Some(stacks) = &self.stacks {
                let mut got: Vec<CachedSlice> = Vec::with_capacity(batch);
                if stacks.pop_batch(padded, batch, &mut got, &self.counters) > 0 {
                    self.counters.lockfree_refills.incr();
                    let (block, offset) = got[0];
                    if got.len() > 1 {
                        let rack = self.rack.as_ref().expect("batch > 1 implies rack");
                        rack.bank(padded, &got[1..]);
                        self.counters.magazine_refills.incr();
                    }
                    self.note_allocated(padded);
                    return Ok(SliceRef::new(block as usize, offset, len as u32));
                }
            }
            return self.allocate_from_arenas(len as u32, padded, batch);
        }
        // Oversized classes (≤ 32 KiB padded) recycle through their own
        // exact-size lock-free stacks; no magazine batching, so a hit
        // serves exactly this allocation.
        if classstack::serves(padded) {
            if let Some(stacks) = &self.stacks {
                let mut got: Vec<CachedSlice> = Vec::with_capacity(1);
                if stacks.pop_batch(padded, 1, &mut got, &self.counters) > 0 {
                    self.counters.lockfree_refills.incr();
                    let (block, offset) = got[0];
                    self.note_allocated(padded);
                    return Ok(SliceRef::new(block as usize, offset, len as u32));
                }
            }
        }
        self.allocate_from_arenas(len as u32, padded, 1)
    }

    /// Slow path: probe arena free lists for `batch` slices of `padded`
    /// bytes, growing the pool when every initialized arena is full. With
    /// `batch > 1` (magazines enabled) the surplus slices are banked into
    /// the calling thread's magazine and probing starts at a slot-affine
    /// arena so concurrent refills spread over different free-list locks.
    /// On exhaustion, parked magazine and class-stack slices are flushed
    /// back to the free lists and the probe retried once before reporting
    /// `PoolExhausted`.
    ///
    /// Growth is de-amortized: the expensive part (obtaining and zeroing
    /// an arena) runs with no lock held and the new block is published
    /// with one claim CAS on `nblocks` followed by the slot `set` — no
    /// allocating thread ever queues behind another thread's arena
    /// initialization on a mutex. A thread that loses the claim race
    /// returns its arena and re-probes; a thread that finds a
    /// claimed-but-pending slot yields until the (fully free) arena
    /// appears rather than reserving yet another one.
    fn allocate_from_arenas(
        &self,
        len: u32,
        padded: u32,
        batch: usize,
    ) -> Result<SliceRef, AllocError> {
        let start = if batch > 1 { thread_slot() } else { 0 };
        let mut flushed = false;
        loop {
            let n = self.nblocks.load(Ordering::Acquire);
            let mut pending = false;
            for j in 0..n {
                let i = (start + j) % n;
                let Some(block) = self.blocks[i].get() else {
                    // Claimed slot still mid-publish by a growing thread.
                    pending = true;
                    continue;
                };
                let mut grabbed: Vec<u32> = Vec::new();
                {
                    let mut free = block.free.lock();
                    self.counters.freelist_lock_acquires.incr();
                    while grabbed.len() < batch {
                        match free.allocate(padded) {
                            Some(offset) => grabbed.push(offset),
                            None => break,
                        }
                    }
                }
                if let Some((&first, rest)) = grabbed.split_first() {
                    if !rest.is_empty() {
                        let rack = self.rack.as_ref().expect("batch > 1 implies rack");
                        let banked: Vec<CachedSlice> =
                            rest.iter().map(|&off| (i as u32, off)).collect();
                        rack.bank(padded, &banked);
                        self.counters.magazine_refills.incr();
                    }
                    self.note_allocated(padded);
                    return Ok(SliceRef::new(i, first, len));
                }
            }
            if pending {
                // Another thread is publishing a fresh, fully free arena;
                // waiting for its short `set` beats claiming another slot.
                std::thread::yield_now();
                continue;
            }
            // All initialized arenas are full: reserve another one.
            if n < self.config.max_arenas {
                oak_failpoints::fail_point!("pool/grow", Err(AllocError::Injected));
                let arena = match &self.shared {
                    Some(reservoir) => {
                        let out = reservoir.take(self.lane);
                        self.counters
                            .reservoir_cas_retries
                            .fetch_add(out.cas_retries, Ordering::Relaxed);
                        self.counters
                            .reservoir_steals
                            .fetch_add(out.steals, Ordering::Relaxed);
                        if out.arena.is_some() {
                            self.counters
                                .reservoir_takes
                                .fetch_add(1, Ordering::Relaxed);
                        }
                        out.arena
                    }
                    // Slot `n` names the backing file; a claim-race loser
                    // mapped the same file, which is benign — its mapping
                    // is simply unmapped again and the file is reused by
                    // the next growth into that slot.
                    None => Some(
                        self.config
                            .backing
                            .create_arena(n, self.config.arena_size)?,
                    ),
                };
                if let Some(arena) = arena {
                    match self.nblocks.compare_exchange(
                        n,
                        n + 1,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    ) {
                        Ok(_) => {
                            let block = Block {
                                arena,
                                free: Mutex::new(FreeList::new(self.config.arena_size as u32)),
                            };
                            if let Err(block) = self.blocks[n].set(block) {
                                // Unreachable: the claim CAS makes each
                                // slot index a unique winner. If the
                                // invariant is ever broken, fail this one
                                // allocation without leaking the arena.
                                if let Some(reservoir) = &self.shared {
                                    let r = reservoir.give_back(self.lane, block.arena);
                                    self.note_reservoir_return(r);
                                }
                                return Err(AllocError::Internal("arena slot double-initialized"));
                            }
                            continue;
                        }
                        Err(_) => {
                            // Lost the claim race: another thread is
                            // publishing a fresh arena. Return ours and
                            // re-probe.
                            match &self.shared {
                                Some(reservoir) => {
                                    let r = reservoir.give_back(self.lane, arena);
                                    self.note_reservoir_return(r);
                                }
                                None => drop(arena),
                            }
                            continue;
                        }
                    }
                }
                // Shared reservoir empty: fall through to the flush rung
                // below before giving up.
            }
            // Cannot grow. Before declaring exhaustion, return any slices
            // parked in magazines or on the class stacks to the free lists
            // (they are free memory this request's size class may be
            // starving for) and retry.
            if !flushed {
                flushed = true;
                if self.flush_magazines() > 0 {
                    continue;
                }
            }
            return Err(AllocError::PoolExhausted);
        }
    }

    #[inline]
    fn note_allocated(&self, padded: u32) {
        self.counters.allocated_bytes.add(padded as u64);
        self.counters.alloc_count.incr();
    }

    #[inline]
    fn note_reservoir_return(&self, cas_retries: u64) {
        self.counters
            .reservoir_returns
            .fetch_add(1, Ordering::Relaxed);
        self.counters
            .reservoir_cas_retries
            .fetch_add(cas_retries, Ordering::Relaxed);
    }

    /// Returns magazine-held and class-stack-held slices to their arena
    /// free lists, grouping by arena so each free list is locked once.
    /// Returns the bytes released.
    ///
    /// This is the "flush all" rung of the emergency-reclamation ladder:
    /// allocation paths call it on exhaustion, and map-level
    /// `recover_or_err` calls it before surfacing `OutOfMemory`. Draining
    /// the CAS stacks here matters for more than starved size classes —
    /// stack-parked slices are invisible to the coalescing free lists, so
    /// only a flush can merge them back into the large contiguous runs an
    /// oversized allocation needs.
    pub fn flush_magazines(&self) -> u64 {
        let mut drained = match &self.rack {
            Some(rack) => rack.drain_all(),
            None => Vec::new(),
        };
        if !drained.is_empty() {
            self.counters.magazine_flushes.incr();
        }
        if let Some(stacks) = &self.stacks {
            drained.extend(stacks.drain_all(&self.counters));
        }
        if drained.is_empty() {
            return 0;
        }
        let mut released = 0u64;
        let mut by_block: std::collections::HashMap<u32, Vec<(u32, u32)>> =
            std::collections::HashMap::new();
        for (padded, (block, offset)) in drained {
            released += padded as u64;
            by_block.entry(block).or_default().push((offset, padded));
        }
        for (block_idx, slices) in by_block {
            let block = self.block(block_idx as usize);
            let mut free = block.free.lock();
            self.counters.freelist_lock_acquires.incr();
            for (offset, padded) in slices {
                free.free(offset, padded);
            }
        }
        released
    }

    /// Returns overflow slices trimmed from a magazine. Eligible classes
    /// go onto the lock-free class stack; only stack-overflow residue (or
    /// a pool without the lock-free layer) touches the free-list mutex.
    fn return_surplus(&self, padded: u32, surplus: Vec<CachedSlice>) {
        self.counters.magazine_flushes.incr();
        let overflow: Vec<CachedSlice> = match &self.stacks {
            Some(stacks) => surplus
                .into_iter()
                .filter(|&slice| !stacks.try_push(padded, slice, &self.counters))
                .collect(),
            None => surplus,
        };
        if overflow.is_empty() {
            return;
        }
        let mut by_block: std::collections::HashMap<u32, Vec<u32>> =
            std::collections::HashMap::new();
        for (block, offset) in overflow {
            by_block.entry(block).or_default().push(offset);
        }
        for (block_idx, offsets) in by_block {
            let block = self.block(block_idx as usize);
            let mut free = block.free.lock();
            self.counters.freelist_lock_acquires.incr();
            for offset in offsets {
                free.free(offset, padded);
            }
        }
    }

    /// Returns a slice to the free list.
    ///
    /// # Safety-adjacent contract
    /// The caller must guarantee `r` came from [`allocate`](Self::allocate)
    /// on this pool, is freed at most once, and that no live view of the
    /// bytes remains (enforced upstream by header locks / epoch deferral).
    ///
    /// Under the `audit` feature the contract is *checked*: a double free
    /// or a free of a reference this pool never handed out is recorded as
    /// a violation and skipped instead of corrupting the free list.
    pub fn free(&self, r: SliceRef) {
        assert!(!r.is_null(), "freeing the null reference");
        oak_failpoints::fail_point!("pool/free");
        let padded = round_up(r.len());
        #[cfg(feature = "audit")]
        if !self.ledger.check_free(r, padded) {
            return;
        }
        self.counters.freed_bytes.add(padded as u64);
        self.counters.free_count.incr();
        if padded <= MAG_MAX_PADDED {
            if let Some(rack) = &self.rack {
                // Park the slice in this thread's magazine instead of
                // taking the free-list lock; overflow trims cascade to the
                // class stacks (then, only on stack overflow, to the free
                // lists in one batch per arena).
                if let Some(surplus) = rack.push(padded, (r.block() as u32, r.offset())) {
                    self.return_surplus(padded, surplus);
                }
                return;
            }
            if let Some(stacks) = &self.stacks {
                // No magazines: the CAS stack is the fast free path for
                // eligible classes; a full stack falls back to the mutex.
                if stacks.try_push(padded, (r.block() as u32, r.offset()), &self.counters) {
                    return;
                }
            }
        } else if classstack::serves(padded) {
            // Oversized (≤ 32 KiB padded) classes skip the magazines but
            // still recycle lock-free through their exact-size stacks.
            if let Some(stacks) = &self.stacks {
                if stacks.try_push(padded, (r.block() as u32, r.offset()), &self.counters) {
                    return;
                }
            }
        }
        // Beyond the lock-free cutoff, or every lock-free layer declined:
        // the mutex free list is the cold fallback.
        let block = self.block(r.block());
        block.free.lock().free(r.offset(), padded);
        self.counters.freelist_lock_acquires.incr();
    }

    #[inline]
    fn block(&self, idx: usize) -> &Block {
        assert!(
            idx < self.nblocks.load(Ordering::Acquire),
            "block index {idx} out of range"
        );
        // A `SliceRef` is only handed out after its block's `set`, so a
        // pending (claimed, mid-publish) slot can never be dereferenced.
        self.blocks[idx].get().expect("initialized block")
    }

    /// Shared view of the referenced bytes.
    ///
    /// # Safety
    /// No thread may write this byte range while the returned slice is live
    /// (immutable key bytes, or value bytes under the header read lock).
    #[inline]
    pub unsafe fn slice(&self, r: SliceRef) -> &[u8] {
        #[cfg(feature = "audit")]
        self.ledger.check_access(r, round_up(r.len()));
        self.block(r.block()).arena.slice(r.offset(), r.len())
    }

    /// Exclusive view of the referenced bytes.
    ///
    /// # Safety
    /// The caller must have exclusive access to the byte range (value-header
    /// write lock, or a freshly allocated unpublished slice).
    #[allow(clippy::mut_from_ref)]
    #[inline]
    pub unsafe fn slice_mut(&self, r: SliceRef) -> &mut [u8] {
        #[cfg(feature = "audit")]
        self.ledger.check_access(r, round_up(r.len()));
        self.block(r.block()).arena.slice_mut(r.offset(), r.len())
    }

    /// Writes `data` into a freshly allocated, not-yet-published slice.
    ///
    /// # Safety
    /// `r` must be freshly allocated from this pool and not yet shared with
    /// any other thread.
    pub unsafe fn write_initial(&self, r: SliceRef, data: &[u8]) {
        debug_assert_eq!(r.len() as usize, data.len());
        self.slice_mut(r).copy_from_slice(data);
    }

    /// An `AtomicU32` embedded at offset `delta` inside slice `r`.
    ///
    /// # Safety
    /// See [`Arena::atomic_u32`]; the word must lie inside slice `r`.
    #[inline]
    pub unsafe fn atomic_u32_at(&self, r: SliceRef, delta: u32) -> &std::sync::atomic::AtomicU32 {
        debug_assert!(delta + 4 <= round_up(r.len()));
        self.block(r.block()).arena.atomic_u32(r.offset() + delta)
    }

    /// An `AtomicU64` embedded at offset `delta` inside slice `r`.
    ///
    /// # Safety
    /// See [`Arena::atomic_u64`]; the word must lie inside slice `r`.
    #[inline]
    pub unsafe fn atomic_u64_at(&self, r: SliceRef, delta: u32) -> &AtomicU64 {
        debug_assert!(delta + 8 <= round_up(r.len()));
        self.block(r.block()).arena.atomic_u64(r.offset() + delta)
    }

    /// The current virtual address of `r`'s first byte. Address
    /// translation only — arenas never move, so the result stays valid for
    /// the pool's lifetime, but dereferencing it requires the same
    /// synchronization as [`slice`](Self::slice) (and happens at the
    /// caller's access site, which is where audit checks belong).
    #[inline]
    pub fn resolve_addr(&self, r: SliceRef) -> usize {
        self.block(r.block()).arena.addr_of(r.offset())
    }

    /// The three words of a 16-byte value header (lock state, generation,
    /// payload reference), resolved with a single block translation.
    /// Equivalent to three `atomic_*_at` calls, but the block bounds check
    /// and `OnceLock` resolution happen once — this sits on every get and
    /// on every entry a scan yields.
    ///
    /// # Safety
    /// `r` must reference a 16-byte, 8-aligned header slot in this pool
    /// (every `HeaderRef` the value store hands out satisfies this).
    #[inline]
    pub unsafe fn header_words(
        &self,
        r: SliceRef,
    ) -> (
        &std::sync::atomic::AtomicU32,
        &std::sync::atomic::AtomicU32,
        &AtomicU64,
    ) {
        let arena = &self.block(r.block()).arena;
        let off = r.offset();
        (
            arena.atomic_u32(off),
            arena.atomic_u32(off + 4),
            arena.atomic_u64(off + 8),
        )
    }

    /// Copies the referenced bytes out into a `Vec`.
    ///
    /// # Safety
    /// Same contract as [`slice`](Self::slice).
    pub unsafe fn copy_out(&self, r: SliceRef) -> Vec<u8> {
        self.slice(r).to_vec()
    }

    /// `true` when this pool's arenas are file-backed.
    pub fn is_file_backed(&self) -> bool {
        self.config.backing.is_file()
    }

    /// Synchronously writes every initialized arena through to its backing
    /// file (a no-op `Ok(())` for anonymous pools). Callers wanting a
    /// consistent on-disk image quiesce writers first — the durable
    /// checkpoint layer does.
    pub fn sync_backing(&self) -> std::io::Result<()> {
        let n = self.nblocks.load(Ordering::Acquire);
        for i in 0..n {
            if let Some(block) = self.blocks[i].get() {
                block.arena.flush()?;
            }
        }
        Ok(())
    }

    /// Point-in-time footprint statistics. Walks the per-arena free lists
    /// (briefly locking each) to report exact free-space fragmentation.
    pub fn stats(&self) -> PoolStats {
        let n = self.nblocks.load(Ordering::Acquire);
        let mut fl = FreeListStats::default();
        let mut initialized = 0u64;
        for i in 0..n {
            // Skip a claimed slot still mid-publish by a growing thread.
            let Some(block) = self.blocks[i].get() else {
                continue;
            };
            initialized += 1;
            let free = block.free.lock();
            fl.free_bytes += free.free_bytes();
            fl.free_segments += free.segment_count() as u64;
            fl.largest_free_segment = fl.largest_free_segment.max(free.largest_segment() as u64);
        }
        let magazine_bytes = self.rack.as_ref().map_or(0, |r| r.held_bytes());
        let class_stack_bytes = self.stacks.as_ref().map_or(0, |s| s.held_bytes());
        self.counters.snapshot(
            initialized,
            self.config.arena_size as u64,
            fl,
            magazine_bytes,
            class_stack_bytes,
        )
    }

    /// Records an off-heap key-byte dereference performed by chunk search.
    /// Called by the map layer; kept here so the counter travels with the
    /// rest of the pool's hot-path statistics.
    #[inline]
    pub fn note_key_deref(&self) {
        self.counters.offheap_key_derefs.incr();
    }

    /// Records that an owner of this pool ran an emergency reclamation
    /// pass after hitting [`AllocError::PoolExhausted`].
    pub fn note_emergency_reclaim(&self) {
        self.counters
            .emergency_reclaims
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records that an operation surfaced an out-of-memory failure to the
    /// caller even after emergency reclamation.
    pub fn note_oom_failure(&self) {
        self.counters.oom_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one budgeted retry (a backoff sleep followed by a fresh
    /// attempt) taken by an owner of this pool under its retry policy.
    #[inline]
    pub fn note_op_retry(&self) {
        self.counters.op_retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Records that an operation surfaced `DeadlineExceeded` to its caller.
    pub fn note_deadline_exceeded(&self) {
        self.counters
            .deadline_exceeded
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records a write rejected early (`Overloaded`) by the degraded-mode
    /// controller.
    pub fn note_overload_shed(&self) {
        self.counters.overload_sheds.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a scan shed (`Overloaded`) by the degraded-mode controller.
    pub fn note_scan_shed(&self) {
        self.counters.scan_sheds.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one chunk-batch snapshot taken by the batch scan pipeline.
    /// Called once per batch, never per entry, so the accounting cost is
    /// amortized like the staleness check it counts.
    #[inline]
    pub fn note_scan_chunk_batch(&self) {
        self.counters.scan_chunk_batches.incr();
    }

    /// Records a batch refill that found its chunk changed (revision stamp
    /// advanced or replacement published) and had to re-locate via the
    /// index.
    #[inline]
    pub fn note_scan_revalidation(&self) {
        self.counters
            .scan_revalidations
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records a batch refill that reused the scan cursor's on-heap buffer
    /// capacity instead of growing a fresh allocation.
    #[inline]
    pub fn note_scan_buffer_reuse(&self) {
        self.counters.scan_buffer_reuses.incr();
    }

    pub(crate) fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Every allocation currently live according to the auditor's ledger,
    /// with its class and allocation sequence number.
    #[cfg(feature = "audit")]
    pub fn live_allocations(&self) -> Vec<(SliceRef, crate::audit::LiveAlloc)> {
        self.ledger.live_allocations()
    }

    /// All lifecycle violations (double free, foreign free, use after
    /// free) recorded since pool creation.
    #[cfg(feature = "audit")]
    pub fn audit_violations(&self) -> Vec<crate::audit::AuditViolation> {
        self.ledger.violations()
    }

    /// Total number of recorded lifecycle violations.
    #[cfg(feature = "audit")]
    pub fn audit_violation_count(&self) -> u64 {
        self.ledger.violation_count()
    }

    /// Cross-checks the auditor's ledger against the free lists: ledger
    /// live bytes plus free-list bytes must equal the managed capacity.
    /// Meaningful at any time — the ledger and the free lists are updated
    /// under the same call, so transient concurrent drift is bounded by
    /// in-flight operations; call at a quiescent point for exact results.
    #[cfg(feature = "audit")]
    pub fn audit(&self) -> crate::audit::AuditReport {
        let (live_bytes, live_by_class) = self.ledger.live_summary();
        let n = self.nblocks.load(Ordering::Acquire);
        let mut free_bytes = 0u64;
        let mut initialized = 0u64;
        for i in 0..n {
            let Some(block) = self.blocks[i].get() else {
                continue;
            };
            initialized += 1;
            free_bytes += block.free.lock().free_bytes();
        }
        // Slices parked in allocation magazines or on the lock-free class
        // stacks are free, not leaked: they left the free lists in a
        // refill batch (or were pushed there by a free) but are ready to
        // hand out, so they sit on the free side of the balance sheet.
        free_bytes += self.rack.as_ref().map_or(0, |r| r.held_bytes());
        free_bytes += self.stacks.as_ref().map_or(0, |s| s.held_bytes());
        let capacity_bytes = initialized * self.config.arena_size as u64;
        crate::audit::AuditReport {
            live_bytes,
            free_bytes,
            capacity_bytes,
            balanced: live_bytes + free_bytes == capacity_bytes,
            live_by_class,
            violations: self.ledger.violations(),
        }
    }
}

impl Drop for MemoryPool {
    fn drop(&mut self) {
        // Hand arenas back to the shared reservoir, if any ("each arena …
        // returns to the pool when that instance is disposed", §3.2).
        let Some(reservoir) = self.shared.take() else {
            return;
        };
        let blocks = std::mem::take(&mut self.blocks);
        for slot in Vec::from(blocks) {
            if let Some(block) = slot.into_inner() {
                reservoir.give_back(self.lane, block.arena);
            }
        }
    }
}

impl std::fmt::Debug for MemoryPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryPool")
            .field("arena_size", &self.config.arena_size)
            .field("arenas", &self.nblocks.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn tiny_pool() -> MemoryPool {
        MemoryPool::new(PoolConfig {
            magazines: false,
            lockfree: false,
            arena_size: 4096,
            max_arenas: 4,
            ..Default::default()
        })
    }

    #[test]
    fn allocate_write_read() {
        let pool = tiny_pool();
        let r = pool.allocate(11).unwrap();
        unsafe {
            pool.write_initial(r, b"hello world");
            assert_eq!(pool.slice(r), b"hello world");
        }
        assert_eq!(r.len(), 11);
    }

    #[test]
    fn grows_to_more_arenas() {
        let pool = tiny_pool();
        let mut refs = Vec::new();
        // Each arena fits 4096/1024 = 4 such allocations; 10 forces growth.
        for _ in 0..10 {
            refs.push(pool.allocate(1024).unwrap());
        }
        let stats = pool.stats();
        assert!(stats.arenas >= 3);
        assert_eq!(stats.alloc_count, 10);
        // All refs distinct.
        let mut raw: Vec<u64> = refs.iter().map(|r| r.to_raw()).collect();
        raw.sort_unstable();
        raw.dedup();
        assert_eq!(raw.len(), 10);
    }

    #[test]
    fn exhaustion_is_reported() {
        let pool = tiny_pool();
        let mut n = 0;
        loop {
            match pool.allocate(1024) {
                Ok(_) => n += 1,
                Err(AllocError::PoolExhausted) => break,
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert_eq!(n, 16); // 4 arenas × 4 slots
    }

    #[test]
    fn free_allows_reuse() {
        let pool = MemoryPool::new(PoolConfig {
            magazines: false,
            lockfree: false,
            arena_size: 1024,
            max_arenas: 1,
            ..Default::default()
        });
        let r = pool.allocate(1024).unwrap();
        assert!(matches!(pool.allocate(8), Err(AllocError::PoolExhausted)));
        pool.free(r);
        assert!(pool.allocate(1024).is_ok());
        let stats = pool.stats();
        assert_eq!(stats.free_count, 1);
        assert_eq!(stats.live_bytes, 1024);
    }

    #[test]
    fn zero_and_oversize_rejected() {
        let pool = tiny_pool();
        assert_eq!(pool.allocate(0), Err(AllocError::ZeroSized));
        assert!(matches!(
            pool.allocate(8192),
            Err(AllocError::TooLarge { .. })
        ));
    }

    #[test]
    fn concurrent_allocation_yields_disjoint_slices() {
        let pool = Arc::new(MemoryPool::new(PoolConfig {
            magazines: false,
            lockfree: false,
            arena_size: 1 << 16,
            max_arenas: 8,
            ..Default::default()
        }));
        let mut handles = Vec::new();
        for t in 0..4u8 {
            let pool = pool.clone();
            handles.push(std::thread::spawn(move || {
                let mut refs = Vec::new();
                for i in 0..200usize {
                    let r = pool.allocate(64).unwrap();
                    unsafe {
                        let s = pool.slice_mut(r);
                        s.fill(t.wrapping_mul(31).wrapping_add(i as u8));
                    }
                    refs.push((r, t.wrapping_mul(31).wrapping_add(i as u8)));
                }
                // Verify our writes were not clobbered by other threads.
                for (r, fill) in &refs {
                    let s = unsafe { pool.slice(*r) };
                    assert!(s.iter().all(|b| b == fill));
                }
                refs.len()
            }));
        }
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 800);
        assert_eq!(pool.stats().alloc_count, 800);
    }

    fn magazine_pool() -> MemoryPool {
        MemoryPool::new(PoolConfig {
            arena_size: 1 << 16,
            max_arenas: 4,
            magazines: true,
            lockfree: false,
            ..Default::default()
        })
    }

    #[test]
    fn magazines_amortize_freelist_locks() {
        let pool = magazine_pool();
        // Churn one size class: after the first refill, allocs hit the
        // magazine and frees park in it, with no free-list traffic.
        let mut refs = Vec::new();
        for _ in 0..1000 {
            for _ in 0..8 {
                refs.push(pool.allocate(64).unwrap());
            }
            for r in refs.drain(..) {
                pool.free(r);
            }
        }
        let stats = pool.stats();
        assert_eq!(stats.alloc_count, 8000);
        assert_eq!(stats.free_count, 8000);
        assert!(
            stats.magazine_hits >= 7900,
            "hits = {}",
            stats.magazine_hits
        );
        assert!(
            stats.freelist_lock_acquires * 10 <= stats.alloc_count + stats.free_count,
            "locks = {} for {} ops",
            stats.freelist_lock_acquires,
            stats.alloc_count + stats.free_count
        );
        // Accounting: everything freed, residue parked in magazines.
        assert_eq!(stats.live_bytes, 0);
        assert_eq!(
            stats.magazine_bytes + stats.free_bytes,
            stats.reserved_bytes
        );
    }

    #[test]
    fn magazine_exhaustion_flushes_and_reuses() {
        // One 1 KiB arena: alloc + free a 512-byte slice (parks it in a
        // magazine), then demand a full-arena slice. The free lists alone
        // cannot satisfy it; the exhaustion path must flush magazines and
        // retry rather than reporting OOM.
        let pool = MemoryPool::new(PoolConfig {
            arena_size: 1024,
            max_arenas: 1,
            magazines: true,
            lockfree: false,
            ..Default::default()
        });
        let r = pool.allocate(512).unwrap();
        pool.free(r);
        assert!(pool.stats().magazine_bytes > 0);
        let big = pool
            .allocate(1024)
            .expect("flush rung must reclaim magazine bytes");
        pool.free(big);
        // True exhaustion is still reported once magazines are empty.
        let a = pool.allocate(1024).unwrap();
        assert!(matches!(pool.allocate(8), Err(AllocError::PoolExhausted)));
        pool.free(a);
    }

    #[test]
    fn magazine_cross_thread_slices_stay_disjoint() {
        let pool = Arc::new(magazine_pool());
        let mut handles = Vec::new();
        for t in 0..4u8 {
            let pool = pool.clone();
            handles.push(std::thread::spawn(move || {
                let mut refs = Vec::new();
                for i in 0..300usize {
                    let r = pool.allocate(48).unwrap();
                    unsafe { pool.slice_mut(r) }.fill(t ^ (i as u8));
                    refs.push((r, t ^ (i as u8)));
                    if i % 3 == 0 {
                        let (r, _) = refs.swap_remove(i % refs.len());
                        pool.free(r);
                    }
                }
                for (r, fill) in &refs {
                    let s = unsafe { pool.slice(*r) };
                    assert!(s.iter().all(|b| b == fill), "clobbered slice");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn flush_magazines_returns_parked_bytes() {
        let pool = magazine_pool();
        let refs: Vec<_> = (0..32).map(|_| pool.allocate(128).unwrap()).collect();
        for r in refs {
            pool.free(r);
        }
        let parked = pool.stats().magazine_bytes;
        assert!(parked > 0);
        assert_eq!(pool.flush_magazines(), parked);
        let stats = pool.stats();
        assert_eq!(stats.magazine_bytes, 0);
        assert_eq!(stats.free_bytes, stats.reserved_bytes);
        assert_eq!(pool.flush_magazines(), 0);
    }

    fn lockfree_pool() -> MemoryPool {
        MemoryPool::new(PoolConfig {
            arena_size: 1 << 16,
            max_arenas: 4,
            magazines: true,
            lockfree: true,
            ..Default::default()
        })
    }

    #[test]
    fn lockfree_churn_keeps_freelist_cold() {
        let pool = lockfree_pool();
        let rounds: u64 = if cfg!(miri) { 6 } else { 400 };
        let mut refs = Vec::new();
        for _ in 0..rounds {
            // 96 live slices overflow the magazine (cap 64) on the free
            // side, so trims cascade onto the class stack and the next
            // round's refills come back off it mutex-free.
            for _ in 0..96 {
                refs.push(pool.allocate(64).unwrap());
            }
            for r in refs.drain(..) {
                pool.free(r);
            }
        }
        let stats = pool.stats();
        assert_eq!(stats.alloc_count, rounds * 96);
        assert_eq!(stats.free_count, rounds * 96);
        assert!(stats.class_stack_pushes > 0, "stacks never fed: {stats:?}");
        assert!(
            stats.class_stack_pops > 0,
            "stacks never drained: {stats:?}"
        );
        assert!(stats.lockfree_refills > 0, "refills bypassed: {stats:?}");
        // Steady-state recycling is mutex-free; the only free-list lock
        // traffic is the warmup carving of brand-new slices.
        let ops = stats.alloc_count + stats.free_count;
        assert!(
            stats.freelist_lock_acquires * 20 <= ops,
            "locks = {} for {} ops",
            stats.freelist_lock_acquires,
            ops
        );
        // Accounting: nothing live, every byte is free-list, magazine, or
        // stack-held.
        assert_eq!(stats.live_bytes, 0);
        assert_eq!(
            stats.magazine_bytes + stats.class_stack_bytes + stats.free_bytes,
            stats.reserved_bytes
        );
    }

    #[test]
    fn flush_magazines_drains_class_stacks() {
        let pool = lockfree_pool();
        let refs: Vec<_> = (0..100).map(|_| pool.allocate(128).unwrap()).collect();
        for r in refs {
            pool.free(r);
        }
        let stats = pool.stats();
        assert!(
            stats.class_stack_bytes > 0,
            "magazine overflow never reached the stacks: {stats:?}"
        );
        let parked = stats.magazine_bytes + stats.class_stack_bytes;
        assert_eq!(pool.flush_magazines(), parked);
        let stats = pool.stats();
        assert_eq!(stats.magazine_bytes, 0);
        assert_eq!(stats.class_stack_bytes, 0);
        assert_eq!(stats.free_bytes, stats.reserved_bytes);
        assert_eq!(pool.flush_magazines(), 0);
    }

    #[test]
    fn exhaustion_flush_rung_drains_stacks() {
        // Stack-parked slices are invisible to the coalescing free list;
        // an oversized request must trigger the flush rung to reassemble
        // the contiguous run (the magazine-less variant isolates the
        // stack's contribution).
        let pool = MemoryPool::new(PoolConfig {
            arena_size: 1024,
            max_arenas: 1,
            magazines: false,
            lockfree: true,
            ..Default::default()
        });
        let r = pool.allocate(512).unwrap();
        pool.free(r);
        assert!(pool.stats().class_stack_bytes > 0);
        let big = pool
            .allocate(1024)
            .expect("flush rung must drain the class stacks");
        pool.free(big);
        // True exhaustion still terminates cleanly once nothing is parked.
        let a = pool.allocate(1024).unwrap();
        assert!(matches!(pool.allocate(8), Err(AllocError::PoolExhausted)));
        pool.free(a);
    }

    #[test]
    fn lockfree_cross_thread_slices_stay_disjoint() {
        let pool = Arc::new(lockfree_pool());
        let iters: usize = if cfg!(miri) { 40 } else { 400 };
        let mut handles = Vec::new();
        for t in 0..4u8 {
            let pool = pool.clone();
            handles.push(std::thread::spawn(move || {
                let mut refs = Vec::new();
                for i in 0..iters {
                    let r = pool.allocate(48).unwrap();
                    unsafe { pool.slice_mut(r) }.fill(t ^ (i as u8));
                    refs.push((r, t ^ (i as u8)));
                    if i % 3 == 0 {
                        let (r, _) = refs.swap_remove(i % refs.len());
                        pool.free(r);
                    }
                }
                for (r, fill) in &refs {
                    let s = unsafe { pool.slice(*r) };
                    assert!(s.iter().all(|b| b == fill), "clobbered slice");
                }
                for (r, _) in refs {
                    pool.free(r);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let stats = pool.stats();
        assert_eq!(stats.live_bytes, 0);
        assert_eq!(
            stats.magazine_bytes + stats.class_stack_bytes + stats.free_bytes,
            stats.reserved_bytes
        );
    }

    #[test]
    fn oversized_frees_recycle_lock_free() {
        // > 2 KiB padded classes must circulate through the oversized CAS
        // stacks: after warmup, free-list lock traffic stays flat while
        // 8 KiB slices churn.
        let pool = MemoryPool::new(PoolConfig {
            arena_size: 1 << 20,
            max_arenas: 4,
            magazines: false,
            lockfree: true,
            ..Default::default()
        });
        let rounds: u64 = if cfg!(miri) { 6 } else { 200 };
        let mut refs = Vec::new();
        for _ in 0..rounds {
            for _ in 0..8 {
                refs.push(pool.allocate(8192).unwrap());
            }
            for r in refs.drain(..) {
                pool.free(r);
            }
        }
        let stats = pool.stats();
        assert_eq!(stats.alloc_count, rounds * 8);
        assert_eq!(stats.free_count, rounds * 8);
        assert!(stats.class_stack_pushes > 0, "stacks never fed: {stats:?}");
        assert!(stats.lockfree_refills > 0, "refills bypassed: {stats:?}");
        let ops = stats.alloc_count + stats.free_count;
        assert!(
            stats.freelist_lock_acquires * 20 <= ops,
            "oversized freelist stayed hot: {} locks for {} ops",
            stats.freelist_lock_acquires,
            ops
        );
        assert_eq!(stats.live_bytes, 0);
        assert_eq!(
            stats.class_stack_bytes + stats.free_bytes,
            stats.reserved_bytes
        );
    }

    #[test]
    fn beyond_lockfree_cutoff_takes_the_mutex() {
        // > 32 KiB padded slices still coalesce eagerly through the mutex
        // free list; the stacks must not capture them.
        let pool = MemoryPool::new(PoolConfig {
            arena_size: 1 << 20,
            max_arenas: 2,
            magazines: false,
            lockfree: true,
            ..Default::default()
        });
        let r = pool.allocate(64 * 1024).unwrap();
        pool.free(r);
        let stats = pool.stats();
        assert_eq!(stats.class_stack_bytes, 0);
        assert_eq!(stats.free_bytes, stats.reserved_bytes);
    }

    #[test]
    fn oversized_rounding_near_arena_size_is_rejected() {
        // An arena size that is 8-aligned but not 256-aligned, so coarse
        // rounding can overshoot it.
        let pool = MemoryPool::new(PoolConfig {
            arena_size: 4104,
            max_arenas: 1,
            ..Default::default()
        });
        // 4100 ≤ arena but rounds to 4352 > arena: a typed error, not an
        // endless grow-and-probe loop.
        assert!(matches!(
            pool.allocate(4100),
            Err(AllocError::TooLarge { .. })
        ));
        // A request whose padding still fits works.
        assert!(pool.allocate(4096).is_ok());
    }

    #[test]
    fn file_backed_pool_roundtrip() {
        let dir = std::env::temp_dir().join(format!("oak-pool-backing-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = PoolConfig {
            arena_size: 1 << 16,
            max_arenas: 4,
            backing: ArenaBacking::file(&dir),
            ..Default::default()
        };
        let written: Vec<u8> = (0..=255).collect();
        {
            let pool = MemoryPool::new(config.clone());
            assert!(pool.is_file_backed());
            let r = pool.allocate(256).unwrap();
            unsafe { pool.write_initial(r, &written) };
            pool.sync_backing().unwrap();
            // The backing file for arena 0 exists and holds the bytes.
            assert_eq!(r.block(), 0);
            let file = std::fs::read(config.backing.arena_path(0).unwrap()).unwrap();
            let off = r.offset() as usize;
            assert_eq!(&file[off..off + 256], &written[..]);
        }
        // A new pool over the same directory sees the persisted bytes at
        // the same offsets (recovery-style reopen).
        let pool = MemoryPool::new(config);
        let r = pool.allocate(256).unwrap();
        assert_eq!(unsafe { pool.slice(r) }, &written[..]);
        drop(pool);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn growth_claim_race_loses_cleanly() {
        // Hammer a growing pool from several threads: every growth slot
        // must end up initialized exactly once, losers must re-probe, and
        // the byte accounting must balance over initialized arenas only.
        let pool = Arc::new(MemoryPool::new(PoolConfig {
            arena_size: 4096,
            max_arenas: 8,
            magazines: false,
            lockfree: true,
            ..Default::default()
        }));
        let iters: usize = if cfg!(miri) { 8 } else { 64 };
        let mut handles = Vec::new();
        for _ in 0..4 {
            let pool = pool.clone();
            handles.push(std::thread::spawn(move || {
                let mut refs = Vec::new();
                for _ in 0..iters {
                    match pool.allocate(1024) {
                        Ok(r) => refs.push(r),
                        Err(AllocError::PoolExhausted) => break,
                        Err(e) => panic!("unexpected: {e}"),
                    }
                }
                for r in refs {
                    pool.free(r);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let stats = pool.stats();
        assert!(stats.arenas >= 2, "pool never grew: {stats:?}");
        assert_eq!(stats.live_bytes, 0);
        assert_eq!(
            stats.magazine_bytes + stats.class_stack_bytes + stats.free_bytes,
            stats.reserved_bytes
        );
    }
}
