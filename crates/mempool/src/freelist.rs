//! First-fit, coalescing free list over a single arena.
//!
//! The paper's default memory manager allocates "from the arena's flat free
//! list using a first-fit approach" (§3.2). We keep free segments in a
//! `BTreeMap` keyed by offset so that freeing can coalesce with both
//! neighbours in O(log n); first-fit scans segments in offset order.
//!
//! All sizes handed to the list are already rounded up to the arena
//! allocation granularity by the pool.

use std::collections::BTreeMap;

/// Allocation granularity in bytes. Every segment offset and length is a
/// multiple of this, which keeps embedded atomics aligned.
pub const GRANULARITY: u32 = 8;

/// Largest padded size still rounded at the fine [`GRANULARITY`]; the
/// magazine and small class-stack tiers serve exactly these sizes.
pub(crate) const SMALL_MAX_PADDED: u32 = 2048;

/// Granularity for oversized (padded > [`SMALL_MAX_PADDED`]) allocations.
/// Coarser rounding keeps the number of oversized size classes small
/// enough that each gets its own exact-size lock-free stack; the cost is
/// at most `LARGE_GRANULARITY - 1` bytes of padding per oversized slice
/// (≤ 11% at the cutoff, shrinking with size).
pub(crate) const LARGE_GRANULARITY: u32 = 256;

/// Rounds `len` up to its allocation granularity: fine-grained up to
/// [`SMALL_MAX_PADDED`], coarse above so every oversized padded size names
/// one of a bounded set of exact-size classes.
#[inline]
pub fn round_up(len: u32) -> u32 {
    let small = (len + GRANULARITY - 1) & !(GRANULARITY - 1);
    if small <= SMALL_MAX_PADDED {
        small
    } else {
        (len + LARGE_GRANULARITY - 1) & !(LARGE_GRANULARITY - 1)
    }
}

/// A first-fit free list managing `[0, capacity)` of one arena.
#[derive(Debug)]
pub struct FreeList {
    /// Free segments: offset → length. Invariant: segments are disjoint,
    /// non-empty, and no two segments are adjacent (they would have been
    /// coalesced).
    free: BTreeMap<u32, u32>,
    capacity: u32,
    free_bytes: u64,
}

impl FreeList {
    /// Creates a list with a single free segment covering the whole arena.
    pub fn new(capacity: u32) -> Self {
        assert!(capacity.is_multiple_of(GRANULARITY));
        let mut free = BTreeMap::new();
        if capacity > 0 {
            free.insert(0, capacity);
        }
        FreeList {
            free,
            capacity,
            free_bytes: capacity as u64,
        }
    }

    /// Total bytes currently free.
    #[inline]
    pub fn free_bytes(&self) -> u64 {
        self.free_bytes
    }

    /// Arena capacity this list manages.
    #[inline]
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Allocates `len` bytes (already granularity-rounded), returning the
    /// offset of the segment, or `None` if no segment fits (first-fit).
    pub fn allocate(&mut self, len: u32) -> Option<u32> {
        // Injected miss: the pool skips this arena as if it were full,
        // exercising arena growth and exhaustion paths.
        oak_failpoints::fail_point!("freelist/pop", None);
        debug_assert!(len > 0 && len.is_multiple_of(GRANULARITY));
        // First fit: scan in offset order.
        let (&off, &seg_len) = self.free.iter().find(|&(_, &l)| l >= len)?;
        self.free.remove(&off);
        if seg_len > len {
            self.free.insert(off + len, seg_len - len);
        }
        self.free_bytes -= len as u64;
        Some(off)
    }

    /// Returns a segment to the free list, coalescing with neighbours.
    ///
    /// # Panics
    /// Panics (in debug builds) on double-free or overlapping frees, which
    /// would indicate a reference-management bug upstream.
    pub fn free(&mut self, offset: u32, len: u32) {
        debug_assert!(len > 0 && len.is_multiple_of(GRANULARITY));
        debug_assert!(offset.is_multiple_of(GRANULARITY));
        debug_assert!(offset as u64 + len as u64 <= self.capacity as u64);

        let mut start = offset;
        let mut total = len;

        // Coalesce with predecessor if adjacent.
        if let Some((&p_off, &p_len)) = self.free.range(..offset).next_back() {
            debug_assert!(
                p_off + p_len <= offset,
                "free list corruption: overlapping free of [{offset}, +{len})"
            );
            if p_off + p_len == offset {
                self.free.remove(&p_off);
                start = p_off;
                total += p_len;
            }
        }
        // Coalesce with successor if adjacent.
        if let Some((&s_off, &s_len)) = self.free.range(offset..).next() {
            debug_assert!(
                offset + len <= s_off,
                "free list corruption: overlapping free of [{offset}, +{len})"
            );
            if offset + len == s_off {
                self.free.remove(&s_off);
                total += s_len;
            }
        }
        self.free.insert(start, total);
        self.free_bytes += len as u64;
    }

    /// Number of free segments (fragmentation indicator).
    pub fn segment_count(&self) -> usize {
        self.free.len()
    }

    /// Length of the largest free segment. With `free_bytes`, this bounds
    /// external fragmentation: the biggest allocation this arena can still
    /// satisfy, regardless of how many bytes are free in total.
    pub fn largest_segment(&self) -> u32 {
        self.free.values().copied().max().unwrap_or(0)
    }

    /// Checks structural invariants; used by tests and debug assertions.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        let mut prev_end: u64 = 0;
        let mut sum: u64 = 0;
        let mut first = true;
        for (&off, &len) in &self.free {
            assert!(len > 0, "empty segment at {off}");
            assert!(off % GRANULARITY == 0 && len % GRANULARITY == 0);
            if !first {
                assert!(
                    (off as u64) > prev_end,
                    "segments adjacent or overlapping at {off} (prev end {prev_end})"
                );
            }
            prev_end = off as u64 + len as u64;
            assert!(prev_end <= self.capacity as u64);
            sum += len as u64;
            first = false;
        }
        assert_eq!(sum, self.free_bytes, "free byte accounting drifted");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_list_is_one_segment() {
        let fl = FreeList::new(1024);
        assert_eq!(fl.segment_count(), 1);
        assert_eq!(fl.free_bytes(), 1024);
        fl.check_invariants();
    }

    #[test]
    fn allocate_first_fit_order() {
        let mut fl = FreeList::new(1024);
        let a = fl.allocate(64).unwrap();
        let b = fl.allocate(64).unwrap();
        assert_eq!(a, 0);
        assert_eq!(b, 64);
        assert_eq!(fl.free_bytes(), 1024 - 128);
        fl.check_invariants();
    }

    #[test]
    fn free_coalesces_both_sides() {
        let mut fl = FreeList::new(256);
        let a = fl.allocate(64).unwrap();
        let b = fl.allocate(64).unwrap();
        let c = fl.allocate(64).unwrap();
        fl.free(a, 64);
        fl.free(c, 64); // c adjoins the free tail and merges with it
        assert_eq!(fl.segment_count(), 2);
        fl.free(b, 64);
        // Everything merges back to a single segment.
        assert_eq!(fl.segment_count(), 1);
        assert_eq!(fl.free_bytes(), 256);
        fl.check_invariants();
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut fl = FreeList::new(128);
        assert!(fl.allocate(128).is_some());
        assert!(fl.allocate(8).is_none());
    }

    #[test]
    fn first_fit_reuses_freed_hole() {
        let mut fl = FreeList::new(256);
        let a = fl.allocate(64).unwrap();
        let _b = fl.allocate(64).unwrap();
        fl.free(a, 64);
        // A request that fits the hole must take the hole, not the tail.
        let c = fl.allocate(32).unwrap();
        assert_eq!(c, a);
        fl.check_invariants();
    }

    #[test]
    fn split_leaves_remainder() {
        let mut fl = FreeList::new(256);
        let a = fl.allocate(64).unwrap();
        fl.free(a, 64);
        let c = fl.allocate(32).unwrap();
        assert_eq!(c, 0);
        // Remainder of the hole (32 bytes at offset 32) must be allocatable.
        let d = fl.allocate(32).unwrap();
        assert_eq!(d, 32);
        fl.check_invariants();
    }

    #[test]
    fn round_up_is_granular() {
        assert_eq!(round_up(1), 8);
        assert_eq!(round_up(8), 8);
        assert_eq!(round_up(9), 16);
        assert_eq!(round_up(1000), 1000);
        assert_eq!(round_up(1001), 1008);
    }
}
