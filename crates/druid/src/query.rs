//! Query engine over incremental indexes: Druid's signature query types.
//!
//! Druid's I² "absorbs new data while serving queries in parallel" (§6);
//! these are the query shapes it serves. All of them run as scans over the
//! rolled-up keys, combining the materialized per-key aggregates — the read
//! path the paper adapts to Oak buffers.

use std::collections::HashMap;

use crate::agg::{AggSpec, AggValue};
use crate::index::IncrementalIndex;

/// Result of a [`timeseries`] query: one bucket per time granule.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeBucket {
    /// Bucket start timestamp (inclusive).
    pub start: i64,
    /// Row count in the bucket.
    pub rows: i64,
    /// Sum of the selected metric aggregator over the bucket.
    pub metric_sum: f64,
}

/// Aggregates `[t0, t1)` into fixed-size time buckets, combining the
/// per-key `Count` and the selected `DoubleSum`-family aggregator.
///
/// `count_idx`/`sum_idx` are positions into the schema's aggregator list;
/// the former must be a `Count`, the latter a `DoubleSum`.
pub fn timeseries(
    index: &dyn IncrementalIndex,
    t0: i64,
    t1: i64,
    granularity: i64,
    count_idx: usize,
    sum_idx: usize,
) -> Vec<TimeBucket> {
    assert!(granularity > 0);
    assert!(matches!(
        index.schema().aggregators.get(count_idx),
        Some(AggSpec::Count)
    ));
    assert!(matches!(
        index.schema().aggregators.get(sum_idx),
        Some(AggSpec::DoubleSum(_))
    ));
    let mut buckets: Vec<TimeBucket> = Vec::new();
    index.scan(t0, t1, &mut |ts, vals| {
        let start = t0 + ((ts - t0) / granularity) * granularity;
        if buckets.last().map(|b| b.start) != Some(start) {
            buckets.push(TimeBucket {
                start,
                rows: 0,
                metric_sum: 0.0,
            });
        }
        let b = buckets.last_mut().expect("bucket pushed above");
        if let AggValue::Long(c) = vals[count_idx] {
            b.rows += c;
        }
        if let AggValue::Double(s) = vals[sum_idx] {
            b.metric_sum += s;
        }
        true
    });
    buckets
}

/// One group of a [`group_by`] result.
#[derive(Debug, Clone, PartialEq)]
pub struct Group {
    /// The grouped timestamp bucket.
    pub bucket: i64,
    /// Total rows in the group.
    pub rows: i64,
    /// Combined metric sum.
    pub metric_sum: f64,
}

/// Groups `[t0, t1)` by time bucket via a hash aggregation (the shape of
/// Druid's groupBy); unlike [`timeseries`] the output is keyed, unordered
/// until the final sort.
pub fn group_by(
    index: &dyn IncrementalIndex,
    t0: i64,
    t1: i64,
    granularity: i64,
    count_idx: usize,
    sum_idx: usize,
) -> Vec<Group> {
    assert!(granularity > 0);
    let mut groups: HashMap<i64, (i64, f64)> = HashMap::new();
    index.scan(t0, t1, &mut |ts, vals| {
        let bucket = t0 + ((ts - t0) / granularity) * granularity;
        let e = groups.entry(bucket).or_insert((0, 0.0));
        if let AggValue::Long(c) = vals[count_idx] {
            e.0 += c;
        }
        if let AggValue::Double(s) = vals[sum_idx] {
            e.1 += s;
        }
        true
    });
    let mut out: Vec<Group> = groups
        .into_iter()
        .map(|(bucket, (rows, metric_sum))| Group {
            bucket,
            rows,
            metric_sum,
        })
        .collect();
    out.sort_by_key(|g| g.bucket);
    out
}

/// Returns the `n` time buckets with the highest metric sum (Druid's topN,
/// over the time dimension).
pub fn top_n(
    index: &dyn IncrementalIndex,
    t0: i64,
    t1: i64,
    granularity: i64,
    count_idx: usize,
    sum_idx: usize,
    n: usize,
) -> Vec<Group> {
    let mut groups = group_by(index, t0, t1, granularity, count_idx, sum_idx);
    groups.sort_by(|a, b| {
        b.metric_sum
            .partial_cmp(&a.metric_sum)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    groups.truncate(n);
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::OakIndex;
    use crate::row::{DimKind, DimValue, InputRow, Schema};
    use oak_core::OakMapConfig;

    fn build_index() -> OakIndex {
        let schema = Schema::rollup(
            vec![("d".to_string(), DimKind::Long)],
            vec![AggSpec::Count, AggSpec::DoubleSum(0)],
        );
        let idx = OakIndex::new(schema, OakMapConfig::small());
        // 100 rows per second over 10 seconds; metric value = second index.
        for sec in 0..10i64 {
            for i in 0..100i64 {
                idx.insert(&InputRow {
                    timestamp: sec * 1_000 + (i % 7) * 10,
                    dims: vec![DimValue::Long(i % 5)],
                    metrics: vec![sec as f64],
                })
                .unwrap();
            }
        }
        idx
    }

    #[test]
    fn timeseries_buckets_cover_everything() {
        let idx = build_index();
        let buckets = timeseries(&idx, 0, 10_000, 1_000, 0, 1);
        assert_eq!(buckets.len(), 10);
        let total: i64 = buckets.iter().map(|b| b.rows).sum();
        assert_eq!(total, 1_000);
        for (sec, b) in buckets.iter().enumerate() {
            assert_eq!(b.start, sec as i64 * 1_000);
            assert_eq!(b.rows, 100);
            assert_eq!(b.metric_sum, 100.0 * sec as f64);
        }
    }

    #[test]
    fn timeseries_respects_bounds() {
        let idx = build_index();
        let buckets = timeseries(&idx, 3_000, 6_000, 1_000, 0, 1);
        assert_eq!(buckets.len(), 3);
        assert_eq!(buckets[0].start, 3_000);
        let total: i64 = buckets.iter().map(|b| b.rows).sum();
        assert_eq!(total, 300);
    }

    #[test]
    fn group_by_matches_timeseries() {
        let idx = build_index();
        let ts = timeseries(&idx, 0, 10_000, 2_000, 0, 1);
        let gb = group_by(&idx, 0, 10_000, 2_000, 0, 1);
        assert_eq!(ts.len(), gb.len());
        for (a, b) in ts.iter().zip(&gb) {
            assert_eq!(a.start, b.bucket);
            assert_eq!(a.rows, b.rows);
            assert_eq!(a.metric_sum, b.metric_sum);
        }
    }

    #[test]
    fn top_n_orders_by_metric() {
        let idx = build_index();
        let top = top_n(&idx, 0, 10_000, 1_000, 0, 1, 3);
        assert_eq!(top.len(), 3);
        // metric_sum per second = 100 × sec → seconds 9, 8, 7 win.
        assert_eq!(top[0].bucket, 9_000);
        assert_eq!(top[1].bucket, 8_000);
        assert_eq!(top[2].bucket, 7_000);
        assert!(top[0].metric_sum >= top[1].metric_sum);
    }
}
