//! A mini Druid node: one live (real-time) index plus persisted segments,
//! queried as a single timeline.
//!
//! This models the read path §6 situates the I² in: queries span the
//! mutable in-memory index *and* the immutable historical segments, and
//! ingestion hand-off ("the I² fills up → persist → dispose → fresh I²")
//! happens without a query-visible gap.

use parking_lot::RwLock;
use std::sync::Arc;

use oak_core::{OakError, OakMapConfig};

use crate::agg::AggValue;
use crate::index::{IncrementalIndex, OakIndex};
use crate::row::{InputRow, Schema};
use crate::segment::Segment;

/// A real-time data node: ingests into a live Oak-backed I², rolls full
/// indexes over into immutable segments, and serves queries over both.
pub struct DataNode {
    schema: Schema,
    config: OakMapConfig,
    /// Roll the live index into a segment once it holds this many keys.
    rollover_keys: usize,
    live: RwLock<Arc<OakIndex>>,
    segments: RwLock<Vec<Arc<Segment>>>,
}

impl DataNode {
    /// Creates a node; the live index rolls over into a segment at
    /// `rollover_keys` distinct keys.
    pub fn new(schema: Schema, config: OakMapConfig, rollover_keys: usize) -> Self {
        assert!(schema.rollup, "DataNode serves rollup schemas");
        assert!(rollover_keys > 0);
        let live = Arc::new(OakIndex::new(schema.clone(), config.clone()));
        DataNode {
            schema,
            config,
            rollover_keys,
            live: RwLock::new(live),
            segments: RwLock::new(Vec::new()),
        }
    }

    /// Ingests one tuple, rolling the live index over when it is full.
    pub fn insert(&self, row: &InputRow) -> Result<(), OakError> {
        // Hold the read guard across the insert: `rollover`'s write lock
        // then doubles as the hand-off barrier, so a row can never land in
        // an index that has already been persisted.
        let full = {
            let live = self.live.read();
            live.insert(row)?;
            live.num_keys() >= self.rollover_keys
        };
        if full {
            self.rollover();
        }
        Ok(())
    }

    /// Persists the live index into a segment and replaces it with a fresh
    /// one (the §6 lifecycle). Idempotent under races: only the thread that
    /// still sees the full index swaps it.
    pub fn rollover(&self) {
        let mut live = self.live.write();
        if live.num_keys() < self.rollover_keys {
            return; // someone else already rolled over
        }
        let segment = Arc::new(Segment::persist(live.as_ref()));
        self.segments.write().push(segment);
        *live = Arc::new(OakIndex::new(self.schema.clone(), self.config.clone()));
    }

    /// Compacts all persisted segments into one.
    pub fn compact_segments(&self) {
        let mut guard = self.segments.write();
        if guard.len() <= 1 {
            return;
        }
        let refs: Vec<&Segment> = guard.iter().map(|s| s.as_ref()).collect();
        let merged = Segment::compact(&refs);
        *guard = vec![Arc::new(merged)];
    }

    /// Number of persisted segments.
    pub fn num_segments(&self) -> usize {
        self.segments.read().len()
    }

    /// Keys currently in the live (real-time) index.
    pub fn live_keys(&self) -> usize {
        self.live.read().num_keys()
    }

    /// Scans `[t0, t1)` across every segment and the live index. Rows are
    /// delivered segment-by-segment (oldest first), then live; within each
    /// source they are key-ordered. The same key may appear once per
    /// source — callers aggregate (as Druid brokers do).
    pub fn scan(&self, t0: i64, t1: i64, f: &mut dyn FnMut(i64, &[AggValue]) -> bool) -> usize {
        // Snapshot (segments, live) consistently: holding the live read
        // guard keeps any rollover (which needs the write lock) from moving
        // the index between the two reads.
        let (segments, live) = {
            let live_guard = self.live.read();
            (self.segments.read().clone(), live_guard.clone())
        };
        let mut visited = 0;
        for seg in &segments {
            let mut keep_going = true;
            visited += seg.scan(t0, t1, &mut |ts, vals| {
                keep_going = f(ts, vals);
                keep_going
            });
            if !keep_going {
                return visited;
            }
        }
        visited += live.scan(t0, t1, f);
        visited
    }

    /// Total row count (Count aggregator at `count_idx`) over `[t0, t1)`
    /// across segments + live.
    pub fn total_rows(&self, t0: i64, t1: i64, count_idx: usize) -> i64 {
        let mut total = 0i64;
        self.scan(t0, t1, &mut |_, vals| {
            if let AggValue::Long(c) = vals[count_idx] {
                total += c;
            }
            true
        });
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggSpec;
    use crate::row::{DimKind, DimValue};

    fn schema() -> Schema {
        Schema::rollup(
            vec![("d".to_string(), DimKind::Long)],
            vec![AggSpec::Count, AggSpec::DoubleSum(0)],
        )
    }

    fn row(ts: i64, d: i64) -> InputRow {
        InputRow {
            timestamp: ts,
            dims: vec![DimValue::Long(d)],
            metrics: vec![1.0],
        }
    }

    #[test]
    fn rollover_preserves_every_row() {
        let node = DataNode::new(schema(), OakMapConfig::small(), 500);
        let total = 2_600i64;
        for i in 0..total {
            node.insert(&row(i, i % 7)).unwrap();
        }
        assert!(
            node.num_segments() >= 4,
            "segments: {}",
            node.num_segments()
        );
        assert!(node.live_keys() < 500);
        assert_eq!(node.total_rows(0, total, 0), total);
    }

    #[test]
    fn queries_span_live_and_historical() {
        let node = DataNode::new(schema(), OakMapConfig::small(), 100);
        for i in 0..250i64 {
            node.insert(&row(i, 0)).unwrap();
        }
        // A window straddling the segment/live boundary.
        assert_eq!(node.total_rows(150, 250, 0), 100);
        // Bounded windows inside historical data.
        assert_eq!(node.total_rows(0, 50, 0), 50);
    }

    #[test]
    fn compaction_collapses_segments() {
        let node = DataNode::new(schema(), OakMapConfig::small(), 100);
        for i in 0..1_000i64 {
            node.insert(&row(i, 0)).unwrap();
        }
        let before_rows = node.total_rows(0, 1_000, 0);
        assert!(node.num_segments() > 2);
        node.compact_segments();
        assert_eq!(node.num_segments(), 1);
        assert_eq!(node.total_rows(0, 1_000, 0), before_rows);
    }

    #[test]
    fn concurrent_ingest_with_rollovers_and_queries() {
        let node = Arc::new(DataNode::new(schema(), OakMapConfig::small(), 200));
        let mut handles = Vec::new();
        for t in 0..3i64 {
            let node = node.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..2_000i64 {
                    node.insert(&row(t * 2_000 + i, i % 5)).unwrap();
                }
            }));
        }
        // Queries during ingestion must never fail or see negative counts.
        for _ in 0..20 {
            let n = node.total_rows(0, 6_000, 0);
            assert!(n >= 0);
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(node.total_rows(0, 6_000, 0), 6_000);
    }
}
