//! Immutable persisted segments — the back half of the I² lifecycle.
//!
//! "Once an I² fills up, its data gets reorganized and persisted, and the
//! I² is disposed" (§6). A [`Segment`] is that reorganized form: a sorted,
//! immutable, columnar snapshot of an incremental index. Segments answer
//! the same time-range scans as the live index, and several segments can
//! be *compacted* into one, merging aggregate states key-wise (counts add,
//! HLL registers max out, reservoirs fold).

use crate::agg::{self, AggValue};
use crate::index::IncrementalIndex;
use crate::row::{decode_i64, Schema};

/// An immutable, sorted, columnar snapshot of a rollup index.
#[derive(Debug, Clone)]
pub struct Segment {
    schema: Schema,
    /// Row timestamps, ascending (ties broken by dimension columns).
    timestamps: Vec<i64>,
    /// Full serialized keys, row-major (timestamp + dim codewords) — kept
    /// for key-wise compaction.
    keys: Vec<Vec<u8>>,
    /// Aggregate tuples, row-major, `schema.agg_state_size()` bytes each.
    states: Vec<u8>,
}

impl Segment {
    /// Persists a rollup index into an immutable segment (the index is
    /// read, not consumed; the caller disposes it afterwards).
    ///
    /// # Panics
    /// Panics on plain (non-rollup) schemas: plain indexes persist raw rows
    /// through other paths in Druid and are out of scope here.
    pub fn persist(index: &dyn IncrementalIndex) -> Segment {
        let schema = index.schema().clone();
        assert!(schema.rollup, "segments persist rollup indexes");
        let state_size = schema.agg_state_size();
        let mut timestamps = Vec::new();
        let mut keys = Vec::new();
        let mut states = Vec::new();
        index.scan_raw(&mut |k, v| {
            debug_assert_eq!(v.len(), state_size);
            timestamps.push(decode_i64(&k[..8]));
            keys.push(k.to_vec());
            states.extend_from_slice(v);
            true
        });
        Segment {
            schema,
            timestamps,
            keys,
            states,
        }
    }

    /// Number of rolled-up rows.
    pub fn num_rows(&self) -> usize {
        self.timestamps.len()
    }

    /// `[min, max]` timestamps covered, or `None` when empty.
    pub fn time_range(&self) -> Option<(i64, i64)> {
        Some((*self.timestamps.first()?, *self.timestamps.last()?))
    }

    /// The segment's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Serialized size in bytes (keys + states; the columnar footprint).
    pub fn size_bytes(&self) -> usize {
        self.keys.iter().map(|k| k.len()).sum::<usize>() + self.states.len()
    }

    fn state(&self, row: usize) -> &[u8] {
        let sz = self.schema.agg_state_size();
        &self.states[row * sz..(row + 1) * sz]
    }

    /// Scans rows with `t0 ≤ timestamp < t1` in key order — the same
    /// contract as [`IncrementalIndex::scan`], so queries can span live
    /// indexes and persisted segments uniformly.
    pub fn scan(&self, t0: i64, t1: i64, f: &mut dyn FnMut(i64, &[AggValue]) -> bool) -> usize {
        // Rows are key-ordered and time is the primary dimension: binary
        // search the first row at/after t0.
        let start = self.timestamps.partition_point(|&ts| ts < t0);
        let mut visited = 0;
        for row in start..self.timestamps.len() {
            let ts = self.timestamps[row];
            if ts >= t1 {
                break;
            }
            visited += 1;
            let vals = agg::read_all(&self.schema.aggregators, self.state(row));
            if !f(ts, &vals) {
                break;
            }
        }
        visited
    }

    /// Compacts several segments (same schema) into one, merging aggregate
    /// states of identical keys — Druid's segment-merge stage.
    pub fn compact(segments: &[&Segment]) -> Segment {
        assert!(!segments.is_empty());
        let schema = segments[0].schema.clone();
        let state_size = schema.agg_state_size();
        for s in segments {
            assert_eq!(
                s.schema.aggregators, schema.aggregators,
                "compaction requires matching schemas"
            );
        }
        // K-way merge by key (segments are individually sorted).
        let mut cursors = vec![0usize; segments.len()];
        let mut timestamps = Vec::new();
        let mut keys: Vec<Vec<u8>> = Vec::new();
        let mut states = Vec::new();
        loop {
            // Smallest key among the cursors.
            let mut min: Option<(&[u8], usize)> = None;
            for (i, s) in segments.iter().enumerate() {
                if cursors[i] < s.num_rows() {
                    let k = s.keys[cursors[i]].as_slice();
                    if min.map(|(mk, _)| k < mk).unwrap_or(true) {
                        min = Some((k, i));
                    }
                }
            }
            let Some((min_key, _)) = min else {
                break;
            };
            let min_key = min_key.to_vec();
            // Merge every segment's state for this key.
            let mut merged: Option<Vec<u8>> = None;
            for (i, s) in segments.iter().enumerate() {
                if cursors[i] < s.num_rows() && s.keys[cursors[i]] == min_key {
                    let st = s.state(cursors[i]);
                    match &mut merged {
                        None => merged = Some(st.to_vec()),
                        Some(m) => agg::merge_all(&schema.aggregators, m, st),
                    }
                    cursors[i] += 1;
                }
            }
            let merged = merged.expect("at least one contributor");
            debug_assert_eq!(merged.len(), state_size);
            timestamps.push(decode_i64(&min_key[..8]));
            keys.push(min_key);
            states.extend_from_slice(&merged);
        }
        Segment {
            schema,
            timestamps,
            keys,
            states,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggSpec;
    use crate::index::OakIndex;
    use crate::row::{DimKind, DimValue, InputRow};
    use oak_core::OakMapConfig;

    fn schema() -> Schema {
        Schema::rollup(
            vec![("d".to_string(), DimKind::Long)],
            vec![
                AggSpec::Count,
                AggSpec::DoubleSum(0),
                AggSpec::HllUniqueDim(0),
            ],
        )
    }

    fn fill(idx: &OakIndex, t_lo: i64, t_hi: i64) {
        for ts in t_lo..t_hi {
            for d in 0..4i64 {
                idx.insert(&InputRow {
                    timestamp: ts,
                    dims: vec![DimValue::Long(d)],
                    metrics: vec![d as f64],
                })
                .unwrap();
            }
        }
    }

    fn collect(
        scan: impl FnOnce(&mut dyn FnMut(i64, &[AggValue]) -> bool),
    ) -> Vec<(i64, Vec<AggValue>)> {
        let mut out = Vec::new();
        scan(&mut |ts, vals| {
            out.push((ts, vals.to_vec()));
            true
        });
        out
    }

    #[test]
    fn persist_matches_live_index() {
        let idx = OakIndex::new(schema(), OakMapConfig::small());
        fill(&idx, 0, 100);
        let seg = Segment::persist(&idx);
        assert_eq!(seg.num_rows(), idx.num_keys());
        assert_eq!(seg.time_range(), Some((0, 99)));
        let live = collect(|f| {
            idx.scan(10, 50, f);
        });
        let persisted = collect(|f| {
            seg.scan(10, 50, f);
        });
        assert_eq!(live, persisted);
        assert!(seg.size_bytes() > 0);
    }

    #[test]
    fn segment_scan_bounds() {
        let idx = OakIndex::new(schema(), OakMapConfig::small());
        fill(&idx, 0, 50);
        let seg = Segment::persist(&idx);
        let rows = collect(|f| {
            seg.scan(20, 30, f);
        });
        assert_eq!(rows.len(), 10 * 4);
        assert!(rows.iter().all(|(ts, _)| (20..30).contains(ts)));
        assert_eq!(seg.scan(1_000, 2_000, &mut |_, _| true), 0);
    }

    #[test]
    fn compaction_merges_overlapping_keys() {
        // Two index generations covering the same keys: compaction must
        // produce exactly the rollup a single index over all rows would.
        let gen1 = OakIndex::new(schema(), OakMapConfig::small());
        let gen2 = OakIndex::new(schema(), OakMapConfig::small());
        let combined = OakIndex::new(schema(), OakMapConfig::small());
        for ts in 0..30i64 {
            for d in 0..3i64 {
                let row = InputRow {
                    timestamp: ts,
                    dims: vec![DimValue::Long(d)],
                    metrics: vec![1.0],
                };
                gen1.insert(&row).unwrap();
                combined.insert(&row).unwrap();
                // gen2 gets the same keys again plus a disjoint tail.
                gen2.insert(&row).unwrap();
                combined.insert(&row).unwrap();
            }
        }
        for ts in 30..40i64 {
            let row = InputRow {
                timestamp: ts,
                dims: vec![DimValue::Long(0)],
                metrics: vec![2.0],
            };
            gen2.insert(&row).unwrap();
            combined.insert(&row).unwrap();
        }
        let s1 = Segment::persist(&gen1);
        let s2 = Segment::persist(&gen2);
        let merged = Segment::compact(&[&s1, &s2]);
        let reference = Segment::persist(&combined);
        assert_eq!(merged.num_rows(), reference.num_rows());
        let a = collect(|f| {
            merged.scan(i64::MIN / 2, i64::MAX / 2, f);
        });
        let b = collect(|f| {
            reference.scan(i64::MIN / 2, i64::MAX / 2, f);
        });
        // Counts and sums must agree exactly; HLL estimates may differ by
        // merge order only if registers differ — they don't (same adds).
        assert_eq!(a, b);
    }

    #[test]
    fn compact_disjoint_segments_concatenates() {
        let g1 = OakIndex::new(schema(), OakMapConfig::small());
        let g2 = OakIndex::new(schema(), OakMapConfig::small());
        fill(&g1, 0, 10);
        fill(&g2, 10, 20);
        let s = Segment::compact(&[&Segment::persist(&g1), &Segment::persist(&g2)]);
        assert_eq!(s.num_rows(), 20 * 4);
        assert_eq!(s.time_range(), Some((0, 19)));
        // Sorted output.
        let rows = collect(|f| {
            s.scan(i64::MIN / 2, i64::MAX / 2, f);
        });
        assert!(rows.windows(2).all(|w| w[0].0 <= w[1].0));
    }
}
