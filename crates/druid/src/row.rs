//! Input tuples and schemas.
//!
//! "I² keys and values are multi-dimensional. […] In order to save space,
//! variable-size (e.g., string) dimensions are mapped to numeric codewords,
//! through auxiliary dynamic dictionaries. A key maps to a flat array of
//! integers; time is always the primary dimension." (§6)

use crate::agg::AggSpec;

/// A dimension value in an incoming tuple.
#[derive(Debug, Clone, PartialEq)]
pub enum DimValue {
    /// A string dimension (dictionary-encoded into the key).
    Str(String),
    /// A numeric (long) dimension, stored directly in the key.
    Long(i64),
}

/// One incoming data tuple: timestamp, dimension values, numeric metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct InputRow {
    /// Event time in milliseconds — always the primary key dimension.
    pub timestamp: i64,
    /// Dimension values, matching `Schema::dimensions` by position.
    pub dims: Vec<DimValue>,
    /// Raw metric inputs consumed by the aggregators, by position.
    pub metrics: Vec<f64>,
}

/// Kind of a schema dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DimKind {
    /// Dictionary-encoded string.
    Str,
    /// 64-bit integer, encoded order-preservingly.
    Long,
}

/// The index schema: dimension layout and (for rollup indexes) the
/// aggregators materialized per key.
#[derive(Debug, Clone)]
pub struct Schema {
    /// Dimension names and kinds, in key order (after the timestamp).
    pub dimensions: Vec<(String, DimKind)>,
    /// Aggregators computed per unique key (rollup mode).
    pub aggregators: Vec<AggSpec>,
    /// Rollup (aggregate per key) or plain (store raw rows).
    pub rollup: bool,
}

impl Schema {
    /// A rollup schema with the given dimensions and aggregators.
    pub fn rollup(dimensions: Vec<(String, DimKind)>, aggregators: Vec<AggSpec>) -> Self {
        Schema {
            dimensions,
            aggregators,
            rollup: true,
        }
    }

    /// A plain schema: raw rows, no aggregation.
    pub fn plain(dimensions: Vec<(String, DimKind)>) -> Self {
        Schema {
            dimensions,
            aggregators: Vec::new(),
            rollup: false,
        }
    }

    /// Serialized key size: 8-byte timestamp plus 8 bytes per dimension.
    pub fn key_size(&self) -> usize {
        8 + 8 * self.dimensions.len()
    }

    /// Total serialized size of one aggregate-state tuple.
    pub fn agg_state_size(&self) -> usize {
        self.aggregators.iter().map(|a| a.state_size()).sum()
    }
}

/// Order-preserving big-endian encoding of an `i64` (flips the sign bit so
/// byte order equals numeric order).
#[inline]
pub fn encode_i64(v: i64) -> [u8; 8] {
    ((v as u64) ^ (1 << 63)).to_be_bytes()
}

/// Inverse of [`encode_i64`].
#[inline]
pub fn decode_i64(b: &[u8]) -> i64 {
    (u64::from_be_bytes(b.try_into().expect("8-byte field")) ^ (1 << 63)) as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn i64_encoding_is_order_preserving() {
        let vals = [i64::MIN, -1_000_000, -1, 0, 1, 42, i64::MAX];
        for w in vals.windows(2) {
            assert!(encode_i64(w[0]) < encode_i64(w[1]), "{} < {}", w[0], w[1]);
        }
        for v in vals {
            assert_eq!(decode_i64(&encode_i64(v)), v);
        }
    }

    #[test]
    fn schema_sizes() {
        let s = Schema::rollup(
            vec![
                ("page".into(), DimKind::Str),
                ("code".into(), DimKind::Long),
            ],
            vec![AggSpec::Count, AggSpec::DoubleSum(0)],
        );
        assert_eq!(s.key_size(), 24);
        assert_eq!(s.agg_state_size(), 16);
    }
}
